//! A branch-prediction explainer: for every conditional branch of a
//! program, show its classification, which heuristic fired under the
//! paper's priority order, the predicted direction, and how the
//! prediction fared against an actual run.
//!
//! This is the tool a compiler engineer would use to debug a static
//! prediction pass. Run with: `cargo run --example why_predicted`

use bpfree::core::{
    Attribution, BranchClass, BranchClassifier, CombinedPredictor, Direction, HeuristicKind,
};
use bpfree::lang::compile;
use bpfree::sim::{EdgeProfiler, Simulator};

const PROGRAM: &str = r#"
global int log_buf[16];
global int log_len;

fn record(int code) {
    if (log_len < 16) {
        log_buf[log_len] = code;
        log_len = log_len + 1;
    }
}

fn process(ptr item) -> int {
    int v;
    if (item == null) {
        record(-1);
        return 0;
    }
    v = item[0];
    if (v < 0) {
        record(v);
        return 0;
    }
    return v * 2;
}

fn main() -> int {
    ptr items; int i; int total;
    items = alloc(64);
    for (i = 0; i < 64; i = i + 1) {
        ptr it;
        it = alloc(1);
        it[0] = i % 13;
        items[i] = it;
    }
    for (i = 0; i < 64; i = i + 1) {
        total = total + process(items[i]);
    }
    return total;
}
"#;

fn main() {
    let program = compile(PROGRAM).unwrap_or_else(|e| panic!("{}", e.render(PROGRAM)));
    let classifier = BranchClassifier::analyze(&program);
    let predictor = CombinedPredictor::new(&program, &classifier, HeuristicKind::paper_order());
    let predictions = predictor.predictions();

    let mut profiler = EdgeProfiler::new();
    Simulator::new(&program).run(&mut profiler).unwrap();
    let profile = profiler.into_profile();

    println!(
        "{:<14} {:<8} {:<10} {:<9} {:>7} {:>7} {:>7}",
        "branch", "class", "rule", "predicts", "taken", "fall", "miss%"
    );
    println!("{:-<70}", "");
    let mut branches = program.branches();
    branches.sort();
    for b in branches {
        let func = program.func(b.func).name();
        let class = match classifier.class(b) {
            BranchClass::Loop => "loop",
            BranchClass::NonLoop => "nonloop",
        };
        let rule = match predictor.attribution(b) {
            Attribution::LoopBranch => "loop-pred".to_string(),
            Attribution::Heuristic(k) => k.label().to_lowercase(),
            Attribution::Default => "default".to_string(),
        };
        let dir = match predictions.get(b) {
            Some(Direction::Taken) => "taken",
            Some(Direction::FallThru) => "fall",
            None => "-",
        };
        let c = profile.counts(b);
        let miss = match predictions.get(b) {
            Some(Direction::Taken) => c.fallthru,
            Some(Direction::FallThru) => c.taken,
            None => c.total(),
        };
        let miss_pct = if c.total() == 0 {
            "-".to_string()
        } else {
            format!("{:.0}", 100.0 * miss as f64 / c.total() as f64)
        };
        println!(
            "{:<14} {:<8} {:<10} {:<9} {:>7} {:>7} {:>7}",
            format!("{}:{}", func, b.block),
            class,
            rule,
            dir,
            c.taken,
            c.fallthru,
            miss_pct
        );
    }
    println!();
    println!("Things to look for: the null test predicted non-null by the pointer/");
    println!("guard rules, the error paths avoided by the call/return rules, and the");
    println!("loop latches predicted to iterate.");
}
