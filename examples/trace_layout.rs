//! What the predictions are *for*: trace growing.
//!
//! Compilers like trace schedulers and code positioners (Fisher; Pettis &
//! Hanson — both cited by the paper) follow predicted branch directions
//! to lay out likely-executed straight-line paths. This example grows a
//! trace through each function of a benchmark by always following the
//! predicted edge, then checks what fraction of the program's dynamic
//! instruction count the trace blocks actually cover.
//!
//! Run with: `cargo run --release --example trace_layout`

use std::collections::HashSet;

use bpfree::core::{CombinedPredictor, Direction, HeuristicKind};
use bpfree::ir::{BlockId, BranchRef, FuncId, Terminator};
use bpfree::lang::Options;
use bpfree::sim::BranchBlockCounter;

fn main() {
    let engine = bpfree::engine::global();
    let bench = bpfree::suite::by_name("gcc").expect("gcc analogue exists");
    let compiled = engine.compiled(&bench, Options::default());
    let (program, classifier) = (&compiled.program, &compiled.classifier);
    let predictor = CombinedPredictor::new(program, classifier, HeuristicKind::paper_order());
    let predictions = predictor.predictions();

    // Grow one trace per function: start at the entry, follow jumps and
    // predicted branch directions, stop on return or revisit.
    let mut trace_blocks: HashSet<(FuncId, BlockId)> = HashSet::new();
    let mut trace_lens = Vec::new();
    for fid in program.func_ids() {
        let func = program.func(fid);
        let mut cur = func.entry();
        let mut visited = HashSet::new();
        let mut len = 0u64;
        loop {
            if !visited.insert(cur) {
                break;
            }
            trace_blocks.insert((fid, cur));
            len += func.block(cur).len_with_term();
            cur = match &func.block(cur).term {
                Terminator::Jump(t) => *t,
                Terminator::Branch {
                    taken, fallthru, ..
                } => {
                    match predictions.get(BranchRef {
                        func: fid,
                        block: cur,
                    }) {
                        Some(Direction::Taken) => *taken,
                        _ => *fallthru,
                    }
                }
                Terminator::Ret { .. } => break,
            };
        }
        trace_lens.push((func.name().to_string(), len));
    }

    // Measure how much dynamic execution lands on the trace. The
    // engine's recorded branch trace replays into any observer, so this
    // analysis shares the single interpreter pass (or a cached trace)
    // with everything else computed for gcc/dataset 0.
    let mut counter = BranchBlockCounter::new();
    engine
        .trace(&bench, Options::default(), 0)
        .replay(&mut counter);
    let result = engine.run(&bench, Options::default(), 0).result;
    let datasets = engine.datasets(&bench);

    let mut on_trace = 0u64;
    let mut total = 0u64;
    for (branch, count) in counter.instructions() {
        total += count;
        if trace_blocks.contains(&(branch.func, branch.block)) {
            on_trace += count;
        }
    }

    println!("benchmark: {} (dataset {})", bench.name, datasets[0].name);
    println!("dynamic instructions: {}", result.instructions);
    println!();
    println!("predicted main traces:");
    trace_lens.sort_by_key(|(_, l)| std::cmp::Reverse(*l));
    for (name, len) in trace_lens.iter().take(6) {
        println!("  {:<16} {:>4} instructions on trace", name, len);
    }
    println!();
    println!(
        "branch-block instructions landing on the predicted traces: {:.1}%",
        100.0 * on_trace as f64 / total.max(1) as f64
    );
    println!();
    println!("A trace scheduler compacts exactly these paths; the better the static");
    println!("prediction, the more of the execution the compacted trace captures.");
}
