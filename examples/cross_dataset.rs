//! Profile-based vs. program-based prediction across datasets — the
//! paper's motivating comparison (after Fisher & Freudenberger).
//!
//! Profile-based prediction trains on one run and predicts another. This
//! example trains the profile predictor on dataset A and tests on
//! dataset B, alongside the program-based predictor (which never sees any
//! profile) and the self-trained perfect bound, for a few benchmarks.
//!
//! Run with: `cargo run --release --example cross_dataset`

use bpfree::core::{evaluate, perfect_predictions, CombinedPredictor, HeuristicKind};
use bpfree::lang::Options;

fn main() {
    // The engine memoizes (and, unless BPFREE_NO_CACHE is set, persists)
    // every artifact queried below; repeated runs skip the simulations.
    let engine = bpfree::engine::global();
    println!(
        "{:<11} {:>14} {:>14} {:>12}",
        "benchmark", "profile(A->B)%", "program-based%", "perfect(B)%"
    );
    println!("{:-<55}", "");
    for name in ["xlisp", "compress", "espresso", "doduc", "tomcatv"] {
        let bench = bpfree::suite::by_name(name).expect("known benchmark");
        let compiled = engine.compiled(&bench, Options::default());
        let (program, classifier) = (&compiled.program, &compiled.classifier);

        // Train on dataset 0.
        let train_profile = engine.run(&bench, Options::default(), 0).profile;
        let profile_based = perfect_predictions(program, &train_profile);

        // Test on dataset 1.
        let test_profile = engine.run(&bench, Options::default(), 1).profile;
        let cp = CombinedPredictor::new(program, classifier, HeuristicKind::paper_order());

        let r_profile = evaluate(&profile_based, &test_profile, classifier);
        let r_program = evaluate(&cp.predictions(), &test_profile, classifier);
        let r_perfect = evaluate(
            &perfect_predictions(program, &test_profile),
            &test_profile,
            classifier,
        );

        println!(
            "{:<11} {:>14.1} {:>14.1} {:>12.1}",
            name,
            100.0 * r_profile.all.miss_rate(),
            100.0 * r_program.all.miss_rate(),
            100.0 * r_perfect.all.miss_rate(),
        );
    }
    println!();
    println!("The paper's framing: profile-based prediction transfers well between");
    println!("runs (Fisher & Freudenberger) and beats program-based prediction by");
    println!("roughly 2x — but program-based prediction costs no profiling run.");
}
