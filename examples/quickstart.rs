//! Quickstart: compile a program, profile it once, and compare
//! program-based prediction (no profile needed!) against the
//! profile-derived perfect static predictor and the naive baselines.
//!
//! Run with: `cargo run --example quickstart`

use bpfree::core::{
    evaluate, perfect_predictions, random_predictions, taken_predictions, BranchClassifier,
    CombinedPredictor, HeuristicKind, DEFAULT_SEED,
};
use bpfree::lang::compile;
use bpfree::sim::{EdgeProfiler, Simulator};

const PROGRAM: &str = r#"
// A little word-frequency counter: hash table + linked collision chains.
global int text[4096];
global int text_len;
global int buckets[64];
global int distinct;

fn hash(int w) -> int {
    return (w * 2654435761) % 64;
}

fn lookup_or_insert(int word) -> int {
    int h; ptr node;
    h = hash(word);
    if (h < 0) { h = h + 64; }
    node = buckets[h];
    while (node != null) {
        if (node[0] == word) {
            node[1] = node[1] + 1;
            return 0;
        }
        node = node[2];
    }
    node = alloc(3);
    node[0] = word;
    node[1] = 1;
    node[2] = buckets[h];
    buckets[h] = node;
    distinct = distinct + 1;
    return 1;
}

fn main() -> int {
    int i; int w;
    w = 7;
    for (i = 0; i < 4096; i = i + 1) {
        // A skewed synthetic word stream.
        w = (w * 31 + i) % 97;
        if (w % 3 == 0) { w = 5; }
        text[i] = w;
        lookup_or_insert(w);
    }
    return distinct;
}
"#;

fn main() {
    // 1. Compile Cmm to the MIPS-flavoured IR.
    let program = compile(PROGRAM).unwrap_or_else(|e| panic!("{}", e.render(PROGRAM)));
    println!(
        "compiled: {} functions, {} IR instructions, {} branch sites",
        program.funcs().len(),
        program.static_size(),
        program.branches().len()
    );

    // 2. Run once under an edge profiler (what QPT did for the paper).
    let mut profiler = EdgeProfiler::new();
    let result = Simulator::new(&program).run(&mut profiler).unwrap();
    let profile = profiler.into_profile();
    println!(
        "executed {} instructions, {} dynamic branches, exit = {}",
        result.instructions,
        profile.total_branches(),
        result.exit
    );

    // 3. Predict every branch statically — no profile consulted.
    let classifier = BranchClassifier::analyze(&program);
    let predictor = CombinedPredictor::new(&program, &classifier, HeuristicKind::paper_order());

    // 4. Score everything against the profile.
    println!();
    println!(
        "{:<22} {:>9} {:>9} {:>9}",
        "predictor", "loop%", "nonloop%", "all%"
    );
    for (name, preds) in [
        ("program-based (B&L)", predictor.predictions()),
        ("perfect static", perfect_predictions(&program, &profile)),
        ("always taken", taken_predictions(&program)),
        ("random", random_predictions(&program, DEFAULT_SEED)),
    ] {
        let r = evaluate(&preds, &profile, &classifier);
        println!(
            "{:<22} {:>9.1} {:>9.1} {:>9.1}",
            name,
            100.0 * r.loop_branches.miss_rate(),
            100.0 * r.nonloop.miss_rate(),
            100.0 * r.all.miss_rate()
        );
    }
    println!();
    println!("The program-based predictor needed no profile run — that's the");
    println!("\"for free\" of the paper's title.");
}
