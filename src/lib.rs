//! # bpfree — "Branch Prediction for Free", reproduced
//!
//! A from-scratch Rust reproduction of Thomas Ball and James R. Larus,
//! *Branch Prediction for Free*, PLDI 1993. The paper shows that simple,
//! static, **program-based** heuristics predict conditional branch
//! directions nearly as well as profile-based prediction — with no
//! compile–profile–recompile cycle.
//!
//! This facade crate re-exports the whole system:
//!
//! * [`ir`] — a MIPS-flavoured low-level IR (the paper analysed MIPS
//!   executables);
//! * [`cfg`](mod@cfg) — control-flow graphs, dominators, postdominators, natural
//!   loops;
//! * [`lang`] — the Cmm language and compiler used to author the benchmark
//!   suite;
//! * [`sim`] — an IR interpreter with edge profiling and instruction
//!   tracing (the QPT substitute);
//! * [`suite`] — 23 benchmark programs mirroring the paper's Table 1;
//! * [`core`] — the paper's contribution: branch classification, the seven
//!   non-loop heuristics, heuristic combination, evaluation, ordering
//!   experiments, and IPBC trace analysis;
//! * [`bench`] — the experiment registry: every paper table and figure as
//!   a named [`bench::registry::Experiment`], runnable individually or as
//!   one single-process batch (`bpfree exp all`) over the shared
//!   memoizing [`engine`].
//!
//! # Quickstart
//!
//! ```
//! use bpfree::lang::compile;
//! use bpfree::sim::{EdgeProfiler, Simulator};
//! use bpfree::core::{BranchClassifier, CombinedPredictor, HeuristicKind, evaluate};
//!
//! let program = compile(
//!     r#"
//!     fn main() -> int {
//!         int i; int sum;
//!         i = 0; sum = 0;
//!         while (i < 100) {
//!             if (i - 50 > 0) { sum = sum + i; }
//!             i = i + 1;
//!         }
//!         return sum;
//!     }
//!     "#,
//! )?;
//!
//! // Run once to collect the edge profile (what QPT produced).
//! let mut profiler = EdgeProfiler::new();
//! Simulator::new(&program).run(&mut profiler)?;
//! let profile = profiler.into_profile();
//!
//! // Predict every branch statically, then score against the profile.
//! let classifier = BranchClassifier::analyze(&program);
//! let predictor = CombinedPredictor::new(&program, &classifier, HeuristicKind::paper_order());
//! let report = evaluate(&predictor.predictions(), &profile, &classifier);
//! assert!(report.all.miss_rate() < 0.5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use bpfree_bench as bench;
pub use bpfree_cache as cache;
pub use bpfree_cfg as cfg;
pub use bpfree_core as core;
pub use bpfree_engine as engine;
pub use bpfree_ir as ir;
pub use bpfree_lang as lang;
pub use bpfree_sim as sim;
pub use bpfree_suite as suite;
