//! `bpfree` — command-line driver for the Ball–Larus reproduction.
//!
//! ```text
//! bpfree compile FILE [--o0]        print the compiled IR
//! bpfree run FILE [--fuel N]        execute a Cmm program
//! bpfree predict FILE               per-branch predictions + accuracy
//! bpfree cfg FILE [--func NAME]     emit an annotated CFG as Graphviz dot
//! bpfree bench NAME [--dataset N]   run a suite benchmark and report
//! bpfree bench --json [--out PATH] [--replay-out PATH] [--sched-out PATH]
//!                     [--analysis-out PATH] [--ordering-out PATH]
//!                                   perf reports (BENCH_interp.json, BENCH_replay.json,
//!                                   BENCH_sched.json, BENCH_analysis.json,
//!                                   BENCH_ordering.json)
//! bpfree list                       list the benchmark suite
//! bpfree exp list                   list the registered experiments
//! bpfree exp run NAME...            regenerate paper tables/figures
//! bpfree exp all [--image PATH]     the whole reproduction, one process
//! bpfree image build PATH           pack every suite artifact into one image
//! bpfree image verify PATH          integrity + live-suite revalidation
//! bpfree image ls PATH              list an image's directory
//! bpfree cache stat                 inventory the per-entry cache directory
//! bpfree cache gc                   purge stale-format cache entries
//! ```
//!
//! Exit codes: 0 success, 1 runtime failure (bad input file, simulator
//! error), 2 usage error (unknown command/experiment/benchmark, bad
//! flag). Only usage errors print the usage text.

use std::io;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use bpfree::bench::config;
use bpfree::bench::registry::{self, Experiment};
use bpfree::bench::sink::{CaptureSink, StdoutSink};
use bpfree::core::{
    evaluate, perfect_predictions, Attribution, BranchClass, BranchClassifier, CombinedPredictor,
    Direction, HeuristicKind,
};
use bpfree::lang::{compile_with, Options};
use bpfree::sim::{EdgeProfiler, NullObserver, SimConfig, Simulator};

/// A failed command: usage errors (exit 2) get the usage text appended,
/// runtime errors (exit 1) just the message.
enum Failure {
    Usage(String),
    Runtime(String),
}

fn usage_err(msg: impl Into<String>) -> Failure {
    Failure::Usage(msg.into())
}

fn runtime_err(msg: impl Into<String>) -> Failure {
    Failure::Runtime(msg.into())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let result = (|| {
        // The standard experiment flags (--jobs/--no-cache/--cache-dir)
        // may appear anywhere; whatever remains belongs to the command.
        let (cfg, rest) = config::extract(raw).map_err(Failure::Usage)?;
        match rest.first().map(String::as_str) {
            Some("compile") => cmd_compile(&rest[1..]),
            Some("run") => {
                config::apply(cfg);
                cmd_run(&rest[1..])
            }
            Some("predict") => {
                config::apply(cfg);
                cmd_predict(&rest[1..])
            }
            Some("cfg") => cmd_cfg(&rest[1..]),
            Some("bench") => {
                config::apply(cfg);
                cmd_bench(&rest[1..])
            }
            Some("exp") => {
                config::apply(cfg);
                cmd_exp(&rest[1..])
            }
            Some("image") => {
                config::apply(cfg);
                cmd_image(&rest[1..])
            }
            Some("cache") => {
                config::apply(cfg);
                cmd_cache(&rest[1..])
            }
            Some("list") => cmd_list(),
            Some("--version" | "-V") => {
                println!("bpfree {}", env!("CARGO_PKG_VERSION"));
                Ok(())
            }
            Some("--help" | "-h") | None => {
                print_usage();
                Ok(())
            }
            Some(other) => Err(usage_err(format!("unknown command `{other}`"))),
        }
    })();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(Failure::Usage(msg)) => {
            eprintln!("bpfree: {msg}");
            print_usage();
            ExitCode::from(2)
        }
        Err(Failure::Runtime(msg)) => {
            eprintln!("bpfree: {msg}");
            ExitCode::from(1)
        }
    }
}

fn print_usage() {
    eprintln!("usage:");
    eprintln!("  bpfree compile FILE [--o0]        print the compiled IR");
    eprintln!("  bpfree run FILE [--fuel N]        execute a Cmm program");
    eprintln!("  bpfree predict FILE               per-branch predictions + accuracy");
    eprintln!("  bpfree cfg FILE [--func NAME]     emit an annotated CFG as Graphviz dot");
    eprintln!("  bpfree bench NAME [--dataset N]   run a suite benchmark and report");
    eprintln!("  bpfree bench --json [--out PATH] [--replay-out PATH] [--sched-out PATH]");
    eprintln!("                      [--analysis-out PATH] [--ordering-out PATH]");
    eprintln!("                                    perf reports (BENCH_interp.json +");
    eprintln!("                                    BENCH_replay.json + BENCH_sched.json +");
    eprintln!("                                    BENCH_analysis.json + BENCH_ordering.json)");
    eprintln!("  bpfree list                       list the benchmark suite");
    eprintln!("  bpfree exp list                   list the registered experiments");
    eprintln!("  bpfree exp run NAME...            regenerate paper tables/figures");
    eprintln!("  bpfree exp all [--skip NAME]      the whole reproduction, one process");
    eprintln!("  bpfree image build PATH           pack every suite artifact into one");
    eprintln!("                                    zero-copy warm-start image");
    eprintln!("  bpfree image verify PATH          check an image's integrity and");
    eprintln!("                                    revalidate it against the live suite");
    eprintln!("  bpfree image ls PATH              list an image's directory");
    eprintln!("  bpfree cache stat                 inventory the per-entry cache directory");
    eprintln!("  bpfree cache gc                   purge stale-format cache entries");
    eprintln!("  bpfree --version                  print the version");
    eprintln!();
    eprintln!("common flags (run/bench/predict/exp): --jobs N, --no-cache, --cache-dir DIR,");
    eprintln!("                                      --interp bytecode|tree, --timings[=PATH]");
    eprintln!("exp run/all also accept: --out-dir DIR (capture files + manifest.json)");
    eprintln!("                         --image PATH (mount a warm-start suite image)");
    eprintln!("bench --json also accepts: --all-out DIR (every BENCH_*.json in one run)");
}

fn load_program(path: &str, options: Options) -> Result<bpfree::ir::Program, Failure> {
    let source = std::fs::read_to_string(path)
        .map_err(|e| runtime_err(format!("cannot read `{path}`: {e}")))?;
    compile_with(&source, options).map_err(|e| runtime_err(format!("{path}:{}", e.render(&source))))
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn value_of(args: &[String], name: &str) -> Result<Option<u64>, Failure> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| usage_err(format!("{name} needs a value")))?
            .parse()
            .map(Some)
            .map_err(|e| usage_err(format!("bad value for {name}: {e}"))),
    }
}

fn cmd_compile(args: &[String]) -> Result<(), Failure> {
    let path = args
        .first()
        .ok_or_else(|| usage_err("compile needs a file"))?;
    let options = if flag(args, "--o0") {
        Options::o0()
    } else {
        Options::default()
    };
    let program = load_program(path, options)?;
    print!("{program}");
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), Failure> {
    let path = args.first().ok_or_else(|| usage_err("run needs a file"))?;
    let program = load_program(path, Options::default())?;
    let fuel = value_of(args, "--fuel")?.unwrap_or(SimConfig::default().fuel);
    let config = SimConfig {
        fuel,
        tier: config::config().interp,
        ..SimConfig::default()
    };
    let result = Simulator::with_config(&program, config)
        .run(&mut NullObserver)
        .map_err(|e| runtime_err(e.to_string()))?;
    println!("exit: {}", result.exit);
    println!("instructions: {}", result.instructions);
    Ok(())
}

fn cmd_predict(args: &[String]) -> Result<(), Failure> {
    let path = args
        .first()
        .ok_or_else(|| usage_err("predict needs a file"))?;
    let program = load_program(path, Options::default())?;
    let classifier = BranchClassifier::analyze(&program);
    let predictor = CombinedPredictor::new(&program, &classifier, HeuristicKind::paper_order());
    let predictions = predictor.predictions();

    let mut profiler = EdgeProfiler::new();
    let sim_config = SimConfig {
        tier: config::config().interp,
        ..SimConfig::default()
    };
    Simulator::with_config(&program, sim_config)
        .run(&mut profiler)
        .map_err(|e| runtime_err(e.to_string()))?;
    let profile = profiler.into_profile();

    println!(
        "{:<20} {:<8} {:<10} {:<9} {:>9} {:>9} {:>6}",
        "branch", "class", "rule", "predicts", "taken", "fallthru", "miss%"
    );
    let mut branches = program.branches();
    branches.sort();
    for b in branches {
        let c = profile.counts(b);
        let miss = match predictions.get(b) {
            Some(Direction::Taken) => c.fallthru,
            Some(Direction::FallThru) => c.taken,
            None => c.total(),
        };
        println!(
            "{:<20} {:<8} {:<10} {:<9} {:>9} {:>9} {:>6}",
            format!("{}:{}", program.func(b.func).name(), b.block),
            match classifier.class(b) {
                BranchClass::Loop => "loop",
                BranchClass::NonLoop => "nonloop",
            },
            match predictor.attribution(b) {
                Attribution::LoopBranch => "loop-pred".to_string(),
                Attribution::Heuristic(k) => k.label().to_lowercase(),
                Attribution::Default => "default".to_string(),
            },
            match predictions.get(b) {
                Some(Direction::Taken) => "taken",
                Some(Direction::FallThru) => "fall",
                None => "-",
            },
            c.taken,
            c.fallthru,
            if c.total() == 0 {
                "-".to_string()
            } else {
                format!("{:.0}", 100.0 * miss as f64 / c.total() as f64)
            }
        );
    }
    let report = evaluate(&predictions, &profile, &classifier);
    let perfect = evaluate(
        &perfect_predictions(&program, &profile),
        &profile,
        &classifier,
    );
    println!();
    println!(
        "overall: {:.1}% miss ({:.1}% perfect bound) over {} dynamic branches",
        100.0 * report.all.miss_rate(),
        100.0 * perfect.all.miss_rate(),
        report.all.dynamic
    );
    Ok(())
}

/// Emits each requested function's CFG as Graphviz dot, with loop heads
/// shaded, backedges dashed, and predicted edges bold.
fn cmd_cfg(args: &[String]) -> Result<(), Failure> {
    let path = args.first().ok_or_else(|| usage_err("cfg needs a file"))?;
    let program = load_program(path, Options::default())?;
    let only = args
        .iter()
        .position(|a| a == "--func")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let classifier = BranchClassifier::analyze(&program);
    let predictor = CombinedPredictor::new(&program, &classifier, HeuristicKind::paper_order());
    let predictions = predictor.predictions();

    println!("digraph bpfree {{");
    println!("  node [shape=box, fontname=monospace];");
    for fid in program.func_ids() {
        let func = program.func(fid);
        if let Some(name) = &only {
            if func.name() != name {
                continue;
            }
        }
        let analysis = classifier.analysis(&program, fid);
        println!("  subgraph cluster_{} {{", fid.index());
        println!("    label=\"{}\";", func.name());
        for bid in func.block_ids() {
            let style = if analysis.loops.is_head(bid) {
                ", style=filled, fillcolor=lightgrey"
            } else {
                ""
            };
            println!(
                "    n{}_{} [label=\"{} ({} instrs)\"{}];",
                fid.index(),
                bid.index(),
                bid,
                func.block(bid).instrs.len(),
                style
            );
        }
        for bid in func.block_ids() {
            use bpfree::ir::Terminator;
            let mk = |dst: bpfree::ir::BlockId, attrs: &str| {
                println!(
                    "    n{}_{} -> n{}_{} [{}];",
                    fid.index(),
                    bid.index(),
                    fid.index(),
                    dst.index(),
                    attrs
                );
            };
            match &func.block(bid).term {
                Terminator::Jump(t) => mk(*t, ""),
                Terminator::Branch {
                    taken, fallthru, ..
                } => {
                    let site = bpfree::ir::BranchRef {
                        func: fid,
                        block: bid,
                    };
                    let predicted = predictions.get(site);
                    let dash = |d| {
                        if analysis.loops.is_backedge(bid, d) {
                            "style=dashed, "
                        } else {
                            ""
                        }
                    };
                    let bold = |dir: Direction| {
                        if predicted == Some(dir) {
                            "penwidth=2.4, color=blue, "
                        } else {
                            ""
                        }
                    };
                    mk(
                        *taken,
                        &format!("{}{}label=T", dash(*taken), bold(Direction::Taken)),
                    );
                    mk(
                        *fallthru,
                        &format!("{}{}label=F", dash(*fallthru), bold(Direction::FallThru)),
                    );
                }
                Terminator::Ret { .. } => {}
            }
        }
        println!("  }}");
    }
    println!("}}");
    Ok(())
}

fn cmd_bench(args: &[String]) -> Result<(), Failure> {
    // `bench --json` is the perf-tracking harness: tier-vs-tier
    // throughput per suite benchmark plus a cold `exp all` wall-clock,
    // written as a JSON report (committed as BENCH_interp.json).
    if flag(args, "--json") {
        let path_flag = |name: &str, default: &str| -> Result<String, Failure> {
            args.iter()
                .position(|a| a == name)
                .map(|i| {
                    args.get(i + 1)
                        .cloned()
                        .ok_or_else(|| usage_err(format!("{name} needs a value")))
                })
                .transpose()
                .map(|v| v.unwrap_or_else(|| default.to_string()))
        };
        let out = path_flag("--out", "BENCH_interp.json")?;
        let replay_out = path_flag("--replay-out", "BENCH_replay.json")?;
        let sched_out = path_flag("--sched-out", "BENCH_sched.json")?;
        let analysis_out = path_flag("--analysis-out", "BENCH_analysis.json")?;
        let ordering_out = path_flag("--ordering-out", "BENCH_ordering.json")?;
        let warmstart_out = path_flag("--warmstart-out", "BENCH_warmstart.json")?;
        if cfg!(debug_assertions) {
            eprintln!("[bpfree] warning: debug build — bench numbers are not comparable");
        }
        let rt = |e: io::Error| runtime_err(e.to_string());
        // `--all-out DIR` writes the whole default-named report set under
        // DIR in one invocation; the per-report flags above remain as
        // aliases for single-file runs.
        let targets: Vec<PathBuf> = match args.iter().position(|a| a == "--all-out") {
            Some(i) => {
                let dir = PathBuf::from(
                    args.get(i + 1)
                        .ok_or_else(|| usage_err("--all-out needs a value"))?,
                );
                std::fs::create_dir_all(&dir).map_err(rt)?;
                [
                    "BENCH_interp.json",
                    "BENCH_replay.json",
                    "BENCH_sched.json",
                    "BENCH_analysis.json",
                    "BENCH_ordering.json",
                    "BENCH_warmstart.json",
                ]
                .iter()
                .map(|n| dir.join(n))
                .collect()
            }
            None => [
                &out,
                &replay_out,
                &sched_out,
                &analysis_out,
                &ordering_out,
                &warmstart_out,
            ]
            .iter()
            .map(PathBuf::from)
            .collect(),
        };
        bpfree::bench::perf::write_report(&targets[0]).map_err(rt)?;
        bpfree::bench::perf::write_replay_report(&targets[1]).map_err(rt)?;
        bpfree::bench::perf::write_sched_report(&targets[2]).map_err(rt)?;
        bpfree::bench::perf::write_analysis_report(&targets[3]).map_err(rt)?;
        bpfree::bench::perf::write_ordering_report(&targets[4]).map_err(rt)?;
        return bpfree::bench::perf::write_warmstart_report(&targets[5]).map_err(rt);
    }
    let name = args
        .first()
        .ok_or_else(|| usage_err("bench needs a benchmark name"))?;
    let bench = bpfree::suite::by_name(name)
        .ok_or_else(|| usage_err(format!("no benchmark `{name}` (try `bpfree list`)")))?;
    let dataset = value_of(args, "--dataset")?.unwrap_or(0) as usize;
    // The artifact engine memoizes and (subject to --no-cache /
    // --cache-dir and their environment twins) persists everything this
    // command computes.
    let engine = config::engine();
    let compiled = engine.compiled(&bench, Options::default());
    let bundle = engine
        .try_run(&bench, Options::default(), dataset)
        .map_err(|e| runtime_err(e.to_string()))?;
    let (program, classifier) = (&compiled.program, &compiled.classifier);
    let (profile, result) = (&bundle.profile, bundle.result);

    let predictor = CombinedPredictor::new(program, classifier, HeuristicKind::paper_order());
    let report = evaluate(&predictor.predictions(), profile, classifier);
    let perfect = evaluate(&perfect_predictions(program, profile), profile, classifier);

    println!("benchmark: {} — {}", bench.name, bench.description);
    println!("dataset: {} of {}", dataset, engine.datasets(&bench).len());
    println!("instructions: {}", result.instructions);
    println!("dynamic branches: {}", profile.total_branches());
    println!("non-loop share: {:.0}%", 100.0 * report.nonloop_fraction());
    println!(
        "heuristic miss: loop {:.1}%, non-loop {:.1}%, all {:.1}%",
        100.0 * report.loop_branches.miss_rate(),
        100.0 * report.nonloop.miss_rate(),
        100.0 * report.all.miss_rate()
    );
    println!("perfect bound: all {:.1}%", 100.0 * perfect.all.miss_rate());
    Ok(())
}

fn cmd_list() -> Result<(), Failure> {
    println!("{:<11} {:<4} {:<5} description", "name", "lang", "spec");
    for b in bpfree::suite::all() {
        println!(
            "{:<11} {:<4} {:<5} {}",
            b.name,
            b.lang.to_string(),
            if b.spec { "*" } else { "" },
            b.description
        );
    }
    Ok(())
}

/// `bpfree exp list|run|all` — the registered experiments.
fn cmd_exp(args: &[String]) -> Result<(), Failure> {
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("{:<16} {:<26} description", "name", "paper");
            for e in registry::all() {
                println!("{:<16} {:<26} {}", e.name(), e.paper_ref(), e.description());
            }
            Ok(())
        }
        Some("run") => {
            let opts = ExpOpts::parse(&args[1..], false)?;
            if opts.names.is_empty() {
                return Err(usage_err(
                    "exp run needs at least one experiment name (see `bpfree exp list`)",
                ));
            }
            let exps: Vec<&'static dyn Experiment> = opts
                .names
                .iter()
                .map(|n| resolve_experiment(n))
                .collect::<Result<_, _>>()?;
            run_exps(&exps, opts, "run")
        }
        Some("all") => {
            let opts = ExpOpts::parse(&args[1..], true)?;
            for n in &opts.skip {
                resolve_experiment(n)?;
            }
            let exps: Vec<&'static dyn Experiment> = registry::all()
                .iter()
                .copied()
                .filter(|e| !opts.skip.iter().any(|s| s == e.name()))
                .collect();
            run_exps(&exps, opts, "all")
        }
        _ => Err(usage_err(
            "exp needs a subcommand: `list`, `run NAME...`, or `all`",
        )),
    }
}

/// Arguments to `exp run` / `exp all`.
struct ExpOpts {
    names: Vec<String>,
    skip: Vec<String>,
    out_dir: Option<PathBuf>,
    image: Option<PathBuf>,
}

impl ExpOpts {
    fn parse(args: &[String], allow_skip: bool) -> Result<ExpOpts, Failure> {
        let mut opts = ExpOpts {
            names: Vec::new(),
            skip: Vec::new(),
            out_dir: None,
            image: None,
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--out-dir" => {
                    let v = it
                        .next()
                        .ok_or_else(|| usage_err("--out-dir needs a value"))?;
                    opts.out_dir = Some(PathBuf::from(v));
                }
                s if s.starts_with("--out-dir=") => {
                    opts.out_dir = Some(PathBuf::from(&s["--out-dir=".len()..]));
                }
                "--image" => {
                    let v = it
                        .next()
                        .ok_or_else(|| usage_err("--image needs a value"))?;
                    opts.image = Some(PathBuf::from(v));
                }
                s if s.starts_with("--image=") => {
                    opts.image = Some(PathBuf::from(&s["--image=".len()..]));
                }
                "--skip" if allow_skip => {
                    let v = it.next().ok_or_else(|| usage_err("--skip needs a value"))?;
                    opts.skip.push(v.clone());
                }
                s if s.starts_with("--skip=") && allow_skip => {
                    opts.skip.push(s["--skip=".len()..].to_string());
                }
                s if s.starts_with('-') => {
                    return Err(usage_err(format!("unrecognized flag `{s}`")));
                }
                _ => opts.names.push(arg.clone()),
            }
        }
        if allow_skip {
            if let Some(stray) = opts.names.first() {
                return Err(usage_err(format!(
                    "exp all takes no experiment names (got `{stray}`); use `exp run` or `--skip`"
                )));
            }
        }
        Ok(opts)
    }
}

fn resolve_experiment(name: &str) -> Result<&'static dyn Experiment, Failure> {
    registry::by_name(name).ok_or_else(|| {
        let mut msg = format!("unknown experiment `{name}`");
        if let Some(s) = registry::suggest(name) {
            msg.push_str(&format!(" (did you mean `{s}`?)"));
        }
        msg.push_str("; see `bpfree exp list`");
        usage_err(msg)
    })
}

/// `bpfree image build|verify|ls` — the single-file warm-start suite
/// image (cache format v6, see `bpfree::cache::image`).
fn cmd_image(args: &[String]) -> Result<(), Failure> {
    let path_arg = |verb: &str| -> Result<PathBuf, Failure> {
        args.get(1)
            .map(PathBuf::from)
            .ok_or_else(|| usage_err(format!("image {verb} needs a path")))
    };
    match args.first().map(String::as_str) {
        Some("build") => {
            let path = path_arg("build")?;
            // Work the full experiment batch through the engine (warm
            // from the per-entry cache where possible), then snapshot
            // every memo into the image.
            let engine = config::engine();
            let exps: Vec<&'static dyn Experiment> = registry::all().to_vec();
            let mut sink = bpfree::bench::sink::DiscardSink::new();
            registry::run_experiments(&exps, engine, &mut sink, true)
                .map_err(|e| runtime_err(e.to_string()))?;
            let (entries, bytes) = engine
                .export_image(&path)
                .map_err(|e| runtime_err(e.to_string()))?;
            println!("image: {}", path.display());
            println!("entries: {entries}");
            println!("bytes: {bytes}");
            Ok(())
        }
        Some("verify") => {
            let path = path_arg("verify")?;
            // Structural integrity first (magic, checksums, bounds),
            // then a real mount against the live suite: every entry
            // either revalidates or is reported as skipped.
            let engine = bpfree::engine::Engine::new(bpfree::engine::EngineConfig::no_cache());
            let report = engine
                .mount_image(&path)
                .map_err(|e| runtime_err(format!("{}: {e}", path.display())))?;
            println!(
                "{}: ok — {} entries mounted, {} skipped, {} bytes",
                path.display(),
                report.mounted,
                report.skipped,
                report.bytes
            );
            Ok(())
        }
        Some("ls") => {
            let path = path_arg("ls")?;
            let img = bpfree::cache::image::SuiteImage::open(&path)
                .map_err(|e| runtime_err(format!("{}: {e}", path.display())))?;
            println!(
                "{:<10} {:<11} {:<18} {:>7} {:>10} key",
                "kind", "bench", "options", "dataset", "bytes"
            );
            for e in img.entries() {
                println!(
                    "{:<10} {:<11} {:<18} {:>7} {:>10} {:016x}",
                    e.kind.name(),
                    if e.name.is_empty() { "-" } else { &e.name },
                    e.opt,
                    e.dataset.map_or("-".to_string(), |d| d.to_string()),
                    e.payload_bytes(),
                    e.key
                );
            }
            println!(
                "{} entries, {} bytes total",
                img.entries().len(),
                img.total_bytes()
            );
            Ok(())
        }
        _ => Err(usage_err(
            "image needs a subcommand: `build PATH`, `verify PATH`, or `ls PATH`",
        )),
    }
}

/// `bpfree cache stat|gc` — per-entry cache directory maintenance.
/// Honors `--cache-dir` / `BPFREE_CACHE_DIR` like every other command.
fn cmd_cache(args: &[String]) -> Result<(), Failure> {
    let dir = &config::config().cache_dir;
    let rt = |e: io::Error| runtime_err(format!("{}: {e}", dir.display()));
    match args.first().map(String::as_str) {
        Some("stat") => {
            let stat = bpfree::cache::maint::scan(dir).map_err(rt)?;
            println!("cache dir: {}", dir.display());
            println!(
                "{:<10} {:>7} {:>8} {:>12}",
                "kind", "version", "entries", "bytes"
            );
            for (kind, version, n, bytes) in stat.by_kind() {
                println!("{kind:<10} {version:>7} {n:>8} {bytes:>12}");
            }
            println!(
                "total: {} entries, {} bytes ({} stale, {} foreign files)",
                stat.entries.len(),
                stat.total_bytes(),
                stat.stale(),
                stat.foreign
            );
            Ok(())
        }
        Some("gc") => {
            let (removed, reclaimed) = bpfree::cache::maint::gc(dir).map_err(rt)?;
            println!(
                "{}: removed {removed} stale entries, reclaimed {reclaimed} bytes",
                dir.display()
            );
            Ok(())
        }
        _ => Err(usage_err("cache needs a subcommand: `stat` or `gc`")),
    }
}

/// Runs `exps` against the shared engine — to stdout, or captured under
/// `--out-dir` with a manifest. One process, one engine: every
/// (benchmark, dataset) is compiled and simulated at most once for the
/// whole batch, which is the point of `exp all`.
fn run_exps(exps: &[&'static dyn Experiment], opts: ExpOpts, mode: &str) -> Result<(), Failure> {
    let rt = |e: io::Error| runtime_err(e.to_string());
    let engine = config::engine();
    // A mounted suite image pre-fills every memo the batch would
    // otherwise compute (or read entry-by-entry from the cache dir); a
    // structurally corrupt image is a hard error, but entries that fail
    // live revalidation just fall back to recompute.
    if let Some(img) = &opts.image {
        let report = engine
            .mount_image(img)
            .map_err(|e| runtime_err(format!("cannot mount `{}`: {e}", img.display())))?;
        eprintln!(
            "[bpfree] mounted {}: {} entries ({} skipped), {} bytes",
            img.display(),
            report.mounted,
            report.skipped,
            report.bytes
        );
    }
    let start = Instant::now();
    match opts.out_dir {
        Some(dir) => {
            let mut sink = CaptureSink::new(&dir).map_err(rt)?;
            registry::run_experiments(exps, engine, &mut sink, true).map_err(rt)?;
            let manifest = sink.finish().map_err(rt)?;
            eprintln!(
                "[bpfree] captured {} experiments under {} ({})",
                exps.len(),
                dir.display(),
                manifest.display()
            );
        }
        None => {
            let mut sink = StdoutSink::new();
            registry::run_experiments(exps, engine, &mut sink, true).map_err(rt)?;
        }
    }
    eprintln!(
        "[bpfree] exp {mode}: {} experiments in {:.1}s, {} interpreter passes",
        exps.len(),
        start.elapsed().as_secs_f64(),
        engine.simulations()
    );
    if let Some(out) = &config::config().timings {
        emit_timings(out).map_err(rt)?;
    }
    Ok(())
}

/// Drains the per-task timing log (`--timings` / `BPFREE_TIMINGS`) and
/// writes it as JSON to stderr or the configured file.
fn emit_timings(out: &config::TimingsOut) -> io::Result<()> {
    use bpfree::bench::json::Json;
    let tasks: Vec<Json> = bpfree::bench::timings::drain()
        .iter()
        .map(|t| {
            Json::obj()
                .field("kind", t.kind)
                .field("key", t.key.as_str())
                .field("micros", t.micros)
                .field(
                    "worker",
                    match t.worker {
                        Some(w) => Json::UInt(w as u64),
                        None => Json::Null,
                    },
                )
                .build()
        })
        .collect();
    let doc = Json::obj()
        .field("schema", "bpfree-timings/1")
        .field("tasks", tasks)
        .build();
    match out {
        config::TimingsOut::Stderr => {
            eprintln!("{}", doc.pretty());
            Ok(())
        }
        config::TimingsOut::File(path) => std::fs::write(path, format!("{}\n", doc.pretty())),
    }
}
