//! `bpfree` — command-line driver for the Ball–Larus reproduction.
//!
//! ```text
//! bpfree compile FILE [--o0]        print the compiled IR
//! bpfree run FILE [--fuel N]        execute a Cmm program
//! bpfree predict FILE               per-branch predictions + accuracy
//! bpfree cfg FILE [--func NAME]     emit an annotated CFG as Graphviz dot
//! bpfree bench NAME [--dataset N]   run a suite benchmark and report
//! bpfree list                       list the benchmark suite
//! ```

use std::process::ExitCode;

use bpfree::core::{
    evaluate, perfect_predictions, Attribution, BranchClass, BranchClassifier, CombinedPredictor,
    Direction, HeuristicKind,
};
use bpfree::lang::{compile_with, Options};
use bpfree::sim::{EdgeProfiler, NullObserver, SimConfig, Simulator};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("compile") => cmd_compile(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("predict") => cmd_predict(&args[1..]),
        Some("cfg") => cmd_cfg(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("list") => cmd_list(),
        Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bpfree: {msg}");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!("usage:");
    eprintln!("  bpfree compile FILE [--o0]        print the compiled IR");
    eprintln!("  bpfree run FILE [--fuel N]        execute a Cmm program");
    eprintln!("  bpfree predict FILE               per-branch predictions + accuracy");
    eprintln!("  bpfree cfg FILE [--func NAME]     emit an annotated CFG as Graphviz dot");
    eprintln!("  bpfree bench NAME [--dataset N]   run a suite benchmark and report");
    eprintln!("  bpfree list                       list the benchmark suite");
}

fn load_program(path: &str, options: Options) -> Result<bpfree::ir::Program, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    compile_with(&source, options).map_err(|e| format!("{path}:{}", e.render(&source)))
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn value_of(args: &[String], name: &str) -> Result<Option<u64>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| format!("{name} needs a value"))?
            .parse()
            .map(Some)
            .map_err(|e| format!("bad value for {name}: {e}")),
    }
}

fn cmd_compile(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("compile needs a file")?;
    let options = if flag(args, "--o0") {
        Options::o0()
    } else {
        Options::default()
    };
    let program = load_program(path, options)?;
    print!("{program}");
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("run needs a file")?;
    let program = load_program(path, Options::default())?;
    let fuel = value_of(args, "--fuel")?.unwrap_or(SimConfig::default().fuel);
    let config = SimConfig {
        fuel,
        ..SimConfig::default()
    };
    let result = Simulator::with_config(&program, config)
        .run(&mut NullObserver)
        .map_err(|e| e.to_string())?;
    println!("exit: {}", result.exit);
    println!("instructions: {}", result.instructions);
    Ok(())
}

fn cmd_predict(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("predict needs a file")?;
    let program = load_program(path, Options::default())?;
    let classifier = BranchClassifier::analyze(&program);
    let predictor = CombinedPredictor::new(&program, &classifier, HeuristicKind::paper_order());
    let predictions = predictor.predictions();

    let mut profiler = EdgeProfiler::new();
    Simulator::new(&program)
        .run(&mut profiler)
        .map_err(|e| e.to_string())?;
    let profile = profiler.into_profile();

    println!(
        "{:<20} {:<8} {:<10} {:<9} {:>9} {:>9} {:>6}",
        "branch", "class", "rule", "predicts", "taken", "fallthru", "miss%"
    );
    let mut branches = program.branches();
    branches.sort();
    for b in branches {
        let c = profile.counts(b);
        let miss = match predictions.get(b) {
            Some(Direction::Taken) => c.fallthru,
            Some(Direction::FallThru) => c.taken,
            None => c.total(),
        };
        println!(
            "{:<20} {:<8} {:<10} {:<9} {:>9} {:>9} {:>6}",
            format!("{}:{}", program.func(b.func).name(), b.block),
            match classifier.class(b) {
                BranchClass::Loop => "loop",
                BranchClass::NonLoop => "nonloop",
            },
            match predictor.attribution(b) {
                Attribution::LoopBranch => "loop-pred".to_string(),
                Attribution::Heuristic(k) => k.label().to_lowercase(),
                Attribution::Default => "default".to_string(),
            },
            match predictions.get(b) {
                Some(Direction::Taken) => "taken",
                Some(Direction::FallThru) => "fall",
                None => "-",
            },
            c.taken,
            c.fallthru,
            if c.total() == 0 {
                "-".to_string()
            } else {
                format!("{:.0}", 100.0 * miss as f64 / c.total() as f64)
            }
        );
    }
    let report = evaluate(&predictions, &profile, &classifier);
    let perfect = evaluate(
        &perfect_predictions(&program, &profile),
        &profile,
        &classifier,
    );
    println!();
    println!(
        "overall: {:.1}% miss ({:.1}% perfect bound) over {} dynamic branches",
        100.0 * report.all.miss_rate(),
        100.0 * perfect.all.miss_rate(),
        report.all.dynamic
    );
    Ok(())
}

/// Emits each requested function's CFG as Graphviz dot, with loop heads
/// shaded, backedges dashed, and predicted edges bold.
fn cmd_cfg(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("cfg needs a file")?;
    let program = load_program(path, Options::default())?;
    let only = args
        .iter()
        .position(|a| a == "--func")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let classifier = BranchClassifier::analyze(&program);
    let predictor = CombinedPredictor::new(&program, &classifier, HeuristicKind::paper_order());
    let predictions = predictor.predictions();

    println!("digraph bpfree {{");
    println!("  node [shape=box, fontname=monospace];");
    for fid in program.func_ids() {
        let func = program.func(fid);
        if let Some(name) = &only {
            if func.name() != name {
                continue;
            }
        }
        let analysis = classifier.analysis(fid);
        println!("  subgraph cluster_{} {{", fid.index());
        println!("    label=\"{}\";", func.name());
        for bid in func.block_ids() {
            let style = if analysis.loops.is_head(bid) {
                ", style=filled, fillcolor=lightgrey"
            } else {
                ""
            };
            println!(
                "    n{}_{} [label=\"{} ({} instrs)\"{}];",
                fid.index(),
                bid.index(),
                bid,
                func.block(bid).instrs.len(),
                style
            );
        }
        for bid in func.block_ids() {
            use bpfree::ir::Terminator;
            let mk = |dst: bpfree::ir::BlockId, attrs: &str| {
                println!(
                    "    n{}_{} -> n{}_{} [{}];",
                    fid.index(),
                    bid.index(),
                    fid.index(),
                    dst.index(),
                    attrs
                );
            };
            match &func.block(bid).term {
                Terminator::Jump(t) => mk(*t, ""),
                Terminator::Branch {
                    taken, fallthru, ..
                } => {
                    let site = bpfree::ir::BranchRef {
                        func: fid,
                        block: bid,
                    };
                    let predicted = predictions.get(site);
                    let dash = |d| {
                        if analysis.loops.is_backedge(bid, d) {
                            "style=dashed, "
                        } else {
                            ""
                        }
                    };
                    let bold = |dir: Direction| {
                        if predicted == Some(dir) {
                            "penwidth=2.4, color=blue, "
                        } else {
                            ""
                        }
                    };
                    mk(
                        *taken,
                        &format!("{}{}label=T", dash(*taken), bold(Direction::Taken)),
                    );
                    mk(
                        *fallthru,
                        &format!("{}{}label=F", dash(*fallthru), bold(Direction::FallThru)),
                    );
                }
                Terminator::Ret { .. } => {}
            }
        }
        println!("  }}");
    }
    println!("}}");
    Ok(())
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("bench needs a benchmark name")?;
    let bench = bpfree::suite::by_name(name)
        .ok_or_else(|| format!("no benchmark `{name}` (try `bpfree list`)"))?;
    let dataset = value_of(args, "--dataset")?.unwrap_or(0) as usize;
    // The artifact engine memoizes and (subject to BPFREE_NO_CACHE /
    // BPFREE_CACHE_DIR) persists everything this command computes.
    let engine = bpfree::engine::global();
    let compiled = engine.compiled(&bench, Options::default());
    let bundle = engine
        .try_run(&bench, Options::default(), dataset)
        .map_err(|e| e.to_string())?;
    let (program, classifier) = (&compiled.program, &compiled.classifier);
    let (profile, result) = (&bundle.profile, bundle.result);

    let predictor = CombinedPredictor::new(program, classifier, HeuristicKind::paper_order());
    let report = evaluate(&predictor.predictions(), profile, classifier);
    let perfect = evaluate(&perfect_predictions(program, profile), profile, classifier);

    println!("benchmark: {} — {}", bench.name, bench.description);
    println!("dataset: {} of {}", dataset, engine.datasets(&bench).len());
    println!("instructions: {}", result.instructions);
    println!("dynamic branches: {}", profile.total_branches());
    println!("non-loop share: {:.0}%", 100.0 * report.nonloop_fraction());
    println!(
        "heuristic miss: loop {:.1}%, non-loop {:.1}%, all {:.1}%",
        100.0 * report.loop_branches.miss_rate(),
        100.0 * report.nonloop.miss_rate(),
        100.0 * report.all.miss_rate()
    );
    println!("perfect bound: all {:.1}%", 100.0 * perfect.all.miss_rate());
    Ok(())
}

fn cmd_list() -> Result<(), String> {
    println!("{:<11} {:<4} {:<5} description", "name", "lang", "spec");
    for b in bpfree::suite::all() {
        println!(
            "{:<11} {:<4} {:<5} {}",
            b.name,
            b.lang.to_string(),
            if b.spec { "*" } else { "" },
            b.description
        );
    }
    Ok(())
}
