//! Cross-crate integration: the full pipeline from Cmm source to
//! evaluated predictions.

use bpfree::core::{
    evaluate, perfect_predictions, random_predictions, taken_predictions, Attribution, BranchClass,
    BranchClassifier, CombinedPredictor, HeuristicKind, DEFAULT_SEED,
};
use bpfree::lang::compile;
use bpfree::sim::{EdgeProfiler, Simulator};

const PROGRAM: &str = r#"
global int table[128];
global int collisions;

fn insert(int key) -> int {
    int h;
    h = key * 31 % 128;
    if (h < 0) { h = h + 128; }
    while (table[h] != 0 && table[h] != key) {
        h = h + 1;
        if (h >= 128) { h = 0; }
        collisions = collisions + 1;
    }
    if (table[h] == 0) {
        table[h] = key;
        return 1;
    }
    return 0;
}

fn main() -> int {
    int i; int added;
    for (i = 1; i <= 300; i = i + 1) {
        added = added + insert(i * i % 251 + 1);
    }
    return added;
}
"#;

fn pipeline() -> (
    bpfree::ir::Program,
    bpfree::sim::EdgeProfile,
    BranchClassifier,
) {
    let program = compile(PROGRAM).unwrap_or_else(|e| panic!("{}", e.render(PROGRAM)));
    let mut profiler = EdgeProfiler::new();
    Simulator::new(&program).run(&mut profiler).unwrap();
    let classifier = BranchClassifier::analyze(&program);
    (program, profiler.into_profile(), classifier)
}

#[test]
fn combined_predictor_covers_every_branch_site() {
    let (program, _, classifier) = pipeline();
    let cp = CombinedPredictor::new(&program, &classifier, HeuristicKind::paper_order());
    let preds = cp.predictions();
    for b in program.branches() {
        assert!(preds.get(b).is_some(), "branch {b} unpredicted");
    }
}

#[test]
fn perfect_is_a_lower_bound_for_every_predictor() {
    let (program, profile, classifier) = pipeline();
    let perfect = evaluate(
        &perfect_predictions(&program, &profile),
        &profile,
        &classifier,
    );
    for preds in [
        CombinedPredictor::new(&program, &classifier, HeuristicKind::paper_order()).predictions(),
        taken_predictions(&program),
        random_predictions(&program, DEFAULT_SEED),
    ] {
        let r = evaluate(&preds, &profile, &classifier);
        assert!(r.all.misses >= perfect.all.misses);
        assert_eq!(r.all.perfect_misses, perfect.all.misses);
    }
}

#[test]
fn heuristics_beat_naive_baselines_here() {
    let (program, profile, classifier) = pipeline();
    let cp = CombinedPredictor::new(&program, &classifier, HeuristicKind::paper_order());
    let r_h = evaluate(&cp.predictions(), &profile, &classifier);
    let r_t = evaluate(&taken_predictions(&program), &profile, &classifier);
    let r_r = evaluate(
        &random_predictions(&program, DEFAULT_SEED),
        &profile,
        &classifier,
    );
    assert!(r_h.all.miss_rate() < r_t.all.miss_rate());
    assert!(r_h.all.miss_rate() < r_r.all.miss_rate());
}

#[test]
fn attribution_is_consistent_with_classification() {
    let (program, _, classifier) = pipeline();
    let cp = CombinedPredictor::new(&program, &classifier, HeuristicKind::paper_order());
    for b in program.branches() {
        match (classifier.class(b), cp.attribution(b)) {
            (BranchClass::Loop, Attribution::LoopBranch) => {}
            (BranchClass::NonLoop, Attribution::Heuristic(_) | Attribution::Default) => {}
            (class, attr) => panic!("{b}: class {class:?} but attribution {attr:?}"),
        }
    }
}

#[test]
fn different_orders_yield_complete_but_possibly_different_predictions() {
    let (program, _, classifier) = pipeline();
    let a =
        CombinedPredictor::new(&program, &classifier, HeuristicKind::paper_order()).predictions();
    let reversed: Vec<HeuristicKind> = HeuristicKind::paper_order().into_iter().rev().collect();
    let b = CombinedPredictor::new(&program, &classifier, reversed).predictions();
    assert_eq!(a.len(), b.len());
}

#[test]
fn facade_reexports_compose() {
    // Spot check: every facade module is usable together.
    let program = bpfree::lang::compile("fn main() -> int { return 3; }").unwrap();
    let analysis = bpfree::cfg::FunctionAnalysis::new(program.func(program.entry()));
    assert_eq!(analysis.cfg.n_blocks(), 1);
    let r = bpfree::sim::Simulator::new(&program)
        .run(&mut bpfree::sim::NullObserver)
        .unwrap();
    assert_eq!(r.exit, 3);
    assert_eq!(bpfree::suite::all().len(), 23);
    assert!(bpfree::core::model::cumulative_fraction(0.1, 5) > 0.0);
}
