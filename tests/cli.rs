//! End-to-end tests of the `bpfree` command-line driver.

use std::io::Write;
use std::process::Command;

fn bpfree() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bpfree"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("bpfree-cli-{name}-{}.cmm", std::process::id()));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

const PROGRAM: &str = "fn main() -> int {
    int i; int s;
    for (i = 0; i < 10; i = i + 1) { if (i % 2 == 0) { s = s + i; } }
    return s;
}";

#[test]
fn run_executes_and_reports_exit() {
    let path = write_temp("run", PROGRAM);
    let out = bpfree().arg("run").arg(&path).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("exit: 20"), "{stdout}");
    assert!(stdout.contains("instructions:"));
}

#[test]
fn compile_emits_ir() {
    let path = write_temp("compile", PROGRAM);
    let out = bpfree().arg("compile").arg(&path).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fn main"));
    assert!(stdout.contains("L0:"));
}

#[test]
fn compile_o0_differs_from_optimised() {
    let src = "fn sq(int x) -> int { return x * x; }
        fn main() -> int { return sq(4); }";
    let path = write_temp("o0", src);
    let opt = bpfree().arg("compile").arg(&path).output().unwrap();
    let raw = bpfree()
        .arg("compile")
        .arg(&path)
        .arg("--o0")
        .output()
        .unwrap();
    let opt_s = String::from_utf8_lossy(&opt.stdout).to_string();
    let raw_s = String::from_utf8_lossy(&raw.stdout).to_string();
    assert!(raw_s.contains("fn sq"), "-O0 keeps the helper");
    assert!(
        !opt_s.contains("fn sq"),
        "default pipeline inlines and drops it"
    );
}

#[test]
fn predict_prints_branch_table() {
    let path = write_temp("predict", PROGRAM);
    let out = bpfree().arg("predict").arg(&path).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("loop-pred"), "{stdout}");
    assert!(stdout.contains("overall:"));
}

#[test]
fn bench_runs_a_suite_program() {
    let out = bpfree().arg("bench").arg("grep").output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("benchmark: grep"));
    assert!(stdout.contains("heuristic miss:"));
}

#[test]
fn list_names_all_23() {
    let out = bpfree().arg("list").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["gcc", "xlisp", "tomcatv", "matrix300"] {
        assert!(stdout.contains(name));
    }
    assert_eq!(stdout.lines().count(), 24); // header + 23 rows
}

#[test]
fn compile_error_is_reported_with_location() {
    let path = write_temp("err", "fn main() -> int { return undefined_var; }");
    let out = bpfree().arg("compile").arg(&path).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown variable"), "{stderr}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = bpfree().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"));
}

#[test]
fn compile_error_is_runtime_not_usage() {
    let path = write_temp("exit1", "fn main() -> int { return undefined_var; }");
    let out = bpfree().arg("compile").arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "runtime failures exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !stderr.contains("usage:"),
        "runtime failures must not dump usage: {stderr}"
    );
}

#[test]
fn version_flag_prints_version() {
    let out = bpfree().arg("--version").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        stdout.trim(),
        format!("bpfree {}", env!("CARGO_PKG_VERSION"))
    );
}

#[test]
fn exp_list_names_every_experiment() {
    let out = bpfree().arg("exp").arg("list").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["table1", "table7", "graph1", "graphs4_11", "summary_json"] {
        assert!(stdout.contains(name), "{stdout}");
    }
    assert_eq!(stdout.lines().count(), 20); // header + 19 experiments
}

#[test]
fn exp_run_streams_to_stdout() {
    // graph12 is the pure-math experiment: instant, no suite work.
    let out = bpfree()
        .arg("exp")
        .arg("run")
        .arg("graph12")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("model dividing lengths"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("running graph12"), "{stderr}");
    assert!(stderr.contains("interpreter passes"), "{stderr}");
}

#[test]
fn unknown_experiment_exits_2_with_suggestion() {
    let out = bpfree()
        .arg("exp")
        .arg("run")
        .arg("tabel1")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("did you mean `table1`"), "{stderr}");
    assert!(stderr.contains("bpfree exp list"), "{stderr}");
}

#[test]
fn exp_all_captures_files_and_manifest() {
    let dir = std::env::temp_dir().join(format!("bpfree-expall-{}", std::process::id()));
    // Skip the expensive studies; the remaining 16 experiments still
    // exercise the whole suite through the shared engine.
    let out = bpfree()
        .args(["exp", "all", "--skip", "ordering_ablate"])
        .args(["--skip", "table4", "--skip", "graphs4_11"])
        .arg("--out-dir")
        .arg(&dir)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Captured experiments land as <name>.txt; skipped ones don't.
    assert!(dir.join("table6.txt").exists());
    assert!(dir.join("summary_json.txt").exists());
    assert!(!dir.join("ordering_ablate.txt").exists());
    let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
    assert!(manifest.contains("\"table6\""), "{manifest}");
    assert!(!manifest.contains("\"ordering_ablate\""), "{manifest}");
    // Nothing leaks onto stdout; the summary line goes to stderr.
    assert!(out.stdout.is_empty());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("16 experiments"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_benchmark_suggests_list() {
    let out = bpfree().arg("bench").arg("nonesuch").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bpfree list"));
}

#[test]
fn fuel_limit_is_honoured() {
    let path = write_temp(
        "fuel",
        "fn main() -> int { int i; do { i = i + 1; } while (i > 0); return i; }",
    );
    let out = bpfree()
        .arg("run")
        .arg(&path)
        .arg("--fuel")
        .arg("5000")
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("fuel"));
}

#[test]
fn cfg_emits_graphviz() {
    let path = write_temp("cfg", PROGRAM);
    let out = bpfree().arg("cfg").arg(&path).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("digraph bpfree {"));
    assert!(stdout.contains("cluster_0"));
    // The loop latch's backedge is dashed and some edge carries the
    // bold predicted style.
    assert!(stdout.contains("style=dashed"), "{stdout}");
    assert!(stdout.contains("penwidth=2.4"), "{stdout}");
    assert!(stdout.trim_end().ends_with('}'));
}

#[test]
fn cfg_func_filter_limits_output() {
    let src = "fn helper(int x) -> int {
        int i; int s;
        for (i = 0; i < x; i = i + 1) { s = s + i * (s >> 1); }
        while (s > 9) { s = s - 3; }
        return s;
    }
    fn main() -> int { return helper(5); }";
    let path = write_temp("cfgf", src);
    let out = bpfree()
        .arg("cfg")
        .arg(&path)
        .arg("--func")
        .arg("helper")
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("helper"));
    assert!(!stdout.contains("label=\"main\""));
}
