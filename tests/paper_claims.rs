//! Regression tests pinning the paper's qualitative claims on a fast
//! subset of the benchmark suite. Absolute numbers differ from the paper
//! (different programs, different compiler), but each *shape* asserted
//! here is one the paper reports, and EXPERIMENTS.md records the full
//! comparison.

use bpfree::core::ipbc::IpbcAnalyzer;
use bpfree::core::{
    evaluate, loop_rand_predictions, perfect_predictions, random_predictions, BranchClass,
    BranchClassifier, CombinedPredictor, HeuristicKind, HeuristicTable, DEFAULT_SEED,
};
use bpfree::sim::EdgeProfile;
use bpfree::suite::by_name;

struct Loaded {
    program: bpfree::ir::Program,
    classifier: BranchClassifier,
    profile: EdgeProfile,
    bench: bpfree::suite::Benchmark,
}

fn load(name: &str) -> Loaded {
    let bench = by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let program = bench.compile().expect("suite programs compile");
    let classifier = BranchClassifier::analyze(&program);
    let (profile, _) = bench.profile(&program, 0).expect("dataset 0 runs");
    Loaded {
        program,
        classifier,
        profile,
        bench,
    }
}

fn heuristic_report(l: &Loaded) -> bpfree::core::Report {
    let cp = CombinedPredictor::new(&l.program, &l.classifier, HeuristicKind::paper_order());
    evaluate(&cp.predictions(), &l.profile, &l.classifier)
}

/// Section 3: "for many programs, non-loop branches dominate the loop
/// branches" — true for the interpreter/compiler benchmarks.
#[test]
fn nonloop_branches_dominate_pointer_codes() {
    for name in ["gcc", "xlisp", "eqntott"] {
        let l = load(name);
        let r = heuristic_report(&l);
        assert!(
            r.nonloop_fraction() > 0.5,
            "{name}: non-loop fraction {:.2}",
            r.nonloop_fraction()
        );
    }
}

/// Section 3: matrix300 is the opposite extreme — almost all loop
/// branches (the paper measured 96% loop).
#[test]
fn matrix300_is_loop_dominated() {
    let l = load("matrix300");
    let r = heuristic_report(&l);
    assert!(
        r.nonloop_fraction() < 0.10,
        "matrix300 non-loop fraction {:.2}",
        r.nonloop_fraction()
    );
}

/// Section 3: the loop predictor's mean miss rate is low (paper: 12%).
#[test]
fn loop_predictor_is_accurate_on_loop_heavy_codes() {
    for name in ["matrix300", "tomcatv", "dcg", "sgefat"] {
        let l = load(name);
        let lr = loop_rand_predictions(&l.program, &l.classifier, DEFAULT_SEED);
        let r = evaluate(&lr, &l.profile, &l.classifier);
        assert!(
            r.loop_branches.miss_rate() < 0.15,
            "{name}: loop miss {:.2}",
            r.loop_branches.miss_rate()
        );
    }
}

/// Section 2: the perfect static predictor misses ~10%, i.e. most
/// branches strongly favour one direction.
#[test]
fn most_branches_are_strongly_biased() {
    for name in ["xlisp", "compress", "tomcatv", "grep"] {
        let l = load(name);
        let r = heuristic_report(&l);
        assert!(
            r.all.perfect_rate() < 0.35,
            "{name}: perfect miss {:.2}",
            r.all.perfect_rate()
        );
    }
}

/// The headline (Tables 6/7): the combined heuristic lands between the
/// perfect predictor and random prediction, and beats Loop+Rand on
/// average.
#[test]
fn combined_heuristic_sits_between_perfect_and_random() {
    let names = [
        "gcc", "xlisp", "compress", "espresso", "doduc", "tomcatv", "grep",
    ];
    let mut h_sum = 0.0;
    let mut p_sum = 0.0;
    let mut r_sum = 0.0;
    let mut lr_sum = 0.0;
    for name in names {
        let l = load(name);
        let r_h = heuristic_report(&l);
        let r_p = evaluate(
            &perfect_predictions(&l.program, &l.profile),
            &l.profile,
            &l.classifier,
        );
        let r_r = evaluate(
            &random_predictions(&l.program, DEFAULT_SEED),
            &l.profile,
            &l.classifier,
        );
        let r_lr = evaluate(
            &loop_rand_predictions(&l.program, &l.classifier, DEFAULT_SEED),
            &l.profile,
            &l.classifier,
        );
        h_sum += r_h.all.miss_rate();
        p_sum += r_p.all.miss_rate();
        r_sum += r_r.all.miss_rate();
        lr_sum += r_lr.all.miss_rate();
    }
    let n = names.len() as f64;
    let (h, p, r, lr) = (h_sum / n, p_sum / n, r_sum / n, lr_sum / n);
    assert!(p < h, "perfect {p:.3} must beat heuristic {h:.3}");
    assert!(h < r, "heuristic {h:.3} must beat random {r:.3}");
    assert!(h < lr, "heuristic {h:.3} must beat loop+rand {lr:.3}");
    // Rough factors: heuristic within ~3.5x of perfect, random ~2x
    // heuristic (the paper's factor-of-two framing).
    assert!(h < 3.5 * p, "heuristic {h:.3} vs perfect {p:.3}");
    assert!(r > 1.5 * h, "random {r:.3} vs heuristic {h:.3}");
}

/// Section 4 (tomcatv story): the guard heuristic mispredicts the
/// max-update branches; the store heuristic predicts them almost
/// perfectly.
#[test]
fn tomcatv_guard_fails_store_wins() {
    let l = load("tomcatv");
    let table = HeuristicTable::build(&l.program, &l.classifier);

    let guard_preds: bpfree::core::Predictions = table
        .branches()
        .filter_map(|b| table.prediction(b, HeuristicKind::Guard).map(|d| (b, d)))
        .collect();
    let store_preds: bpfree::core::Predictions = table
        .branches()
        .filter_map(|b| table.prediction(b, HeuristicKind::Store).map(|d| (b, d)))
        .collect();

    let guard = bpfree::core::evaluate_coverage(&guard_preds, &l.profile, &l.classifier);
    let store = bpfree::core::evaluate_coverage(&store_preds, &l.profile, &l.classifier);
    assert!(
        guard.coverage() > 0.5,
        "guard covers {:.2}",
        guard.coverage()
    );
    assert!(
        store.coverage() > 0.3,
        "store covers {:.2}",
        store.coverage()
    );
    assert!(
        guard.miss_rate() > 0.5,
        "guard should mispredict the max updates, got {:.2}",
        guard.miss_rate()
    );
    assert!(
        store.miss_rate() < 0.15,
        "store should nail the max updates, got {:.2}",
        store.miss_rate()
    );
}

/// Section 4: on a pointer-chasing benchmark, the pointer heuristic
/// applies and does not do worse than chance.
#[test]
fn pointer_heuristic_applies_to_pointer_codes() {
    let l = load("xlisp");
    let table = HeuristicTable::build(&l.program, &l.classifier);
    let preds: bpfree::core::Predictions = table
        .branches()
        .filter_map(|b| table.prediction(b, HeuristicKind::Pointer).map(|d| (b, d)))
        .collect();
    let cov = bpfree::core::evaluate_coverage(&preds, &l.profile, &l.classifier);
    assert!(
        cov.coverage() > 0.05,
        "pointer coverage {:.3}",
        cov.coverage()
    );
    assert!(cov.miss_rate() < 0.5, "pointer miss {:.3}", cov.miss_rate());
}

/// Section 6: the IPBC ordering Perfect <= Heuristic in breaks, and the
/// dividing length exceeds what the IPBC average suggests for skewed
/// distributions (spice2g6's Graph 4/5 point).
#[test]
fn ipbc_invariants_on_spice() {
    let l = load("spice2g6");
    let cp = CombinedPredictor::new(&l.program, &l.classifier, HeuristicKind::paper_order());
    let mut analyzer = IpbcAnalyzer::new(&l.program);
    analyzer.add_predictor("Heuristic", &cp.predictions());
    analyzer.add_predictor("Perfect", &perfect_predictions(&l.program, &l.profile));
    let datasets = l.bench.datasets();
    l.bench
        .run_with(&l.program, &datasets[0], &mut analyzer)
        .unwrap();
    let dists = analyzer.finish();
    let heuristic = &dists[0];
    let perfect = &dists[1];

    assert!(perfect.breaks <= heuristic.breaks);
    assert!(perfect.ipbc_average() >= heuristic.ipbc_average());
    assert_eq!(perfect.total_instructions, heuristic.total_instructions);
    // The skew: short sequences are a much larger share of breaks than of
    // instructions, so the dividing length exceeds the IPBC average.
    assert!(
        perfect.dividing_length() as f64 > perfect.ipbc_average(),
        "dividing {} vs ipbc {:.0}",
        perfect.dividing_length(),
        perfect.ipbc_average()
    );
}

/// Section 7: the heuristic predictor is stable across datasets (same
/// predictions; miss rates move together with the perfect predictor's).
#[test]
fn predictions_are_dataset_independent() {
    let l = load("compress");
    let cp = CombinedPredictor::new(&l.program, &l.classifier, HeuristicKind::paper_order());
    let preds = cp.predictions();
    for (i, _) in l.bench.datasets().iter().enumerate() {
        let (profile, _) = l.bench.profile(&l.program, i).unwrap();
        let r = evaluate(&preds, &profile, &l.classifier);
        assert!(
            r.all.miss_rate() < 0.6,
            "dataset {i}: miss {:.2}",
            r.all.miss_rate()
        );
    }
}

/// Section 5: the paper's published order is competitive — within a few
/// points of the best of all 5040 orders on a subset of benchmarks.
#[test]
fn paper_order_is_competitive() {
    use bpfree::core::ordering::{BenchOrderData, OrderingStudy};
    let benches: Vec<BenchOrderData> = ["xlisp", "compress", "espresso"]
        .iter()
        .map(|name| {
            let l = load(name);
            let table = HeuristicTable::build(&l.program, &l.classifier);
            BenchOrderData::build(*name, &table, &l.profile, &l.classifier, DEFAULT_SEED)
        })
        .collect();
    let paper: Vec<f64> = benches
        .iter()
        .map(|b| b.miss_rate(&HeuristicKind::paper_order()))
        .collect();
    let paper_avg = paper.iter().sum::<f64>() / paper.len() as f64;
    let study = OrderingStudy::new(benches);
    let (_, best) = study.best_order();
    assert!(
        paper_avg <= best + 0.12,
        "paper order {paper_avg:.3} vs best {best:.3}"
    );
}

/// All branches of every classified program are scored: evaluate() sees
/// no branch it cannot classify.
#[test]
fn classification_is_total_on_executed_branches() {
    for name in ["rn", "poly", "costScale"] {
        let l = load(name);
        for (branch, _) in l.profile.iter() {
            // class() panics on unknown branches; reaching here means OK.
            let _ = l.classifier.class(branch);
        }
        let loops = l
            .profile
            .iter()
            .filter(|(b, _)| l.classifier.class(*b) == BranchClass::Loop)
            .count();
        assert!(loops > 0, "{name} has no executed loop branches");
    }
}

/// Section 6 (Graph 11): fpppp's huge straight-line FP blocks give it by
/// far the longest instructions-per-branch of the traced benchmarks —
/// the reason its IPBC distribution stretches into the hundreds.
#[test]
fn fpppp_has_the_largest_basic_blocks() {
    let mut per_branch: Vec<(String, f64)> = Vec::new();
    for name in ["fpppp", "gcc", "xlisp", "qpt"] {
        let bench = by_name(name).unwrap();
        let program = bench.compile().unwrap();
        let (profile, run) = bench.profile(&program, 0).unwrap();
        per_branch.push((
            name.to_string(),
            run.instructions as f64 / profile.total_branches().max(1) as f64,
        ));
    }
    let fpppp = per_branch[0].1;
    for (name, v) in &per_branch[1..] {
        assert!(
            fpppp > 2.0 * v,
            "fpppp {fpppp:.1} instrs/branch vs {name} {v:.1}"
        );
    }
}

/// eqntott's non-loop branches concentrate in a handful of "big" sites
/// (each >5% of the dynamic non-loop count — the paper's Table 2 "Big"
/// column reported 2 sites covering 92% for eqntott).
#[test]
fn eqntott_concentrates_in_big_branches() {
    let l = load("eqntott");
    let nl: Vec<u64> = l
        .profile
        .iter()
        .filter(|(b, _)| l.classifier.class(*b) == BranchClass::NonLoop)
        .map(|(_, c)| c.total())
        .collect();
    let total: u64 = nl.iter().sum();
    let big: Vec<u64> = nl.iter().copied().filter(|&c| c * 20 > total).collect();
    let big_sum: u64 = big.iter().sum();
    assert!(big.len() <= 8, "{} big sites", big.len());
    assert!(
        big_sum * 10 >= total * 8,
        "big sites cover {big_sum}/{total}"
    );
}
