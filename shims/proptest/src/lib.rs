//! A minimal, self-contained stand-in for the subset of `proptest` this
//! workspace uses. The build environment cannot reach crates.io, so the
//! workspace vendors this shim instead of the real crate.
//!
//! Semantics: each `proptest!` test runs its body against
//! `ProptestConfig::cases` pseudo-random inputs drawn from the given
//! strategies. Generation is seeded from the test's module path + name,
//! so failures are reproducible run-to-run and machine-to-machine.
//! There is **no shrinking**: a failing case panics with the generated
//! values left in the assertion message (strategies here are cheap to
//! re-run by hand). Supported surface: range/tuple/array/`&str`
//! (character-class regex) strategies, `Just`, `any::<T>()`,
//! `collection::vec`, `prop_map`, `prop_recursive`, `prop_oneof!`,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, and
//! `#![proptest_config(...)]`.

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// Run-count configuration (subset of `proptest`'s).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// The deterministic generator handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(SmallRng);

    impl TestRng {
        /// Seeds from a stable string (the test's full path), so every
        /// test gets its own reproducible stream.
        pub fn for_test(name: &str) -> TestRng {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(SmallRng::seed_from_u64(seed))
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform draw from `[0, n)`.
        pub fn below(&mut self, n: usize) -> usize {
            use rand::Rng;
            assert!(n > 0);
            self.0.gen_range(0..n)
        }

        pub(crate) fn small(&mut self) -> &mut SmallRng {
            &mut self.0
        }
    }
}

pub mod strategy {
    use std::sync::Arc;

    use crate::test_runner::TestRng;

    /// A generator of values (subset of `proptest::strategy::Strategy`;
    /// no shrinking, so `Clone` stands in for strategy trees).
    pub trait Strategy: Clone {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            F: Fn(Self::Value) -> U + Clone,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            S2: Strategy,
            F: Fn(Self::Value) -> S2 + Clone,
        {
            FlatMap { inner: self, f }
        }

        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            F: Fn(&Self::Value) -> bool + Clone,
        {
            Filter {
                inner: self,
                f,
                whence,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: 'static,
        {
            let inner = self;
            BoxedStrategy(Arc::new(move |rng| inner.generate(rng)))
        }

        /// Recursive strategies: `depth` levels of `recurse` applied on
        /// top of `self` as the leaf; each inner reference flips between
        /// recursing further and bottoming out at a leaf.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut cur = self.clone().boxed();
            for _ in 0..depth {
                let mixed = Union::new(vec![self.clone().boxed(), cur]).boxed();
                cur = recurse(mixed).boxed();
            }
            // Let the top level be a bare leaf sometimes too.
            Union::new(vec![self.boxed(), cur]).boxed()
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U + Clone,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2 + Clone,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        f: F,
        whence: &'static str,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool + Clone,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter `{}` rejected 1000 candidates in a row",
                self.whence
            )
        }
    }

    /// Uniform (or weighted) choice among boxed strategies.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u32,
    }

    // Manual impl: `BoxedStrategy` clones via `Arc` regardless of `T`,
    // so `T: Clone` must not be required (derive would add it).
    impl<T> Clone for Union<T> {
        fn clone(&self) -> Union<T> {
            Union {
                arms: self.arms.clone(),
                total: self.total,
            }
        }
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            Union::new_weighted(arms.into_iter().map(|a| (1, a)).collect())
        }

        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! weights sum to zero");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total as usize) as u32;
            for (w, arm) in &self.arms {
                if pick < *w {
                    return arm.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weight bookkeeping")
        }
    }

    // --- primitive strategies -------------------------------------------

    impl<T> Strategy for std::ops::Range<T>
    where
        T: rand::SampleUniform + Clone,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            use rand::Rng;
            rng.small().gen_range(self.clone())
        }
    }

    impl<T> Strategy for std::ops::RangeInclusive<T>
    where
        T: rand::SampleUniform + Clone,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            use rand::Rng;
            rng.small().gen_range(self.clone())
        }
    }

    /// `&str` strategies are single-character-class regexes like
    /// `"[a-z0-9*,-]{0,200}"` — the only regex shape the workspace uses.
    /// Anything else is rejected loudly rather than silently mis-sampled.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (chars, lo, hi) = parse_char_class_regex(self)
                .unwrap_or_else(|| panic!("proptest shim: unsupported regex strategy {self:?}"));
            let len = lo + rng.below(hi - lo + 1);
            (0..len).map(|_| chars[rng.below(chars.len())]).collect()
        }
    }

    /// Parses `[class]{m,n}` into (members, m, n). Supports `a-z` ranges,
    /// literal `-` at the ends, and backslash escapes.
    fn parse_char_class_regex(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = counts.split_once(',')?;
        let (lo, hi) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
        if lo > hi {
            return None;
        }
        let mut members = Vec::new();
        let mut i = 0;
        while i < class.len() {
            let c = class[i];
            if c == '\\' && i + 1 < class.len() {
                members.push(match class[i + 1] {
                    'n' => '\n',
                    't' => '\t',
                    other => other,
                });
                i += 2;
            } else if i + 2 < class.len() && class[i + 1] == '-' {
                let (a, b) = (c, class[i + 2]);
                if a > b {
                    return None;
                }
                members.extend(a..=b);
                i += 3;
            } else {
                members.push(c);
                i += 1;
            }
        }
        if members.is_empty() {
            return None;
        }
        Some((members, lo, hi))
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(S1 / v1);
    impl_tuple_strategy!(S1 / v1, S2 / v2);
    impl_tuple_strategy!(S1 / v1, S2 / v2, S3 / v3);
    impl_tuple_strategy!(S1 / v1, S2 / v2, S3 / v3, S4 / v4);
    impl_tuple_strategy!(S1 / v1, S2 / v2, S3 / v3, S4 / v4, S5 / v5);
    impl_tuple_strategy!(S1 / v1, S2 / v2, S3 / v3, S4 / v4, S5 / v5, S6 / v6);

    impl<S: Strategy, const N: usize> Strategy for [S; N] {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|i| self[i].generate(rng))
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            use rand::Rng;
            // Finite, sign-symmetric, wide dynamic range.
            let mag: f64 = rng.small().gen();
            let scale = 10f64.powi(rng.small().gen_range(-3i32..6));
            if rng.next_u64() & 1 == 1 {
                mag * scale
            } else {
                -mag * scale
            }
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Lengths accepted by [`vec`]: an exact `usize` or a range.
    pub trait IntoSizeRange {
        /// Inclusive (lo, hi).
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.lo + rng.below(self.hi - self.lo + 1);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: a vector whose length is drawn from
    /// `size` and whose elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { elem, lo, hi }
    }
}

/// Defines `#[test]` functions that run their body against many
/// generated inputs. Mirrors `proptest::proptest!` (without shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __strategies = ($($strat,)+);
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                $body
            }
        }
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform (or `weight => strategy` weighted) choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_vecs_generate_in_bounds() {
        let mut rng = TestRng::for_test("shim::basic");
        let s = (
            1usize..10,
            (-5i32..5, crate::collection::vec(any::<u8>(), 3..6)),
        );
        for _ in 0..200 {
            let (a, (b, v)) = s.generate(&mut rng);
            assert!((1..10).contains(&a));
            assert!((-5..5).contains(&b));
            assert!((3..6).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_and_map_cover_all_arms() {
        let mut rng = TestRng::for_test("shim::oneof");
        let s = prop_oneof![(0i32..1).prop_map(|_| "lo"), (0i32..1).prop_map(|_| "hi"),];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum T {
            #[allow(dead_code)] // payload exercises prop_map, never read back
            Leaf(i32),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(_) => 1,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0i32..10).prop_map(T::Leaf);
        let s = leaf.prop_recursive(4, 32, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::for_test("shim::recursive");
        let mut max_depth = 0;
        for _ in 0..300 {
            max_depth = max_depth.max(depth(&s.generate(&mut rng)));
        }
        assert!(max_depth > 1, "recursion never fired");
        assert!(max_depth <= 9, "depth bound exceeded: {max_depth}");
    }

    #[test]
    fn char_class_regex_strings() {
        let mut rng = TestRng::for_test("shim::regex");
        let s = "[a-c0-1 \\n-]{2,5}";
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((2..=5).contains(&v.chars().count()), "{v:?}");
            assert!(
                v.chars().all(|c| "abc01 \n-".contains(c)),
                "unexpected char in {v:?}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 0u64..100, (a, b) in (0i32..10, 0i32..10)) {
            prop_assert!(x < 100);
            prop_assert_eq!(a + b, b + a, "commutativity {} {}", a, b);
        }
    }
}
