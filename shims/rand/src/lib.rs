//! A minimal, self-contained stand-in for the parts of `rand` 0.8 the
//! workspace uses: `rngs::SmallRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}`, and `seq::SliceRandom::shuffle`.
//!
//! The build environment cannot reach crates.io, and every consumer in
//! this repository only needs a *seeded, deterministic* generator — the
//! exact bit stream of upstream `rand` is irrelevant (all tests derive
//! their expectations from the generated data itself). The generator is
//! xoshiro256++ seeded via SplitMix64, which is the same construction
//! upstream `SmallRng` uses on 64-bit targets.

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed via SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling support for a primitive type (subset of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[low, high)`; `high` is exclusive.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`; `high` is inclusive.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// A range usable with [`Rng::gen_range`] (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(
            self.start < self.end,
            "gen_range called with an empty range"
        );
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range called with an empty range");
        T::sample_closed(rng, lo, hi)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128).wrapping_sub(low as i128) as u128;
                (low as i128).wrapping_add(uniform_u128(rng, span) as i128) as $t
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128).wrapping_sub(low as i128) as u128 + 1;
                (low as i128).wrapping_add(uniform_u128(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + (high - low) * unit_f64(rng)
    }
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        // The closed/half-open distinction is immaterial for floats.
        Self::sample_half_open(rng, low, high)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + (high - low) * unit_f64(rng) as f32
    }
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        Self::sample_half_open(rng, low, high)
    }
}

/// Unbiased draw from `[0, span)` (`span == 0` means the full 2^128 wrap,
/// which only arises for the widest integer ranges).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    if span == 0 {
        return wide;
    }
    if span <= u64::MAX as u128 {
        // Rejection sampling on 64 bits keeps the draw unbiased.
        let span = span as u64;
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        let mut x = wide as u64;
        loop {
            if x <= zone {
                return (x % span) as u128;
            }
            x = rng.next_u64();
        }
    }
    wide % span
}

/// A uniform draw from `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The raw generator interface (subset of `rand::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Sampling conveniences (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform value of `T` over its full natural span (`[0, 1)` for
    /// floats, all values for integers, fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniform value in `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0,1]"
        );
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types `Rng::gen` can produce (subset of the `Standard` distribution).
pub trait Standard {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        unit_f64(rng) as f32
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic small fast generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> SmallRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if s == [0; 4] {
                return SmallRng::seed_from_u64(0);
            }
            SmallRng { s }
        }

        fn seed_from_u64(state: u64) -> SmallRng {
            let mut sm = state;
            let s = [
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly chosen element (`None` on an empty slice).
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(-5i64..17);
            assert!((-5..17).contains(&x));
            let y = r.gen_range(3usize..=9);
            assert!((3..=9).contains(&y));
            let f = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(1);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
