//! A minimal, self-contained stand-in for the parts of Criterion the
//! workspace's benches use: `Criterion`, `benchmark_group`,
//! `bench_function`, `Bencher::{iter, iter_batched}`, `BatchSize`,
//! `Throughput`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! The build environment cannot reach crates.io, so the workspace
//! vendors this shim. It measures wall-clock time with adaptive
//! iteration counts and prints a one-line median/mean report per bench —
//! no HTML, no statistical machinery. Benchmark names can be filtered by
//! passing a substring on the command line (as with real Criterion).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup; the shim times each routine call
/// individually, so the variants behave identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Units-per-iteration annotation; printed as derived throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

/// Top-level driver handed to `criterion_group!` target functions.
pub struct Criterion {
    filter: Option<String>,
    /// Target measurement time per benchmark.
    measure: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Ignore harness flags Cargo forwards (e.g. `--bench`); treat the
        // first bare argument as a name filter, as real Criterion does.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            measure: Duration::from_millis(300),
            sample_size: 20,
        }
    }
}

impl Criterion {
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measure = d;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id.as_ref(), None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
            throughput: None,
            sample_size: None,
        }
    }

    fn run_one<F>(&mut self, id: &str, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            samples: Vec::new(),
            budget: self.measure,
            min_samples: self.sample_size,
        };
        f(&mut b);
        b.report(id, throughput);
    }
}

/// A named group of benches sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = t.into();
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.c.measure = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        if let Some(n) = self.sample_size {
            self.c.sample_size = n;
        }
        let throughput = self.throughput;
        self.c.run_one(&full, throughput, f);
        self
    }

    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    min_samples: usize,
}

impl Bencher {
    /// Times `routine` in batches, recording per-iteration durations
    /// until the measurement budget is spent.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm up and size the batch so each sample is >= ~100us.
        let mut batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let el = t.elapsed();
            if el >= Duration::from_micros(100) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let start = Instant::now();
        while self.samples.len() < self.min_samples || start.elapsed() < self.budget {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / batch as u32);
            if self.samples.len() >= 10_000 {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let start = Instant::now();
        while self.samples.len() < self.min_samples || start.elapsed() < self.budget {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
            if self.samples.len() >= 10_000 {
                break;
            }
        }
    }

    /// `iter_batched` with a by-reference routine.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(
            setup,
            |mut i| {
                routine(&mut i);
            },
            size,
        )
    }

    fn report(&mut self, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{id:<50} (no samples)");
            return;
        }
        self.samples.sort_unstable();
        let median = self.samples[self.samples.len() / 2];
        let mean: Duration = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        let rate = |units: u64, suffix: &str| {
            let per_sec = units as f64 / median.as_secs_f64();
            format!("  {} {suffix}/s", human_count(per_sec))
        };
        let extra = match throughput {
            Some(Throughput::Bytes(n) | Throughput::BytesDecimal(n)) => rate(n, "B"),
            Some(Throughput::Elements(n)) => rate(n, "elem"),
            None => String::new(),
        };
        println!(
            "{id:<50} median {:>12}  mean {:>12}  ({} samples){extra}",
            human_time(median),
            human_time(mean),
            self.samples.len(),
        );
    }
}

fn human_time(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn human_count(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2}G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2}K", x / 1e3)
    } else {
        format!("{x:.1}")
    }
}

/// Declares a benchmark group function, as in real Criterion.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point, as in real Criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_samples_and_reports() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        c.bench_function("shim_smoke", |b| b.iter(|| black_box(2u64 + 2)));
    }

    #[test]
    fn groups_and_batched_iteration() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(4));
        g.sample_size(3);
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1, 2, 3, 4],
                |v| v.iter().sum::<i32>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }
}
