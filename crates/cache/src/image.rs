//! The suite image: a single packed binary file holding every artifact
//! the engine can memoize, laid out for zero-copy warm starts.
//!
//! The per-entry cache (`lib.rs`) pays one `open` + `read` + parse per
//! artifact — hundreds of system calls and a fresh decode allocation
//! per trace on every warm run. The image collapses all of that into
//! **one** buffered read: the whole file lands in a single
//! `Arc<Vec<u8>>`, and typed accessors hand out views *borrowed from
//! that buffer*. In particular a trace's index sequence is served as a
//! [`ByteView`] window straight into the image bytes
//! ([`BranchTrace::from_borrowed_parts`]), so a mounted warm start
//! performs zero per-trace sequence decode allocations — the property
//! `BENCH_warmstart.json` asserts via
//! [`bpfree_sim::trace_seq_allocs`].
//!
//! # File layout (cache format v6)
//!
//! All multi-byte fields are little-endian. The file is:
//!
//! ```text
//! [ 64-byte header | section payloads… | string table | directory ]
//! ```
//!
//! **Header** (64 bytes):
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 8    | magic `b"BPFIMG06"` |
//! | 8      | 4    | endian marker `0x0A0B0C0D` (reads scrambled on a big-endian writer) |
//! | 12     | 4    | format version (= [`FORMAT_VERSION`]) |
//! | 16     | 8    | entry count |
//! | 24     | 8    | directory offset (absolute, 8-aligned, dir is last) |
//! | 32     | 8    | string-table offset (absolute) |
//! | 40     | 8    | total file length |
//! | 48     | 8    | FNV-1a 64 checksum of header bytes 0..48 |
//! | 56     | 8    | FNV-1a 64 checksum of the string table + directory (bytes `strings_off..EOF`) |
//!
//! **Section payloads** each start 8-aligned (zero padding between
//! them). **Directory entries** are fixed 64-byte records:
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 4    | kind tag ([`SectionKind`]) |
//! | 4      | 4+4  | benchmark name: offset + length into the string table |
//! | 12     | 4+4  | options fingerprint: offset + length into the string table |
//! | 20     | 4    | dataset index (`u32::MAX` = not dataset-scoped) |
//! | 24     | 8    | content key (the raw 64-bit hash behind the per-entry cache key) |
//! | 32     | 8    | payload offset (absolute) |
//! | 40     | 8    | payload length |
//! | 48     | 8    | FNV-1a 64 checksum of the payload bytes |
//! | 56     | 8    | reserved, zero |
//!
//! # Determinism
//!
//! [`ImageBuilder::finish`] sorts entries by (kind, name, fingerprint,
//! dataset, key) and dedups strings in first-use order over the sorted
//! entries, so two builds from the same artifacts are **byte-identical**
//! regardless of insertion order — CI diffs double builds to prove it.
//!
//! # Integrity
//!
//! [`SuiteImage::open`] validates the magic, endian marker, version,
//! header checksum, total length, every directory field's bounds, the
//! string table slices' UTF-8, and **every section checksum** before
//! returning. Any failure — truncation, bit flip, wrong version —
//! yields `Err`, the engine declines to mount, and everything recomputes
//! (or falls back to the per-entry cache): a corrupt image can cost
//! time, never correctness. Payload *content* is additionally validated
//! structurally by each typed accessor, which returns `None` (not a
//! panic) on any malformed payload that happens to checksum correctly.
//!
//! [`BranchTrace::from_borrowed_parts`]: bpfree_sim::BranchTrace::from_borrowed_parts

use std::path::Path;
use std::sync::Arc;

use bpfree_core::ordering::{BenchOrderData, Group, GroupKey};
use bpfree_ir::{BlockId, BranchRef, FuncId};
use bpfree_sim::{BranchTrace, ByteView, EdgeCounts, RunResult, TraceEvent};

use crate::{
    CompileArtifacts, Fnv, OrderingArtifacts, PredictionArtifacts, PredictionRow, RunArtifacts,
    TraceArtifacts, FORMAT_VERSION,
};
use bpfree_core::{BranchClass, Direction};

/// The image magic: format family + the two-digit format version.
pub const MAGIC: [u8; 8] = *b"BPFIMG06";

/// Little-endian byte-order marker; reads scrambled if the file was
/// written with the opposite endianness.
const ENDIAN_MARK: u32 = 0x0A0B_0C0D;

const HEADER_LEN: usize = 64;
const DIR_ENTRY_LEN: usize = 64;

/// What a directory entry stores — one tag per artifact kind the
/// engine memoizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SectionKind {
    /// A compiled [`bpfree_ir::Program`], stored as IR text.
    Compile,
    /// The pre-decoded flat bytecode of that program
    /// (`BytecodeProgram::to_bytes`).
    Decoded,
    /// Per-branch prediction rows ([`PredictionArtifacts`]).
    Prediction,
    /// One dataset's edge profile + run result ([`RunArtifacts`]).
    Run,
    /// One dataset's replayable trace ([`TraceArtifacts`]), sequence
    /// served zero-copy.
    Trace,
    /// A roster-level ordering study ([`OrderingArtifacts`]).
    Ordering,
}

impl SectionKind {
    /// All kinds, in tag order.
    pub const ALL: [SectionKind; 6] = [
        SectionKind::Compile,
        SectionKind::Decoded,
        SectionKind::Prediction,
        SectionKind::Run,
        SectionKind::Trace,
        SectionKind::Ordering,
    ];

    fn tag(self) -> u32 {
        match self {
            SectionKind::Compile => 0,
            SectionKind::Decoded => 1,
            SectionKind::Prediction => 2,
            SectionKind::Run => 3,
            SectionKind::Trace => 4,
            SectionKind::Ordering => 5,
        }
    }

    fn from_tag(tag: u32) -> Option<SectionKind> {
        SectionKind::ALL.get(tag as usize).copied()
    }

    /// The lowercase kind name, as printed by `bpfree image ls`.
    pub fn name(self) -> &'static str {
        match self {
            SectionKind::Compile => "compile",
            SectionKind::Decoded => "decoded",
            SectionKind::Prediction => "prediction",
            SectionKind::Run => "run",
            SectionKind::Trace => "trace",
            SectionKind::Ordering => "ordering",
        }
    }
}

/// One decoded directory entry of an open image.
#[derive(Debug, Clone)]
pub struct ImageEntry {
    /// The artifact kind.
    pub kind: SectionKind,
    /// The benchmark name (empty for roster-level ordering entries).
    pub name: String,
    /// The compile-options fingerprint the artifact was built under.
    pub opt: String,
    /// The dataset index within the benchmark's dataset list, for
    /// dataset-scoped kinds (run, trace).
    pub dataset: Option<u32>,
    /// The raw 64-bit content hash (`*_key_hash`) the artifact was
    /// keyed by at build time. Mount revalidates this against a hash
    /// recomputed from *live* inputs before trusting the payload.
    pub key: u64,
    payload_off: usize,
    payload_len: usize,
}

impl ImageEntry {
    /// Payload size in bytes (excluding the 64-byte directory record).
    pub fn payload_bytes(&self) -> usize {
        self.payload_len
    }
}

// ---- little-endian cursor over a payload slice ----

struct Cur<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(b: &'a [u8]) -> Cur<'a> {
        Cur { b, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.b.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn i64(&mut self) -> Option<i64> {
        Some(i64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn done(&self) -> bool {
        self.pos == self.b.len()
    }

    fn remaining(&self) -> usize {
        self.b.len() - self.pos
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.write(bytes);
    h.0
}

fn align8(n: usize) -> usize {
    n.div_ceil(8) * 8
}

// ---- payload codecs ----

fn direction_byte(d: Option<Direction>) -> u8 {
    match d {
        None => 0,
        Some(Direction::Taken) => 1,
        Some(Direction::FallThru) => 2,
    }
}

fn direction_from(b: u8) -> Option<Option<Direction>> {
    match b {
        0 => Some(None),
        1 => Some(Some(Direction::Taken)),
        2 => Some(Some(Direction::FallThru)),
        _ => None,
    }
}

fn encode_prediction_payload(a: &PredictionArtifacts) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + a.rows.len() * 17);
    put_u32(&mut out, a.rows.len() as u32);
    for r in &a.rows {
        put_u32(&mut out, r.branch.func.0);
        put_u32(&mut out, r.branch.block.0);
        out.push(match r.class {
            BranchClass::NonLoop => 0,
            BranchClass::Loop => 1,
        });
        out.push(direction_byte(r.loop_pred));
        for &h in &r.heuristics {
            out.push(direction_byte(h));
        }
    }
    out
}

fn decode_prediction_payload(bytes: &[u8]) -> Option<PredictionArtifacts> {
    let mut c = Cur::new(bytes);
    let n = c.u32()? as usize;
    if n > c.remaining() / 17 {
        return None;
    }
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let func = c.u32()?;
        let block = c.u32()?;
        let class = match c.u8()? {
            0 => BranchClass::NonLoop,
            1 => BranchClass::Loop,
            _ => return None,
        };
        let loop_pred = direction_from(c.u8()?)?;
        // Same structural invariants as the per-entry text decoder.
        if (class == BranchClass::Loop) != loop_pred.is_some() {
            return None;
        }
        let mut heuristics = [None; 7];
        for h in &mut heuristics {
            *h = direction_from(c.u8()?)?;
        }
        if class == BranchClass::Loop && heuristics.iter().any(Option::is_some) {
            return None;
        }
        rows.push(PredictionRow {
            branch: BranchRef {
                func: FuncId(func),
                block: BlockId(block),
            },
            class,
            loop_pred,
            heuristics,
        });
    }
    if !c.done() {
        return None;
    }
    Some(PredictionArtifacts { rows })
}

fn encode_run_payload(a: &RunArtifacts) -> Vec<u8> {
    let mut counts: Vec<(BranchRef, EdgeCounts)> = a.profile.iter().collect();
    counts.sort_by_key(|(b, _)| *b);
    let mut out = Vec::with_capacity(20 + counts.len() * 24);
    put_i64(&mut out, a.run.exit);
    put_u64(&mut out, a.run.instructions);
    put_u32(&mut out, counts.len() as u32);
    for (b, c) in counts {
        put_u32(&mut out, b.func.0);
        put_u32(&mut out, b.block.0);
        put_u64(&mut out, c.taken);
        put_u64(&mut out, c.fallthru);
    }
    out
}

fn decode_run_payload(bytes: &[u8]) -> Option<RunArtifacts> {
    let mut c = Cur::new(bytes);
    let exit = c.i64()?;
    let instructions = c.u64()?;
    let n = c.u32()? as usize;
    if n > c.remaining() / 24 {
        return None;
    }
    let mut counts = Vec::with_capacity(n);
    for _ in 0..n {
        let func = c.u32()?;
        let block = c.u32()?;
        let taken = c.u64()?;
        let fallthru = c.u64()?;
        counts.push((
            BranchRef {
                func: FuncId(func),
                block: BlockId(block),
            },
            EdgeCounts { taken, fallthru },
        ));
    }
    if !c.done() {
        return None;
    }
    Some(RunArtifacts {
        profile: counts.into_iter().collect(),
        run: RunResult { exit, instructions },
    })
}

/// Trace payload: 40-byte fixed header, then `n_dict` 24-byte
/// dictionary records, then the raw index sequence — one byte per event
/// when the dictionary fits in 256 entries (the borrowed zero-copy
/// representation), else four. With an 8-aligned payload the sequence
/// itself starts 8-aligned too (40 + 24·k ≡ 0 mod 8).
fn encode_trace_payload(a: &TraceArtifacts) -> Vec<u8> {
    let dict = a.trace.dict();
    let narrow = dict.len() <= 256;
    let width = if narrow { 1 } else { 4 };
    let mut out = Vec::with_capacity(40 + dict.len() * 24 + a.trace.len() * width);
    put_i64(&mut out, a.run.exit);
    put_u64(&mut out, a.run.instructions);
    put_u64(&mut out, a.trace.trailing_instrs());
    put_u32(&mut out, dict.len() as u32);
    out.push(width as u8);
    out.extend_from_slice(&[0; 3]);
    put_u64(&mut out, a.trace.len() as u64);
    for e in dict {
        put_u64(&mut out, e.instrs);
        put_u32(&mut out, e.branch.func.0);
        put_u32(&mut out, e.branch.block.0);
        out.push(u8::from(e.taken));
        out.extend_from_slice(&[0; 7]);
    }
    if narrow {
        out.extend(a.trace.indices().map(|i| i as u8));
    } else {
        for i in a.trace.indices() {
            put_u32(&mut out, i);
        }
    }
    out
}

/// Decodes a trace payload at `[off, off + len)` inside `buf`. Narrow
/// sequences are *not copied*: the returned trace borrows its index
/// sequence from `buf` via [`ByteView`], validated (bounds + tally) in
/// one pass by [`BranchTrace::from_borrowed_parts`].
fn decode_trace_payload(buf: &Arc<Vec<u8>>, off: usize, len: usize) -> Option<TraceArtifacts> {
    let bytes = buf.get(off..off.checked_add(len)?)?;
    let mut c = Cur::new(bytes);
    let exit = c.i64()?;
    let instructions = c.u64()?;
    let tail = c.u64()?;
    let n_dict = c.u32()? as usize;
    let width = c.u8()? as usize;
    if c.take(3)? != [0; 3] {
        return None;
    }
    let n_events = usize::try_from(c.u64()?).ok()?;
    if !matches!(width, 1 | 4) || (width == 1) != (n_dict <= 256) {
        return None;
    }
    if n_dict > c.remaining() / 24 {
        return None;
    }
    let mut dict = Vec::with_capacity(n_dict);
    for _ in 0..n_dict {
        let instrs = c.u64()?;
        let func = c.u32()?;
        let block = c.u32()?;
        let taken = match c.u8()? {
            0 => false,
            1 => true,
            _ => return None,
        };
        if c.take(7)? != [0; 7] {
            return None;
        }
        dict.push(TraceEvent {
            instrs,
            branch: BranchRef {
                func: FuncId(func),
                block: BlockId(block),
            },
            taken,
        });
    }
    if c.remaining() != n_events.checked_mul(width)? {
        return None;
    }
    let trace = if width == 1 {
        let view = ByteView::new(Arc::clone(buf), off + c.pos, n_events)?;
        BranchTrace::from_borrowed_parts(dict, view, tail)?
    } else {
        // Wide sequences (dictionary past 256 entries) fall back to
        // owned storage — the one image path that still decodes.
        bpfree_sim::note_trace_seq_alloc();
        let mut seq = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            seq.push(c.u32()?);
        }
        BranchTrace::from_parts(dict, seq, tail)?
    };
    Some(TraceArtifacts {
        trace,
        run: RunResult { exit, instructions },
    })
}

fn encode_ordering_payload(a: &OrderingArtifacts) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, a.benches.len() as u32);
    for b in &a.benches {
        put_u32(&mut out, b.name.len() as u32);
        out.extend_from_slice(b.name.as_bytes());
        put_u64(&mut out, b.total_dynamic());
        put_u32(&mut out, b.groups().len() as u32);
        for g in b.groups() {
            out.push(g.key.applies);
            out.push(g.key.predicts_taken);
            out.push(u8::from(g.key.default_taken));
            put_u64(&mut out, g.taken);
            put_u64(&mut out, g.fallthru);
        }
    }
    put_u32(&mut out, a.rates.len() as u32);
    put_u32(&mut out, a.benches.len() as u32);
    for row in &a.rates {
        for r in row {
            put_u64(&mut out, r.to_bits());
        }
    }
    out
}

fn decode_ordering_payload(bytes: &[u8]) -> Option<OrderingArtifacts> {
    let mut c = Cur::new(bytes);
    let n_benches = c.u32()? as usize;
    if n_benches > c.remaining() {
        return None;
    }
    let mut benches = Vec::with_capacity(n_benches);
    for _ in 0..n_benches {
        let name_len = c.u32()? as usize;
        let name = std::str::from_utf8(c.take(name_len)?).ok()?;
        if name.is_empty() {
            return None;
        }
        let total_dynamic = c.u64()?;
        let n_groups = c.u32()? as usize;
        if n_groups > c.remaining() / 19 {
            return None;
        }
        let mut groups = Vec::with_capacity(n_groups);
        for _ in 0..n_groups {
            let applies = c.u8()?;
            let predicts_taken = c.u8()?;
            let default_taken = match c.u8()? {
                0 => false,
                1 => true,
                _ => return None,
            };
            let taken = c.u64()?;
            let fallthru = c.u64()?;
            // Same structural invariants as the text decoder.
            if applies > 0x7f || predicts_taken & !applies != 0 {
                return None;
            }
            groups.push(Group {
                key: GroupKey {
                    applies,
                    predicts_taken,
                    default_taken,
                },
                taken,
                fallthru,
            });
        }
        benches.push(BenchOrderData::from_parts(
            name.to_string(),
            groups,
            total_dynamic,
        ));
    }
    let n_rows = c.u32()? as usize;
    let n_cols = c.u32()? as usize;
    if n_cols != benches.len() || n_rows.checked_mul(n_cols)?.checked_mul(8)? != c.remaining() {
        return None;
    }
    let mut rates = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        let mut row = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            row.push(f64::from_bits(c.u64()?));
        }
        rates.push(row);
    }
    if !c.done() {
        return None;
    }
    Some(OrderingArtifacts { benches, rates })
}

// ---- builder ----

struct PendingEntry {
    kind: SectionKind,
    name: String,
    opt: String,
    dataset: u32,
    key: u64,
    payload: Vec<u8>,
}

/// Accumulates artifacts and packs them into one deterministic image
/// file. Insertion order never matters: [`ImageBuilder::finish`] sorts
/// the directory, so two builds over the same artifacts are
/// byte-identical.
#[derive(Default)]
pub struct ImageBuilder {
    entries: Vec<PendingEntry>,
}

impl ImageBuilder {
    /// An empty builder.
    pub fn new() -> ImageBuilder {
        ImageBuilder::default()
    }

    /// How many artifacts have been added so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the builder still empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn push(
        &mut self,
        kind: SectionKind,
        name: &str,
        opt: &str,
        dataset: Option<u32>,
        key: u64,
        payload: Vec<u8>,
    ) {
        self.entries.push(PendingEntry {
            kind,
            name: name.to_string(),
            opt: opt.to_string(),
            dataset: dataset.unwrap_or(u32::MAX),
            key,
            payload,
        });
    }

    /// Adds a compiled program (stored as IR text), keyed by
    /// [`crate::compile_key_hash`].
    pub fn add_compile(&mut self, name: &str, opt: &str, key: u64, a: &CompileArtifacts) {
        let ir = a.program.to_string();
        self.push(SectionKind::Compile, name, opt, None, key, ir.into_bytes());
    }

    /// Adds pre-decoded bytecode (`BytecodeProgram::to_bytes`), keyed
    /// by [`crate::decoded_key_hash`].
    pub fn add_decoded(&mut self, name: &str, opt: &str, key: u64, bytecode: Vec<u8>) {
        self.push(SectionKind::Decoded, name, opt, None, key, bytecode);
    }

    /// Adds a prediction-rows artifact, keyed by
    /// [`crate::prediction_key_hash`].
    pub fn add_prediction(&mut self, name: &str, opt: &str, key: u64, a: &PredictionArtifacts) {
        let payload = encode_prediction_payload(a);
        self.push(SectionKind::Prediction, name, opt, None, key, payload);
    }

    /// Adds one dataset's run artifact, keyed by
    /// [`crate::run_key_hash`]; `dataset` is the index within the
    /// benchmark's dataset list.
    pub fn add_run(&mut self, name: &str, opt: &str, dataset: u32, key: u64, a: &RunArtifacts) {
        let payload = encode_run_payload(a);
        self.push(SectionKind::Run, name, opt, Some(dataset), key, payload);
    }

    /// Adds one dataset's trace artifact, keyed by
    /// [`crate::trace_key_hash`].
    pub fn add_trace(&mut self, name: &str, opt: &str, dataset: u32, key: u64, a: &TraceArtifacts) {
        let payload = encode_trace_payload(a);
        self.push(SectionKind::Trace, name, opt, Some(dataset), key, payload);
    }

    /// Adds a roster-level ordering study, keyed by
    /// [`crate::ordering_key_hash`]. Ordering entries carry no
    /// benchmark name of their own.
    pub fn add_ordering(&mut self, opt: &str, key: u64, a: &OrderingArtifacts) {
        let payload = encode_ordering_payload(a);
        self.push(SectionKind::Ordering, "", opt, None, key, payload);
    }

    /// Packs everything into the final image bytes — deterministically.
    pub fn finish(mut self) -> Vec<u8> {
        self.entries.sort_by(|a, b| {
            (a.kind, &a.name, &a.opt, a.dataset, a.key)
                .cmp(&(b.kind, &b.name, &b.opt, b.dataset, b.key))
        });

        // String table, deduped in first-use order over sorted entries.
        fn intern(
            table: &mut std::collections::HashMap<String, (u32, u32)>,
            strings: &mut Vec<u8>,
            s: &str,
        ) -> (u32, u32) {
            if let Some(&at) = table.get(s) {
                return at;
            }
            let at = (strings.len() as u32, s.len() as u32);
            strings.extend_from_slice(s.as_bytes());
            table.insert(s.to_string(), at);
            at
        }
        let mut strings = Vec::<u8>::new();
        let mut interned = std::collections::HashMap::new();
        let mut string_refs = Vec::with_capacity(self.entries.len());
        for e in &self.entries {
            let name_at = intern(&mut interned, &mut strings, &e.name);
            let opt_at = intern(&mut interned, &mut strings, &e.opt);
            string_refs.push((name_at, opt_at));
        }

        // Layout: payload offsets, then strings, then the directory.
        let mut off = HEADER_LEN;
        let mut payload_offs = Vec::with_capacity(self.entries.len());
        for e in &self.entries {
            off = align8(off);
            payload_offs.push(off);
            off += e.payload.len();
        }
        let strings_off = align8(off);
        let dir_off = align8(strings_off + strings.len());
        let total_len = dir_off + self.entries.len() * DIR_ENTRY_LEN;

        let mut out = Vec::with_capacity(total_len);
        out.extend_from_slice(&MAGIC);
        put_u32(&mut out, ENDIAN_MARK);
        put_u32(&mut out, FORMAT_VERSION);
        put_u64(&mut out, self.entries.len() as u64);
        put_u64(&mut out, dir_off as u64);
        put_u64(&mut out, strings_off as u64);
        put_u64(&mut out, total_len as u64);
        let head_sum = fnv(&out);
        put_u64(&mut out, head_sum);
        // Placeholder for the tail checksum, patched once the string
        // table and directory exist.
        out.resize(HEADER_LEN, 0);

        for (e, &at) in self.entries.iter().zip(&payload_offs) {
            out.resize(at, 0);
            out.extend_from_slice(&e.payload);
        }
        out.resize(strings_off, 0);
        out.extend_from_slice(&strings);
        out.resize(dir_off, 0);
        for ((e, &payload_off), &((name_off, name_len), (opt_off, opt_len))) in
            self.entries.iter().zip(&payload_offs).zip(&string_refs)
        {
            put_u32(&mut out, e.kind.tag());
            put_u32(&mut out, name_off);
            put_u32(&mut out, name_len);
            put_u32(&mut out, opt_off);
            put_u32(&mut out, opt_len);
            put_u32(&mut out, e.dataset);
            put_u64(&mut out, e.key);
            put_u64(&mut out, payload_off as u64);
            put_u64(&mut out, e.payload.len() as u64);
            put_u64(&mut out, fnv(&e.payload));
            put_u64(&mut out, 0);
        }
        debug_assert_eq!(out.len(), total_len);
        let tail_sum = fnv(&out[strings_off..]);
        out[56..64].copy_from_slice(&tail_sum.to_le_bytes());
        out
    }

    /// [`ImageBuilder::finish`] plus an atomic write (temp file +
    /// rename) to `path`.
    pub fn write(self, path: &Path) -> std::io::Result<()> {
        let bytes = self.finish();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, path)
    }
}

// ---- reader ----

/// An open, fully integrity-checked suite image. All typed accessors
/// borrow from the one shared buffer; traces are served zero-copy.
pub struct SuiteImage {
    buf: Arc<Vec<u8>>,
    entries: Vec<ImageEntry>,
}

impl SuiteImage {
    /// Reads and validates an image file: one buffered read, then the
    /// full header/directory/checksum validation described in the
    /// module docs. Every failure mode is a clean `Err`.
    pub fn open(path: &Path) -> Result<SuiteImage, String> {
        let buf = std::fs::read(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        SuiteImage::from_bytes(buf)
    }

    /// [`SuiteImage::open`] over an in-memory buffer.
    pub fn from_bytes(buf: Vec<u8>) -> Result<SuiteImage, String> {
        let b = &buf;
        let err = |m: &str| Err(format!("suite image: {m}"));
        if b.len() < HEADER_LEN {
            return err("shorter than the 64-byte header");
        }
        if b[..8] != MAGIC {
            return err("bad magic");
        }
        let mut c = Cur::new(&b[8..HEADER_LEN]);
        let endian = c.u32().unwrap();
        let version = c.u32().unwrap();
        let n_entries = c.u64().unwrap();
        let dir_off = c.u64().unwrap();
        let strings_off = c.u64().unwrap();
        let total_len = c.u64().unwrap();
        let head_sum = c.u64().unwrap();
        let tail_sum = c.u64().unwrap();
        if endian != ENDIAN_MARK {
            return err("endianness mismatch");
        }
        if version != FORMAT_VERSION {
            return err("format version mismatch");
        }
        if head_sum != fnv(&b[..48]) {
            return err("header checksum mismatch");
        }
        if total_len != b.len() as u64 {
            return err("total length mismatch (truncated or padded file)");
        }
        let dir_off = usize::try_from(dir_off).map_err(|_| "suite image: huge dir offset")?;
        let strings_off =
            usize::try_from(strings_off).map_err(|_| "suite image: huge strings offset")?;
        let n = usize::try_from(n_entries).map_err(|_| "suite image: huge entry count")?;
        if strings_off < HEADER_LEN || dir_off < strings_off || dir_off % 8 != 0 {
            return err("section offsets out of order");
        }
        if n.checked_mul(DIR_ENTRY_LEN)
            .and_then(|d| dir_off.checked_add(d))
            != Some(b.len())
        {
            return err("directory does not span the file tail");
        }
        if tail_sum != fnv(&b[strings_off..]) {
            return err("string table / directory checksum mismatch");
        }
        let strings = &b[strings_off..dir_off];

        let mut entries = Vec::with_capacity(n);
        for i in 0..n {
            let rec = &b[dir_off + i * DIR_ENTRY_LEN..dir_off + (i + 1) * DIR_ENTRY_LEN];
            let mut c = Cur::new(rec);
            let kind = SectionKind::from_tag(c.u32().unwrap())
                .ok_or_else(|| format!("suite image: entry {i}: unknown kind"))?;
            let name_off = c.u32().unwrap() as usize;
            let name_len = c.u32().unwrap() as usize;
            let opt_off = c.u32().unwrap() as usize;
            let opt_len = c.u32().unwrap() as usize;
            let dataset = c.u32().unwrap();
            let key = c.u64().unwrap();
            let payload_off = usize::try_from(c.u64().unwrap())
                .map_err(|_| format!("suite image: entry {i}: huge payload offset"))?;
            let payload_len = usize::try_from(c.u64().unwrap())
                .map_err(|_| format!("suite image: entry {i}: huge payload length"))?;
            let payload_sum = c.u64().unwrap();
            if c.u64().unwrap() != 0 {
                return Err(format!("suite image: entry {i}: nonzero reserved bytes"));
            }
            let string_at = |off: usize, len: usize| -> Result<String, String> {
                let s = off
                    .checked_add(len)
                    .and_then(|end| strings.get(off..end))
                    .ok_or_else(|| format!("suite image: entry {i}: string out of bounds"))?;
                std::str::from_utf8(s)
                    .map(str::to_string)
                    .map_err(|_| format!("suite image: entry {i}: non-UTF-8 string"))
            };
            let name = string_at(name_off, name_len)?;
            let opt = string_at(opt_off, opt_len)?;
            let payload = payload_off
                .checked_add(payload_len)
                .filter(|&end| payload_off >= HEADER_LEN && end <= strings_off)
                .map(|end| &b[payload_off..end])
                .ok_or_else(|| format!("suite image: entry {i}: payload out of bounds"))?;
            if fnv(payload) != payload_sum {
                return Err(format!(
                    "suite image: entry {i} ({} {name}): payload checksum mismatch",
                    kind.name()
                ));
            }
            entries.push(ImageEntry {
                kind,
                name,
                opt,
                dataset: (dataset != u32::MAX).then_some(dataset),
                key,
                payload_off,
                payload_len,
            });
        }
        Ok(SuiteImage {
            buf: Arc::new(buf),
            entries,
        })
    }

    /// The decoded directory, in on-disk (sorted) order.
    pub fn entries(&self) -> &[ImageEntry] {
        &self.entries
    }

    /// Total image size in bytes — the warm start's entire read volume.
    pub fn total_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Finds the entry for (kind, name, opt, dataset), if present.
    pub fn find(
        &self,
        kind: SectionKind,
        name: &str,
        opt: &str,
        dataset: Option<u32>,
    ) -> Option<&ImageEntry> {
        self.entries
            .iter()
            .find(|e| e.kind == kind && e.name == name && e.opt == opt && e.dataset == dataset)
    }

    fn payload(&self, e: &ImageEntry) -> &[u8] {
        &self.buf[e.payload_off..e.payload_off + e.payload_len]
    }

    /// Decodes a compile entry (re-parses the stored IR text). `None`
    /// on kind mismatch or malformed payload.
    pub fn compile(&self, e: &ImageEntry) -> Option<CompileArtifacts> {
        if e.kind != SectionKind::Compile {
            return None;
        }
        let ir = std::str::from_utf8(self.payload(e)).ok()?;
        let program = bpfree_ir::parse_program(ir).ok()?;
        Some(CompileArtifacts { program })
    }

    /// The raw bytecode bytes of a decoded entry — deserialized (and
    /// validated against the live program) by the caller via
    /// `BytecodeProgram::from_bytes`.
    pub fn decoded_bytes(&self, e: &ImageEntry) -> Option<&[u8]> {
        (e.kind == SectionKind::Decoded).then(|| self.payload(e))
    }

    /// Decodes a prediction entry.
    pub fn prediction(&self, e: &ImageEntry) -> Option<PredictionArtifacts> {
        if e.kind != SectionKind::Prediction {
            return None;
        }
        decode_prediction_payload(self.payload(e))
    }

    /// Decodes a run entry.
    pub fn run(&self, e: &ImageEntry) -> Option<RunArtifacts> {
        if e.kind != SectionKind::Run {
            return None;
        }
        decode_run_payload(self.payload(e))
    }

    /// Decodes a trace entry. The index sequence is **borrowed** from
    /// the image buffer (zero-copy) whenever the dictionary fits in 256
    /// entries — which is every suite trace; see
    /// [`bpfree_sim::trace_seq_allocs`].
    pub fn trace(&self, e: &ImageEntry) -> Option<TraceArtifacts> {
        if e.kind != SectionKind::Trace {
            return None;
        }
        decode_trace_payload(&self.buf, e.payload_off, e.payload_len)
    }

    /// Decodes an ordering entry.
    pub fn ordering(&self, e: &ImageEntry) -> Option<OrderingArtifacts> {
        if e.kind != SectionKind::Ordering {
            return None;
        }
        decode_ordering_payload(self.payload(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpfree_sim::TraceRecorder;

    fn sample() -> (CompileArtifacts, RunArtifacts, TraceArtifacts) {
        let program = bpfree_lang::compile(
            "fn main() -> int {
                int x; int i;
                x = -3;
                if (x < 0) { x = 0; }
                for (i = 0; i < 5; i = i + 1) { x = x + i; }
                return x;
            }",
        )
        .unwrap();
        let mut profiler = bpfree_sim::EdgeProfiler::new();
        let mut recorder = TraceRecorder::new();
        let mut fan = bpfree_sim::Multiplex::new();
        fan.push(&mut profiler);
        fan.push(&mut recorder);
        let run = bpfree_sim::Simulator::new(&program).run(&mut fan).unwrap();
        let profile = profiler.into_profile();
        let trace = recorder.into_trace();
        (
            CompileArtifacts { program },
            RunArtifacts { profile, run },
            TraceArtifacts { trace, run },
        )
    }

    fn sample_image() -> Vec<u8> {
        let (c, r, t) = sample();
        let classifier = bpfree_core::BranchClassifier::analyze(&c.program);
        let table = bpfree_core::HeuristicTable::build(&c.program, &classifier);
        let p = PredictionArtifacts::from_computed(&classifier, &table);
        let data = BenchOrderData::build(
            "sample",
            &table,
            &r.profile,
            &classifier,
            bpfree_core::DEFAULT_SEED,
        );
        let study = bpfree_core::ordering::OrderingStudy::new(vec![data]);
        let o = OrderingArtifacts::from_study(&study);
        let bc = bpfree_sim::BytecodeProgram::compile(&c.program);

        let mut b = ImageBuilder::new();
        b.add_trace("sample", "O", 0, 5, &t);
        b.add_run("sample", "O", 0, 4, &r);
        b.add_ordering("O", 6, &o);
        b.add_prediction("sample", "O", 3, &p);
        b.add_decoded("sample", "O", 2, bc.to_bytes());
        b.add_compile("sample", "O", 1, &c);
        b.finish()
    }

    #[test]
    fn roundtrip_every_kind() {
        let (c, r, t) = sample();
        let bytes = sample_image();
        let img = SuiteImage::from_bytes(bytes).expect("opens");
        assert_eq!(img.entries().len(), 6);
        // Directory is sorted by kind regardless of insertion order.
        let kinds: Vec<_> = img.entries().iter().map(|e| e.kind).collect();
        assert_eq!(kinds, SectionKind::ALL.to_vec());

        let e = img.find(SectionKind::Compile, "sample", "O", None).unwrap();
        assert_eq!(e.key, 1);
        assert_eq!(img.compile(e).unwrap().program, c.program);

        let e = img.find(SectionKind::Decoded, "sample", "O", None).unwrap();
        let bc = bpfree_sim::BytecodeProgram::from_bytes(img.decoded_bytes(e).unwrap(), &c.program)
            .expect("bytecode validates against the live program");
        let mut obs = bpfree_sim::CountingObserver::default();
        let run = bpfree_sim::Simulator::with_decoded(&c.program, &bc)
            .run(&mut obs)
            .unwrap();
        assert_eq!(run, r.run);

        let e = img
            .find(SectionKind::Prediction, "sample", "O", None)
            .unwrap();
        let p = img.prediction(e).unwrap();
        assert!(p.instantiate(&c.program).is_some());

        let e = img.find(SectionKind::Run, "sample", "O", Some(0)).unwrap();
        let got = img.run(e).unwrap();
        assert_eq!(got.profile, r.profile);
        assert_eq!(got.run, r.run);

        let e = img
            .find(SectionKind::Trace, "sample", "O", Some(0))
            .unwrap();
        let got = img.trace(e).unwrap();
        assert_eq!(got.trace, t.trace);
        assert_eq!(got.run, t.run);

        let e = img.find(SectionKind::Ordering, "", "O", None).unwrap();
        let got = img.ordering(e).unwrap();
        assert_eq!(got.rates.len(), 5040);
    }

    #[test]
    fn traces_are_served_zero_copy() {
        let (_, _, t) = sample();
        let bytes = sample_image();
        let img = SuiteImage::from_bytes(bytes).expect("opens");
        let e = img
            .find(SectionKind::Trace, "sample", "O", Some(0))
            .unwrap();
        let before = bpfree_sim::trace_seq_allocs();
        let got = img.trace(e).unwrap();
        assert_eq!(
            bpfree_sim::trace_seq_allocs(),
            before,
            "mounted trace decode must not allocate a sequence"
        );
        // Borrowed storage: no widened u32 sequence exists…
        assert!(got.trace.seq_u32().is_none(), "seq is borrowed, not owned");
        // …and the u8 view points into the image buffer itself.
        let seq8 = got.trace.seq_u8().unwrap();
        let buf_range = img.buf.as_ptr() as usize..img.buf.as_ptr() as usize + img.buf.len();
        assert!(buf_range.contains(&(seq8.as_ptr() as usize)));
        assert_eq!(got.trace, t.trace);
    }

    #[test]
    fn builds_are_deterministic_under_insertion_order() {
        let (c, r, _) = sample();
        let mut b1 = ImageBuilder::new();
        b1.add_compile("a", "O", 1, &c);
        b1.add_run("a", "O", 0, 2, &r);
        b1.add_run("a", "O", 1, 3, &r);
        let mut b2 = ImageBuilder::new();
        b2.add_run("a", "O", 1, 3, &r);
        b2.add_compile("a", "O", 1, &c);
        b2.add_run("a", "O", 0, 2, &r);
        assert_eq!(b1.finish(), b2.finish(), "byte-identical double build");
    }

    #[test]
    fn open_rejects_structural_corruption() {
        let bytes = sample_image();
        assert!(SuiteImage::from_bytes(Vec::new()).is_err(), "empty");
        assert!(
            SuiteImage::from_bytes(bytes[..63].to_vec()).is_err(),
            "sub-header"
        );
        let mut bad = bytes.clone();
        bad[0] ^= 1;
        assert!(SuiteImage::from_bytes(bad).is_err(), "magic");
        let mut bad = bytes.clone();
        bad[12] = 5;
        assert!(SuiteImage::from_bytes(bad).is_err(), "version");
        let mut long = bytes.clone();
        long.push(0);
        assert!(SuiteImage::from_bytes(long).is_err(), "trailing bytes");
        assert!(
            SuiteImage::from_bytes(bytes[..bytes.len() - 1].to_vec()).is_err(),
            "truncation"
        );
    }

    #[test]
    fn every_truncation_fails_cleanly() {
        let bytes = sample_image();
        for len in 0..bytes.len() {
            assert!(
                SuiteImage::from_bytes(bytes[..len].to_vec()).is_err(),
                "truncation to {len} must not open"
            );
        }
    }

    #[test]
    fn bit_flips_never_panic_and_never_lie() {
        let (c, _, _) = sample();
        let bytes = sample_image();
        // A deterministic LCG walk over byte offsets; each flip either
        // fails to open, or opens with the flip confined to padding —
        // in which case every payload still decodes identically.
        let mut x = 0x243f_6a88_85a3_08d3u64;
        for _ in 0..200 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let at = (x >> 16) as usize % bytes.len();
            let bit = 1u8 << ((x >> 8) % 8);
            let mut flipped = bytes.clone();
            flipped[at] ^= bit;
            if let Ok(img) = SuiteImage::from_bytes(flipped) {
                // Flip landed in inter-section padding: contents must
                // be untouched.
                for e in img.entries() {
                    match e.kind {
                        SectionKind::Compile => {
                            assert_eq!(img.compile(e).unwrap().program, c.program)
                        }
                        SectionKind::Decoded => assert!(img.decoded_bytes(e).is_some()),
                        SectionKind::Prediction => assert!(img.prediction(e).is_some()),
                        SectionKind::Run => assert!(img.run(e).is_some()),
                        SectionKind::Trace => assert!(img.trace(e).is_some()),
                        SectionKind::Ordering => assert!(img.ordering(e).is_some()),
                    }
                }
            }
        }
    }

    #[test]
    fn accessors_reject_kind_mismatch() {
        let img = SuiteImage::from_bytes(sample_image()).expect("opens");
        let run = img.find(SectionKind::Run, "sample", "O", Some(0)).unwrap();
        assert!(img.trace(run).is_none());
        assert!(img.compile(run).is_none());
        assert!(img.ordering(run).is_none());
        let trace = img
            .find(SectionKind::Trace, "sample", "O", Some(0))
            .unwrap();
        assert!(img.run(trace).is_none());
    }

    #[test]
    fn write_and_open_roundtrip() {
        let (c, _, _) = sample();
        let dir = std::env::temp_dir().join(format!("bpfree-img-test-{}", std::process::id()));
        let path = dir.join("suite.img");
        let mut b = ImageBuilder::new();
        b.add_compile("sample", "O", 1, &c);
        b.write(&path).expect("writes");
        let img = SuiteImage::open(&path).expect("opens");
        assert_eq!(img.entries().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
