//! Cache-directory maintenance: the scanning behind `bpfree cache stat`
//! and `bpfree cache gc`.
//!
//! Per-entry cache files are self-describing — each starts with a
//! `bpfree-cache v<N>` line followed by `key <hex>` and `kind <name>`
//! lines — so the directory can be inventoried (and stale-version
//! entries purged) without knowing any content keys. Entries written by
//! older format versions are unreachable anyway (the version is hashed
//! into every key), so `gc` reclaiming them changes no behaviour, only
//! disk usage.

use std::path::Path;

use crate::FORMAT_VERSION;

/// What a scan learned about one cache entry file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryInfo {
    /// The content key (the file stem).
    pub key: String,
    /// The format version stamped in the entry header.
    pub version: u32,
    /// The entry kind named in the header (`compile`, `prediction`,
    /// `run`, `trace`, `ordering`), or `"?"` for files whose header
    /// does not parse.
    pub kind: String,
    /// File size in bytes.
    pub bytes: u64,
}

impl EntryInfo {
    /// Is this entry readable by the current format version?
    pub fn is_current(&self) -> bool {
        self.version == FORMAT_VERSION
    }
}

/// A whole-directory inventory, aggregated per (kind, version).
#[derive(Debug, Default, Clone)]
pub struct CacheStat {
    /// Every recognized entry, sorted by key.
    pub entries: Vec<EntryInfo>,
    /// Files under the directory that are not cache entries (no `.txt`
    /// extension or an unparsable header) — counted, never touched.
    pub foreign: usize,
}

impl CacheStat {
    /// Aggregated (kind, version, count, bytes) rows, sorted by kind
    /// then version, for the `cache stat` table.
    pub fn by_kind(&self) -> Vec<(String, u32, usize, u64)> {
        let mut rows: Vec<(String, u32, usize, u64)> = Vec::new();
        for e in &self.entries {
            match rows
                .iter_mut()
                .find(|(k, v, _, _)| *k == e.kind && *v == e.version)
            {
                Some((_, _, n, b)) => {
                    *n += 1;
                    *b += e.bytes;
                }
                None => rows.push((e.kind.clone(), e.version, 1, e.bytes)),
            }
        }
        rows.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
        rows
    }

    /// Total bytes across all recognized entries.
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.bytes).sum()
    }

    /// How many entries predate the current format version.
    pub fn stale(&self) -> usize {
        self.entries.iter().filter(|e| !e.is_current()).count()
    }
}

/// Parses the two header fields out of an entry file's first bytes.
/// Only the first few hundred bytes matter, but entries are small
/// enough that reading whole files keeps this simple; trace entries'
/// binary payload never contains a `\n` before the header ends, so the
/// line split below is safe on them too.
fn parse_header(bytes: &[u8]) -> Option<(u32, String)> {
    let mut lines = bytes.split(|&b| b == b'\n');
    let v = std::str::from_utf8(lines.next()?).ok()?;
    let version: u32 = v.strip_prefix("bpfree-cache v")?.parse().ok()?;
    let _key = lines.next()?;
    let kind = std::str::from_utf8(lines.next()?).ok()?;
    let kind = kind.strip_prefix("kind ")?;
    if kind.is_empty() || !kind.bytes().all(|b| b.is_ascii_alphanumeric()) {
        return None;
    }
    Some((version, kind.to_string()))
}

/// Scans `dir` and inventories every cache entry. A missing directory
/// is an empty (not an error) result — there is simply nothing cached.
pub fn scan(dir: &Path) -> std::io::Result<CacheStat> {
    let mut stat = CacheStat::default();
    let rd = match std::fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(stat),
        Err(e) => return Err(e),
    };
    for dent in rd {
        let dent = dent?;
        let path = dent.path();
        if !dent.file_type()?.is_file() {
            stat.foreign += 1;
            continue;
        }
        let key = match (path.extension(), path.file_stem()) {
            (Some(ext), Some(stem)) if ext == "txt" => stem.to_string_lossy().into_owned(),
            _ => {
                stat.foreign += 1;
                continue;
            }
        };
        let bytes = dent.metadata()?.len();
        // Only the header matters; cap the read so a huge foreign .txt
        // file can't balloon the scan.
        let head = read_prefix(&path, 4096)?;
        match parse_header(&head) {
            Some((version, kind)) => stat.entries.push(EntryInfo {
                key,
                version,
                kind,
                bytes,
            }),
            None => stat.foreign += 1,
        }
    }
    stat.entries.sort_by(|a, b| a.key.cmp(&b.key));
    Ok(stat)
}

fn read_prefix(path: &Path, cap: usize) -> std::io::Result<Vec<u8>> {
    use std::io::Read as _;
    let mut f = std::fs::File::open(path)?;
    let mut buf = vec![0u8; cap];
    let mut at = 0;
    loop {
        let n = f.read(&mut buf[at..])?;
        if n == 0 {
            break;
        }
        at += n;
        if at == buf.len() {
            break;
        }
    }
    buf.truncate(at);
    Ok(buf)
}

/// Deletes every *recognized* cache entry whose stamped format version
/// predates the current one. Foreign files and current-version entries
/// are untouched. Returns (entries removed, bytes reclaimed).
pub fn gc(dir: &Path) -> std::io::Result<(usize, u64)> {
    let stat = scan(dir)?;
    let mut removed = 0usize;
    let mut reclaimed = 0u64;
    for e in &stat.entries {
        if e.is_current() {
            continue;
        }
        let path = dir.join(format!("{}.txt", e.key));
        match std::fs::remove_file(&path) {
            Ok(()) => {
                removed += 1;
                reclaimed += e.bytes;
            }
            // Raced with another process; fine either way.
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => {}
            Err(err) => return Err(err),
        }
    }
    Ok((removed, reclaimed))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("bpfree-maint-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn scan_classifies_and_gc_purges_stale_versions() {
        let dir = temp_dir("gc");
        // A current entry, a stale (pre-v6) entry, and two foreign files.
        std::fs::write(
            dir.join("aaaa.txt"),
            format!("bpfree-cache v{FORMAT_VERSION}\nkey aaaa\nkind run\nexit 0\n"),
        )
        .unwrap();
        std::fs::write(
            dir.join("bbbb.txt"),
            "bpfree-cache v5\nkey bbbb\nkind trace\n\u{0}\u{1}binary",
        )
        .unwrap();
        std::fs::write(dir.join("notes.md"), "not a cache entry").unwrap();
        std::fs::write(dir.join("cccc.txt"), "something else entirely\n").unwrap();

        let stat = scan(&dir).unwrap();
        assert_eq!(stat.entries.len(), 2);
        assert_eq!(stat.foreign, 2);
        assert_eq!(stat.stale(), 1);
        let rows = stat.by_kind();
        assert!(rows.contains(&("run".to_string(), FORMAT_VERSION, 1, stat.entries[0].bytes)));

        let (removed, reclaimed) = gc(&dir).unwrap();
        assert_eq!(removed, 1);
        assert!(reclaimed > 0);
        assert!(!dir.join("bbbb.txt").exists(), "stale entry removed");
        assert!(dir.join("aaaa.txt").exists(), "current entry kept");
        assert!(dir.join("notes.md").exists(), "foreign file kept");
        assert!(dir.join("cccc.txt").exists(), "unparsable file kept");

        let stat = scan(&dir).unwrap();
        assert_eq!(stat.stale(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_of_missing_dir_is_empty() {
        let dir = std::env::temp_dir().join("bpfree-maint-definitely-absent");
        let stat = scan(&dir).unwrap();
        assert!(stat.entries.is_empty());
        assert_eq!(stat.foreign, 0);
    }
}
