//! On-disk cache of per-benchmark suite artifacts.
//!
//! Loading the suite means compiling 23 Cmm programs, running seven
//! heuristics over every non-loop branch, and *simulating* each program
//! on its datasets — by far the most expensive part of every experiment
//! binary. None of it changes between runs unless the benchmark source,
//! the compile options, its datasets, or this crate's code changes, so
//! the results are cached on disk and reloaded in milliseconds.
//!
//! # Entry kinds
//!
//! The cache stores five independent entry kinds, matching the artifact
//! granularity of the demand-driven engine (`bpfree-engine`):
//!
//! * **compile** — the compiled [`Program`], keyed per (benchmark,
//!   source, compile options);
//! * **prediction** — the derived prediction artifacts of that program:
//!   one [`PredictionRow`] per conditional branch in program order,
//!   carrying its class, loop prediction, and all seven heuristic
//!   cells. A warm load rebuilds the [`BranchClassifier`] and
//!   [`HeuristicTable`] from these rows without running a single CFG
//!   analysis or heuristic;
//! * **run** — the [`EdgeProfile`] and [`RunResult`] of one dataset,
//!   keyed per (benchmark, source, options, dataset);
//! * **trace** — the replayable [`BranchTrace`] of one dataset (plus its
//!   [`RunResult`], so a run entry can be reconstructed from a trace
//!   entry by replay alone), same key shape as a run entry;
//! * **ordering** (v5) — one *roster*-level entry: the condensed
//!   [`BenchOrderData`] groups and the full 5040 × n miss-rate matrix
//!   of an [`OrderingStudy`], keyed over every member benchmark's
//!   (name, source, reference dataset) plus the options fingerprint and
//!   the Default-predictor seed. Rate cells persist as the exact bit
//!   patterns (`f64::to_bits` hex), and a warm load revalidates the
//!   stored groups against freshly condensed live data before trusting
//!   the matrix — so a warm `exp all` recomputes zero rate matrices and
//!   still can't serve stale rates.
//!
//! [`BranchClassifier`]: bpfree_core::BranchClassifier
//!
//! # Keying
//!
//! Each entry is keyed by an FNV-1a hash over: the cache format version,
//! the workspace crate version (any code change that ships a new version
//! invalidates everything), the entry kind, the benchmark name, its full
//! source text, **the compile-options fingerprint** (so `-O0` artifacts
//! can never collide with `-O` entries), and — for run/trace entries — a
//! fingerprint of the dataset (name plus the exact bit patterns of all
//! initial global values). A stale entry is therefore *unreachable*, not
//! just detectable.
//!
//! # Format and robustness
//!
//! Entries are single files, `<key>.txt`, under the cache directory
//! (default `target/bpfree-cache`, override with `BPFREE_CACHE_DIR`).
//! Compile, prediction, and run entries are plain text. The program
//! itself is stored as IR text and re-parsed on load — round-trip
//! fidelity is covered by the suite's `roundtrips_every_suite_benchmark`
//! test.
//!
//! Trace entries (v3) are a text header followed by a binary payload:
//! the event dictionary and the index sequence are LEB128
//! varint-encoded with zigzag deltas (dictionary entries delta-code
//! their branch site against the previous entry; the sequence is
//! run-length encoded as `(delta(index), run length)` pairs). Tight
//! loops revisit one event millions of times in a row, so the dominant
//! cost of a warm load — parsing the sequence — collapses to a few
//! bytes per run, and the cache directory shrinks by an order of
//! magnitude versus decimal text. Pre-v3 entries hash to different keys
//! (the format version is part of every key), so they are simply
//! unreachable and recompute cleanly.
//!
//! Any read, parse, or validation failure makes a lookup return `None`
//! and the caller recomputes; a corrupt cache can cost time but never
//! correctness. Writes go to a temp file first and are renamed into
//! place, so a crashed run cannot leave a half-written entry under a
//! valid key.
//!
//! Set `BPFREE_NO_CACHE=1` (or pass `--no-cache` to the experiment
//! binaries) to bypass the cache entirely.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use bpfree_core::ordering::{BenchOrderData, Group, GroupKey, OrderingStudy};
use bpfree_core::{BranchClass, Direction};
use bpfree_ir::{BlockId, BranchRef, FuncId, Program};
use bpfree_sim::{BranchTrace, EdgeCounts, EdgeProfile, RunResult, TraceEvent};
use bpfree_suite::Dataset;

/// Bump on any change to the file layout below.
pub(crate) const FORMAT_VERSION: u32 = 6;

pub mod image;
pub mod maint;

/// The cached compile-time artifacts for one (benchmark, options) pair.
#[derive(Debug, Clone)]
pub struct CompileArtifacts {
    pub program: Program,
}

/// One branch's cached prediction artifacts: everything the analysis
/// stack derives per branch site, in one dense row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictionRow {
    /// The branch site.
    pub branch: BranchRef,
    /// Loop or non-loop, per the classifier.
    pub class: BranchClass,
    /// The loop-branch prediction (`Some` iff `class` is `Loop`).
    pub loop_pred: Option<Direction>,
    /// All seven heuristic cells, in `HeuristicKind::ALL` index order.
    pub heuristics: [Option<Direction>; 7],
}

/// The cached prediction artifacts for one (benchmark, options) pair:
/// one row per conditional branch, in program order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredictionArtifacts {
    pub rows: Vec<PredictionRow>,
}

impl PredictionArtifacts {
    /// Extracts the dense rows from a freshly computed classifier +
    /// heuristic table pair. Loop branches have no heuristic row (the
    /// heuristics only cover non-loop branches), so their cells are
    /// empty.
    pub fn from_computed(
        classifier: &bpfree_core::BranchClassifier,
        table: &bpfree_core::HeuristicTable,
    ) -> PredictionArtifacts {
        let mut trows = table.rows();
        let rows = classifier
            .rows()
            .map(|(branch, class, loop_pred)| {
                let heuristics = if class == BranchClass::NonLoop {
                    let (b2, h) = trows.next().expect("one table row per non-loop branch");
                    debug_assert_eq!(branch, b2);
                    *h
                } else {
                    [None; 7]
                };
                PredictionRow {
                    branch,
                    class,
                    loop_pred,
                    heuristics,
                }
            })
            .collect();
        PredictionArtifacts { rows }
    }

    /// Rebuilds the classifier and heuristic table these rows were
    /// extracted from, validating them against `program`'s actual branch
    /// sites — `None` if the rows belong to a different (or stale)
    /// program, in which case the caller re-analyzes. The rebuilt pair
    /// performs zero CFG analyses and zero heuristic evaluations.
    pub fn instantiate(
        &self,
        program: &Program,
    ) -> Option<(bpfree_core::BranchClassifier, bpfree_core::HeuristicTable)> {
        let class_rows: Vec<_> = self
            .rows
            .iter()
            .map(|r| (r.branch, r.class, r.loop_pred))
            .collect();
        let classifier = bpfree_core::BranchClassifier::from_cached(program, &class_rows)?;
        let table = bpfree_core::HeuristicTable::from_rows(
            self.rows
                .iter()
                .filter(|r| r.class == BranchClass::NonLoop)
                .map(|r| (r.branch, r.heuristics)),
        );
        Some((classifier, table))
    }
}

/// The cached artifacts of one simulated (benchmark, options, dataset)
/// run.
#[derive(Debug, Clone)]
pub struct RunArtifacts {
    pub profile: EdgeProfile,
    pub run: RunResult,
}

/// The cached replayable trace of one run. Carries the [`RunResult`]
/// too, so the profile can be rebuilt by replay without re-simulating.
#[derive(Debug, Clone)]
pub struct TraceArtifacts {
    pub trace: BranchTrace,
    pub run: RunResult,
}

/// The cached ordering-study artifacts of one benchmark roster: the
/// condensed per-benchmark order data and the 5040 × n miss-rate
/// matrix derived from it.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderingArtifacts {
    /// Condensed non-loop branch groups, one per roster member, in
    /// roster order.
    pub benches: Vec<BenchOrderData>,
    /// `rates[o][b]` — stored and restored bit-exactly.
    pub rates: Vec<Vec<f64>>,
}

impl OrderingArtifacts {
    /// Extracts the persistable parts of a freshly computed study.
    pub fn from_study(study: &OrderingStudy) -> OrderingArtifacts {
        OrderingArtifacts {
            benches: study.benches().to_vec(),
            rates: study.rates().to_vec(),
        }
    }

    /// Rebuilds the study, validating the stored condensed groups
    /// against `live` — the same benchmarks condensed from the process's
    /// *current* predictions and profiles. Any divergence (stale groups,
    /// roster mismatch, wrong matrix shape, non-finite cells) returns
    /// `None` and the caller recomputes; on success the returned study
    /// reuses the persisted matrix and performs zero rate evaluations.
    pub fn instantiate(self, live: &[BenchOrderData]) -> Option<OrderingStudy> {
        if self.benches != live {
            return None;
        }
        if self.rates.len() != 5040
            || self
                .rates
                .iter()
                .any(|row| row.len() != live.len() || row.iter().any(|r| !r.is_finite()))
        {
            return None;
        }
        Some(OrderingStudy::from_parts(self.benches, self.rates))
    }
}

/// The cache directory: `BPFREE_CACHE_DIR`, else
/// `$CARGO_TARGET_DIR/bpfree-cache`, else `target/bpfree-cache`.
pub fn default_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("BPFREE_CACHE_DIR") {
        return PathBuf::from(dir);
    }
    let target = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| "target".into());
    target.join("bpfree-cache")
}

/// Is the cache disabled via `BPFREE_NO_CACHE`?
pub fn disabled_by_env() -> bool {
    std::env::var_os("BPFREE_NO_CACHE").is_some_and(|v| !v.is_empty() && v != "0")
}

/// 64-bit FNV-1a.
#[derive(Clone, Copy)]
pub(crate) struct Fnv(pub(crate) u64);

impl Fnv {
    pub(crate) fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, x: u64) {
        self.write(&x.to_le_bytes());
    }

    /// Separator between variable-length fields, so ("ab","c") and
    /// ("a","bc") hash differently.
    fn sep(&mut self) {
        self.write(&[0xff]);
    }
}

fn base_hash(kind: &str, bench_name: &str, source: &str, opt: &str) -> Fnv {
    let mut h = Fnv::new();
    h.write_u64(u64::from(FORMAT_VERSION));
    h.write(env!("CARGO_PKG_VERSION").as_bytes());
    h.sep();
    h.write(kind.as_bytes());
    h.sep();
    h.write(bench_name.as_bytes());
    h.sep();
    h.write(source.as_bytes());
    h.sep();
    h.write(opt.as_bytes());
    h.sep();
    h
}

fn write_dataset(h: &mut Fnv, ds: &Dataset) {
    h.write(ds.name.as_bytes());
    h.sep();
    for (name, values) in ds.values.ints() {
        h.write(name.as_bytes());
        h.sep();
        for &v in values {
            h.write_u64(v as u64);
        }
        h.sep();
    }
    for (name, values) in ds.values.floats() {
        h.write(name.as_bytes());
        h.sep();
        for &v in values {
            h.write_u64(v.to_bits());
        }
        h.sep();
    }
    h.sep();
}

/// The raw 64-bit content hash behind [`compile_key`]. The suite image
/// directory stores these hashes verbatim (see [`image`]); the
/// per-entry cache formats them as 16-hex-digit file names.
pub fn compile_key_hash(bench_name: &str, source: &str, opt: &str) -> u64 {
    base_hash("compile", bench_name, source, opt).0
}

/// The content key for a compile entry: hex digest over format version,
/// crate version, benchmark name, source text, and the compile-options
/// fingerprint (`bpfree_lang::Options::fingerprint`). Artifacts built at
/// different optimisation levels can never collide.
pub fn compile_key(bench_name: &str, source: &str, opt: &str) -> String {
    format!("{:016x}", compile_key_hash(bench_name, source, opt))
}

/// The raw 64-bit content hash behind [`prediction_key`].
pub fn prediction_key_hash(bench_name: &str, source: &str, opt: &str) -> u64 {
    base_hash("prediction", bench_name, source, opt).0
}

/// The content key for a prediction entry. Same inputs as
/// [`compile_key`] (the rows are a pure function of the compiled
/// program), different kind tag, so the two can never collide.
pub fn prediction_key(bench_name: &str, source: &str, opt: &str) -> String {
    format!("{:016x}", prediction_key_hash(bench_name, source, opt))
}

/// The raw 64-bit content hash for a decoded-bytecode image section.
/// Keyed exactly like a compile entry (the bytecode is a pure function
/// of the compiled program) under its own kind tag. The per-entry cache
/// has no decoded kind — bytecode persists only inside suite images,
/// where the deserialized program is additionally validated against the
/// live [`Program`] by `BytecodeProgram::from_bytes`.
pub fn decoded_key_hash(bench_name: &str, source: &str, opt: &str) -> u64 {
    base_hash("decoded", bench_name, source, opt).0
}

/// The raw 64-bit content hash behind [`run_key`].
pub fn run_key_hash(bench_name: &str, source: &str, opt: &str, dataset: &Dataset) -> u64 {
    let mut h = base_hash("run", bench_name, source, opt);
    write_dataset(&mut h, dataset);
    h.0
}

/// The content key for one dataset's run entry.
pub fn run_key(bench_name: &str, source: &str, opt: &str, dataset: &Dataset) -> String {
    format!("{:016x}", run_key_hash(bench_name, source, opt, dataset))
}

/// The raw 64-bit content hash behind [`trace_key`].
pub fn trace_key_hash(bench_name: &str, source: &str, opt: &str, dataset: &Dataset) -> u64 {
    let mut h = base_hash("trace", bench_name, source, opt);
    write_dataset(&mut h, dataset);
    h.0
}

/// The content key for one dataset's trace entry.
pub fn trace_key(bench_name: &str, source: &str, opt: &str, dataset: &Dataset) -> String {
    format!("{:016x}", trace_key_hash(bench_name, source, opt, dataset))
}

/// The raw 64-bit content hash behind [`ordering_key`].
pub fn ordering_key_hash(members: &[(&str, &str, &Dataset)], opt: &str, seed: u64) -> u64 {
    let mut h = base_hash("ordering", "", "", opt);
    h.write_u64(seed);
    h.sep();
    h.write_u64(members.len() as u64);
    for (name, source, dataset) in members {
        h.write(name.as_bytes());
        h.sep();
        h.write(source.as_bytes());
        h.sep();
        write_dataset(&mut h, dataset);
    }
    h.0
}

/// The content key for a roster-level ordering entry: hashes every
/// member's (name, source, reference dataset) in roster order, plus the
/// options fingerprint and the Default-predictor seed. Any change to
/// any member — source edit, dataset regeneration, different roster or
/// order — lands on a different key.
pub fn ordering_key(members: &[(&str, &str, &Dataset)], opt: &str, seed: u64) -> String {
    format!("{:016x}", ordering_key_hash(members, opt, seed))
}

fn entry_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("{key}.txt"))
}

fn header(out: &mut String, key: &str, kind: &str) {
    let _ = writeln!(out, "bpfree-cache v{FORMAT_VERSION}");
    let _ = writeln!(out, "key {key}");
    let _ = writeln!(out, "kind {kind}");
}

/// Consumes the three header lines; `None` on any mismatch.
fn check_header<'a>(lines: &mut std::str::Lines<'a>, key: &str, kind: &str) -> Option<()> {
    if lines.next()? != format!("bpfree-cache v{FORMAT_VERSION}") {
        return None;
    }
    if lines.next()?.strip_prefix("key ")? != key {
        return None;
    }
    if lines.next()?.strip_prefix("kind ")? != kind {
        return None;
    }
    Some(())
}

fn encode_run_result(out: &mut String, run: RunResult) {
    let _ = writeln!(out, "exit {}", run.exit);
    let _ = writeln!(out, "instructions {}", run.instructions);
}

fn decode_run_result(lines: &mut std::str::Lines<'_>) -> Option<RunResult> {
    let exit: i64 = lines.next()?.strip_prefix("exit ")?.parse().ok()?;
    let instructions: u64 = lines.next()?.strip_prefix("instructions ")?.parse().ok()?;
    Some(RunResult { exit, instructions })
}

fn encode_compile(key: &str, a: &CompileArtifacts) -> String {
    let mut out = String::new();
    header(&mut out, key, "compile");

    let ir = a.program.to_string();
    let _ = writeln!(out, "program {}", ir.lines().count());
    out.push_str(&ir);
    if !ir.ends_with('\n') {
        out.push('\n');
    }
    out
}

fn decode_compile(key: &str, text: &str) -> Option<CompileArtifacts> {
    let mut lines = text.lines();
    check_header(&mut lines, key, "compile")?;

    let n_ir: usize = lines.next()?.strip_prefix("program ")?.parse().ok()?;
    let ir: Vec<&str> = lines.collect();
    if ir.len() != n_ir {
        return None;
    }
    let program = bpfree_ir::parse_program(&ir.join("\n")).ok()?;

    Some(CompileArtifacts { program })
}

fn direction_char(d: Option<Direction>) -> char {
    match d {
        Some(Direction::Taken) => 'T',
        Some(Direction::FallThru) => 'F',
        None => '-',
    }
}

fn direction_of(c: char) -> Option<Option<Direction>> {
    match c {
        'T' => Some(Some(Direction::Taken)),
        'F' => Some(Some(Direction::FallThru)),
        '-' => Some(None),
        _ => None,
    }
}

/// One 9-character cell block per row: class (`L`/`N`), loop prediction
/// (`T`/`F`/`-`), then the seven heuristic cells.
fn encode_prediction(key: &str, a: &PredictionArtifacts) -> String {
    let mut out = String::new();
    header(&mut out, key, "prediction");
    let _ = writeln!(out, "rows {}", a.rows.len());
    for r in &a.rows {
        let _ = write!(out, "{} {} ", r.branch.func.0, r.branch.block.0);
        out.push(match r.class {
            BranchClass::Loop => 'L',
            BranchClass::NonLoop => 'N',
        });
        out.push(direction_char(r.loop_pred));
        for &d in &r.heuristics {
            out.push(direction_char(d));
        }
        out.push('\n');
    }
    out
}

fn decode_prediction(key: &str, text: &str) -> Option<PredictionArtifacts> {
    let mut lines = text.lines();
    check_header(&mut lines, key, "prediction")?;

    let n_rows: usize = lines.next()?.strip_prefix("rows ")?.parse().ok()?;
    let mut rows = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        let line = lines.next()?;
        let mut it = line.split_ascii_whitespace();
        let func: u32 = it.next()?.parse().ok()?;
        let block: u32 = it.next()?.parse().ok()?;
        let cells = it.next()?;
        if it.next().is_some() || cells.chars().count() != 9 {
            return None;
        }
        let mut chars = cells.chars();
        let class = match chars.next()? {
            'L' => BranchClass::Loop,
            'N' => BranchClass::NonLoop,
            _ => return None,
        };
        let loop_pred = direction_of(chars.next()?)?;
        // The Loop ⇔ Some(loop_pred) invariant is structural, not a
        // matter of staleness — reject rows that violate it outright.
        if (class == BranchClass::Loop) != loop_pred.is_some() {
            return None;
        }
        let mut heuristics = [None; 7];
        for (i, c) in chars.enumerate() {
            heuristics[i] = direction_of(c)?;
        }
        // Heuristics only cover non-loop branches; a loop row with
        // heuristic cells is corrupt.
        if class == BranchClass::Loop && heuristics.iter().any(Option::is_some) {
            return None;
        }
        rows.push(PredictionRow {
            branch: BranchRef {
                func: FuncId(func),
                block: BlockId(block),
            },
            class,
            loop_pred,
            heuristics,
        });
    }
    if lines.next().is_some() {
        return None;
    }
    Some(PredictionArtifacts { rows })
}

/// Per bench: one `bench <total_dynamic> <n_groups> <name>` line, then
/// one `<applies> <predicts_taken> <T|F> <taken> <fallthru>` line per
/// condensed group. The matrix follows as one line per order of
/// space-separated 16-hex-digit `f64::to_bits` cells — bit-exact, so a
/// warm study's every downstream number matches the cold one's.
fn encode_ordering(key: &str, a: &OrderingArtifacts) -> String {
    let mut out = String::new();
    header(&mut out, key, "ordering");
    let _ = writeln!(out, "benches {}", a.benches.len());
    for b in &a.benches {
        let _ = writeln!(
            out,
            "bench {} {} {}",
            b.total_dynamic(),
            b.groups().len(),
            b.name
        );
        for g in b.groups() {
            let _ = writeln!(
                out,
                "{} {} {} {} {}",
                g.key.applies,
                g.key.predicts_taken,
                if g.key.default_taken { 'T' } else { 'F' },
                g.taken,
                g.fallthru
            );
        }
    }
    let _ = writeln!(out, "rates {} {}", a.rates.len(), a.benches.len());
    for row in &a.rates {
        let mut first = true;
        for r in row {
            if !first {
                out.push(' ');
            }
            first = false;
            let _ = write!(out, "{:016x}", r.to_bits());
        }
        out.push('\n');
    }
    out
}

fn decode_ordering(key: &str, text: &str) -> Option<OrderingArtifacts> {
    let mut lines = text.lines();
    check_header(&mut lines, key, "ordering")?;

    let n_benches: usize = lines.next()?.strip_prefix("benches ")?.parse().ok()?;
    let mut benches = Vec::with_capacity(n_benches);
    for _ in 0..n_benches {
        let mut it = lines.next()?.strip_prefix("bench ")?.splitn(3, ' ');
        let total_dynamic: u64 = it.next()?.parse().ok()?;
        let n_groups: usize = it.next()?.parse().ok()?;
        let name = it.next()?;
        if name.is_empty() {
            return None;
        }
        let mut groups = Vec::with_capacity(n_groups);
        for _ in 0..n_groups {
            let mut it = lines.next()?.split_ascii_whitespace();
            let applies: u8 = it.next()?.parse().ok()?;
            let predicts_taken: u8 = it.next()?.parse().ok()?;
            let default_taken = match it.next()? {
                "T" => true,
                "F" => false,
                _ => return None,
            };
            let taken: u64 = it.next()?.parse().ok()?;
            let fallthru: u64 = it.next()?.parse().ok()?;
            if it.next().is_some() {
                return None;
            }
            // Seven heuristics: masks live in the low 7 bits, and a
            // prediction bit without its applies bit is structurally
            // impossible — reject outright.
            if applies > 0x7f || predicts_taken & !applies != 0 {
                return None;
            }
            groups.push(Group {
                key: GroupKey {
                    applies,
                    predicts_taken,
                    default_taken,
                },
                taken,
                fallthru,
            });
        }
        benches.push(BenchOrderData::from_parts(
            name.to_string(),
            groups,
            total_dynamic,
        ));
    }

    let (n_rows, n_cols) = {
        let mut it = lines.next()?.strip_prefix("rates ")?.split(' ');
        let rows: usize = it.next()?.parse().ok()?;
        let cols: usize = it.next()?.parse().ok()?;
        if it.next().is_some() {
            return None;
        }
        (rows, cols)
    };
    if n_cols != benches.len() {
        return None;
    }
    let mut rates = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        let line = lines.next()?;
        let mut row = Vec::with_capacity(n_cols);
        for cell in line.split(' ') {
            if cell.len() != 16 {
                return None;
            }
            let bits = u64::from_str_radix(cell, 16).ok()?;
            row.push(f64::from_bits(bits));
        }
        if row.len() != n_cols {
            return None;
        }
        rates.push(row);
    }
    if lines.next().is_some() {
        return None;
    }
    Some(OrderingArtifacts { benches, rates })
}

fn encode_run(key: &str, a: &RunArtifacts) -> String {
    let mut out = String::new();
    header(&mut out, key, "run");
    encode_run_result(&mut out, a.run);

    let mut counts: Vec<(BranchRef, EdgeCounts)> = a.profile.iter().collect();
    counts.sort_by_key(|(b, _)| *b);
    let _ = writeln!(out, "profile {}", counts.len());
    for (b, c) in counts {
        let _ = writeln!(out, "{} {} {} {}", b.func.0, b.block.0, c.taken, c.fallthru);
    }
    out
}

fn decode_run(key: &str, text: &str) -> Option<RunArtifacts> {
    let mut lines = text.lines();
    check_header(&mut lines, key, "run")?;
    let run = decode_run_result(&mut lines)?;

    let n_profile: usize = lines.next()?.strip_prefix("profile ")?.parse().ok()?;
    let mut counts = Vec::with_capacity(n_profile);
    for _ in 0..n_profile {
        let line = lines.next()?;
        let mut it = line.split_ascii_whitespace();
        let func: u32 = it.next()?.parse().ok()?;
        let block: u32 = it.next()?.parse().ok()?;
        let taken: u64 = it.next()?.parse().ok()?;
        let fallthru: u64 = it.next()?.parse().ok()?;
        if it.next().is_some() {
            return None;
        }
        let b = BranchRef {
            func: FuncId(func),
            block: BlockId(block),
        };
        counts.push((b, EdgeCounts { taken, fallthru }));
    }
    if lines.next().is_some() {
        return None;
    }
    Some(RunArtifacts {
        profile: counts.into_iter().collect(),
        run,
    })
}

// ---- varint + zigzag primitives (trace entry payload) ----

/// Appends `v` as an LEB128 varint (7 bits per byte, high bit =
/// continuation; at most 10 bytes).
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint at `*pos`, advancing it. `None` on
/// truncation or overflow past 64 bits.
fn get_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None; // would overflow u64
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Maps signed deltas to small unsigned values (0, -1, 1, -2, …
/// → 0, 1, 2, 3, …) so varints stay short for near-zero deltas.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// The dictionary payload: per entry, varint(instrs), then zigzag
/// deltas of the branch site against the previous entry (consecutive
/// entries cluster in the same function), with the taken bit packed
/// into the low bit of the block delta.
fn encode_dict(dict: &[TraceEvent]) -> Vec<u8> {
    let mut out = Vec::new();
    let (mut prev_func, mut prev_block) = (0i64, 0i64);
    for e in dict {
        let func = i64::from(e.branch.func.0);
        let block = i64::from(e.branch.block.0);
        put_varint(&mut out, e.instrs);
        put_varint(&mut out, zigzag(func - prev_func));
        put_varint(
            &mut out,
            (zigzag(block - prev_block) << 1) | u64::from(e.taken),
        );
        prev_func = func;
        prev_block = block;
    }
    out
}

fn decode_dict(bytes: &[u8], n_entries: usize) -> Option<Vec<TraceEvent>> {
    let mut dict = Vec::with_capacity(n_entries);
    let mut pos = 0usize;
    let (mut prev_func, mut prev_block) = (0i64, 0i64);
    for _ in 0..n_entries {
        let instrs = get_varint(bytes, &mut pos)?;
        let func = prev_func.checked_add(unzigzag(get_varint(bytes, &mut pos)?))?;
        let packed = get_varint(bytes, &mut pos)?;
        let block = prev_block.checked_add(unzigzag(packed >> 1))?;
        let taken = packed & 1 == 1;
        let func32 = u32::try_from(func).ok()?;
        let block32 = u32::try_from(block).ok()?;
        dict.push(TraceEvent {
            instrs,
            branch: BranchRef {
                func: FuncId(func32),
                block: BlockId(block32),
            },
            taken,
        });
        prev_func = func;
        prev_block = block;
    }
    if pos != bytes.len() {
        return None; // trailing garbage
    }
    Some(dict)
}

/// The sequence payload, run-length encoded: per run of equal indices,
/// varint(zigzag(index − previous run's index)) then varint(run
/// length). Tight loops revisit one event millions of times in a row,
/// so each such burst costs a handful of bytes. Streams the indices so
/// both wide and byte-backed sequence storage encode without an
/// intermediate widened copy.
fn encode_seq(indices: impl Iterator<Item = u32>) -> Vec<u8> {
    let mut out = Vec::new();
    let mut prev = 0i64;
    let mut run: Option<(u32, u64)> = None;
    for idx in indices {
        match &mut run {
            Some((i, n)) if *i == idx => *n += 1,
            _ => {
                if let Some((i, n)) = run.take() {
                    put_varint(&mut out, zigzag(i64::from(i) - prev));
                    put_varint(&mut out, n);
                    prev = i64::from(i);
                }
                run = Some((idx, 1));
            }
        }
    }
    if let Some((i, n)) = run {
        put_varint(&mut out, zigzag(i64::from(i) - prev));
        put_varint(&mut out, n);
    }
    out
}

fn decode_seq(bytes: &[u8], n_events: usize, n_dict: usize) -> Option<Vec<u32>> {
    // Materialising the index sequence is the per-entry cache's one
    // unavoidable per-trace decode allocation; the suite image serves
    // the same bytes zero-copy (see `image`). Count it so benchmarks
    // can prove the mounted path never pays it.
    bpfree_sim::note_trace_seq_alloc();
    let mut seq = Vec::with_capacity(n_events);
    let mut pos = 0usize;
    let mut prev = 0i64;
    while seq.len() < n_events {
        let idx = prev.checked_add(unzigzag(get_varint(bytes, &mut pos)?))?;
        let runlen = get_varint(bytes, &mut pos)?;
        let idx32 = u32::try_from(idx).ok()?;
        if (idx32 as usize) >= n_dict || runlen == 0 {
            return None;
        }
        let new_len = seq.len().checked_add(usize::try_from(runlen).ok()?)?;
        if new_len > n_events {
            return None;
        }
        seq.resize(new_len, idx32);
        prev = idx;
    }
    if pos != bytes.len() {
        return None; // trailing garbage
    }
    Some(seq)
}

fn encode_trace(key: &str, a: &TraceArtifacts) -> Vec<u8> {
    let mut head = String::new();
    header(&mut head, key, "trace");
    encode_run_result(&mut head, a.run);
    let _ = writeln!(head, "tail {}", a.trace.trailing_instrs());

    let dict_bytes = encode_dict(a.trace.dict());
    let seq_bytes = encode_seq(a.trace.indices());
    let _ = writeln!(head, "dict {} {}", a.trace.dict().len(), dict_bytes.len());
    let _ = writeln!(head, "seq {} {}", a.trace.len(), seq_bytes.len());

    let mut out = head.into_bytes();
    out.extend_from_slice(&dict_bytes);
    out.extend_from_slice(&seq_bytes);
    out
}

/// Splits one `\n`-terminated header line off the front of `bytes`.
/// `None` if no newline remains or the line is not UTF-8.
fn next_line<'a>(bytes: &mut &'a [u8]) -> Option<&'a str> {
    let nl = bytes.iter().position(|&b| b == b'\n')?;
    let line = std::str::from_utf8(&bytes[..nl]).ok()?;
    *bytes = &bytes[nl + 1..];
    Some(line)
}

fn decode_trace(key: &str, mut bytes: &[u8]) -> Option<TraceArtifacts> {
    // The text header, parsed line by line off the byte stream.
    if next_line(&mut bytes)? != format!("bpfree-cache v{FORMAT_VERSION}") {
        return None;
    }
    if next_line(&mut bytes)?.strip_prefix("key ")? != key {
        return None;
    }
    if next_line(&mut bytes)?.strip_prefix("kind ")? != "trace" {
        return None;
    }
    let exit: i64 = next_line(&mut bytes)?.strip_prefix("exit ")?.parse().ok()?;
    let instructions: u64 = next_line(&mut bytes)?
        .strip_prefix("instructions ")?
        .parse()
        .ok()?;
    let tail: u64 = next_line(&mut bytes)?.strip_prefix("tail ")?.parse().ok()?;
    let (n_dict, dict_len) = {
        let mut it = next_line(&mut bytes)?.strip_prefix("dict ")?.split(' ');
        let n: usize = it.next()?.parse().ok()?;
        let len: usize = it.next()?.parse().ok()?;
        if it.next().is_some() {
            return None;
        }
        (n, len)
    };
    let (n_seq, seq_len) = {
        let mut it = next_line(&mut bytes)?.strip_prefix("seq ")?.split(' ');
        let n: usize = it.next()?.parse().ok()?;
        let len: usize = it.next()?.parse().ok()?;
        if it.next().is_some() {
            return None;
        }
        (n, len)
    };

    // The binary payload: exactly dict_len + seq_len bytes, no more.
    if bytes.len() != dict_len.checked_add(seq_len)? {
        return None;
    }
    let dict = decode_dict(&bytes[..dict_len], n_dict)?;
    let seq = decode_seq(&bytes[dict_len..], n_seq, dict.len())?;

    Some(TraceArtifacts {
        trace: BranchTrace::from_parts(dict, seq, tail)?,
        run: RunResult { exit, instructions },
    })
}

fn read_entry(dir: &Path, key: &str) -> Option<String> {
    std::fs::read_to_string(entry_path(dir, key)).ok()
}

fn read_entry_bytes(dir: &Path, key: &str) -> Option<Vec<u8>> {
    std::fs::read(entry_path(dir, key)).ok()
}

/// Writes an entry atomically (temp file + rename). Errors are returned,
/// not panicked, so a read-only cache directory degrades to "no
/// caching".
fn write_entry(dir: &Path, key: &str, data: impl AsRef<[u8]>) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let tmp = dir.join(format!(".{key}.tmp.{}", std::process::id()));
    std::fs::write(&tmp, data)?;
    std::fs::rename(&tmp, entry_path(dir, key))
}

/// Loads the compile entry for `key`, or `None` if absent, unreadable,
/// or corrupt. Never panics on bad cache contents.
pub fn lookup_compile(dir: &Path, key: &str) -> Option<CompileArtifacts> {
    decode_compile(key, &read_entry(dir, key)?)
}

/// Stores a compile entry atomically.
pub fn store_compile(dir: &Path, key: &str, a: &CompileArtifacts) -> std::io::Result<()> {
    write_entry(dir, key, encode_compile(key, a))
}

/// Loads the prediction entry for `key`, or `None` if absent,
/// unreadable, or corrupt. The rows are *syntactically* validated here
/// (shape, the Loop ⇔ loop-prediction invariant); matching them against
/// the actual program's branch sites is the caller's job
/// (`BranchClassifier::from_cached` refuses mismatched rows).
pub fn lookup_prediction(dir: &Path, key: &str) -> Option<PredictionArtifacts> {
    decode_prediction(key, &read_entry(dir, key)?)
}

/// Stores a prediction entry atomically.
pub fn store_prediction(dir: &Path, key: &str, a: &PredictionArtifacts) -> std::io::Result<()> {
    write_entry(dir, key, encode_prediction(key, a))
}

/// Loads the run entry for `key` (miss on absence or corruption).
pub fn lookup_run(dir: &Path, key: &str) -> Option<RunArtifacts> {
    decode_run(key, &read_entry(dir, key)?)
}

/// Stores a run entry atomically.
pub fn store_run(dir: &Path, key: &str, a: &RunArtifacts) -> std::io::Result<()> {
    write_entry(dir, key, encode_run(key, a))
}

/// Loads the trace entry for `key` (miss on absence or corruption).
pub fn lookup_trace(dir: &Path, key: &str) -> Option<TraceArtifacts> {
    decode_trace(key, &read_entry_bytes(dir, key)?)
}

/// Stores a trace entry atomically.
pub fn store_trace(dir: &Path, key: &str, a: &TraceArtifacts) -> std::io::Result<()> {
    write_entry(dir, key, encode_trace(key, a))
}

/// Loads the ordering entry for `key` (miss on absence or corruption).
/// The groups and matrix are syntactically validated here; semantic
/// validation against live condensed data is
/// [`OrderingArtifacts::instantiate`]'s job.
pub fn lookup_ordering(dir: &Path, key: &str) -> Option<OrderingArtifacts> {
    decode_ordering(key, &read_entry(dir, key)?)
}

/// Stores an ordering entry atomically.
pub fn store_ordering(dir: &Path, key: &str, a: &OrderingArtifacts) -> std::io::Result<()> {
    write_entry(dir, key, encode_ordering(key, a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpfree_sim::TraceRecorder;

    fn sample() -> (CompileArtifacts, RunArtifacts, TraceArtifacts) {
        let program = bpfree_lang::compile(
            "fn main() -> int {
                int x; int i;
                x = -3;
                if (x < 0) { x = 0; }
                for (i = 0; i < 5; i = i + 1) { x = x + i; }
                return x;
            }",
        )
        .unwrap();
        let mut profiler = bpfree_sim::EdgeProfiler::new();
        let mut recorder = TraceRecorder::new();
        let mut fan = bpfree_sim::Multiplex::new();
        fan.push(&mut profiler);
        fan.push(&mut recorder);
        let run = bpfree_sim::Simulator::new(&program).run(&mut fan).unwrap();
        let profile = profiler.into_profile();
        let trace = recorder.into_trace();
        (
            CompileArtifacts { program },
            RunArtifacts { profile, run },
            TraceArtifacts { trace, run },
        )
    }

    fn sample_predictions(program: &Program) -> PredictionArtifacts {
        let classifier = bpfree_core::BranchClassifier::analyze(program);
        let table = bpfree_core::HeuristicTable::build(program, &classifier);
        PredictionArtifacts::from_computed(&classifier, &table)
    }

    #[test]
    fn compile_roundtrip() {
        let (a, _, _) = sample();
        let key = "0123456789abcdef";
        let text = encode_compile(key, &a);
        let b = decode_compile(key, &text).expect("decodes");
        assert_eq!(a.program, b.program);
    }

    #[test]
    fn prediction_roundtrip() {
        let (c, _, _) = sample();
        let a = sample_predictions(&c.program);
        assert!(!a.rows.is_empty());
        assert!(a.rows.iter().any(|r| r.class == BranchClass::Loop));
        let key = "0123456789abcdef";
        let text = encode_prediction(key, &a);
        let b = decode_prediction(key, &text).expect("decodes");
        assert_eq!(a, b);
    }

    #[test]
    fn prediction_rejects_structural_violations() {
        let (c, _, _) = sample();
        let a = sample_predictions(&c.program);
        let key = "0123456789abcdef";
        let text = encode_prediction(key, &a);
        // A loop row whose loop-prediction cell is blanked out violates
        // the Loop ⇔ Some invariant and must not decode.
        let loop_line = text
            .lines()
            .find(|l| {
                l.split_ascii_whitespace()
                    .nth(2)
                    .is_some_and(|c| c.starts_with('L'))
            })
            .expect("sample has a loop branch");
        let mut cells: Vec<char> = loop_line.chars().collect();
        let cell_at = loop_line.rfind(' ').unwrap() + 1;
        cells[cell_at + 1] = '-';
        let garbled: String = text.replace(loop_line, &cells.iter().collect::<String>());
        assert!(
            decode_prediction(key, &garbled).is_none(),
            "L row without pred"
        );
        // Truncated row list.
        let short = text.replace(&format!("rows {}", a.rows.len()), "rows 999");
        assert!(
            decode_prediction(key, &short).is_none(),
            "row count mismatch"
        );
        // Extra trailing line.
        let long = format!("{text}0 0 NT-------\n");
        assert!(decode_prediction(key, &long).is_none(), "trailing rows");
    }

    #[test]
    fn run_roundtrip() {
        let (_, a, _) = sample();
        let key = "0123456789abcdef";
        let text = encode_run(key, &a);
        let b = decode_run(key, &text).expect("decodes");
        assert_eq!(a.profile, b.profile);
        assert_eq!(a.run, b.run);
    }

    #[test]
    fn trace_roundtrip_including_rle() {
        let (_, _, a) = sample();
        assert!(!a.trace.is_empty());
        let key = "0123456789abcdef";
        let bytes = encode_trace(key, &a);
        // The 5-iteration loop revisits one dictionary entry in a run,
        // so RLE + varints must beat even one byte per event.
        assert!(
            bytes.len() < 120 + a.trace.len(),
            "varint RLE stays sub-byte-per-event ({} bytes for {} events)",
            bytes.len(),
            a.trace.len()
        );
        let b = decode_trace(key, &bytes).expect("decodes");
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.run, b.run);
    }

    #[test]
    fn varint_and_zigzag_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Truncated and overlong varints are rejected.
        assert_eq!(get_varint(&[0x80], &mut 0), None);
        assert_eq!(get_varint(&[0xff; 11], &mut 0), None);
    }

    #[test]
    fn trace_payload_validation() {
        let (_, _, a) = sample();
        let key = "0123456789abcdef";
        let bytes = encode_trace(key, &a);

        // Truncated payload.
        assert!(decode_trace(key, &bytes[..bytes.len() - 1]).is_none());
        // Extra payload bytes.
        let mut long = bytes.clone();
        long.push(0);
        assert!(decode_trace(key, &long).is_none());
        // A flipped payload byte either fails to decode or decodes to a
        // *valid* different trace — never panics.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x55;
        let _ = decode_trace(key, &flipped);
        // Out-of-range sequence index: a one-entry dict with an index-1 run.
        let mut head = String::new();
        header(&mut head, key, "trace");
        encode_run_result(
            &mut head,
            RunResult {
                exit: 0,
                instructions: 0,
            },
        );
        let mut payload = Vec::new();
        put_varint(&mut payload, 1); // instrs
        put_varint(&mut payload, zigzag(0)); // func delta
        put_varint(&mut payload, zigzag(0) << 1); // block delta, fallthru
        let dict_len = payload.len();
        put_varint(&mut payload, zigzag(1)); // idx 1 — out of range
        put_varint(&mut payload, 1);
        let _ = writeln!(head, "tail 0");
        let _ = writeln!(head, "dict 1 {dict_len}");
        let _ = writeln!(head, "seq 1 {}", payload.len() - dict_len);
        let mut entry = head.into_bytes();
        entry.extend_from_slice(&payload);
        assert!(decode_trace(key, &entry).is_none(), "index out of range");
    }

    #[test]
    fn decode_rejects_wrong_key_kind_and_corruption() {
        let (c, r, t) = sample();
        let text = encode_compile("aaaa", &c);
        assert!(decode_compile("bbbb", &text).is_none(), "key mismatch");
        assert!(
            decode_compile("aaaa", &text[..text.len() / 2]).is_none(),
            "truncation"
        );
        assert!(decode_compile("aaaa", "").is_none());
        assert!(
            decode_compile("aaaa", "bpfree-cache v999\n").is_none(),
            "future version"
        );

        // A run entry never decodes as a compile entry or vice versa.
        let run_text = encode_run("aaaa", &r);
        assert!(decode_compile("aaaa", &run_text).is_none(), "kind mismatch");
        assert!(decode_run("aaaa", &text).is_none(), "kind mismatch");

        let garbled = run_text.replace("instructions", "instructoins");
        assert!(decode_run("aaaa", &garbled).is_none(), "garbled field");

        let trace_bytes = encode_trace("aaaa", &t);
        let tail_at = trace_bytes
            .windows(5)
            .position(|w| w == b"tail ")
            .expect("header has a tail line");
        let mut garbled = trace_bytes.clone();
        garbled[tail_at..tail_at + 4].copy_from_slice(b"tali");
        assert!(decode_trace("aaaa", &garbled).is_none(), "garbled tail");
        assert!(
            decode_trace("aaaa", &trace_bytes[..trace_bytes.len() - 8]).is_none(),
            "truncated trace"
        );
    }

    fn ds(v: i64) -> Dataset {
        let mut g = bpfree_ir::GlobalValues::new();
        g.set_int("n", vec![v]);
        Dataset {
            name: "ref".into(),
            values: g,
        }
    }

    #[test]
    fn keys_track_source_options_and_datasets() {
        let k0 = compile_key("b", "src", "O:inline+simplify");
        assert_eq!(k0, compile_key("b", "src", "O:inline+simplify"));
        assert_ne!(k0, compile_key("b", "src2", "O:inline+simplify"), "source");
        assert_ne!(k0, compile_key("b2", "src", "O:inline+simplify"), "name");

        let p0 = prediction_key("b", "src", "O:inline+simplify");
        assert_ne!(p0, k0, "prediction and compile kinds never collide");
        assert_ne!(p0, prediction_key("b", "src2", "O:inline+simplify"));

        let r0 = run_key("b", "src", "O:inline+simplify", &ds(1));
        assert_eq!(r0, run_key("b", "src", "O:inline+simplify", &ds(1)));
        assert_ne!(
            r0,
            run_key("b", "src", "O:inline+simplify", &ds(2)),
            "dataset"
        );
        assert_ne!(r0, k0, "entry kinds never collide");
        assert_ne!(r0, trace_key("b", "src", "O:inline+simplify", &ds(1)));
    }

    fn sample_ordering() -> OrderingArtifacts {
        let (c, r, _) = sample();
        let classifier = bpfree_core::BranchClassifier::analyze(&c.program);
        let table = bpfree_core::HeuristicTable::build(&c.program, &classifier);
        let data = BenchOrderData::build(
            "sample",
            &table,
            &r.profile,
            &classifier,
            bpfree_core::DEFAULT_SEED,
        );
        let study = OrderingStudy::new(vec![data]);
        OrderingArtifacts::from_study(&study)
    }

    #[test]
    fn ordering_roundtrip_is_bit_exact() {
        let a = sample_ordering();
        assert_eq!(a.rates.len(), 5040);
        assert!(!a.benches[0].groups().is_empty());
        let key = "0123456789abcdef";
        let text = encode_ordering(key, &a);
        let b = decode_ordering(key, &text).expect("decodes");
        assert_eq!(a.benches, b.benches);
        assert_eq!(a.rates.len(), b.rates.len());
        for (ra, rb) in a.rates.iter().zip(&b.rates) {
            for (x, y) in ra.iter().zip(rb) {
                assert_eq!(x.to_bits(), y.to_bits(), "bit-exact rates");
            }
        }
        // Instantiation against matching live data succeeds and the
        // rebuilt study carries the persisted matrix.
        let study = b.clone().instantiate(&a.benches).expect("valid live data");
        assert_eq!(study.rates().len(), 5040);
        // Against *diverged* live data it refuses.
        let mut stale = a.benches.clone();
        stale[0] = BenchOrderData::from_parts(
            stale[0].name.clone(),
            stale[0].groups().to_vec(),
            stale[0].total_dynamic() + 1,
        );
        assert!(b.instantiate(&stale).is_none(), "stale groups rejected");
    }

    #[test]
    fn ordering_decode_rejects_corruption() {
        let a = sample_ordering();
        let key = "0123456789abcdef";
        let text = encode_ordering(key, &a);
        assert!(decode_ordering("feedfeedfeedfeed", &text).is_none(), "key");
        // Garbled group line: prediction bit without its applies bit.
        let first_group = text
            .lines()
            .nth(5)
            .expect("first group line after header + benches + bench");
        let garbled = text.replacen(first_group, "0 127 T 1 1", 1);
        assert!(decode_ordering(key, &garbled).is_none(), "pred ⊄ applies");
        // Truncated matrix.
        let cut = text.rfind("\n").unwrap();
        let cut = text[..cut].rfind('\n').unwrap();
        assert!(
            decode_ordering(key, &text[..cut + 1]).is_none(),
            "missing rate row"
        );
        // A non-finite rate cell decodes (it is well-formed hex) but
        // never instantiates.
        let mut rows = a.clone();
        rows.rates[0][0] = f64::NAN;
        let poisoned = encode_ordering(key, &rows);
        let decoded = decode_ordering(key, &poisoned).expect("syntactically fine");
        assert!(
            decoded.instantiate(&a.benches).is_none(),
            "non-finite rate rejected at instantiate"
        );
    }

    #[test]
    fn ordering_keys_track_roster_opt_and_seed() {
        let d1 = ds(1);
        let d2 = ds(2);
        let k0 = ordering_key(&[("a", "src", &d1)], "O", 7);
        assert_eq!(k0, ordering_key(&[("a", "src", &d1)], "O", 7));
        assert_ne!(k0, ordering_key(&[("a", "src2", &d1)], "O", 7), "source");
        assert_ne!(k0, ordering_key(&[("b", "src", &d1)], "O", 7), "name");
        assert_ne!(k0, ordering_key(&[("a", "src", &d2)], "O", 7), "dataset");
        assert_ne!(k0, ordering_key(&[("a", "src", &d1)], "O0", 7), "options");
        assert_ne!(k0, ordering_key(&[("a", "src", &d1)], "O", 8), "seed");
        assert_ne!(
            k0,
            ordering_key(&[("a", "src", &d1), ("b", "src", &d1)], "O", 7),
            "roster size"
        );
        assert_ne!(k0, compile_key("a", "src", "O"), "kinds never collide");
    }

    /// Regression test for the PR 1 cache-key blind spot: artifacts
    /// compiled at `-O0` (e.g. by `opt_ablate`) must never collide with
    /// `-O` entries for the same benchmark.
    #[test]
    fn opt_level_is_part_of_every_key() {
        let o = bpfree_lang::Options::default().fingerprint();
        let o0 = bpfree_lang::Options::o0().fingerprint();
        assert_ne!(o, o0);
        assert_ne!(compile_key("b", "src", o), compile_key("b", "src", o0));
        assert_ne!(
            prediction_key("b", "src", o),
            prediction_key("b", "src", o0)
        );
        assert_ne!(
            run_key("b", "src", o, &ds(1)),
            run_key("b", "src", o0, &ds(1))
        );
        assert_ne!(
            trace_key("b", "src", o, &ds(1)),
            trace_key("b", "src", o0, &ds(1))
        );
    }
}
