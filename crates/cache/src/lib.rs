//! On-disk cache of per-benchmark suite artifacts.
//!
//! Loading the suite means compiling 23 Cmm programs, running seven
//! heuristics over every non-loop branch, and *simulating* each program
//! on its reference dataset — by far the most expensive part of every
//! experiment binary. None of it changes between runs unless the
//! benchmark source, its datasets, or this crate's code changes, so the
//! results are cached on disk and reloaded in milliseconds.
//!
//! # Keying
//!
//! Each entry is keyed by an FNV-1a hash over: the cache format
//! version, the workspace crate version (any code change that ships a
//! new version invalidates everything), the benchmark name, its full
//! source text, and a fingerprint of every dataset (names plus the
//! exact bit patterns of all initial global values). A stale entry is
//! therefore *unreachable*, not just detectable.
//!
//! # Format and robustness
//!
//! Entries are single text files, `<key>.txt`, under the cache
//! directory (default `target/bpfree-cache`, override with
//! `BPFREE_CACHE_DIR`). The program itself is stored as IR text and
//! re-parsed on load — round-trip fidelity is covered by the suite's
//! `roundtrips_every_suite_benchmark` test. Any read, parse, or
//! validation failure makes [`lookup`] return `None` and the caller
//! recomputes; a corrupt cache can cost time but never correctness.
//! Writes go to a temp file first and are renamed into place, so a
//! crashed run cannot leave a half-written entry under a valid key.
//!
//! Set `BPFREE_NO_CACHE=1` (or pass `--no-cache` to the experiment
//! binaries) to bypass the cache entirely.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use bpfree_core::{Direction, HeuristicTable};
use bpfree_ir::{BlockId, BranchRef, FuncId, Program};
use bpfree_sim::{EdgeCounts, EdgeProfile, RunResult};
use bpfree_suite::Dataset;

/// Bump on any change to the file layout below.
const FORMAT_VERSION: u32 = 1;

/// The cached artifacts for one benchmark: everything expensive that
/// [`lookup`] can restore without compiling or simulating.
#[derive(Debug, Clone)]
pub struct Artifacts {
    pub program: Program,
    pub table: HeuristicTable,
    pub profile: EdgeProfile,
    pub run: RunResult,
}

/// The cache directory: `BPFREE_CACHE_DIR`, else
/// `$CARGO_TARGET_DIR/bpfree-cache`, else `target/bpfree-cache`.
pub fn default_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("BPFREE_CACHE_DIR") {
        return PathBuf::from(dir);
    }
    let target = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| "target".into());
    target.join("bpfree-cache")
}

/// Is the cache disabled via `BPFREE_NO_CACHE`?
pub fn disabled_by_env() -> bool {
    std::env::var_os("BPFREE_NO_CACHE").is_some_and(|v| !v.is_empty() && v != "0")
}

/// 64-bit FNV-1a.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, x: u64) {
        self.write(&x.to_le_bytes());
    }

    /// Separator between variable-length fields, so ("ab","c") and
    /// ("a","bc") hash differently.
    fn sep(&mut self) {
        self.write(&[0xff]);
    }
}

/// The content key for one benchmark: hex digest of format version,
/// crate version, benchmark name, source text, and all dataset values.
pub fn key(bench_name: &str, source: &str, datasets: &[Dataset]) -> String {
    let mut h = Fnv::new();
    h.write_u64(u64::from(FORMAT_VERSION));
    h.write(env!("CARGO_PKG_VERSION").as_bytes());
    h.sep();
    h.write(bench_name.as_bytes());
    h.sep();
    h.write(source.as_bytes());
    h.sep();
    for ds in datasets {
        h.write(ds.name.as_bytes());
        h.sep();
        for (name, values) in ds.values.ints() {
            h.write(name.as_bytes());
            h.sep();
            for &v in values {
                h.write_u64(v as u64);
            }
            h.sep();
        }
        for (name, values) in ds.values.floats() {
            h.write(name.as_bytes());
            h.sep();
            for &v in values {
                h.write_u64(v.to_bits());
            }
            h.sep();
        }
        h.sep();
    }
    format!("{:016x}", h.0)
}

fn entry_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("{key}.txt"))
}

/// Serializes `a` to the v1 text format.
fn encode(key: &str, a: &Artifacts) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "bpfree-cache v{FORMAT_VERSION}");
    let _ = writeln!(out, "key {key}");
    let _ = writeln!(out, "exit {}", a.run.exit);
    let _ = writeln!(out, "instructions {}", a.run.instructions);

    let mut counts: Vec<(BranchRef, EdgeCounts)> = a.profile.iter().collect();
    counts.sort_by_key(|(b, _)| *b);
    let _ = writeln!(out, "profile {}", counts.len());
    for (b, c) in counts {
        let _ = writeln!(out, "{} {} {} {}", b.func.0, b.block.0, c.taken, c.fallthru);
    }

    let mut rows: Vec<(BranchRef, &[Option<Direction>; 7])> = a.table.rows().collect();
    rows.sort_by_key(|(b, _)| *b);
    let _ = writeln!(out, "table {}", rows.len());
    for (b, row) in rows {
        let _ = write!(out, "{} {} ", b.func.0, b.block.0);
        for d in row {
            out.push(match d {
                Some(Direction::Taken) => 'T',
                Some(Direction::FallThru) => 'F',
                None => '-',
            });
        }
        out.push('\n');
    }

    let ir = a.program.to_string();
    let _ = writeln!(out, "program {}", ir.lines().count());
    out.push_str(&ir);
    if !ir.ends_with('\n') {
        out.push('\n');
    }
    out
}

/// Parses the v1 text format; `None` on any mismatch (treated as a
/// cache miss by [`lookup`]).
fn decode(key: &str, text: &str) -> Option<Artifacts> {
    let mut lines = text.lines();
    if lines.next()? != format!("bpfree-cache v{FORMAT_VERSION}") {
        return None;
    }
    if lines.next()?.strip_prefix("key ")? != key {
        return None;
    }
    let exit: i64 = lines.next()?.strip_prefix("exit ")?.parse().ok()?;
    let instructions: u64 = lines.next()?.strip_prefix("instructions ")?.parse().ok()?;

    let n_profile: usize = lines.next()?.strip_prefix("profile ")?.parse().ok()?;
    let mut counts = Vec::with_capacity(n_profile);
    for _ in 0..n_profile {
        let line = lines.next()?;
        let mut it = line.split_ascii_whitespace();
        let func: u32 = it.next()?.parse().ok()?;
        let block: u32 = it.next()?.parse().ok()?;
        let taken: u64 = it.next()?.parse().ok()?;
        let fallthru: u64 = it.next()?.parse().ok()?;
        if it.next().is_some() {
            return None;
        }
        let b = BranchRef {
            func: FuncId(func),
            block: BlockId(block),
        };
        counts.push((b, EdgeCounts { taken, fallthru }));
    }
    let profile: EdgeProfile = counts.into_iter().collect();

    let n_rows: usize = lines.next()?.strip_prefix("table ")?.parse().ok()?;
    let mut rows = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        let line = lines.next()?;
        let mut it = line.split_ascii_whitespace();
        let func: u32 = it.next()?.parse().ok()?;
        let block: u32 = it.next()?.parse().ok()?;
        let cells = it.next()?;
        if it.next().is_some() || cells.chars().count() != 7 {
            return None;
        }
        let mut row = [None; 7];
        for (i, c) in cells.chars().enumerate() {
            row[i] = match c {
                'T' => Some(Direction::Taken),
                'F' => Some(Direction::FallThru),
                '-' => None,
                _ => return None,
            };
        }
        rows.push((
            BranchRef {
                func: FuncId(func),
                block: BlockId(block),
            },
            row,
        ));
    }

    let n_ir: usize = lines.next()?.strip_prefix("program ")?.parse().ok()?;
    let ir: Vec<&str> = lines.collect();
    if ir.len() != n_ir {
        return None;
    }
    let program = bpfree_ir::parse_program(&ir.join("\n")).ok()?;

    Some(Artifacts {
        program,
        table: HeuristicTable::from_rows(rows),
        profile,
        run: RunResult { exit, instructions },
    })
}

/// Loads the entry for `key`, or `None` if absent, unreadable, or
/// corrupt. Never panics on bad cache contents.
pub fn lookup(dir: &Path, key: &str) -> Option<Artifacts> {
    let text = std::fs::read_to_string(entry_path(dir, key)).ok()?;
    decode(key, &text)
}

/// Writes the entry for `key` atomically (temp file + rename). Errors
/// are returned, not panicked, so a read-only cache directory degrades
/// to "no caching".
pub fn store(dir: &Path, key: &str, artifacts: &Artifacts) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let tmp = dir.join(format!(".{key}.tmp.{}", std::process::id()));
    std::fs::write(&tmp, encode(key, artifacts))?;
    std::fs::rename(&tmp, entry_path(dir, key))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Artifacts {
        let program = bpfree_lang::compile(
            "fn main() -> int {
                int x;
                x = -3;
                if (x < 0) { x = 0; }
                return x;
            }",
        )
        .unwrap();
        let classifier = bpfree_core::BranchClassifier::analyze(&program);
        let table = HeuristicTable::build(&program, &classifier);
        let mut profile = EdgeProfile::new();
        profile.record(program.branches()[0], true);
        profile.record(program.branches()[0], false);
        Artifacts {
            program,
            table,
            profile,
            run: RunResult {
                exit: 0,
                instructions: 42,
            },
        }
    }

    fn table_rows_sorted(t: &HeuristicTable) -> Vec<(BranchRef, [Option<Direction>; 7])> {
        let mut rows: Vec<_> = t.rows().map(|(b, r)| (b, *r)).collect();
        rows.sort_by_key(|(b, _)| *b);
        rows
    }

    #[test]
    fn encode_decode_roundtrip() {
        let a = sample();
        let key = "0123456789abcdef";
        let text = encode(key, &a);
        let b = decode(key, &text).expect("decodes");
        assert_eq!(a.program, b.program);
        assert_eq!(a.profile, b.profile);
        assert_eq!(a.run, b.run);
        assert_eq!(table_rows_sorted(&a.table), table_rows_sorted(&b.table));
    }

    #[test]
    fn decode_rejects_wrong_key_and_corruption() {
        let a = sample();
        let text = encode("aaaa", &a);
        assert!(decode("bbbb", &text).is_none(), "key mismatch is a miss");
        assert!(
            decode("aaaa", &text[..text.len() / 2]).is_none(),
            "truncation is a miss"
        );
        let garbled = text.replace("instructions 42", "instructions x");
        assert!(
            decode("aaaa", &garbled).is_none(),
            "garbled field is a miss"
        );
        assert!(decode("aaaa", "").is_none());
        assert!(
            decode("aaaa", "bpfree-cache v999\n").is_none(),
            "future version is a miss"
        );
    }

    #[test]
    fn key_tracks_source_and_datasets() {
        let ds = |v: i64| {
            let mut g = bpfree_ir::GlobalValues::new();
            g.set_int("n", vec![v]);
            vec![Dataset {
                name: "ref".into(),
                values: g,
            }]
        };
        let k0 = key("b", "src", &ds(1));
        assert_eq!(k0, key("b", "src", &ds(1)), "deterministic");
        assert_ne!(k0, key("b", "src2", &ds(1)), "source change");
        assert_ne!(k0, key("b2", "src", &ds(1)), "name change");
        assert_ne!(k0, key("b", "src", &ds(2)), "dataset change");
    }
}
