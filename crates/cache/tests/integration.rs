//! End-to-end cache behavior against real suite benchmarks: hits
//! restore exactly what was stored, corruption degrades to a miss, and
//! experiment results computed from cached artifacts are identical to
//! fresh ones.

use std::path::PathBuf;

use bpfree_cache::Artifacts;
use bpfree_core::ordering::{BenchOrderData, OrderingStudy};
use bpfree_core::{BranchClassifier, HeuristicTable, DEFAULT_SEED};

/// A unique scratch cache directory, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        let dir =
            std::env::temp_dir().join(format!("bpfree-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Compiles + simulates one suite benchmark the same way the bench
/// harness does on a cache miss.
fn fresh(name: &str) -> (Artifacts, BranchClassifier) {
    let b = bpfree_suite::by_name(name).expect("benchmark exists");
    let program = b.compile().expect("compiles");
    let classifier = BranchClassifier::analyze(&program);
    let table = HeuristicTable::build(&program, &classifier);
    let (profile, run) = b.profile(&program, 0).expect("runs");
    (
        Artifacts {
            program,
            table,
            profile,
            run,
        },
        classifier,
    )
}

fn suite_key(name: &str) -> String {
    let b = bpfree_suite::by_name(name).expect("benchmark exists");
    bpfree_cache::key(b.name, b.source, &b.datasets())
}

fn table_rows(
    t: &HeuristicTable,
) -> Vec<(bpfree_ir::BranchRef, [Option<bpfree_core::Direction>; 7])> {
    let mut rows: Vec<_> = t.rows().map(|(b, r)| (b, *r)).collect();
    rows.sort_by_key(|(b, _)| *b);
    rows
}

#[test]
fn store_then_lookup_restores_everything() {
    let dir = ScratchDir::new("roundtrip");
    let (a, _) = fresh("grep");
    let key = suite_key("grep");

    assert!(
        bpfree_cache::lookup(&dir.0, &key).is_none(),
        "empty dir is a miss"
    );
    bpfree_cache::store(&dir.0, &key, &a).expect("store succeeds");
    let b = bpfree_cache::lookup(&dir.0, &key).expect("hit after store");

    assert_eq!(a.program, b.program);
    assert_eq!(a.profile, b.profile);
    assert_eq!(a.run, b.run);
    assert_eq!(table_rows(&a.table), table_rows(&b.table));
}

#[test]
fn corruption_is_a_miss_not_a_panic() {
    let dir = ScratchDir::new("corrupt");
    let (a, _) = fresh("compress");
    let key = suite_key("compress");
    bpfree_cache::store(&dir.0, &key, &a).expect("store succeeds");
    let path = dir.0.join(format!("{key}.txt"));
    let text = std::fs::read_to_string(&path).unwrap();

    // Truncation, bit flips in the middle, and outright garbage must
    // all fall back to recompute (lookup -> None), never panic.
    std::fs::write(&path, &text[..text.len() / 3]).unwrap();
    assert!(bpfree_cache::lookup(&dir.0, &key).is_none(), "truncated");

    std::fs::write(&path, text.replace("profile", "profane")).unwrap();
    assert!(
        bpfree_cache::lookup(&dir.0, &key).is_none(),
        "garbled section header"
    );

    std::fs::write(&path, "not a cache file at all\n").unwrap();
    assert!(bpfree_cache::lookup(&dir.0, &key).is_none(), "garbage");

    // And a valid re-store recovers.
    bpfree_cache::store(&dir.0, &key, &a).expect("re-store succeeds");
    assert!(bpfree_cache::lookup(&dir.0, &key).is_some());
}

#[test]
fn keys_differ_across_benchmarks_and_are_stable() {
    let k1 = suite_key("grep");
    let k2 = suite_key("compress");
    assert_ne!(k1, k2);
    assert_eq!(k1, suite_key("grep"), "same inputs, same key");
}

#[test]
fn cached_artifacts_give_identical_experiment_results() {
    let dir = ScratchDir::new("experiment");
    let names = ["grep", "compress", "eqntott"];

    let mut fresh_data = Vec::new();
    let mut cached_data = Vec::new();
    for name in names {
        let (a, classifier) = fresh(name);
        let key = suite_key(name);
        bpfree_cache::store(&dir.0, &key, &a).expect("store succeeds");
        let hit = bpfree_cache::lookup(&dir.0, &key).expect("hit");
        // The harness recomputes the classifier from the cached program.
        let hit_classifier = BranchClassifier::analyze(&hit.program);

        fresh_data.push(BenchOrderData::build(
            name,
            &a.table,
            &a.profile,
            &classifier,
            DEFAULT_SEED,
        ));
        cached_data.push(BenchOrderData::build(
            name,
            &hit.table,
            &hit.profile,
            &hit_classifier,
            DEFAULT_SEED,
        ));
    }

    let fresh_study = OrderingStudy::new(fresh_data);
    let cached_study = OrderingStudy::new(cached_data);

    // Graph 1 data: bit-identical average rates for all 5040 orders.
    assert_eq!(
        fresh_study.sorted_average_rates(),
        cached_study.sorted_average_rates()
    );

    // Table 4 data: identical winners, tallies, and rates.
    let f = fresh_study.subset_experiment(2);
    let c = cached_study.subset_experiment(2);
    assert_eq!(f.len(), c.len());
    for (a, b) in f.iter().zip(&c) {
        assert_eq!(a.order, b.order);
        assert_eq!(a.trials, b.trials);
        assert_eq!(a.trial_fraction.to_bits(), b.trial_fraction.to_bits());
        assert_eq!(a.mean_miss_rate.to_bits(), b.mean_miss_rate.to_bits());
    }
}
