//! End-to-end cache behavior against real suite benchmarks: hits
//! restore exactly what was stored, corruption degrades to a miss,
//! traces rebuild runs by replay, prediction entries rebuild the
//! classifier and heuristic table without re-analysis, and experiment
//! results computed from cached artifacts are identical to fresh ones.

use std::path::PathBuf;

use bpfree_cache::{CompileArtifacts, PredictionArtifacts, RunArtifacts, TraceArtifacts};
use bpfree_core::ordering::{BenchOrderData, OrderingStudy};
use bpfree_core::{BranchClassifier, HeuristicTable, DEFAULT_SEED};
use bpfree_lang::Options;
use bpfree_sim::{EdgeProfiler, Multiplex, TraceRecorder};

/// A unique scratch cache directory, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        let dir =
            std::env::temp_dir().join(format!("bpfree-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

struct Fresh {
    compile: CompileArtifacts,
    prediction: PredictionArtifacts,
    run: RunArtifacts,
    trace: TraceArtifacts,
    classifier: BranchClassifier,
    table: HeuristicTable,
}

/// Compiles + simulates one suite benchmark (dataset 0) the way the
/// engine does on a full miss: one interpreter pass recording profile
/// and trace together, plus the dense prediction rows the engine
/// persists.
fn fresh(name: &str) -> Fresh {
    let b = bpfree_suite::by_name(name).expect("benchmark exists");
    let program = b.compile().expect("compiles");
    let classifier = BranchClassifier::analyze(&program);
    let table = HeuristicTable::build(&program, &classifier);
    let prediction = PredictionArtifacts::from_computed(&classifier, &table);
    let mut profiler = EdgeProfiler::new();
    let mut recorder = TraceRecorder::new();
    let mut fan = Multiplex::new();
    fan.push(&mut profiler);
    fan.push(&mut recorder);
    let run = b
        .run_with(&program, &b.datasets()[0], &mut fan)
        .expect("runs");
    Fresh {
        compile: CompileArtifacts { program },
        prediction,
        run: RunArtifacts {
            profile: profiler.into_profile(),
            run,
        },
        trace: TraceArtifacts {
            trace: recorder.into_trace(),
            run,
        },
        classifier,
        table,
    }
}

fn opt() -> &'static str {
    Options::default().fingerprint()
}

fn compile_key(name: &str) -> String {
    let b = bpfree_suite::by_name(name).expect("benchmark exists");
    bpfree_cache::compile_key(b.name, b.source, opt())
}

fn prediction_key(name: &str) -> String {
    let b = bpfree_suite::by_name(name).expect("benchmark exists");
    bpfree_cache::prediction_key(b.name, b.source, opt())
}

fn run_key(name: &str) -> String {
    let b = bpfree_suite::by_name(name).expect("benchmark exists");
    bpfree_cache::run_key(b.name, b.source, opt(), &b.datasets()[0])
}

fn trace_key(name: &str) -> String {
    let b = bpfree_suite::by_name(name).expect("benchmark exists");
    bpfree_cache::trace_key(b.name, b.source, opt(), &b.datasets()[0])
}

fn table_rows(
    t: &HeuristicTable,
) -> Vec<(bpfree_ir::BranchRef, [Option<bpfree_core::Direction>; 7])> {
    let mut rows: Vec<_> = t.rows().map(|(b, r)| (b, *r)).collect();
    rows.sort_by_key(|(b, _)| *b);
    rows
}

/// Rebuilds the classifier + heuristic table from cached prediction
/// rows, the way the engine's warm path does (no CFG analysis).
fn rebuild(
    program: &bpfree_ir::Program,
    p: &PredictionArtifacts,
) -> (BranchClassifier, HeuristicTable) {
    p.instantiate(program).expect("rows match the program")
}

#[test]
fn store_then_lookup_restores_everything() {
    let dir = ScratchDir::new("roundtrip");
    let f = fresh("grep");

    assert!(
        bpfree_cache::lookup_compile(&dir.0, &compile_key("grep")).is_none(),
        "empty dir is a miss"
    );
    bpfree_cache::store_compile(&dir.0, &compile_key("grep"), &f.compile).expect("store");
    bpfree_cache::store_prediction(&dir.0, &prediction_key("grep"), &f.prediction).expect("store");
    bpfree_cache::store_run(&dir.0, &run_key("grep"), &f.run).expect("store");
    bpfree_cache::store_trace(&dir.0, &trace_key("grep"), &f.trace).expect("store");

    let c2 = bpfree_cache::lookup_compile(&dir.0, &compile_key("grep")).expect("hit");
    let p2 = bpfree_cache::lookup_prediction(&dir.0, &prediction_key("grep")).expect("hit");
    let r2 = bpfree_cache::lookup_run(&dir.0, &run_key("grep")).expect("hit");
    let t2 = bpfree_cache::lookup_trace(&dir.0, &trace_key("grep")).expect("hit");

    assert_eq!(f.compile.program, c2.program);
    assert_eq!(f.prediction, p2);
    assert_eq!(f.run.profile, r2.profile);
    assert_eq!(f.run.run, r2.run);
    assert_eq!(f.trace.trace, t2.trace);
    assert_eq!(f.trace.run, t2.run);

    // The prediction rows fully reconstruct classifier + table.
    let (classifier, table) = rebuild(&c2.program, &p2);
    assert!(f.classifier.rows().eq(classifier.rows()));
    assert_eq!(table_rows(&f.table), table_rows(&table));
}

/// The warm graphs4_11 path: a run entry is derivable from a trace
/// entry by replay alone, with a bit-identical profile.
#[test]
fn trace_replay_rebuilds_the_run_entry() {
    let dir = ScratchDir::new("replay");
    let f = fresh("eqntott");
    bpfree_cache::store_trace(&dir.0, &trace_key("eqntott"), &f.trace).expect("store");

    let t2 = bpfree_cache::lookup_trace(&dir.0, &trace_key("eqntott")).expect("hit");
    let mut profiler = EdgeProfiler::new();
    t2.trace.replay(&mut profiler);
    assert_eq!(profiler.into_profile(), f.run.profile);
    assert_eq!(t2.run, f.run.run);
    assert_eq!(t2.trace.total_instructions(), f.run.run.instructions);
}

#[test]
fn corruption_is_a_miss_not_a_panic() {
    let dir = ScratchDir::new("corrupt");
    let f = fresh("compress");
    let ck = compile_key("compress");
    let pk = prediction_key("compress");
    let rk = run_key("compress");
    let tk = trace_key("compress");
    bpfree_cache::store_compile(&dir.0, &ck, &f.compile).expect("store");
    bpfree_cache::store_prediction(&dir.0, &pk, &f.prediction).expect("store");
    bpfree_cache::store_run(&dir.0, &rk, &f.run).expect("store");
    bpfree_cache::store_trace(&dir.0, &tk, &f.trace).expect("store");

    // Truncation, bit flips in the middle, and outright garbage must
    // all fall back to recompute (lookup -> None), never panic. Trace
    // entries are partly binary (v3), so everything works on bytes.
    for (key, garble) in [
        (&ck, &b"program"[..]),
        (&pk, &b"rows"[..]),
        (&rk, &b"profile"[..]),
        (&tk, &b"dict"[..]),
    ] {
        let path = dir.0.join(format!("{key}.txt"));
        let bytes = std::fs::read(&path).unwrap();

        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        assert!(
            bpfree_cache::lookup_compile(&dir.0, key).is_none()
                && bpfree_cache::lookup_prediction(&dir.0, key).is_none()
                && bpfree_cache::lookup_run(&dir.0, key).is_none()
                && bpfree_cache::lookup_trace(&dir.0, key).is_none(),
            "truncated {key}"
        );

        let at = bytes
            .windows(garble.len())
            .position(|w| w == garble)
            .expect("section header present");
        let mut garbled = bytes.clone();
        garbled[at..at + garble.len()].fill(b'!');
        std::fs::write(&path, garbled).unwrap();
        assert!(
            bpfree_cache::lookup_compile(&dir.0, key).is_none()
                && bpfree_cache::lookup_prediction(&dir.0, key).is_none()
                && bpfree_cache::lookup_run(&dir.0, key).is_none()
                && bpfree_cache::lookup_trace(&dir.0, key).is_none(),
            "garbled section header in {key}"
        );

        std::fs::write(&path, "not a cache file at all\n").unwrap();
        assert!(
            bpfree_cache::lookup_compile(&dir.0, key).is_none()
                && bpfree_cache::lookup_prediction(&dir.0, key).is_none()
                && bpfree_cache::lookup_run(&dir.0, key).is_none()
                && bpfree_cache::lookup_trace(&dir.0, key).is_none(),
            "garbage {key}"
        );
    }

    // And a valid re-store recovers.
    bpfree_cache::store_compile(&dir.0, &ck, &f.compile).expect("re-store");
    assert!(bpfree_cache::lookup_compile(&dir.0, &ck).is_some());
}

#[test]
fn keys_differ_across_benchmarks_kinds_and_opt_levels() {
    assert_ne!(compile_key("grep"), compile_key("compress"));
    assert_eq!(compile_key("grep"), compile_key("grep"), "stable");
    assert_ne!(run_key("grep"), trace_key("grep"), "kind tag");
    assert_ne!(compile_key("grep"), run_key("grep"));
    assert_ne!(compile_key("grep"), prediction_key("grep"), "kind tag");

    // Regression: PR 1's single-key scheme ignored compile options, so
    // an -O0 build (opt_ablate) could poison the -O cache. Every kind
    // now keys on the options fingerprint.
    let b = bpfree_suite::by_name("grep").unwrap();
    let o0 = Options::o0().fingerprint();
    assert_ne!(
        bpfree_cache::compile_key(b.name, b.source, o0),
        compile_key("grep")
    );
    assert_ne!(
        bpfree_cache::prediction_key(b.name, b.source, o0),
        prediction_key("grep")
    );
    assert_ne!(
        bpfree_cache::run_key(b.name, b.source, o0, &b.datasets()[0]),
        run_key("grep")
    );
}

/// Prediction rows from one program must be refused against a different
/// program — the engine falls back to re-analysis rather than serving a
/// classifier for the wrong branch sites.
#[test]
fn stale_prediction_rows_are_refused_against_another_program() {
    let grep = fresh("grep");
    let compress = fresh("compress");
    assert!(grep
        .prediction
        .instantiate(&compress.compile.program)
        .is_none());
}

#[test]
fn cached_artifacts_give_identical_experiment_results() {
    let dir = ScratchDir::new("experiment");
    let names = ["grep", "compress", "eqntott"];

    let mut fresh_data = Vec::new();
    let mut cached_data = Vec::new();
    for name in names {
        let f = fresh(name);
        bpfree_cache::store_compile(&dir.0, &compile_key(name), &f.compile).expect("store");
        bpfree_cache::store_prediction(&dir.0, &prediction_key(name), &f.prediction)
            .expect("store");
        bpfree_cache::store_run(&dir.0, &run_key(name), &f.run).expect("store");
        let hit_c = bpfree_cache::lookup_compile(&dir.0, &compile_key(name)).expect("hit");
        let hit_p = bpfree_cache::lookup_prediction(&dir.0, &prediction_key(name)).expect("hit");
        let hit_r = bpfree_cache::lookup_run(&dir.0, &run_key(name)).expect("hit");
        // The engine's warm path: classifier + table from the rows, no
        // re-analysis.
        let (hit_classifier, hit_table) = rebuild(&hit_c.program, &hit_p);

        fresh_data.push(BenchOrderData::build(
            name,
            &f.table,
            &f.run.profile,
            &f.classifier,
            DEFAULT_SEED,
        ));
        cached_data.push(BenchOrderData::build(
            name,
            &hit_table,
            &hit_r.profile,
            &hit_classifier,
            DEFAULT_SEED,
        ));
    }

    let fresh_study = OrderingStudy::new(fresh_data);
    let cached_study = OrderingStudy::new(cached_data);

    // Graph 1 data: bit-identical average rates for all 5040 orders.
    assert_eq!(
        fresh_study.sorted_average_rates(),
        cached_study.sorted_average_rates()
    );

    // Table 4 data: identical winners, tallies, and rates.
    let f = fresh_study.subset_experiment(2);
    let c = cached_study.subset_experiment(2);
    assert_eq!(f.len(), c.len());
    for (a, b) in f.iter().zip(&c) {
        assert_eq!(a.order, b.order);
        assert_eq!(a.trials, b.trials);
        assert_eq!(a.trial_fraction.to_bits(), b.trial_fraction.to_bits());
        assert_eq!(a.mean_miss_rate.to_bits(), b.mean_miss_rate.to_bits());
    }
}
