//! Corruption fuzzing for the suite-image loader: over arbitrary
//! truncations and arbitrary bit flips at arbitrary offsets, opening an
//! image must either fail cleanly (`Err` → the engine recomputes) or
//! open with every payload still decoding to exactly the pristine
//! contents (the flip landed in never-read padding). Never a panic,
//! never a hang, never silently different data.

use std::sync::OnceLock;

use bpfree_cache::image::{ImageBuilder, SectionKind, SuiteImage};
use bpfree_cache::{CompileArtifacts, PredictionArtifacts, RunArtifacts, TraceArtifacts};
use proptest::prelude::*;

fn pristine() -> &'static Vec<u8> {
    static IMAGE: OnceLock<Vec<u8>> = OnceLock::new();
    IMAGE.get_or_init(|| {
        let program = bpfree_lang::compile(
            "fn main() -> int {
                int x; int i;
                x = 7;
                for (i = 0; i < 40; i = i + 1) {
                    if (i % 3 == 0) { x = x + 2; } else { x = x - 1; }
                }
                return x;
            }",
        )
        .unwrap();
        let mut profiler = bpfree_sim::EdgeProfiler::new();
        let mut recorder = bpfree_sim::TraceRecorder::new();
        let mut fan = bpfree_sim::Multiplex::new();
        fan.push(&mut profiler);
        fan.push(&mut recorder);
        let run = bpfree_sim::Simulator::new(&program).run(&mut fan).unwrap();
        let profile = profiler.into_profile();
        let trace = recorder.into_trace();

        let classifier = bpfree_core::BranchClassifier::analyze(&program);
        let table = bpfree_core::HeuristicTable::build(&program, &classifier);
        let predictions = PredictionArtifacts::from_computed(&classifier, &table);
        let bytecode = bpfree_sim::BytecodeProgram::compile(&program).to_bytes();

        let mut b = ImageBuilder::new();
        b.add_compile("fuzz", "O", 0x11, &CompileArtifacts { program });
        b.add_decoded("fuzz", "O", 0x22, bytecode);
        b.add_prediction("fuzz", "O", 0x33, &predictions);
        b.add_run(
            "fuzz",
            "O",
            0,
            0x44,
            &RunArtifacts {
                profile: profile.clone(),
                run,
            },
        );
        b.add_trace("fuzz", "O", 0, 0x55, &TraceArtifacts { trace, run });
        b.finish()
    })
}

/// Every payload of an opened (possibly padding-flipped) image must
/// match the pristine image's decode bit-for-bit.
fn assert_contents_pristine(img: &SuiteImage) {
    let clean = SuiteImage::from_bytes(pristine().clone()).expect("pristine image opens");
    assert_eq!(img.entries().len(), clean.entries().len());
    for (e, ce) in img.entries().iter().zip(clean.entries()) {
        assert_eq!(e.kind, ce.kind);
        assert_eq!(e.key, ce.key);
        match e.kind {
            SectionKind::Compile => {
                assert_eq!(
                    img.compile(e).unwrap().program,
                    clean.compile(ce).unwrap().program
                );
            }
            SectionKind::Decoded => {
                assert_eq!(
                    img.decoded_bytes(e).unwrap(),
                    clean.decoded_bytes(ce).unwrap()
                );
            }
            SectionKind::Prediction => {
                assert_eq!(img.prediction(e).unwrap(), clean.prediction(ce).unwrap());
            }
            SectionKind::Run => {
                let (a, b) = (img.run(e).unwrap(), clean.run(ce).unwrap());
                assert_eq!(a.profile, b.profile);
                assert_eq!(a.run, b.run);
            }
            SectionKind::Trace => {
                let (a, b) = (img.trace(e).unwrap(), clean.trace(ce).unwrap());
                assert_eq!(a.trace, b.trace);
                assert_eq!(a.run, b.run);
            }
            SectionKind::Ordering => {
                assert_eq!(img.ordering(e).is_some(), clean.ordering(ce).is_some());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any truncation point: opening must fail, not panic.
    #[test]
    fn truncation_fails_cleanly(cut in 0usize..100_000) {
        let bytes = pristine();
        let cut = cut % bytes.len();
        prop_assert!(SuiteImage::from_bytes(bytes[..cut].to_vec()).is_err());
    }

    /// A single bit flip anywhere: either a clean `Err`, or (padding
    /// flip) an open image whose every payload is still pristine.
    #[test]
    fn single_bit_flip_is_detected_or_harmless(at in 0usize..100_000, bit in 0u32..8) {
        let bytes = pristine();
        let at = at % bytes.len();
        let mut flipped = bytes.clone();
        flipped[at] ^= 1 << bit;
        if let Ok(img) = SuiteImage::from_bytes(flipped) {
            assert_contents_pristine(&img);
        }
    }

    /// A burst of random byte corruption: same contract as single
    /// flips.
    #[test]
    fn corruption_bursts_are_detected_or_harmless(
        at in 0usize..100_000,
        junk in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let bytes = pristine();
        let at = at % bytes.len();
        let mut garbled = bytes.clone();
        for (i, &b) in junk.iter().enumerate() {
            if let Some(slot) = garbled.get_mut(at + i) {
                *slot ^= b;
            }
        }
        if let Ok(img) = SuiteImage::from_bytes(garbled) {
            assert_contents_pristine(&img);
        }
    }
}
