//! Integration tests for the engine's headline guarantees:
//!
//! 1. **Single-pass**: a cold engine simulates each (benchmark, dataset)
//!    exactly once even when both a run bundle and a branch trace are
//!    requested, and a warm engine (same cache directory, new process
//!    stand-in) simulates zero times.
//! 2. **Multiplex fidelity** (satellite 3): fanning N observers out of
//!    one interpreter pass is bit-identical to N independent passes —
//!    at `--jobs 1` and `--jobs 8` alike.

use std::path::PathBuf;
use std::sync::Arc;

use bpfree_engine::{Engine, EngineConfig};
use bpfree_lang::Options;
use bpfree_sim::{EdgeProfiler, Multiplex, TraceRecorder};
use bpfree_suite::Benchmark;

fn temp_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bpfree-engine-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cached_engine(dir: &std::path::Path) -> Engine {
    Engine::new(EngineConfig {
        use_cache: true,
        cache_dir: dir.to_path_buf(),
        verbose: false,
        ..EngineConfig::no_cache()
    })
}

fn benches(names: &[&str]) -> Vec<Benchmark> {
    names
        .iter()
        .map(|n| bpfree_suite::by_name(n).expect("suite benchmark"))
        .collect()
}

#[test]
fn cold_engine_simulates_once_per_dataset_warm_engine_zero() {
    let dir = temp_cache("cold-warm");
    let suite = benches(&["eqntott", "qpt"]);
    let refs: Vec<&Benchmark> = suite.iter().collect();
    let opt = Options::default();

    // Cold: every benchmark is traced AND has its run bundle queried,
    // yet costs exactly one interpreter pass.
    let cold = cached_engine(&dir);
    cold.prefetch(&refs, opt, &["eqntott", "qpt"]);
    let cold_runs: Vec<_> = suite.iter().map(|b| cold.run(b, opt, 0)).collect();
    let cold_traces: Vec<_> = suite.iter().map(|b| cold.trace(b, opt, 0)).collect();
    assert_eq!(
        cold.simulations(),
        suite.len() as u64,
        "one pass per (benchmark, dataset) on a cold cache"
    );

    // Warm: a fresh engine over the same directory replays everything
    // from disk without a single interpreter pass.
    let warm = cached_engine(&dir);
    warm.prefetch(&refs, opt, &["eqntott", "qpt"]);
    for (i, b) in suite.iter().enumerate() {
        let bundle = warm.run(b, opt, 0);
        assert_eq!(bundle.result, cold_runs[i].result, "{}", b.name);
        assert_eq!(*bundle.profile, *cold_runs[i].profile, "{}", b.name);
        assert_eq!(*warm.trace(b, opt, 0), *cold_traces[i], "{}", b.name);
    }
    assert_eq!(warm.simulations(), 0, "warm engine never simulates");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cached_run_entry_alone_also_avoids_simulation() {
    let dir = temp_cache("run-only");
    let b = bpfree_suite::by_name("grep").unwrap();
    let opt = Options::default();

    let cold = cached_engine(&dir);
    let cold_bundle = cold.run(&b, opt, 0);
    assert_eq!(cold.simulations(), 1);

    let warm = cached_engine(&dir);
    let warm_bundle = warm.run(&b, opt, 0);
    assert_eq!(warm.simulations(), 0);
    assert_eq!(warm_bundle.result, cold_bundle.result);
    assert_eq!(*warm_bundle.profile, *cold_bundle.profile);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite 3: one `Multiplex` pass over [profiler, tracer] produces
/// artifacts bit-identical to two independent interpreter passes, under
/// serial and 8-way parallel drivers alike.
#[test]
fn multiplexed_pass_is_bit_identical_to_independent_passes_at_any_jobs() {
    let suite = benches(&["eqntott", "qpt", "grep", "compress"]);
    let opt = Options::default();

    for n_jobs in [1usize, 8] {
        let outcomes = bpfree_par::par_map_jobs(n_jobs, &suite, |bench| {
            // Each worker uses its own no-cache engine so nothing is
            // shared; the engine's trace query IS the multiplexed pass.
            let engine = Engine::new(EngineConfig::no_cache());
            let trace = engine.trace(bench, opt, 0);
            let bundle = engine.run(bench, opt, 0);
            assert_eq!(engine.simulations(), 1, "{}: multiplexed", bench.name);

            // Reference: two fully independent passes, one observer each.
            let program = engine.program(bench, opt);
            let dataset = &engine.datasets(bench)[0];
            let mut profiler = EdgeProfiler::new();
            let r1 = bench.run_with(&program, dataset, &mut profiler).unwrap();
            let mut recorder = TraceRecorder::new();
            let r2 = bench.run_with(&program, dataset, &mut recorder).unwrap();
            (
                trace,
                bundle,
                Arc::new(profiler.into_profile()),
                recorder.into_trace(),
                r1,
                r2,
            )
        });
        for (bench, (trace, bundle, profile, ref_trace, r1, r2)) in
            suite.iter().zip(outcomes.iter())
        {
            assert_eq!(r1, r2, "{}: independent passes agree", bench.name);
            assert_eq!(
                bundle.result, *r1,
                "{} jobs={n_jobs}: run result",
                bench.name
            );
            assert_eq!(
                *bundle.profile, **profile,
                "{} jobs={n_jobs}: edge profile",
                bench.name
            );
            assert_eq!(**trace, *ref_trace, "{} jobs={n_jobs}: trace", bench.name);
            assert_eq!(
                trace.total_instructions(),
                r1.instructions,
                "{} jobs={n_jobs}: instruction totals",
                bench.name
            );
        }
    }
}

/// The fan-out itself, exercised directly: Multiplex([a, b]) feeds both
/// observers the same event stream one pass produces.
#[test]
fn multiplex_feeds_every_observer_the_full_stream() {
    let b = bpfree_suite::by_name("eqntott").unwrap();
    let engine = Engine::new(EngineConfig::no_cache());
    let program = engine.program(&b, Options::default());
    let dataset = &engine.datasets(&b)[0];

    let mut p1 = EdgeProfiler::new();
    let mut p2 = EdgeProfiler::new();
    let mut rec = TraceRecorder::new();
    let mut fan = Multiplex::new();
    fan.push(&mut p1);
    fan.push(&mut p2);
    fan.push(&mut rec);
    let result = b.run_with(&program, dataset, &mut fan).unwrap();

    let (prof1, prof2) = (p1.into_profile(), p2.into_profile());
    assert_eq!(prof1, prof2, "sibling observers see identical streams");
    let mut replayed = EdgeProfiler::new();
    rec.into_trace().replay(&mut replayed);
    assert_eq!(replayed.into_profile(), prof1);
    assert!(result.instructions > 0);
}
