//! The demand-driven experiment engine.
//!
//! Every experiment binary in this workspace consumes the same handful
//! of derived artifacts — compiled programs, branch classifications,
//! heuristic tables, edge profiles, run results, branch traces. PR 1
//! computed them eagerly per *benchmark*; this crate turns them into a
//! typed artifact graph that experiments query on demand:
//!
//! * [`Engine::program`] — the compiled [`Program`] of a
//!   `(benchmark, Options)` pair;
//! * [`Engine::predictions`] — the derived prediction artifacts of that
//!   program: branch classifier + heuristic table, a first-class
//!   artifact cached independently of the program so warm runs restore
//!   both from dense rows without a single CFG analysis or heuristic
//!   evaluation ([`Engine::analyses`] counts real analysis passes the
//!   way [`Engine::simulations`] counts interpreter passes);
//! * [`Engine::compiled`] — the two assembled into one [`Compiled`]
//!   bundle;
//! * [`Engine::run`] — edge profile + [`RunResult`] for a
//!   `(benchmark, Options, dataset)` triple;
//! * [`Engine::trace`] — a replayable [`BranchTrace`] of the same
//!   triple, for analyses (IPBC) that need the event stream *after*
//!   training on the run's own profile;
//! * [`Engine::ordering_study`] — the 5040-order miss-rate matrix of a
//!   whole benchmark roster, condensed per benchmark into
//!   [`BenchOrderData`] groups (see [`Engine::order_data`]) and
//!   persisted as a roster-level `ordering` cache entry, so a warm
//!   process restores the matrix without evaluating a single ordering
//!   ([`Engine::orderings`] counts real matrix builds the way
//!   [`Engine::analyses`] counts analysis passes).
//!
//! Each artifact is computed **at most once per process** (a
//! `Mutex<HashMap<Key, Arc<OnceLock<V>>>>` memo: the map lock is held
//! only to fetch the slot, so concurrent queries for different keys
//! compute in parallel while duplicate queries block on the same slot),
//! and persisted through [`bpfree_cache`] so later processes skip the
//! work entirely.
//!
//! # One interpreter pass per (benchmark, dataset)
//!
//! Simulation dominates everything else, so the engine never runs the
//! interpreter twice over the same input. When a trace is requested it
//! fans an [`EdgeProfiler`] and a [`TraceRecorder`] out of a *single*
//! pass ([`bpfree_sim::Multiplex`]) and fills the run memo as a side
//! effect; a cached trace entry rebuilds the run bundle by replay
//! without simulating at all. [`Engine::simulations`] counts actual
//! interpreter passes, so experiments (and tests) can prove the
//! single-pass property: a cold `graphs4_11` performs exactly one
//! simulation per (benchmark, dataset), and a warm one performs zero.
//!
//! # Example
//!
//! ```
//! use bpfree_engine::{Engine, EngineConfig};
//! use bpfree_lang::Options;
//!
//! let engine = Engine::new(EngineConfig::no_cache());
//! let bench = bpfree_suite::by_name("grep").unwrap();
//! let compiled = engine.compiled(&bench, Options::default());
//! let bundle = engine.run(&bench, Options::default(), 0);
//! assert!(bundle.profile.total_branches() > 0);
//! // A second query is a memo hit: still exactly one simulation and
//! // one analysis pass.
//! let again = engine.run(&bench, Options::default(), 0);
//! assert_eq!(again.result, bundle.result);
//! assert_eq!(engine.simulations(), 1);
//! assert_eq!(engine.analyses(), 1);
//! assert!(compiled.table.rows().count() > 0);
//! ```

use std::collections::HashMap;
use std::hash::Hash;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use bpfree_core::ordering::{BenchOrderData, OrderingStudy};
use bpfree_core::{BranchClassifier, HeuristicTable, DEFAULT_SEED};
use bpfree_ir::Program;
use bpfree_lang::Options;
use bpfree_par::timings::timed;
use bpfree_sim::{
    BranchTrace, BytecodeProgram, EdgeProfile, EdgeProfiler, InterpTier, Multiplex, RunResult,
    SimConfig, TraceRecorder,
};
use bpfree_suite::{Benchmark, Dataset, SuiteError};

/// Engine configuration. [`Default`] honours the `BPFREE_NO_CACHE` and
/// `BPFREE_CACHE_DIR` environment variables.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Consult and populate the on-disk artifact cache.
    pub use_cache: bool,
    /// Where the cache lives.
    pub cache_dir: PathBuf,
    /// Print cache hit/miss lines to stderr (never stdout — experiment
    /// output stays byte-identical either way).
    pub verbose: bool,
    /// Which interpreter tier simulations run under. Artifacts are
    /// tier-agnostic (both tiers are observationally identical, so
    /// cached entries are shared), but the cold-path cost is not:
    /// [`InterpTier::Bytecode`] is the fast default and
    /// [`InterpTier::Tree`] the differential-testing reference.
    pub tier: InterpTier,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            use_cache: !bpfree_cache::disabled_by_env(),
            cache_dir: bpfree_cache::default_dir(),
            verbose: true,
            tier: InterpTier::default(),
        }
    }
}

impl EngineConfig {
    /// In-memory memoization only: no disk reads or writes, no stderr
    /// chatter. What tests and examples usually want.
    pub fn no_cache() -> EngineConfig {
        EngineConfig {
            use_cache: false,
            cache_dir: bpfree_cache::default_dir(),
            verbose: false,
            tier: InterpTier::default(),
        }
    }
}

/// The compile-time artifacts of one `(benchmark, Options)` pair.
/// Cheap to clone (all `Arc`s). Assembled from two independently
/// memoized (and independently cached) artifacts: the program, and the
/// [`Predicted`] pair derived from it.
#[derive(Debug, Clone)]
pub struct Compiled {
    pub program: Arc<Program>,
    pub classifier: Arc<BranchClassifier>,
    pub table: Arc<HeuristicTable>,
}

/// The prediction artifacts of one `(benchmark, Options)` pair: the
/// branch classifier and the heuristic table. Cheap to clone.
#[derive(Debug, Clone)]
pub struct Predicted {
    pub classifier: Arc<BranchClassifier>,
    pub table: Arc<HeuristicTable>,
}

/// The artifacts of one simulated `(benchmark, Options, dataset)`
/// triple. Cheap to clone.
#[derive(Debug, Clone)]
pub struct RunBundle {
    pub profile: Arc<EdgeProfile>,
    pub result: RunResult,
}

type CompileKey = (&'static str, Options);
type RunKey = (&'static str, Options, usize);

/// A compute-once memo: the map lock is held only long enough to fetch
/// the slot, so distinct keys compute concurrently while duplicate
/// requests block on the slot's `OnceLock`.
struct Memo<K, V> {
    slots: Mutex<HashMap<K, Arc<OnceLock<V>>>>,
}

impl<K: Eq + Hash, V: Clone> Memo<K, V> {
    fn new() -> Memo<K, V> {
        Memo {
            slots: Mutex::new(HashMap::new()),
        }
    }

    fn slot(&self, key: K) -> Arc<OnceLock<V>> {
        self.slots
            .lock()
            .expect("memo lock poisoned")
            .entry(key)
            .or_default()
            .clone()
    }

    fn get_or_init(&self, key: K, init: impl FnOnce() -> V) -> V {
        self.slot(key).get_or_init(init).clone()
    }

    /// Fills the slot if nothing beat us to it (used when one
    /// computation produces a sibling artifact as a by-product).
    fn offer(&self, key: K, value: V) {
        let _ = self.slot(key).set(value);
    }

    /// The value already in the slot, without computing anything.
    fn peek(&self, key: &K) -> Option<V> {
        self.slots
            .lock()
            .expect("memo lock poisoned")
            .get(key)
            .and_then(|slot| slot.get().cloned())
    }

    /// A snapshot of every filled slot — what [`Engine::export_image`]
    /// packs.
    fn entries(&self) -> Vec<(K, V)>
    where
        K: Clone,
    {
        self.slots
            .lock()
            .expect("memo lock poisoned")
            .iter()
            .filter_map(|(k, slot)| slot.get().map(|v| (k.clone(), v.clone())))
            .collect()
    }
}

/// The artifact graph. See the crate docs; usually accessed through
/// [`install`]/[`global`].
pub struct Engine {
    config: EngineConfig,
    programs: Memo<CompileKey, Arc<Program>>,
    predictions: Memo<CompileKey, Predicted>,
    decoded: Memo<CompileKey, Arc<BytecodeProgram>>,
    runs: Memo<RunKey, RunBundle>,
    traces: Memo<RunKey, Arc<BranchTrace>>,
    datasets: Memo<&'static str, Arc<Vec<Dataset>>>,
    order_data: Memo<CompileKey, Arc<BenchOrderData>>,
    ordering_studies: Memo<(String, Options), Arc<OrderingStudy>>,
    simulations: AtomicU64,
    analyses: AtomicU64,
    orderings: AtomicU64,
    compiles: AtomicU64,
    decodes: AtomicU64,
    trace_records: AtomicU64,
}

impl Engine {
    /// A fresh engine with empty memos.
    pub fn new(config: EngineConfig) -> Engine {
        Engine {
            config,
            programs: Memo::new(),
            predictions: Memo::new(),
            decoded: Memo::new(),
            runs: Memo::new(),
            traces: Memo::new(),
            datasets: Memo::new(),
            order_data: Memo::new(),
            ordering_studies: Memo::new(),
            simulations: AtomicU64::new(0),
            analyses: AtomicU64::new(0),
            orderings: AtomicU64::new(0),
            compiles: AtomicU64::new(0),
            decodes: AtomicU64::new(0),
            trace_records: AtomicU64::new(0),
        }
    }

    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// How many interpreter passes this engine has actually executed —
    /// the currency every other artifact is bought with. Memo and cache
    /// hits don't count; `Multiplex` fan-out means one pass can serve
    /// profile, run result, and trace together.
    pub fn simulations(&self) -> u64 {
        self.simulations.load(Ordering::Relaxed)
    }

    /// How many classifier + heuristic-table computations this engine
    /// has actually executed. Memo and cache hits don't count: a warm
    /// run that restores every prediction artifact from disk reports
    /// zero, which is exactly what the CI parity job asserts.
    pub fn analyses(&self) -> u64 {
        self.analyses.load(Ordering::Relaxed)
    }

    /// How many 5040-order rate matrices this engine has actually
    /// computed. Memo and cache hits don't count: a warm run that
    /// restores the roster's `ordering` entry from disk reports zero,
    /// which is exactly what the CI parity job asserts.
    pub fn orderings(&self) -> u64 {
        self.orderings.load(Ordering::Relaxed)
    }

    /// How many source-to-IR compilations this engine has actually
    /// executed. Memo, cache, and image hits don't count.
    pub fn compiles(&self) -> u64 {
        self.compiles.load(Ordering::Relaxed)
    }

    /// How many bytecode-decode passes this engine has actually
    /// executed. Memo and image hits don't count: a mounted warm start
    /// deserializes the stored bytecode instead of re-lowering.
    pub fn decodes(&self) -> u64 {
        self.decodes.load(Ordering::Relaxed)
    }

    /// How many branch traces this engine has actually *recorded* (via
    /// an instrumented interpreter pass). Memo, cache, and image hits
    /// don't count.
    pub fn trace_records(&self) -> u64 {
        self.trace_records.load(Ordering::Relaxed)
    }

    /// The benchmark's datasets, generated once per process.
    pub fn datasets(&self, bench: &Benchmark) -> Arc<Vec<Dataset>> {
        self.datasets.get_or_init(bench.name, || {
            timed(
                "datasets",
                || bench.name.to_string(),
                || Arc::new(bench.datasets()),
            )
        })
    }

    /// The compiled program, branch classifier, and heuristic table for
    /// `bench` under `opt` — [`Engine::program`] and
    /// [`Engine::predictions`] assembled into one bundle.
    ///
    /// # Panics
    ///
    /// If the benchmark source fails to compile (a suite bug).
    pub fn compiled(&self, bench: &Benchmark, opt: Options) -> Compiled {
        let program = self.program(bench, opt);
        let Predicted { classifier, table } = self.predictions(bench, opt);
        Compiled {
            program,
            classifier,
            table,
        }
    }

    /// The compiled program for `bench` under `opt`.
    ///
    /// # Panics
    ///
    /// If the benchmark source fails to compile (a suite bug).
    pub fn program(&self, bench: &Benchmark, opt: Options) -> Arc<Program> {
        self.programs.get_or_init((bench.name, opt), || {
            timed(
                "compile",
                || format!("{} [{}]", bench.name, opt.fingerprint()),
                || self.build_program(bench, opt),
            )
        })
    }

    /// The prediction artifacts of `bench` under `opt`: branch
    /// classifier + heuristic table, derived from [`Engine::program`]
    /// and memoized (and disk-cached) as their own first-class
    /// artifact. A cache hit restores both from dense per-branch rows
    /// and performs zero CFG analyses ([`Engine::analyses`] stays
    /// flat).
    pub fn predictions(&self, bench: &Benchmark, opt: Options) -> Predicted {
        self.predictions.get_or_init((bench.name, opt), || {
            timed(
                "analyze",
                || format!("{} [{}]", bench.name, opt.fingerprint()),
                || self.build_predictions(bench, opt),
            )
        })
    }

    /// Shorthand for [`Engine::predictions`]`.classifier`.
    pub fn classifier(&self, bench: &Benchmark, opt: Options) -> Arc<BranchClassifier> {
        self.predictions(bench, opt).classifier
    }

    /// Shorthand for [`Engine::predictions`]`.table`.
    pub fn table(&self, bench: &Benchmark, opt: Options) -> Arc<HeuristicTable> {
        self.predictions(bench, opt).table
    }

    /// The flat-bytecode lowering of `bench` under `opt`, decoded once
    /// per process. Decoding is pure (no execution state), so one
    /// [`BytecodeProgram`] serves every dataset's run and trace of the
    /// `(benchmark, Options)` pair.
    pub fn decoded(&self, bench: &Benchmark, opt: Options) -> Arc<BytecodeProgram> {
        self.decoded.get_or_init((bench.name, opt), || {
            timed(
                "decode",
                || format!("{} [{}]", bench.name, opt.fingerprint()),
                || {
                    self.decodes.fetch_add(1, Ordering::Relaxed);
                    Arc::new(BytecodeProgram::compile(&self.program(bench, opt)))
                },
            )
        })
    }

    /// The edge profile and run result of dataset `index`.
    ///
    /// # Errors
    ///
    /// [`SuiteError::NoSuchDataset`] on an out-of-range index.
    ///
    /// # Panics
    ///
    /// If the simulation itself fails (a suite bug).
    pub fn try_run(
        &self,
        bench: &Benchmark,
        opt: Options,
        index: usize,
    ) -> Result<RunBundle, SuiteError> {
        let datasets = self.datasets(bench);
        let dataset = datasets.get(index).ok_or(SuiteError::NoSuchDataset {
            benchmark: bench.name,
            index,
        })?;
        Ok(self.runs.get_or_init((bench.name, opt, index), || {
            timed(
                "run",
                || format!("{}/{}", bench.name, dataset.name),
                || self.compute_run(bench, opt, index, dataset),
            )
        }))
    }

    /// [`Engine::try_run`], panicking on a bad dataset index.
    pub fn run(&self, bench: &Benchmark, opt: Options, index: usize) -> RunBundle {
        self.try_run(bench, opt, index)
            .unwrap_or_else(|e| panic!("engine run {}[{index}]: {e}", bench.name))
    }

    /// The replayable branch trace of dataset `index`. Recording shares
    /// a single interpreter pass with the edge profile, and fills the
    /// run memo as a by-product — request the trace *before* (or
    /// instead of) [`Engine::run`] and the run bundle costs nothing
    /// extra.
    ///
    /// # Errors
    ///
    /// [`SuiteError::NoSuchDataset`] on an out-of-range index.
    pub fn try_trace(
        &self,
        bench: &Benchmark,
        opt: Options,
        index: usize,
    ) -> Result<Arc<BranchTrace>, SuiteError> {
        let datasets = self.datasets(bench);
        let dataset = datasets.get(index).ok_or(SuiteError::NoSuchDataset {
            benchmark: bench.name,
            index,
        })?;
        Ok(self.traces.get_or_init((bench.name, opt, index), || {
            timed(
                "trace",
                || format!("{}/{}", bench.name, dataset.name),
                || self.compute_trace(bench, opt, index, dataset),
            )
        }))
    }

    /// [`Engine::try_trace`], panicking on a bad dataset index.
    pub fn trace(&self, bench: &Benchmark, opt: Options, index: usize) -> Arc<BranchTrace> {
        self.try_trace(bench, opt, index)
            .unwrap_or_else(|e| panic!("engine trace {}[{index}]: {e}", bench.name))
    }

    /// The condensed ordering rows of `bench` under `opt`: its non-loop
    /// branches grouped by (applies, predicts-taken, default) signature
    /// against dataset 0's edge profile — the per-benchmark input every
    /// ordering study consumes. Memoized per `(benchmark, Options)`;
    /// the underlying prediction and run artifacts come from their own
    /// (cached) queries, so a warm condense performs no analysis or
    /// interpreter pass.
    pub fn order_data(&self, bench: &Benchmark, opt: Options) -> Arc<BenchOrderData> {
        self.order_data.get_or_init((bench.name, opt), || {
            let Predicted { classifier, table } = self.predictions(bench, opt);
            let run = self.run(bench, opt, 0);
            Arc::new(BenchOrderData::build(
                bench.name,
                &table,
                &run.profile,
                &classifier,
                DEFAULT_SEED,
            ))
        })
    }

    /// The [`OrderingStudy`] of a whole roster: condensed
    /// [`BenchOrderData`] per benchmark plus the 5040 × n miss-rate
    /// matrix. Memoized per (roster, Options) and persisted as a
    /// roster-level `ordering` cache entry keyed by every member's
    /// (name, source, reference dataset), the options fingerprint, and
    /// the Default-predictor seed. A cache hit revalidates the stored
    /// groups against the live condensed data and restores the matrix
    /// bit-for-bit without evaluating a single ordering; any mismatch
    /// falls through to a clean recompute ([`Engine::orderings`] counts
    /// the real matrix builds).
    pub fn ordering_study(&self, benches: &[&Benchmark], opt: Options) -> Arc<OrderingStudy> {
        let roster: Vec<&str> = benches.iter().map(|b| b.name).collect();
        // Warm every member's prediction + run artifacts in one
        // dependency-aware plan BEFORE taking the memo slot: the memo
        // init must stay wait-free. A parallel wait inside it would
        // let the pool's help-while-waiting scope steal a queued task
        // (e.g. another experiment) that re-enters this same slot on
        // the same thread — a permanent self-deadlock. Prefetch is
        // idempotent, so re-entrant callers racing here only repeat
        // cheap memo hits.
        self.prefetch(benches, opt, &[]);
        self.ordering_studies
            .get_or_init((roster.join(","), opt), || {
                timed(
                    "ordering",
                    || format!("{} benches [{}]", benches.len(), opt.fingerprint()),
                    || self.build_ordering(benches, opt),
                )
            })
    }

    /// Warms the memos for a whole roster: compile artifacts plus
    /// dataset 0's run bundle for every benchmark, and a branch trace
    /// too for those named in `traced` (still one interpreter pass each
    /// — the trace request comes first and the run bundle falls out of
    /// it).
    ///
    /// The work runs as a dependency-aware [`bpfree_par::Plan`] on the
    /// shared pool: per benchmark, a dataset-generation node and a
    /// compile node (plus a bytecode-decode node behind the compile)
    /// feed a simulate node. Independent benchmarks' compiles and
    /// simulations overlap freely instead of running level-by-level,
    /// and a long simulation no longer blocks another benchmark's
    /// compile from starting.
    pub fn prefetch(&self, benches: &[&Benchmark], opt: Options, traced: &[&str]) {
        let mut plan = bpfree_par::Plan::new();
        for &bench in benches {
            self.plan_warmup(&mut plan, bench, opt, traced.contains(&bench.name));
        }
        plan.run();
    }

    /// Adds this benchmark's warm-up chain (datasets ∥ compile →
    /// (analyze ∥ decode) → simulate dataset 0) to `plan`, returning
    /// the final simulate node so batch callers can hang dependents off
    /// it. Prediction analysis and bytecode decoding both depend only
    /// on the compiled program, so they overlap; the simulate node
    /// waits for both, guaranteeing every `Compiled` artifact is warm
    /// when the plan drains. The nodes only touch memos, so a plan node
    /// that races a direct query for the same artifact still computes
    /// it exactly once.
    pub fn plan_warmup<'e>(
        &'e self,
        plan: &mut bpfree_par::Plan<'e>,
        bench: &'e Benchmark,
        opt: Options,
        traced: bool,
    ) -> bpfree_par::NodeId {
        let datasets = plan.add(&[], move || {
            let _ = self.datasets(bench);
        });
        let compiled = plan.add(&[], move || {
            let _ = self.program(bench, opt);
        });
        let analyzed = plan.add(&[compiled], move || {
            let _ = self.predictions(bench, opt);
        });
        let ready = if self.config.tier == InterpTier::Bytecode {
            plan.add(&[compiled], move || {
                let _ = self.decoded(bench, opt);
            })
        } else {
            compiled
        };
        plan.add(&[datasets, ready, analyzed], move || {
            if traced {
                let _ = self.trace(bench, opt, 0);
            }
            let _ = self.run(bench, opt, 0);
        })
    }

    /// One interpreter pass under the configured [`InterpTier`] —
    /// every simulation the engine performs funnels through here.
    fn simulate<O: bpfree_sim::ExecObserver>(
        &self,
        bench: &Benchmark,
        opt: Options,
        program: &Program,
        dataset: &Dataset,
        observer: &mut O,
    ) -> Result<RunResult, SuiteError> {
        self.simulations.fetch_add(1, Ordering::Relaxed);
        match self.config.tier {
            InterpTier::Bytecode => {
                let decoded = self.decoded(bench, opt);
                bench.run_decoded(program, &decoded, dataset, observer)
            }
            InterpTier::Tree => bench.run_with_config(
                program,
                dataset,
                SimConfig {
                    tier: InterpTier::Tree,
                    ..SimConfig::default()
                },
                observer,
            ),
        }
    }

    fn note(&self, outcome: &str, what: std::fmt::Arguments<'_>) {
        if self.config.use_cache && self.config.verbose {
            eprintln!("[bpfree-engine] {outcome} {what}");
        }
    }

    fn build_program(&self, bench: &Benchmark, opt: Options) -> Arc<Program> {
        let fp = opt.fingerprint();
        if self.config.use_cache {
            let key = bpfree_cache::compile_key(bench.name, bench.source, fp);
            if let Some(hit) = bpfree_cache::lookup_compile(&self.config.cache_dir, &key) {
                self.note("hit ", format_args!("compile {} [{fp}]", bench.name));
                return Arc::new(hit.program);
            }
            self.note("miss", format_args!("compile {} [{fp}]", bench.name));
        }
        self.compiles.fetch_add(1, Ordering::Relaxed);
        let program = bpfree_lang::compile_with(bench.source, opt)
            .unwrap_or_else(|e| panic!("benchmark `{}` fails to compile: {e}", bench.name));
        if self.config.use_cache {
            let key = bpfree_cache::compile_key(bench.name, bench.source, fp);
            let _ = bpfree_cache::store_compile(
                &self.config.cache_dir,
                &key,
                &bpfree_cache::CompileArtifacts {
                    program: program.clone(),
                },
            );
        }
        Arc::new(program)
    }

    fn build_predictions(&self, bench: &Benchmark, opt: Options) -> Predicted {
        let fp = opt.fingerprint();
        let program = self.program(bench, opt);
        if self.config.use_cache {
            let key = bpfree_cache::prediction_key(bench.name, bench.source, fp);
            if let Some(hit) = bpfree_cache::lookup_prediction(&self.config.cache_dir, &key) {
                // Rows are validated against the actual program; a
                // mismatch (stale or foreign rows under a colliding
                // key) falls through to a clean recompute.
                if let Some((classifier, table)) = hit.instantiate(&program) {
                    self.note("hit ", format_args!("analyze {} [{fp}]", bench.name));
                    return Predicted {
                        classifier: Arc::new(classifier),
                        table: Arc::new(table),
                    };
                }
            }
            self.note("miss", format_args!("analyze {} [{fp}]", bench.name));
        }
        self.analyses.fetch_add(1, Ordering::Relaxed);
        let classifier = BranchClassifier::analyze(&program);
        let table = HeuristicTable::build(&program, &classifier);
        if self.config.use_cache {
            let key = bpfree_cache::prediction_key(bench.name, bench.source, fp);
            let _ = bpfree_cache::store_prediction(
                &self.config.cache_dir,
                &key,
                &bpfree_cache::PredictionArtifacts::from_computed(&classifier, &table),
            );
        }
        Predicted {
            classifier: Arc::new(classifier),
            table: Arc::new(table),
        }
    }

    /// Runs inside the `ordering_studies` memo slot, so every step is
    /// strictly serial ([`OrderingStudy::new_serial`], no nested
    /// scopes): see [`Engine::ordering_study`] for why waiting here
    /// could deadlock the pool. The roster was prefetched by the
    /// caller, so the condense below is all memo hits.
    fn build_ordering(&self, benches: &[&Benchmark], opt: Options) -> Arc<OrderingStudy> {
        let fp = opt.fingerprint();
        let live: Vec<BenchOrderData> = benches
            .iter()
            .map(|&b| (*self.order_data(b, opt)).clone())
            .collect();
        if self.config.use_cache {
            let datasets: Vec<Arc<Vec<Dataset>>> =
                benches.iter().map(|&b| self.datasets(b)).collect();
            let members: Vec<(&str, &str, &Dataset)> = benches
                .iter()
                .zip(&datasets)
                .map(|(b, ds)| (b.name, b.source, &ds[0]))
                .collect();
            let key = bpfree_cache::ordering_key(&members, fp, DEFAULT_SEED);
            if let Some(hit) = bpfree_cache::lookup_ordering(&self.config.cache_dir, &key) {
                // The stored groups are validated against the live
                // condensed data; a mismatch (stale or foreign rows
                // under a colliding key) falls through to a clean
                // recompute.
                if let Some(study) = hit.instantiate(&live) {
                    self.note(
                        "hit ",
                        format_args!("ordering {} benches [{fp}]", benches.len()),
                    );
                    return Arc::new(study);
                }
            }
            self.note(
                "miss",
                format_args!("ordering {} benches [{fp}]", benches.len()),
            );
            self.orderings.fetch_add(1, Ordering::Relaxed);
            let study = OrderingStudy::new_serial(live);
            let _ = bpfree_cache::store_ordering(
                &self.config.cache_dir,
                &key,
                &bpfree_cache::OrderingArtifacts::from_study(&study),
            );
            return Arc::new(study);
        }
        self.orderings.fetch_add(1, Ordering::Relaxed);
        Arc::new(OrderingStudy::new_serial(live))
    }

    fn compute_run(
        &self,
        bench: &Benchmark,
        opt: Options,
        index: usize,
        dataset: &Dataset,
    ) -> RunBundle {
        let fp = opt.fingerprint();
        if self.config.use_cache {
            let key = bpfree_cache::run_key(bench.name, bench.source, fp, dataset);
            if let Some(hit) = bpfree_cache::lookup_run(&self.config.cache_dir, &key) {
                self.note("hit ", format_args!("run {}/{}", bench.name, dataset.name));
                return RunBundle {
                    profile: Arc::new(hit.profile),
                    result: hit.run,
                };
            }
            // A trace entry subsumes a run entry: replay it instead of
            // simulating.
            let tkey = bpfree_cache::trace_key(bench.name, bench.source, fp, dataset);
            if let Some(hit) = bpfree_cache::lookup_trace(&self.config.cache_dir, &tkey) {
                self.note(
                    "hit ",
                    format_args!("run {}/{} (trace replay)", bench.name, dataset.name),
                );
                return RunBundle {
                    profile: Arc::new(hit.trace.edge_profile()),
                    result: hit.run,
                };
            }
            self.note("miss", format_args!("run {}/{}", bench.name, dataset.name));
        }
        let program = self.program(bench, opt);
        let mut profiler = EdgeProfiler::new();
        let result = self
            .simulate(bench, opt, &program, dataset, &mut profiler)
            .unwrap_or_else(|e| panic!("benchmark `{}`[{index}] fails to run: {e}", bench.name));
        let profile = profiler.into_profile();
        if self.config.use_cache {
            let key = bpfree_cache::run_key(bench.name, bench.source, fp, dataset);
            let _ = bpfree_cache::store_run(
                &self.config.cache_dir,
                &key,
                &bpfree_cache::RunArtifacts {
                    profile: profile.clone(),
                    run: result,
                },
            );
        }
        RunBundle {
            profile: Arc::new(profile),
            result,
        }
    }

    fn compute_trace(
        &self,
        bench: &Benchmark,
        opt: Options,
        index: usize,
        dataset: &Dataset,
    ) -> Arc<BranchTrace> {
        let fp = opt.fingerprint();
        if self.config.use_cache {
            let key = bpfree_cache::trace_key(bench.name, bench.source, fp, dataset);
            if let Some(hit) = bpfree_cache::lookup_trace(&self.config.cache_dir, &key) {
                self.note(
                    "hit ",
                    format_args!("trace {}/{}", bench.name, dataset.name),
                );
                let trace = Arc::new(hit.trace);
                // Rebuild the run bundle from the O(dict) tally — the
                // warm path needs zero interpreter passes and zero
                // O(events) replays.
                self.runs.offer(
                    (bench.name, opt, index),
                    RunBundle {
                        profile: Arc::new(trace.edge_profile()),
                        result: hit.run,
                    },
                );
                return trace;
            }
            self.note(
                "miss",
                format_args!("trace {}/{}", bench.name, dataset.name),
            );
        }
        // One pass, two observers: profile and trace from the same
        // execution.
        self.trace_records.fetch_add(1, Ordering::Relaxed);
        let program = self.program(bench, opt);
        let mut profiler = EdgeProfiler::new();
        let mut recorder = TraceRecorder::new();
        let mut fan = Multiplex::new();
        fan.push(&mut profiler);
        fan.push(&mut recorder);
        let result = self
            .simulate(bench, opt, &program, dataset, &mut fan)
            .unwrap_or_else(|e| panic!("benchmark `{}`[{index}] fails to run: {e}", bench.name));
        let trace = Arc::new(recorder.into_trace());
        let profile = profiler.into_profile();
        if self.config.use_cache {
            let tkey = bpfree_cache::trace_key(bench.name, bench.source, fp, dataset);
            let _ = bpfree_cache::store_trace(
                &self.config.cache_dir,
                &tkey,
                &bpfree_cache::TraceArtifacts {
                    trace: (*trace).clone(),
                    run: result,
                },
            );
            let rkey = bpfree_cache::run_key(bench.name, bench.source, fp, dataset);
            let _ = bpfree_cache::store_run(
                &self.config.cache_dir,
                &rkey,
                &bpfree_cache::RunArtifacts {
                    profile: profile.clone(),
                    run: result,
                },
            );
        }
        self.runs.offer(
            (bench.name, opt, index),
            RunBundle {
                profile: Arc::new(profile),
                result,
            },
        );
        trace
    }

    /// Mounts a suite image (see [`bpfree_cache::image`]): one buffered
    /// read, then every entry whose content key revalidates against the
    /// *live* suite (current sources, options, regenerated datasets) is
    /// offered straight into the memos. After mounting a complete
    /// image, every counter on this engine stays at zero through a full
    /// experiment sweep — no compiles, no decodes, no analyses, no
    /// simulations, no trace recordings, no matrix builds — and traces
    /// borrow their index sequences from the image buffer (zero decode
    /// allocations).
    ///
    /// Entries that fail revalidation are skipped, not errors: the
    /// engine recomputes them on demand exactly as if they were absent.
    /// A structurally corrupt image (bad magic, checksum, truncation)
    /// is a clean `Err` and mounts nothing.
    ///
    /// Dataset generation during the mount is uncounted (datasets are
    /// process-local inputs, not cached artifacts).
    pub fn mount_image(&self, path: &std::path::Path) -> Result<MountReport, String> {
        let img = bpfree_cache::image::SuiteImage::open(path)?;
        let mut report = MountReport {
            mounted: 0,
            skipped: 0,
            bytes: img.total_bytes() as u64,
        };
        // Which (bench, opt) pairs had prediction / reference-run
        // entries mounted: ordering studies validate against live
        // condensed data, so they only mount on top of fully mounted
        // members (otherwise the validation itself would recompute).
        let mut preds = std::collections::HashSet::new();
        let mut runs0 = std::collections::HashSet::new();
        for e in img.entries() {
            if self.mount_entry(&img, e, &mut preds, &mut runs0) {
                report.mounted += 1;
            } else {
                report.skipped += 1;
                if self.config.verbose {
                    eprintln!(
                        "[bpfree-engine] skip image entry {} {} [{}]",
                        e.kind.name(),
                        e.name,
                        e.opt
                    );
                }
            }
        }
        Ok(report)
    }

    /// Mounts one image entry; `false` means "skip and recompute on
    /// demand" — never an error. The directory is sorted by kind in
    /// dependency order (compile → decoded → prediction → run → trace →
    /// ordering), so dependents can peek at what earlier entries
    /// mounted.
    fn mount_entry(
        &self,
        img: &bpfree_cache::image::SuiteImage,
        e: &bpfree_cache::image::ImageEntry,
        preds: &mut std::collections::HashSet<(&'static str, Options)>,
        runs0: &mut std::collections::HashSet<(&'static str, Options)>,
    ) -> bool {
        use bpfree_cache::image::SectionKind;
        let Some(opt) = options_from_fingerprint(&e.opt) else {
            return false;
        };
        let fp = opt.fingerprint();

        if e.kind == SectionKind::Ordering {
            let Some(art) = img.ordering(e) else {
                return false;
            };
            let mut roster = Vec::with_capacity(art.benches.len());
            for bd in &art.benches {
                let Some(bench) = bpfree_suite::by_name(&bd.name) else {
                    return false;
                };
                if !preds.contains(&(bench.name, opt)) || !runs0.contains(&(bench.name, opt)) {
                    return false;
                }
                roster.push(bench);
            }
            let datasets: Vec<Arc<Vec<Dataset>>> =
                roster.iter().map(|b| self.datasets(b)).collect();
            let mut members = Vec::with_capacity(roster.len());
            for (b, ds) in roster.iter().zip(&datasets) {
                let Some(first) = ds.first() else {
                    return false;
                };
                members.push((b.name, b.source, first));
            }
            if bpfree_cache::ordering_key_hash(&members, fp, DEFAULT_SEED) != e.key {
                return false;
            }
            // Validate the stored groups against live condensed data —
            // all memo hits thanks to the member checks above.
            let live: Vec<BenchOrderData> = roster
                .iter()
                .map(|b| (*self.order_data(b, opt)).clone())
                .collect();
            let Some(study) = art.instantiate(&live) else {
                return false;
            };
            let names: Vec<&str> = roster.iter().map(|b| b.name).collect();
            self.ordering_studies
                .offer((names.join(","), opt), Arc::new(study));
            return true;
        }

        let Some(bench) = bpfree_suite::by_name(&e.name) else {
            return false;
        };
        let name = bench.name;
        match e.kind {
            SectionKind::Compile => {
                if bpfree_cache::compile_key_hash(name, bench.source, fp) != e.key {
                    return false;
                }
                let Some(hit) = img.compile(e) else {
                    return false;
                };
                self.programs.offer((name, opt), Arc::new(hit.program));
                true
            }
            SectionKind::Decoded => {
                if bpfree_cache::decoded_key_hash(name, bench.source, fp) != e.key {
                    return false;
                }
                let Some(program) = self.programs.peek(&(name, opt)) else {
                    return false;
                };
                let Some(bytes) = img.decoded_bytes(e) else {
                    return false;
                };
                let Some(bc) = BytecodeProgram::from_bytes(bytes, &program) else {
                    return false;
                };
                self.decoded.offer((name, opt), Arc::new(bc));
                true
            }
            SectionKind::Prediction => {
                if bpfree_cache::prediction_key_hash(name, bench.source, fp) != e.key {
                    return false;
                }
                let Some(program) = self.programs.peek(&(name, opt)) else {
                    return false;
                };
                let Some(hit) = img.prediction(e) else {
                    return false;
                };
                let Some((classifier, table)) = hit.instantiate(&program) else {
                    return false;
                };
                self.predictions.offer(
                    (name, opt),
                    Predicted {
                        classifier: Arc::new(classifier),
                        table: Arc::new(table),
                    },
                );
                preds.insert((name, opt));
                true
            }
            SectionKind::Run | SectionKind::Trace => {
                let Some(idx) = e.dataset else {
                    return false;
                };
                let datasets = self.datasets(&bench);
                let Some(ds) = datasets.get(idx as usize) else {
                    return false;
                };
                if e.kind == SectionKind::Run {
                    if bpfree_cache::run_key_hash(name, bench.source, fp, ds) != e.key {
                        return false;
                    }
                    let Some(hit) = img.run(e) else {
                        return false;
                    };
                    self.runs.offer(
                        (name, opt, idx as usize),
                        RunBundle {
                            profile: Arc::new(hit.profile),
                            result: hit.run,
                        },
                    );
                } else {
                    if bpfree_cache::trace_key_hash(name, bench.source, fp, ds) != e.key {
                        return false;
                    }
                    let Some(hit) = img.trace(e) else {
                        return false;
                    };
                    let trace = Arc::new(hit.trace);
                    // A trace subsumes a run: rebuild the bundle from
                    // the O(dict) tally. No-op if the run entry itself
                    // already mounted (kind order guarantees it came
                    // first).
                    self.runs.offer(
                        (name, opt, idx as usize),
                        RunBundle {
                            profile: Arc::new(trace.edge_profile()),
                            result: hit.run,
                        },
                    );
                    self.traces.offer((name, opt, idx as usize), trace);
                }
                if idx == 0 {
                    runs0.insert((name, opt));
                }
                true
            }
            SectionKind::Ordering => unreachable!("handled above"),
        }
    }

    /// Snapshots every filled memo into a suite image at `path` (temp
    /// file + atomic rename). The export is deterministic: two exports
    /// of the same engine state are byte-identical. Returns the entry
    /// count and the image size in bytes.
    pub fn export_image(&self, path: &std::path::Path) -> std::io::Result<(usize, u64)> {
        let mut b = bpfree_cache::image::ImageBuilder::new();
        for ((name, opt), program) in self.programs.entries() {
            let Some(bench) = bpfree_suite::by_name(name) else {
                continue;
            };
            let fp = opt.fingerprint();
            b.add_compile(
                name,
                fp,
                bpfree_cache::compile_key_hash(name, bench.source, fp),
                &bpfree_cache::CompileArtifacts {
                    program: (*program).clone(),
                },
            );
        }
        // Decoded bytecode is demanded (not snapshotted): the memo only
        // fills when a simulation or replay actually needs it, so a
        // warm-cache build would otherwise export fewer `decoded`
        // entries than a cold one and break double-build determinism.
        // Decoding is a pure, cheap transform, so the closure rule is
        // simply "every exported program ships its decoded form".
        for ((name, opt), _) in self.programs.entries() {
            let Some(bench) = bpfree_suite::by_name(name) else {
                continue;
            };
            let fp = opt.fingerprint();
            b.add_decoded(
                name,
                fp,
                bpfree_cache::decoded_key_hash(name, bench.source, fp),
                self.decoded(&bench, opt).to_bytes(),
            );
        }
        for ((name, opt), p) in self.predictions.entries() {
            let Some(bench) = bpfree_suite::by_name(name) else {
                continue;
            };
            let fp = opt.fingerprint();
            b.add_prediction(
                name,
                fp,
                bpfree_cache::prediction_key_hash(name, bench.source, fp),
                &bpfree_cache::PredictionArtifacts::from_computed(&p.classifier, &p.table),
            );
        }
        for ((name, opt, idx), bundle) in self.runs.entries() {
            let Some(bench) = bpfree_suite::by_name(name) else {
                continue;
            };
            let fp = opt.fingerprint();
            let datasets = self.datasets(&bench);
            let Some(ds) = datasets.get(idx) else {
                continue;
            };
            b.add_run(
                name,
                fp,
                idx as u32,
                bpfree_cache::run_key_hash(name, bench.source, fp, ds),
                &bpfree_cache::RunArtifacts {
                    profile: (*bundle.profile).clone(),
                    run: bundle.result,
                },
            );
        }
        for ((name, opt, idx), trace) in self.traces.entries() {
            let Some(bench) = bpfree_suite::by_name(name) else {
                continue;
            };
            // The run result rides along with every trace entry; the
            // run memo always holds it (trace computation fills it as a
            // by-product).
            let Some(bundle) = self.runs.peek(&(name, opt, idx)) else {
                continue;
            };
            let fp = opt.fingerprint();
            let datasets = self.datasets(&bench);
            let Some(ds) = datasets.get(idx) else {
                continue;
            };
            b.add_trace(
                name,
                fp,
                idx as u32,
                bpfree_cache::trace_key_hash(name, bench.source, fp, ds),
                &bpfree_cache::TraceArtifacts {
                    trace: (*trace).clone(),
                    run: bundle.result,
                },
            );
        }
        for ((roster, opt), study) in self.ordering_studies.entries() {
            let fp = opt.fingerprint();
            let benches: Vec<Benchmark> = roster
                .split(',')
                .filter_map(bpfree_suite::by_name)
                .collect();
            if benches.len() != roster.split(',').count() {
                continue;
            }
            let datasets: Vec<Arc<Vec<Dataset>>> =
                benches.iter().map(|b| self.datasets(b)).collect();
            let mut members = Vec::with_capacity(benches.len());
            for (bench, ds) in benches.iter().zip(&datasets) {
                let Some(first) = ds.first() else {
                    continue;
                };
                members.push((bench.name, bench.source, first));
            }
            if members.len() != benches.len() {
                continue;
            }
            b.add_ordering(
                fp,
                bpfree_cache::ordering_key_hash(&members, fp, DEFAULT_SEED),
                &bpfree_cache::OrderingArtifacts::from_study(&study),
            );
        }
        let n = b.len();
        let data = b.finish();
        let bytes = data.len() as u64;
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, &data)?;
        std::fs::rename(&tmp, path)?;
        Ok((n, bytes))
    }
}

/// What [`Engine::mount_image`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MountReport {
    /// Entries offered into the memos.
    pub mounted: usize,
    /// Entries that failed live revalidation and will recompute on
    /// demand.
    pub skipped: usize,
    /// Image size — the warm start's entire read volume.
    pub bytes: u64,
}

/// Resolves a compile-options fingerprint (as stored in cache keys and
/// image directories) back to the [`Options`] it names. The fingerprint
/// space is tiny and closed, so this is a total inverse of
/// [`Options::fingerprint`].
pub fn options_from_fingerprint(fp: &str) -> Option<Options> {
    [
        Options::default(),
        Options {
            inline: true,
            simplify: false,
        },
        Options::no_inline(),
        Options::o0(),
    ]
    .into_iter()
    .find(|o| o.fingerprint() == fp)
}

static GLOBAL: OnceLock<Engine> = OnceLock::new();

/// Installs the process-wide engine, first writer wins: if one is
/// already installed, `config` is ignored and the existing engine is
/// returned (mirroring how the experiment binaries apply CLI flags).
pub fn install(config: EngineConfig) -> &'static Engine {
    GLOBAL.get_or_init(|| Engine::new(config))
}

/// The process-wide engine, installing one with [`EngineConfig::default`]
/// on first use.
pub fn global() -> &'static Engine {
    GLOBAL.get_or_init(|| Engine::new(EngineConfig::default()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::new(EngineConfig::no_cache())
    }

    #[test]
    fn memoizes_compiles_and_runs() {
        let e = engine();
        let b = bpfree_suite::by_name("grep").unwrap();
        let opt = Options::default();
        let c1 = e.compiled(&b, opt);
        let c2 = e.compiled(&b, opt);
        assert!(Arc::ptr_eq(&c1.program, &c2.program), "same memo slot");
        assert!(Arc::ptr_eq(&c1.classifier, &c2.classifier));
        assert!(Arc::ptr_eq(&c1.table, &c2.table));
        assert_eq!(e.analyses(), 1, "one analysis pass per (bench, opt)");
        let r1 = e.run(&b, opt, 0);
        let r2 = e.run(&b, opt, 0);
        assert!(Arc::ptr_eq(&r1.profile, &r2.profile));
        assert_eq!(e.simulations(), 1);
    }

    #[test]
    fn program_alone_does_not_trigger_analysis() {
        let e = engine();
        let b = bpfree_suite::by_name("grep").unwrap();
        let opt = Options::default();
        let _ = e.program(&b, opt);
        assert_eq!(e.analyses(), 0, "analysis is demand-driven");
        let p = e.predictions(&b, opt);
        assert_eq!(e.analyses(), 1);
        assert!(p.table.rows().count() > 0);
    }

    /// The tentpole warm-path property: a second engine over the same
    /// cache directory restores every prediction artifact from disk —
    /// zero analysis passes, zero interpreter passes — and the restored
    /// artifacts are identical to the cold ones.
    #[test]
    fn warm_cache_restores_predictions_without_reanalysis() {
        let dir =
            std::env::temp_dir().join(format!("bpfree-engine-warm-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = EngineConfig {
            use_cache: true,
            cache_dir: dir.clone(),
            verbose: false,
            tier: InterpTier::default(),
        };
        let b = bpfree_suite::by_name("eqntott").unwrap();
        let opt = Options::default();

        let cold = Engine::new(config.clone());
        let c1 = cold.compiled(&b, opt);
        let r1 = cold.run(&b, opt, 0);
        assert_eq!(cold.analyses(), 1);
        assert_eq!(cold.simulations(), 1);

        let warm = Engine::new(config.clone());
        let c2 = warm.compiled(&b, opt);
        let r2 = warm.run(&b, opt, 0);
        assert_eq!(warm.analyses(), 0, "warm run recomputes no predictions");
        assert_eq!(warm.simulations(), 0, "warm run re-simulates nothing");
        assert_eq!(*c1.program, *c2.program);
        assert!(c1.classifier.rows().eq(c2.classifier.rows()));
        assert!(c1.table.rows().eq(c2.table.rows()));
        assert_eq!(r1.result, r2.result);
        assert_eq!(*r1.profile, *r2.profile);

        // Deleting just the prediction entry forces exactly one
        // re-analysis — the program entry still hits.
        let pkey = bpfree_cache::prediction_key(b.name, b.source, opt.fingerprint());
        std::fs::remove_file(dir.join(format!("{pkey}.txt"))).expect("prediction entry exists");
        let half = Engine::new(config);
        let c3 = half.compiled(&b, opt);
        assert_eq!(half.analyses(), 1, "missing entry falls back to compute");
        assert!(c1.classifier.rows().eq(c3.classifier.rows()));
        assert!(c1.table.rows().eq(c3.table.rows()));

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The ordering tentpole's warm-path property: a second engine over
    /// the same cache directory restores the roster's 5040-order rate
    /// matrix bit-for-bit from the `ordering` entry — zero matrix
    /// builds — and deleting just that entry forces exactly one.
    #[test]
    fn warm_cache_restores_ordering_matrix_without_rebuild() {
        let dir = std::env::temp_dir().join(format!(
            "bpfree-engine-ordering-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = EngineConfig {
            use_cache: true,
            cache_dir: dir.clone(),
            verbose: false,
            tier: InterpTier::default(),
        };
        let opt = Options::default();
        let roster = [
            bpfree_suite::by_name("grep").unwrap(),
            bpfree_suite::by_name("eqntott").unwrap(),
        ];
        let refs: Vec<&Benchmark> = roster.iter().collect();

        let cold = Engine::new(config.clone());
        let s1 = cold.ordering_study(&refs, opt);
        assert_eq!(cold.orderings(), 1, "cold run computes the matrix once");
        // A second query in the same process is a memo hit.
        let s1b = cold.ordering_study(&refs, opt);
        assert!(Arc::ptr_eq(&s1, &s1b));
        assert_eq!(cold.orderings(), 1);

        let warm = Engine::new(config.clone());
        let s2 = warm.ordering_study(&refs, opt);
        assert_eq!(warm.orderings(), 0, "warm run rebuilds no matrix");
        assert_eq!(s2.benches(), s1.benches());
        for (a, b) in s1.rates().iter().zip(s2.rates()) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits(), "bit-exact restored rates");
            }
        }

        // Deleting just the ordering entry forces exactly one rebuild —
        // the member artifacts underneath still hit.
        let datasets: Vec<_> = refs.iter().map(|b| warm.datasets(b)).collect();
        let members: Vec<(&str, &str, &Dataset)> = refs
            .iter()
            .zip(&datasets)
            .map(|(b, ds)| (b.name, b.source, &ds[0]))
            .collect();
        let okey = bpfree_cache::ordering_key(&members, opt.fingerprint(), DEFAULT_SEED);
        std::fs::remove_file(dir.join(format!("{okey}.txt"))).expect("ordering entry exists");
        let half = Engine::new(config);
        let s3 = half.ordering_study(&refs, opt);
        assert_eq!(half.orderings(), 1, "missing entry falls back to compute");
        assert_eq!(half.analyses(), 0, "member predictions still hit");
        assert_eq!(half.simulations(), 0, "member runs still hit");
        assert_eq!(s3.benches(), s1.benches());

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The image tentpole's end-to-end property: exporting a fully
    /// worked engine to a suite image and mounting it into a fresh
    /// engine serves *every* artifact — programs, decoded bytecode,
    /// predictions, runs, traces, the ordering matrix — with every miss
    /// counter at exactly zero, traces borrowed from the image buffer,
    /// and two exports byte-identical (deterministic layout).
    #[test]
    fn mounted_image_serves_every_artifact_with_zero_misses() {
        let dir =
            std::env::temp_dir().join(format!("bpfree-engine-image-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let opt = Options::default();
        let roster = [
            bpfree_suite::by_name("grep").unwrap(),
            bpfree_suite::by_name("eqntott").unwrap(),
        ];
        let refs: Vec<&Benchmark> = roster.iter().collect();

        let cold = Engine::new(EngineConfig::no_cache());
        for b in &refs {
            let _ = cold.compiled(b, opt);
            let _ = cold.decoded(b, opt);
            let _ = cold.trace(b, opt, 0);
        }
        let s1 = cold.ordering_study(&refs, opt);

        let img = dir.join("suite.img");
        let (n, bytes) = cold.export_image(&img).unwrap();
        assert!(
            n >= 9,
            "2 compiles + 2 decoded + 2 predictions + runs + traces + ordering"
        );
        assert_eq!(bytes, std::fs::metadata(&img).unwrap().len());
        // Determinism: a second export of the same state is
        // byte-identical.
        let img2 = dir.join("suite2.img");
        cold.export_image(&img2).unwrap();
        assert_eq!(
            std::fs::read(&img).unwrap(),
            std::fs::read(&img2).unwrap(),
            "double export is byte-identical"
        );

        let warm = Engine::new(EngineConfig::no_cache());
        let report = warm.mount_image(&img).unwrap();
        assert_eq!(
            report.mounted, n,
            "every entry revalidates against the live suite"
        );
        assert_eq!(report.skipped, 0);
        assert_eq!(report.bytes, bytes);

        for b in &refs {
            let c = warm.compiled(b, opt);
            let cold_c = cold.compiled(b, opt);
            assert_eq!(*c.program, *cold_c.program);
            assert!(c.classifier.rows().eq(cold_c.classifier.rows()));
            assert!(c.table.rows().eq(cold_c.table.rows()));
            let _ = warm.decoded(b, opt);
            let t = warm.trace(b, opt, 0);
            assert_eq!(*t, *cold.trace(b, opt, 0));
            assert!(
                t.seq_u8().is_some(),
                "mounted trace borrows its sequence from the image buffer"
            );
            let r = warm.run(b, opt, 0);
            let cold_r = cold.run(b, opt, 0);
            assert_eq!(r.result, cold_r.result);
            assert_eq!(*r.profile, *cold_r.profile);
        }
        let s2 = warm.ordering_study(&refs, opt);
        assert_eq!(s2.benches(), s1.benches());
        for (a, b) in s1.rates().iter().zip(s2.rates()) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits(), "bit-exact mounted rates");
            }
        }

        // The whole point: a mounted engine recomputes *nothing*.
        assert_eq!(warm.compiles(), 0, "zero compiles when mounted");
        assert_eq!(warm.decodes(), 0, "zero bytecode decodes when mounted");
        assert_eq!(warm.analyses(), 0, "zero analyses when mounted");
        assert_eq!(warm.simulations(), 0, "zero simulations when mounted");
        assert_eq!(
            warm.trace_records(),
            0,
            "zero trace recordings when mounted"
        );
        assert_eq!(warm.orderings(), 0, "zero matrix builds when mounted");

        // And the cold engine counted each kind of real work.
        assert!(cold.compiles() > 0);
        assert!(cold.decodes() > 0);
        assert!(cold.trace_records() > 0);

        // Corrupting the image is a clean refusal, not a broken mount.
        let mut garbled = std::fs::read(&img).unwrap();
        let mid = garbled.len() / 2;
        garbled[mid] ^= 0x40;
        let bad = dir.join("bad.img");
        std::fs::write(&bad, &garbled).unwrap();
        let fresh = Engine::new(EngineConfig::no_cache());
        assert!(fresh.mount_image(&bad).is_err());
        let c = fresh.compiled(&roster[0], opt);
        assert_eq!(*c.program, *cold.compiled(&roster[0], opt).program);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn opt_levels_are_distinct_artifacts() {
        let e = engine();
        let b = bpfree_suite::by_name("grep").unwrap();
        let o = e.compiled(&b, Options::default());
        let o0 = e.compiled(&b, Options::o0());
        assert!(!Arc::ptr_eq(&o.program, &o0.program));
        // -O0 skips inlining, so more functions survive.
        assert!(o0.program.funcs().len() >= o.program.funcs().len());
    }

    #[test]
    fn trace_fills_the_run_memo_in_one_pass() {
        let e = engine();
        let b = bpfree_suite::by_name("eqntott").unwrap();
        let opt = Options::default();
        let trace = e.trace(&b, opt, 0);
        assert_eq!(e.simulations(), 1);
        let bundle = e.run(&b, opt, 0);
        assert_eq!(e.simulations(), 1, "run bundle fell out of the trace pass");
        assert_eq!(trace.total_instructions(), bundle.result.instructions);
        // Replaying the trace into a fresh profiler reproduces the
        // profile bit-for-bit, and the O(dict) tally tier agrees.
        let mut profiler = EdgeProfiler::new();
        trace.replay(&mut profiler);
        assert_eq!(profiler.into_profile(), *bundle.profile);
        assert_eq!(trace.edge_profile(), *bundle.profile);
    }

    #[test]
    fn decoded_bytecode_is_memoized_per_options() {
        let e = engine();
        let b = bpfree_suite::by_name("grep").unwrap();
        let d1 = e.decoded(&b, Options::default());
        let d2 = e.decoded(&b, Options::default());
        assert!(Arc::ptr_eq(&d1, &d2), "same memo slot");
        assert!(d1.ops_len() > 0);
        let d0 = e.decoded(&b, Options::o0());
        assert!(!Arc::ptr_eq(&d1, &d0), "per-Options artifacts");
    }

    #[test]
    fn tiers_produce_identical_run_bundles() {
        let bytecode = engine();
        let tree = Engine::new(EngineConfig {
            tier: InterpTier::Tree,
            ..EngineConfig::no_cache()
        });
        let b = bpfree_suite::by_name("eqntott").unwrap();
        let opt = Options::default();
        let rb = bytecode.run(&b, opt, 0);
        let rt = tree.run(&b, opt, 0);
        assert_eq!(rb.result, rt.result);
        assert_eq!(*rb.profile, *rt.profile);
        let tb = bytecode.trace(&b, opt, 1);
        let tt = tree.trace(&b, opt, 1);
        assert_eq!(*tb, *tt);
    }

    #[test]
    fn bad_dataset_index_is_an_error_not_a_panic() {
        let e = engine();
        let b = bpfree_suite::by_name("grep").unwrap();
        match e.try_run(&b, Options::default(), 999) {
            Err(SuiteError::NoSuchDataset { benchmark, index }) => {
                assert_eq!(benchmark, "grep");
                assert_eq!(index, 999);
            }
            other => panic!("expected NoSuchDataset, got {other:?}"),
        }
        assert!(e.try_trace(&b, Options::default(), 999).is_err());
        assert_eq!(e.simulations(), 0);
    }
}
