//! Differential test of the two interpreter tiers (ISSUE 4 satellite):
//! every suite benchmark × every dataset runs under both the
//! tree-walking reference and the pre-decoded bytecode tier, and the
//! two executions must agree on *everything observable* — exit code,
//! dynamic instruction count, the full `ExecObserver` event stream
//! (order included), and the final contents of every named global.
//!
//! Event streams run to millions of branches, so instead of
//! materialising them we fold each into an order-sensitive FNV-1a hash;
//! equal hashes plus equal event counts make accidental collisions a
//! non-concern for a regression suite.

use bpfree_ir::BranchRef;
use bpfree_sim::{BytecodeProgram, ExecObserver, InterpTier, RunResult, SimConfig, Simulator};
use bpfree_suite::Dataset;

/// Folds the observer event stream into an order-sensitive hash.
struct EventHasher {
    hash: u64,
    events: u64,
}

impl EventHasher {
    fn new() -> EventHasher {
        EventHasher {
            hash: 0xcbf2_9ce4_8422_2325, // FNV-1a offset basis
            events: 0,
        }
    }

    fn mix(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.hash ^= u64::from(byte);
            self.hash = self.hash.wrapping_mul(0x1000_0000_01b3);
        }
    }
}

impl ExecObserver for EventHasher {
    fn on_instrs(&mut self, count: u64) {
        self.events += 1;
        self.mix(1);
        self.mix(count);
    }

    fn on_branch(&mut self, branch: BranchRef, taken: bool) {
        self.events += 1;
        self.mix(2);
        self.mix(branch.func.index() as u64);
        self.mix(branch.block.index() as u64);
        self.mix(u64::from(taken));
    }
}

/// Everything one execution exposes: result, event stream digest, and
/// the post-run contents of every named global.
struct Observation {
    result: RunResult,
    hash: u64,
    events: u64,
    globals: Vec<(String, Vec<i64>)>,
}

fn observe(
    program: &bpfree_ir::Program,
    decoded: Option<&BytecodeProgram>,
    dataset: &Dataset,
    tier: InterpTier,
) -> Observation {
    let config = SimConfig {
        tier,
        ..SimConfig::default()
    };
    let mut sim = match decoded {
        Some(bc) => Simulator::with_decoded_config(program, bc, config),
        None => Simulator::with_config(program, config),
    };
    sim.set_globals(&dataset.values).expect("dataset applies");
    let mut hasher = EventHasher::new();
    let result = sim.run(&mut hasher).expect("benchmark runs");
    let mut names: Vec<&String> = program.symbols().keys().collect();
    names.sort();
    let globals = names
        .into_iter()
        .map(|n| (n.clone(), sim.read_global(n).expect("known global")))
        .collect();
    Observation {
        result,
        hash: hasher.hash,
        events: hasher.events,
        globals,
    }
}

#[test]
fn every_benchmark_and_dataset_agrees_across_tiers() {
    for bench in bpfree_suite::all() {
        let program = bench.compile().expect("suite benchmark compiles");
        let decoded = BytecodeProgram::compile(&program);
        for (i, dataset) in bench.datasets().iter().enumerate() {
            let tree = observe(&program, None, dataset, InterpTier::Tree);
            let bytecode = observe(&program, Some(&decoded), dataset, InterpTier::Bytecode);
            let at = format!("{}[{i}] ({})", bench.name, dataset.name);
            assert_eq!(tree.result.exit, bytecode.result.exit, "exit of {at}");
            assert_eq!(
                tree.result.instructions, bytecode.result.instructions,
                "instruction count of {at}"
            );
            assert_eq!(tree.events, bytecode.events, "event count of {at}");
            assert_eq!(tree.hash, bytecode.hash, "event stream of {at}");
            assert_eq!(tree.globals, bytecode.globals, "globals after {at}");
        }
    }
}
