//! Error-path coverage for the suite loader API.

use bpfree_suite::{by_name, SuiteError};

#[test]
fn out_of_range_dataset_is_reported() {
    let b = by_name("grep").unwrap();
    let p = b.compile().unwrap();
    let err = b.profile(&p, 99).unwrap_err();
    assert!(matches!(
        err,
        SuiteError::NoSuchDataset {
            benchmark: "grep",
            index: 99
        }
    ));
    assert!(err.to_string().contains("99"));
}

#[test]
fn suite_error_messages_render() {
    let b = by_name("awk").unwrap();
    let p = b.compile().unwrap();
    let err = b.profile(&p, 50).unwrap_err();
    let msg = format!("{err}");
    assert!(msg.contains("awk"));
}

#[test]
fn datasets_have_distinct_names() {
    for b in bpfree_suite::all() {
        let names: Vec<String> = b.datasets().iter().map(|d| d.name.clone()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(
            names.len(),
            dedup.len(),
            "{}: duplicate dataset names",
            b.name
        );
        assert_eq!(
            names[0], "ref",
            "{}: first dataset must be the reference",
            b.name
        );
    }
}
