//! Behavioural validation of individual benchmarks: each program must
//! actually do its job, not merely execute. Where feasible the result is
//! checked against an independent Rust-side computation on the same
//! dataset.

use bpfree_ir::GlobalValues;
use bpfree_sim::{NullObserver, Simulator};
use bpfree_suite::by_name;

fn run_with(name: &str, values: &GlobalValues) -> (i64, Simulator<'static>) {
    // Leak the program so the simulator (borrowing it) can be returned
    // for post-run global inspection. Test-only convenience.
    let bench = by_name(name).unwrap();
    let program = Box::leak(Box::new(bench.compile().unwrap()));
    let mut sim = Simulator::new(program);
    sim.set_globals(values).unwrap();
    let exit = sim.run(&mut NullObserver).unwrap().exit;
    (exit, sim)
}

fn dataset_values(name: &str, index: usize) -> GlobalValues {
    by_name(name).unwrap().datasets()[index].values.clone()
}

#[test]
fn grep_counts_match_a_rust_scan() {
    let bench = by_name("grep").unwrap();
    let program = bench.compile().unwrap();
    let values = dataset_values("grep", 0);
    let mut sim = Simulator::new(&program);
    sim.set_globals(&values).unwrap();
    let exit = sim.run(&mut NullObserver).unwrap().exit;

    // Reference scan over the same dataset.
    let text: Vec<i64> = values
        .ints()
        .iter()
        .find(|(n, _)| n == "text")
        .unwrap()
        .1
        .clone();
    let text_len = values
        .ints()
        .iter()
        .find(|(n, _)| n == "n" || n == "text_len")
        .unwrap()
        .1[0] as usize;
    let pattern: Vec<i64> = values
        .ints()
        .iter()
        .find(|(n, _)| n == "pattern")
        .unwrap()
        .1
        .clone();
    let mut matches = 0i64;
    let mut lines = 0i64;
    for i in 0..=text_len - pattern.len() {
        if text[i] == 10 {
            lines += 1;
        }
        if text[i..i + pattern.len()] == pattern[..] {
            matches += 1;
        }
    }
    // Lines past the last candidate window are not counted by the Cmm
    // loop either (it stops at text_len - pattern_len).
    assert_eq!(exit, matches * 1000 + lines % 1000);
    assert!(matches > 0, "the dataset must plant matches");
}

#[test]
fn compress_emits_fewer_codes_than_input_symbols() {
    let (exit, sim) = run_with("compress", &dataset_values("compress", 0));
    let n_out = sim.read_global("n_out").unwrap()[0];
    let input_len = sim.read_global("input_len").unwrap()[0];
    assert!(n_out > 0);
    assert!(
        n_out < input_len,
        "LZW on redundant input must compress: {n_out} vs {input_len}"
    );
    assert_eq!(exit, n_out * 10 + sim.read_global("resets").unwrap()[0]);
}

#[test]
fn sgefat_solution_satisfies_the_system() {
    let values = dataset_values("sgefat", 0);
    let (_, sim) = run_with("sgefat", &values);
    // Read back the solution and check A·x ≈ b on the ORIGINAL data.
    let sol: Vec<f64> = sim
        .read_global("sol")
        .unwrap()
        .into_iter()
        .map(|w| f64::from_bits(w as u64))
        .collect();
    let m: Vec<f64> = values
        .floats()
        .iter()
        .find(|(n, _)| n == "m")
        .unwrap()
        .1
        .clone();
    let rhs: Vec<f64> = values
        .floats()
        .iter()
        .find(|(n, _)| n == "rhs")
        .unwrap()
        .1
        .clone();
    let n = values.ints().iter().find(|(nm, _)| nm == "n").unwrap().1[0] as usize;
    for i in 0..n {
        let mut acc = 0.0;
        for j in 0..n {
            acc += m[i * 40 + j] * sol[j];
        }
        assert!(
            (acc - rhs[i]).abs() < 1e-6,
            "row {i}: A·x = {acc}, b = {}",
            rhs[i]
        );
    }
}

#[test]
fn dcg_converges_to_a_solution() {
    let values = dataset_values("dcg", 0);
    let (exit, sim) = run_with("dcg", &values);
    let breakdowns = exit % 100;
    assert_eq!(breakdowns, 0, "CG must not break down on an SPD-ish system");
    let iters = exit / 100;
    assert!(iters > 0 && iters < 120, "converged in {iters} iterations");
    // Residual check: r stored by the program should be small.
    let r: Vec<f64> = sim
        .read_global("r_vec")
        .unwrap()
        .into_iter()
        .map(|w| f64::from_bits(w as u64))
        .collect();
    let n = values.ints().iter().find(|(nm, _)| nm == "n").unwrap().1[0] as usize;
    let norm: f64 = r[..n].iter().map(|x| x * x).sum::<f64>();
    assert!(norm.sqrt() < 1e-5, "residual {}", norm.sqrt());
}

#[test]
fn eqntott_counts_match_reference_evaluation() {
    let values = dataset_values("eqntott", 0);
    let (exit, _) = run_with("eqntott", &values);
    // Reference: evaluate the same DAG over all assignments.
    let ops: Vec<i64> = values
        .ints()
        .iter()
        .find(|(n, _)| n == "ops")
        .unwrap()
        .1
        .clone();
    let n_vars = values.ints().iter().find(|(n, _)| n == "n_vars").unwrap().1[0];
    let n_ops = values.ints().iter().find(|(n, _)| n == "n_ops").unwrap().1[0] as usize;
    fn eval(ops: &[i64], idx: usize, a: i64) -> i64 {
        let (k, x, y) = (ops[idx * 3], ops[idx * 3 + 1], ops[idx * 3 + 2]);
        match k {
            0 => (a >> x) & 1,
            3 => 1 - eval(ops, x as usize, a),
            1 => {
                if eval(ops, x as usize, a) == 0 {
                    0
                } else {
                    eval(ops, y as usize, a)
                }
            }
            _ => {
                if eval(ops, x as usize, a) != 0 {
                    1
                } else {
                    eval(ops, y as usize, a)
                }
            }
        }
    }
    let mut true_rows = 0i64;
    let mut onset = 0i64;
    for a in 0..(1i64 << n_vars) {
        if eval(&ops, n_ops - 1, a) != 0 {
            true_rows += 1;
            onset = (onset * 2 + a) % 1000003;
        }
    }
    assert_eq!(exit, true_rows * 7 + onset % 7);
    assert!(true_rows > 0);
}

#[test]
fn qpt_edge_classification_matches_rust_dfs() {
    let values = dataset_values("qpt", 0);
    let (exit, _) = run_with("qpt", &values);
    let tree = exit / 10000;
    let back = (exit / 100) % 100;
    let cross = exit % 100;
    assert!(tree > 0);
    // Conservation: classified edges cannot exceed total edges.
    let n_edges = values
        .ints()
        .iter()
        .find(|(n, _)| n == "n_edges")
        .unwrap()
        .1[0];
    // (back and cross are taken modulo 100 in the exit code, so only
    // bound-check the tree count here.)
    assert!(tree <= n_edges, "{tree} tree edges of {n_edges}");
    let _ = (back, cross);
}

#[test]
fn tomcatv_residual_updates_decay_across_iterations() {
    // More sweeps should not multiply big_updates proportionally: the
    // max-update happens a few times per sweep regardless.
    let short = {
        let mut v = dataset_values("tomcatv", 0);
        v.set_int("iters", vec![2]);
        run_with("tomcatv", &v).0
    };
    let long = {
        let mut v = dataset_values("tomcatv", 0);
        v.set_int("iters", vec![8]);
        run_with("tomcatv", &v).0
    };
    assert!(long > short, "more sweeps, more updates: {short} vs {long}");
    assert!(
        long < short * 8,
        "updates must be rare per sweep: {short} -> {long}"
    );
}

#[test]
fn poly_finds_tilings() {
    let (exit, _) = run_with("poly", &dataset_values("poly", 0));
    let solutions = exit / 1000;
    assert!(solutions > 0, "the 6x6 board with dominoes must tile");
}

#[test]
fn addalg_respects_capacity_bound() {
    let values = dataset_values("addalg", 0);
    let (exit, _) = run_with("addalg", &values);
    let best = exit / 100;
    let value: Vec<i64> = values
        .ints()
        .iter()
        .find(|(n, _)| n == "value")
        .unwrap()
        .1
        .clone();
    let total: i64 = value.iter().sum();
    assert!(best > 0, "a feasible packing exists");
    assert!(
        best <= total,
        "best {best} cannot exceed total value {total}"
    );
}

#[test]
fn spice_converges_most_timesteps() {
    let (exit, _) = run_with("spice2g6", &dataset_values("spice2g6", 0));
    let sweeps = exit / 100;
    let nonconverged = (exit / 10) % 10;
    assert!(sweeps > 0);
    assert_eq!(nonconverged, 0, "diagonally dominant systems converge");
}

#[test]
fn rn_accounts_for_every_article() {
    let values = dataset_values("rn", 0);
    let (exit, _) = run_with("rn", &values);
    let shown = exit / 10000;
    let killed = (exit / 100) % 100;
    assert!(shown > 0, "most articles are shown");
    assert!(killed > 0, "the kill file catches some");
    assert!(shown > killed, "kill rate is low on the ref dataset");
}

#[test]
fn awk_sums_match_a_reference_pass() {
    let values = dataset_values("awk", 0);
    let (exit, _) = run_with("awk", &values);
    // Reference: split the same byte stream.
    let input: Vec<i64> = values
        .ints()
        .iter()
        .find(|(n, _)| n == "input")
        .unwrap()
        .1
        .clone();
    let threshold = values
        .ints()
        .iter()
        .find(|(n, _)| n == "threshold")
        .unwrap()
        .1[0];
    let text: String = input.iter().map(|&c| c as u8 as char).collect();
    let mut sum2 = 0i64;
    let mut matched = 0i64;
    for line in text.split('\n') {
        let fields: Vec<i64> = line
            .split_whitespace()
            .filter_map(|w| w.parse().ok())
            .collect();
        if let Some(&f0) = fields.first() {
            if f0 > threshold {
                matched += 1;
                if let Some(&f1) = fields.get(1) {
                    sum2 += f1;
                }
            }
        }
    }
    assert_eq!(exit, sum2 % 100000 + matched);
}

#[test]
fn alternate_datasets_change_behaviour() {
    // Datasets must be genuinely different workloads, not reruns.
    for name in ["xlisp", "gcc", "compress", "doduc"] {
        let a = run_with(name, &dataset_values(name, 0)).0;
        let b = run_with(name, &dataset_values(name, 1)).0;
        assert_ne!(a, b, "{name}: datasets 0 and 1 look identical");
    }
}
