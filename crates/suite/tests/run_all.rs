//! Compiles and runs every benchmark on every dataset: the suite's
//! ground-truth health check.

use bpfree_cfg::FunctionAnalysis;
use bpfree_core::{BranchClass, BranchClassifier};
use bpfree_suite::all;

#[test]
fn every_benchmark_compiles() {
    for b in all() {
        match b.compile() {
            Ok(p) => assert!(p.validate().is_ok(), "{} produced invalid IR", b.name),
            Err(e) => panic!("{} failed to compile: {e}", b.name),
        }
    }
}

#[test]
fn every_benchmark_is_reducible() {
    for b in all() {
        let p = b.compile().unwrap();
        for f in p.funcs() {
            let a = FunctionAnalysis::new(f);
            assert!(
                a.loops.is_reducible(),
                "{}::{} is irreducible",
                b.name,
                f.name()
            );
        }
    }
}

#[test]
fn every_dataset_runs_to_completion() {
    for b in all() {
        let p = b.compile().unwrap();
        for (i, d) in b.datasets().iter().enumerate() {
            let (profile, result) = b
                .profile(&p, i)
                .unwrap_or_else(|e| panic!("{} dataset {} ({}): {e}", b.name, i, d.name));
            assert!(
                result.instructions > 10_000,
                "{} dataset {} ran only {} instructions — too trivial",
                b.name,
                i,
                result.instructions
            );
            assert!(
                profile.total_branches() > 500,
                "{} dataset {} executed only {} branches",
                b.name,
                i,
                profile.total_branches()
            );
        }
    }
}

#[test]
fn runs_are_deterministic() {
    for b in all() {
        let p = b.compile().unwrap();
        let (prof_a, res_a) = b.profile(&p, 0).unwrap();
        let (prof_b, res_b) = b.profile(&p, 0).unwrap();
        assert_eq!(res_a, res_b, "{} nondeterministic result", b.name);
        assert_eq!(prof_a, prof_b, "{} nondeterministic profile", b.name);
    }
}

#[test]
fn every_benchmark_exercises_both_branch_classes() {
    for b in all() {
        let p = b.compile().unwrap();
        let c = BranchClassifier::analyze(&p);
        let (profile, _) = b.profile(&p, 0).unwrap();
        let mut loops = 0u64;
        let mut nonloop = 0u64;
        for (branch, counts) in profile.iter() {
            match c.class(branch) {
                BranchClass::Loop => loops += counts.total(),
                BranchClass::NonLoop => nonloop += counts.total(),
            }
        }
        assert!(loops > 0, "{} executed no loop branches", b.name);
        assert!(nonloop > 0, "{} executed no non-loop branches", b.name);
    }
}
