//! Deterministic dataset generators for every benchmark.
//!
//! The paper ran each benchmark on a reference dataset plus alternates
//! (Section 7). Each generator here is seeded, so dataset `k` of a
//! benchmark is identical across runs and machines.

use bpfree_ir::GlobalValues;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::Dataset;

fn rng_for(benchmark: &str, dataset: usize) -> SmallRng {
    // Stable seed from the benchmark name and dataset index.
    let mut seed = 0xB19C_55B5_u64;
    for b in benchmark.bytes() {
        seed = seed.wrapping_mul(0x100000001B3).wrapping_add(b as u64);
    }
    SmallRng::seed_from_u64(seed ^ (dataset as u64).wrapping_mul(0x9E3779B97F4A7C15))
}

fn ds(name: &str, values: GlobalValues) -> Dataset {
    Dataset {
        name: name.to_string(),
        values,
    }
}

pub(crate) fn xlisp() -> Vec<Dataset> {
    let mk = |name: &str, seed: i64, n: i64, depth: i64| {
        let mut g = GlobalValues::new();
        g.set_int("rng", vec![seed]);
        g.set_int("n_exprs", vec![n]);
        g.set_int("max_depth", vec![depth]);
        ds(name, g)
    };
    vec![
        mk("ref", 42, 500, 7),
        mk("alt1", 977, 350, 8),
        mk("alt2", 31_337, 700, 6),
    ]
}

pub(crate) fn gcc() -> Vec<Dataset> {
    let mk = |name: &str, seed: i64, units: i64, depth: i64| {
        let mut g = GlobalValues::new();
        g.set_int("rng", vec![seed]);
        g.set_int("n_units", vec![units]);
        g.set_int("gen_depth", vec![depth]);
        ds(name, g)
    };
    vec![
        mk("ref", 7, 250, 6),
        mk("alt1", 555, 180, 7),
        mk("alt2", 90_210, 320, 5),
    ]
}

pub(crate) fn lcc() -> Vec<Dataset> {
    let mk = |name: &str, seed: i64, stmts: i64| {
        let mut g = GlobalValues::new();
        g.set_int("rng", vec![seed]);
        g.set_int("n_stmts", vec![stmts]);
        ds(name, g)
    };
    vec![
        mk("ref", 11, 500),
        mk("alt1", 222, 700),
        mk("alt2", 9_041, 350),
    ]
}

pub(crate) fn grep() -> Vec<Dataset> {
    let mk = |name: &str, dsi: usize, plant_every: usize, line_len: usize| {
        let mut r = rng_for("grep", dsi);
        let pattern: Vec<i64> = b"branch".iter().map(|&b| b as i64).collect();
        let mut text = Vec::with_capacity(16384);
        while text.len() < 16384 - 8 {
            if !text.is_empty() && text.len() % plant_every < pattern.len() {
                // Plant the pattern (sometimes truncated at region edge).
                text.push(pattern[text.len() % plant_every]);
            } else if text.len() % line_len == line_len - 1 {
                text.push(10); // newline
            } else {
                text.push(r.gen_range(97..123)); // a..z
            }
        }
        let mut g = GlobalValues::new();
        g.set_int("text_len", vec![text.len() as i64]);
        g.set_int("text", text);
        g.set_int("pattern", pattern.clone());
        g.set_int("pattern_len", vec![pattern.len() as i64]);
        ds(name, g)
    };
    vec![
        mk("ref", 0, 509, 77),
        mk("alt1", 1, 2039, 61),
        mk("alt2", 2, 127, 90),
    ]
}

pub(crate) fn compress() -> Vec<Dataset> {
    let mk = |name: &str, dsi: usize, alphabet: i64, repeat_prob: f64| {
        let mut r = rng_for("compress", dsi);
        let mut input = Vec::with_capacity(8192);
        let mut last = 1i64;
        for _ in 0..8192 {
            if r.gen_bool(repeat_prob) {
                input.push(last);
            } else {
                last = r.gen_range(1..=alphabet);
                input.push(last);
            }
        }
        let mut g = GlobalValues::new();
        g.set_int("input_len", vec![input.len() as i64]);
        g.set_int("input", input);
        ds(name, g)
    };
    vec![
        mk("ref", 0, 24, 0.65),
        mk("alt1", 1, 96, 0.30),
        mk("alt2", 2, 8, 0.85),
    ]
}

pub(crate) fn eqntott() -> Vec<Dataset> {
    let mk = |name: &str, dsi: usize, n_vars: i64, n_nodes: usize| {
        let mut r = rng_for("eqntott", dsi);
        // Build a random boolean DAG bottom-up: node i may reference
        // nodes < i.
        let mut ops = Vec::with_capacity(n_nodes * 3);
        for i in 0..n_nodes {
            if i < n_vars as usize || r.gen_bool(0.3) {
                ops.extend([0, r.gen_range(0..n_vars), 0]);
            } else {
                let kind = *[1i64, 1, 2, 2, 3].get(r.gen_range(0..5)).unwrap();
                let a = r.gen_range(0..i as i64);
                let b = r.gen_range(0..i as i64);
                ops.extend([kind, a, b]);
            }
        }
        let mut g = GlobalValues::new();
        g.set_int("n_vars", vec![n_vars]);
        g.set_int("n_ops", vec![n_nodes as i64]);
        g.set_int("ops", ops);
        ds(name, g)
    };
    vec![
        mk("ref", 0, 14, 60),
        mk("alt1", 1, 15, 45),
        mk("alt2", 2, 13, 80),
    ]
}

pub(crate) fn tomcatv() -> Vec<Dataset> {
    let mk = |name: &str, dsi: usize, n: i64, iters: i64| {
        let mut r = rng_for("tomcatv", dsi);
        let mut x = vec![0.0f64; 1156];
        let mut y = vec![0.0f64; 1156];
        for i in 0..34 {
            for j in 0..34 {
                // A smooth mesh with noise: residuals decay over sweeps.
                x[i * 34 + j] = i as f64 + 0.3 * r.gen::<f64>();
                y[i * 34 + j] = j as f64 + 0.3 * r.gen::<f64>();
            }
        }
        let mut g = GlobalValues::new();
        g.set_float("x", x);
        g.set_float("y", y);
        g.set_int("n", vec![n]);
        g.set_int("iters", vec![iters]);
        g.set_float("relax", vec![0.12]);
        ds(name, g)
    };
    vec![
        mk("ref", 0, 34, 8),
        mk("alt1", 1, 26, 14),
        mk("alt2", 2, 34, 4),
    ]
}

pub(crate) fn matrix300() -> Vec<Dataset> {
    let mk = |name: &str, dsi: usize, n: i64, reps: i64| {
        let mut r = rng_for("matrix300", dsi);
        let a: Vec<f64> = (0..1024).map(|_| r.gen::<f64>()).collect();
        let b: Vec<f64> = (0..1024).map(|_| r.gen::<f64>()).collect();
        let mut g = GlobalValues::new();
        g.set_float("a", a);
        g.set_float("b", b);
        g.set_int("n", vec![n]);
        g.set_int("reps", vec![reps]);
        ds(name, g)
    };
    vec![
        mk("ref", 0, 32, 2),
        mk("alt1", 1, 24, 5),
        mk("alt2", 2, 30, 3),
    ]
}

pub(crate) fn sgefat() -> Vec<Dataset> {
    let mk = |name: &str, dsi: usize, n: usize| {
        let mut r = rng_for("sgefat", dsi);
        let mut m = vec![0.0f64; 1600];
        for i in 0..n {
            for j in 0..n {
                m[i * 40 + j] = r.gen_range(-1.0..1.0);
            }
            // Diagonal dominance keeps the system well conditioned.
            m[i * 40 + i] += n as f64;
        }
        let rhs: Vec<f64> = (0..40).map(|_| r.gen_range(-5.0..5.0)).collect();
        let mut g = GlobalValues::new();
        g.set_float("m", m);
        g.set_float("rhs", rhs);
        g.set_int("n", vec![n as i64]);
        ds(name, g)
    };
    vec![mk("ref", 0, 40), mk("alt1", 1, 28), mk("alt2", 2, 36)]
}

pub(crate) fn congress() -> Vec<Dataset> {
    let mk = |name: &str, seed: i64, facts: i64, queries: i64| {
        let mut g = GlobalValues::new();
        g.set_int("rng", vec![seed]);
        g.set_int("n_facts", vec![facts]);
        g.set_int("n_queries", vec![queries]);
        ds(name, g)
    };
    vec![
        mk("ref", 3, 70, 160),
        mk("alt1", 88, 50, 240),
        mk("alt2", 412, 90, 110),
    ]
}

pub(crate) fn ghostview() -> Vec<Dataset> {
    let mk = |name: &str, dsi: usize, n: usize, err_rate: f64| {
        let mut r = rng_for("ghostview", dsi);
        let mut cmds = Vec::with_capacity(n * 3);
        for _ in 0..n {
            let op: i64 = if r.gen_bool(err_rate) {
                9 // unknown operator
            } else {
                *[0i64, 1, 2, 2, 2, 3, 3, 4, 5]
                    .get(r.gen_range(0..9))
                    .unwrap()
            };
            // Coordinates mostly on the page, occasionally off it.
            let span = if r.gen_bool(0.08) { 1500 } else { 600 };
            cmds.push(op);
            cmds.push(r.gen_range(-20..span));
            cmds.push(r.gen_range(-20..span));
        }
        let mut g = GlobalValues::new();
        g.set_int("n_cmds", vec![n as i64]);
        g.set_int("cmds", cmds);
        g.set_int("page_w", vec![612]);
        g.set_int("page_h", vec![792]);
        ds(name, g)
    };
    vec![
        mk("ref", 0, 2600, 0.01),
        mk("alt1", 1, 1800, 0.05),
        mk("alt2", 2, 2700, 0.002),
    ]
}

pub(crate) fn rn() -> Vec<Dataset> {
    let mk = |name: &str, dsi: usize, n_articles: usize, kill_rate: f64, group_rate: f64| {
        let mut r = rng_for("rn", dsi);
        let kill: Vec<i64> = b"flame".iter().map(|&b| b as i64).collect();
        let mut spool = Vec::new();
        for _ in 0..n_articles {
            if spool.len() + 600 > 32768 {
                break;
            }
            let tagged = r.gen_bool(group_rate);
            spool.push(if tagged { 35 } else { 64 }); // '#' or '@'
            let len = r.gen_range(200..500);
            let kill_here = r.gen_bool(kill_rate);
            let kill_at = r.gen_range(20..len - 10);
            let mut i = 0;
            while i < len {
                if kill_here && i == kill_at {
                    spool.extend(kill.iter());
                    i += kill.len();
                    continue;
                }
                if i % 60 == 59 {
                    spool.push(10);
                } else {
                    spool.push(r.gen_range(97..123));
                }
                i += 1;
            }
            spool.push(0);
        }
        let mut g = GlobalValues::new();
        g.set_int("spool_len", vec![spool.len() as i64]);
        g.set_int("spool", spool);
        g.set_int("kill_word", kill.clone());
        g.set_int("kill_len", vec![kill.len() as i64]);
        g.set_int("group_tag", vec![35]);
        ds(name, g)
    };
    vec![
        mk("ref", 0, 70, 0.15, 0.75),
        mk("alt1", 1, 90, 0.4, 0.5),
        mk("alt2", 2, 55, 0.05, 0.9),
    ]
}

pub(crate) fn espresso() -> Vec<Dataset> {
    let mk = |name: &str, dsi: usize, n_cubes: usize, n_bits: i64| {
        let mut r = rng_for("espresso", dsi);
        let mask = (1i64 << n_bits) - 1;
        let mut cubes: Vec<i64> = Vec::with_capacity(n_cubes);
        for i in 0..n_cubes {
            if i > 0 && r.gen_bool(0.3) {
                // A sub-cube of an earlier cube (creates containment).
                let base = cubes[r.gen_range(0..i)];
                cubes.push(base & r.gen::<i64>() & mask | 1);
            } else {
                cubes.push((r.gen::<i64>() & mask) | 1);
            }
        }
        let mut g = GlobalValues::new();
        g.set_int("n_cubes", vec![n_cubes as i64]);
        g.set_int("cubes", cubes);
        g.set_int("n_bits", vec![n_bits]);
        ds(name, g)
    };
    vec![
        mk("ref", 0, 220, 24),
        mk("alt1", 1, 150, 30),
        mk("alt2", 2, 300, 18),
    ]
}

pub(crate) fn qpt() -> Vec<Dataset> {
    let mk = |name: &str, dsi: usize, nodes: i64, edges: usize| {
        let mut r = rng_for("qpt", dsi);
        let mut src = Vec::with_capacity(edges);
        let mut dst = Vec::with_capacity(edges);
        for _ in 0..edges {
            let s = r.gen_range(0..nodes);
            // Mostly-forward edges (CFG-like), some back edges.
            let d = if r.gen_bool(0.8) {
                (s + r.gen_range(1..8)).min(nodes - 1)
            } else {
                r.gen_range(0..nodes)
            };
            src.push(s);
            dst.push(d);
        }
        let mut g = GlobalValues::new();
        g.set_int("n_edges", vec![src.len() as i64]);
        g.set_int("edge_src", src);
        g.set_int("edge_dst", dst);
        g.set_int("n_nodes", vec![nodes]);
        ds(name, g)
    };
    vec![
        mk("ref", 0, 600, 2400),
        mk("alt1", 1, 900, 3600),
        mk("alt2", 2, 300, 1500),
    ]
}

pub(crate) fn awk() -> Vec<Dataset> {
    let mk = |name: &str, dsi: usize, records: usize, threshold: i64| {
        let mut r = rng_for("awk", dsi);
        let mut input = Vec::new();
        for _ in 0..records {
            if input.len() + 64 > 32768 {
                break;
            }
            let fields = r.gen_range(1..6);
            for f in 0..fields {
                if f > 0 {
                    input.push(32);
                }
                let v = r.gen_range(0..1000i64);
                for ch in v.to_string().bytes() {
                    input.push(ch as i64);
                }
            }
            input.push(10);
        }
        let mut g = GlobalValues::new();
        g.set_int("input_len", vec![input.len() as i64]);
        g.set_int("input", input);
        g.set_int("threshold", vec![threshold]);
        ds(name, g)
    };
    vec![
        mk("ref", 0, 900, 500),
        mk("alt1", 1, 1200, 900),
        mk("alt2", 2, 700, 100),
    ]
}

pub(crate) fn addalg() -> Vec<Dataset> {
    let mk = |name: &str, dsi: usize, items: usize, cap_frac: f64| {
        let mut r = rng_for("addalg", dsi);
        let weight: Vec<i64> = (0..items).map(|_| r.gen_range(3..30i64)).collect();
        // Correlated values keep the bound tight (strong pruning).
        let value: Vec<i64> = weight.iter().map(|&w| w * 3 + r.gen_range(0..5)).collect();
        let total: i64 = weight.iter().sum();
        let mut g = GlobalValues::new();
        g.set_int("n_items", vec![items as i64]);
        g.set_int("weight", weight);
        g.set_int("value", value);
        g.set_int("capacity", vec![(total as f64 * cap_frac) as i64]);
        ds(name, g)
    };
    vec![
        mk("ref", 0, 22, 0.4),
        mk("alt1", 1, 20, 0.55),
        mk("alt2", 2, 24, 0.3),
    ]
}

pub(crate) fn poly() -> Vec<Dataset> {
    // Shapes are 4-bit-per-row masks: a 1x2 domino, 2x2 square, L tromino,
    // 1x3 bar, T tetromino.
    let shapes: [(i64, i64, i64); 5] = [
        (0b11, 2, 1),        // domino horizontal
        (0b0001_0001, 1, 2), // domino vertical
        (0b0011_0011, 2, 2), // square
        (0b0001_0011, 2, 2), // L tromino
        (0b111, 3, 1),       // bar
    ];
    let mk = |name: &str, w: i64, h: i64, blocked: i64, max_solutions: i64| {
        let mut g = GlobalValues::new();
        g.set_int("board_w", vec![w]);
        g.set_int("board_h", vec![h]);
        g.set_int("blocked", vec![blocked]);
        g.set_int("shape_masks", shapes.iter().map(|s| s.0).collect());
        g.set_int("shape_w", shapes.iter().map(|s| s.1).collect());
        g.set_int("shape_h", shapes.iter().map(|s| s.2).collect());
        g.set_int("n_shapes", vec![shapes.len() as i64]);
        g.set_int("max_solutions", vec![max_solutions]);
        ds(name, g)
    };
    vec![
        mk("ref", 6, 6, 0, 3000),
        mk("alt1", 5, 6, 0b100001, 3000),
        mk("alt2", 7, 5, 0, 1500),
    ]
}

pub(crate) fn spice2g6() -> Vec<Dataset> {
    let mk = |name: &str, dsi: usize, n: usize, steps: i64, tol: f64| {
        let mut r = rng_for("spice2g6", dsi);
        let mut gmat = vec![0.0f64; 1024];
        for i in 0..n {
            for j in 0..n {
                if i != j && r.gen_bool(0.2) {
                    gmat[i * 32 + j] = r.gen_range(-0.5..0.5);
                }
            }
            let row_sum: f64 = (0..n)
                .filter(|&j| j != i)
                .map(|j| gmat[i * 32 + j].abs())
                .sum();
            gmat[i * 32 + i] = row_sum + 1.0 + r.gen::<f64>();
        }
        let rhs: Vec<f64> = (0..32).map(|_| r.gen_range(-2.0..2.0)).collect();
        // Device regions: mostly negative (cutoff), like error codes.
        let regions: Vec<i64> = (0..32)
            .map(|_| {
                if r.gen_bool(0.7) {
                    -r.gen_range(1..5i64)
                } else {
                    r.gen_range(0..3)
                }
            })
            .collect();
        let mut g = GlobalValues::new();
        g.set_float("g", gmat);
        g.set_float("rhs_vec", rhs);
        g.set_int("n", vec![n as i64]);
        g.set_int("timesteps", vec![steps]);
        g.set_float("tol", vec![tol]);
        g.set_int("device_region", regions);
        ds(name, g)
    };
    vec![
        mk("ref", 0, 28, 60, 1e-4),
        mk("alt1", 1, 20, 90, 1e-6),
        mk("alt2", 2, 32, 40, 1e-3),
    ]
}

pub(crate) fn doduc() -> Vec<Dataset> {
    let mk = |name: &str, seed: i64, particles: i64, steps: i64| {
        let mut g = GlobalValues::new();
        g.set_int("rng", vec![seed]);
        g.set_int("n_particles", vec![particles]);
        g.set_int("max_steps", vec![steps]);
        g.set_float("zone_edge", vec![0.2, 0.5, 0.9, 1.4, 2.0, 2.7, 3.5, 4.4]);
        g.set_float(
            "absorb_prob",
            vec![0.05, 0.08, 0.12, 0.1, 0.15, 0.2, 0.25, 0.3],
        );
        ds(name, g)
    };
    vec![
        mk("ref", 19, 4000, 250),
        mk("alt1", 83, 2500, 400),
        mk("alt2", 6, 6000, 150),
    ]
}

pub(crate) fn fpppp() -> Vec<Dataset> {
    let mk = |name: &str, dsi: usize, shells: i64, cutoff: f64| {
        let mut r = rng_for("fpppp", dsi);
        let mut centers = vec![0.0f64; 256];
        for s in 0..64 {
            centers[s * 4] = r.gen_range(-3.0..3.0);
            centers[s * 4 + 1] = r.gen_range(-3.0..3.0);
            centers[s * 4 + 2] = r.gen_range(-3.0..3.0);
            centers[s * 4 + 3] = r.gen_range(0.3..2.5);
        }
        let mut g = GlobalValues::new();
        g.set_float("centers", centers);
        g.set_int("n_shells", vec![shells]);
        g.set_float("cutoff", vec![cutoff]);
        ds(name, g)
    };
    // `cutoff` is the squared screening radius: pairs farther apart are
    // skipped. With centers in [-3,3]^3 the mean pair distance-squared is
    // ~18, so 8.0 skips roughly three quarters of the pairs.
    vec![
        mk("ref", 0, 56, 8.0),
        mk("alt1", 1, 64, 14.0),
        mk("alt2", 2, 40, 5.0),
    ]
}

pub(crate) fn dnasa7() -> Vec<Dataset> {
    let mk = |name: &str, dsi: usize, n: i64, reps: i64| {
        let mut r = rng_for("dnasa7", dsi);
        let wa: Vec<f64> = (0..4096).map(|_| r.gen_range(-1.0..1.0)).collect();
        let wb: Vec<f64> = (0..4096).map(|_| r.gen_range(-1.0..1.0)).collect();
        let mut g = GlobalValues::new();
        g.set_float("wa", wa);
        g.set_float("wb", wb);
        g.set_int("n", vec![n]);
        g.set_int("reps", vec![reps]);
        ds(name, g)
    };
    vec![
        mk("ref", 0, 28, 3),
        mk("alt1", 1, 20, 6),
        mk("alt2", 2, 32, 2),
    ]
}

pub(crate) fn costscale() -> Vec<Dataset> {
    let mk = |name: &str, dsi: usize, nodes: i64, arcs: usize| {
        let mut r = rng_for("costScale", dsi);
        let mut from = Vec::with_capacity(arcs);
        let mut to = Vec::with_capacity(arcs);
        let mut cost = Vec::with_capacity(arcs);
        let mut cap = Vec::with_capacity(arcs);
        // A layered network source -> ... -> sink.
        for _ in 0..arcs {
            let s = r.gen_range(0..nodes - 1);
            let d = r.gen_range(s + 1..nodes);
            from.push(s);
            to.push(d);
            cost.push(r.gen_range(1..200i64));
            cap.push(r.gen_range(5..80i64));
        }
        let mut g = GlobalValues::new();
        g.set_int("n_arcs", vec![from.len() as i64]);
        g.set_int("arc_from", from);
        g.set_int("arc_to", to);
        g.set_int("arc_cost", cost);
        g.set_int("arc_cap", cap);
        g.set_int("n_nodes", vec![nodes]);
        g.set_int("source", vec![0]);
        g.set_int("sink", vec![nodes - 1]);
        ds(name, g)
    };
    vec![
        mk("ref", 0, 80, 640),
        mk("alt1", 1, 120, 960),
        mk("alt2", 2, 48, 380),
    ]
}

pub(crate) fn dcg() -> Vec<Dataset> {
    let mk = |name: &str, dsi: usize, n: usize, nnz_per_row: usize, tol: f64| {
        let mut r = rng_for("dcg", dsi);
        // Build a SYMMETRIC positive-definite sparse matrix: random
        // off-diagonal pairs (i,j)=(j,i), diagonal dominating the row.
        let mut entries: Vec<std::collections::BTreeMap<usize, f64>> =
            vec![std::collections::BTreeMap::new(); n];
        for i in 0..n {
            for _ in 0..nnz_per_row / 2 {
                let j = r.gen_range(0..n);
                if j == i {
                    continue;
                }
                let v: f64 = r.gen_range(-0.3..0.3);
                entries[i].insert(j, v);
                entries[j].insert(i, v);
            }
        }
        let mut vals = Vec::new();
        let mut cols = Vec::new();
        let mut rows = Vec::with_capacity(n + 1);
        rows.push(0i64);
        for (i, row) in entries.iter().enumerate() {
            let diag_extra: f64 = row.values().map(|v| v.abs()).sum();
            for (&c, &v) in row {
                vals.push(v);
                cols.push(c as i64);
            }
            vals.push(diag_extra + 1.5 + (i % 7) as f64 * 0.1);
            cols.push(i as i64);
            rows.push(vals.len() as i64);
        }
        assert!(vals.len() <= 8192, "dcg nnz overflow: {}", vals.len());
        let b: Vec<f64> = (0..256).map(|_| r.gen_range(-1.0..1.0)).collect();
        let mut g = GlobalValues::new();
        g.set_float("csr_val", vals);
        g.set_int("csr_col", cols);
        g.set_int("csr_row", rows);
        g.set_int("n", vec![n as i64]);
        g.set_float("b_vec", b);
        g.set_float("tol", vec![tol]);
        g.set_int("max_iters", vec![120]);
        ds(name, g)
    };
    vec![
        mk("ref", 0, 256, 9, 1e-7),
        mk("alt1", 1, 160, 6, 1e-9),
        mk("alt2", 2, 256, 12, 1e-5),
    ]
}
