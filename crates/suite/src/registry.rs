//! The benchmark registry: Table 1 of the reproduction.

use crate::{datasets, Dataset};

/// Source-language grouping used by the paper's tables (C programs with
/// little floating point vs. Fortran floating-point programs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lang {
    C,
    Fortran,
}

impl std::fmt::Display for Lang {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Lang::C => write!(f, "C"),
            Lang::Fortran => write!(f, "F"),
        }
    }
}

/// One benchmark: a Cmm program plus its datasets.
#[derive(Clone)]
pub struct Benchmark {
    /// Name matching the paper's Table 1 row.
    pub name: &'static str,
    /// What the analogue models.
    pub description: &'static str,
    /// C-like (integer) or Fortran-like (floating point) group.
    pub lang: Lang,
    /// Marked as a SPEC89 benchmark in the paper.
    pub spec: bool,
    /// The Cmm source text.
    pub source: &'static str,
    pub(crate) make_datasets: fn() -> Vec<Dataset>,
}

impl std::fmt::Debug for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Benchmark")
            .field("name", &self.name)
            .field("lang", &self.lang)
            .field("spec", &self.spec)
            .finish_non_exhaustive()
    }
}

macro_rules! benchmark {
    ($name:literal, $file:literal, $desc:literal, $lang:ident, $spec:literal, $ds:path) => {
        Benchmark {
            name: $name,
            description: $desc,
            lang: Lang::$lang,
            spec: $spec,
            source: include_str!(concat!("../programs/", $file)),
            make_datasets: $ds,
        }
    };
}

/// All 23 benchmarks, in the paper's Table 1 order (C group by size
/// descending, then Fortran group).
pub fn all() -> Vec<Benchmark> {
    vec![
        benchmark!(
            "congress",
            "congress.cmm",
            "Interpreter for a Prolog-like language",
            C,
            false,
            datasets::congress
        ),
        benchmark!(
            "ghostview",
            "ghostview.cmm",
            "X PostScript previewer",
            C,
            false,
            datasets::ghostview
        ),
        benchmark!("gcc", "gcc.cmm", "GNU C compiler", C, true, datasets::gcc),
        benchmark!(
            "lcc",
            "lcc.cmm",
            "Fraser & Hanson's C compiler",
            C,
            false,
            datasets::lcc
        ),
        benchmark!("rn", "rn.cmm", "Net news reader", C, false, datasets::rn),
        benchmark!(
            "espresso",
            "espresso.cmm",
            "PLA minimisation",
            C,
            true,
            datasets::espresso
        ),
        benchmark!(
            "qpt",
            "qpt.cmm",
            "Profiling and tracing tool",
            C,
            false,
            datasets::qpt
        ),
        benchmark!(
            "awk",
            "awk.cmm",
            "Pattern scanner & processor",
            C,
            false,
            datasets::awk
        ),
        benchmark!(
            "xlisp",
            "xlisp.cmm",
            "Lisp interpreter",
            C,
            true,
            datasets::xlisp
        ),
        benchmark!(
            "eqntott",
            "eqntott.cmm",
            "Boolean equations to truth table",
            C,
            true,
            datasets::eqntott
        ),
        benchmark!(
            "addalg",
            "addalg.cmm",
            "Integer program solver",
            C,
            false,
            datasets::addalg
        ),
        benchmark!(
            "compress",
            "compress.cmm",
            "File compression utility",
            C,
            false,
            datasets::compress
        ),
        benchmark!(
            "grep",
            "grep.cmm",
            "Search file for regular expression",
            C,
            false,
            datasets::grep
        ),
        benchmark!(
            "poly",
            "poly.cmm",
            "Polyominoes game",
            C,
            false,
            datasets::poly
        ),
        benchmark!(
            "spice2g6",
            "spice2g6.cmm",
            "Circuit simulation",
            Fortran,
            true,
            datasets::spice2g6
        ),
        benchmark!(
            "doduc",
            "doduc.cmm",
            "Hydrocode simulation",
            Fortran,
            true,
            datasets::doduc
        ),
        benchmark!(
            "fpppp",
            "fpppp.cmm",
            "Two-electron integral derivative",
            Fortran,
            true,
            datasets::fpppp
        ),
        benchmark!(
            "dnasa7",
            "dnasa7.cmm",
            "Floating point kernels",
            Fortran,
            true,
            datasets::dnasa7
        ),
        benchmark!(
            "tomcatv",
            "tomcatv.cmm",
            "Vectorised mesh generation",
            Fortran,
            true,
            datasets::tomcatv
        ),
        benchmark!(
            "matrix300",
            "matrix300.cmm",
            "Matrix multiply",
            Fortran,
            true,
            datasets::matrix300
        ),
        benchmark!(
            "costScale",
            "costscale.cmm",
            "Solve minimum cost flow",
            C,
            false,
            datasets::costscale
        ),
        benchmark!(
            "dcg",
            "dcg.cmm",
            "Conjugate gradient",
            C,
            false,
            datasets::dcg
        ),
        benchmark!(
            "sgefat",
            "sgefat.cmm",
            "Gaussian elimination",
            C,
            false,
            datasets::sgefat
        ),
    ]
}

/// Looks a benchmark up by its Table 1 name.
///
/// # Example
///
/// ```
/// assert!(bpfree_suite::by_name("xlisp").is_some());
/// assert!(bpfree_suite::by_name("nonesuch").is_none());
/// ```
pub fn by_name(name: &str) -> Option<Benchmark> {
    all().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_matches_the_paper() {
        let benches = all();
        assert_eq!(benches.len(), 23);
        let spec = benches.iter().filter(|b| b.spec).count();
        assert_eq!(spec, 10); // SPEC89-marked rows in Table 1
        let fortran = benches.iter().filter(|b| b.lang == Lang::Fortran).count();
        assert_eq!(fortran, 6);
    }

    #[test]
    fn names_are_unique() {
        let benches = all();
        let mut names: Vec<&str> = benches.iter().map(|b| b.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 23);
    }

    #[test]
    fn every_benchmark_has_at_least_two_datasets() {
        for b in all() {
            assert!(b.datasets().len() >= 2, "{} lacks datasets", b.name);
        }
    }
}
