//! The benchmark suite: 23 Cmm programs mirroring the roster of the
//! paper's Table 1.
//!
//! The paper measured SPEC89 programs plus assorted C utilities on a
//! DECstation. Those binaries are unavailable, so each benchmark here is
//! a Cmm program *of the same control-flow character*: the
//! pointer-chasing interpreters and compilers (`xlisp`, `gcc`, `lcc`,
//! `congress`, `qpt`), the text scanners (`grep`, `awk`, `rn`), the
//! bit-twiddling minimisers (`espresso`, `eqntott`, `compress`), the
//! searchers (`poly`, `addalg`), and the Fortran floating-point codes
//! (`tomcatv`, `matrix300`, `spice2g6`, `doduc`, `fpppp`, `dnasa7`,
//! `sgefat`, `dcg`, `costScale`, `ghostview` being the X previewer on
//! the C side). What matters for reproducing the paper is the *dynamic
//! branch behaviour* each workload induces — mostly-non-null pointers,
//! rarely-taken error paths, convergence loops, max-finding sweeps — and
//! each program is written to exercise exactly those idioms.
//!
//! Every benchmark ships at least two datasets (seeded, deterministic)
//! so the paper's Section 7 cross-dataset experiment can run.
//!
//! # Example
//!
//! ```
//! let b = bpfree_suite::by_name("tomcatv").unwrap();
//! let program = b.compile().unwrap();
//! let (profile, result) = b.profile(&program, 0).unwrap();
//! assert!(profile.total_branches() > 0);
//! assert!(result.instructions > 0);
//! ```

mod datasets;
mod registry;

pub use registry::{all, by_name, Benchmark, Lang};

use bpfree_ir::{GlobalValues, Program};
use bpfree_lang::CompileError;
use bpfree_sim::{
    BytecodeProgram, EdgeProfile, EdgeProfiler, RunResult, SimConfig, SimError, Simulator,
};

/// One input set for a benchmark (the paper ran several per program).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Short label, e.g. `"ref"` or `"alt1"`.
    pub name: String,
    /// The global values to poke before running.
    pub values: GlobalValues,
}

/// Errors from compiling or running a benchmark.
#[derive(Debug)]
pub enum SuiteError {
    Compile(CompileError),
    Run(SimError),
    NoSuchDataset {
        benchmark: &'static str,
        index: usize,
    },
}

impl std::fmt::Display for SuiteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SuiteError::Compile(e) => write!(f, "compile error: {e}"),
            SuiteError::Run(e) => write!(f, "runtime error: {e}"),
            SuiteError::NoSuchDataset { benchmark, index } => {
                write!(f, "benchmark `{benchmark}` has no dataset {index}")
            }
        }
    }
}

impl std::error::Error for SuiteError {}

impl From<CompileError> for SuiteError {
    fn from(e: CompileError) -> SuiteError {
        SuiteError::Compile(e)
    }
}

impl From<SimError> for SuiteError {
    fn from(e: SimError) -> SuiteError {
        SuiteError::Run(e)
    }
}

impl Benchmark {
    /// Compiles the benchmark's Cmm source.
    ///
    /// # Errors
    ///
    /// Returns the compiler diagnostic on malformed source (a bug in the
    /// suite).
    pub fn compile(&self) -> Result<Program, SuiteError> {
        Ok(bpfree_lang::compile(self.source)?)
    }

    /// The benchmark's datasets (at least two, deterministic).
    pub fn datasets(&self) -> Vec<Dataset> {
        (self.make_datasets)()
    }

    /// Runs dataset `index` under an edge profiler.
    ///
    /// # Errors
    ///
    /// Fails on an out-of-range dataset index or a runtime error.
    pub fn profile(
        &self,
        program: &Program,
        index: usize,
    ) -> Result<(EdgeProfile, RunResult), SuiteError> {
        let datasets = self.datasets();
        let dataset = datasets.get(index).ok_or(SuiteError::NoSuchDataset {
            benchmark: self.name,
            index,
        })?;
        let mut profiler = EdgeProfiler::new();
        let result = self.run_with(program, dataset, &mut profiler)?;
        Ok((profiler.into_profile(), result))
    }

    /// Runs a dataset under an arbitrary observer (IPBC analysis uses
    /// this).
    ///
    /// # Errors
    ///
    /// Fails on a runtime error (fuel, memory, bad address).
    pub fn run_with<O: bpfree_sim::ExecObserver>(
        &self,
        program: &Program,
        dataset: &Dataset,
        observer: &mut O,
    ) -> Result<RunResult, SuiteError> {
        self.run_with_config(program, dataset, SimConfig::default(), observer)
    }

    /// [`Benchmark::run_with`] with explicit simulator limits / tier —
    /// the differential tests run every benchmark under both
    /// [`bpfree_sim::InterpTier`]s through this.
    ///
    /// # Errors
    ///
    /// Fails on a runtime error (fuel, memory, bad address).
    pub fn run_with_config<O: bpfree_sim::ExecObserver>(
        &self,
        program: &Program,
        dataset: &Dataset,
        config: SimConfig,
        observer: &mut O,
    ) -> Result<RunResult, SuiteError> {
        let mut sim = Simulator::with_config(program, config);
        sim.set_globals(&dataset.values)?;
        Ok(sim.run(observer)?)
    }

    /// [`Benchmark::run_with`] reusing a pre-compiled [`BytecodeProgram`]
    /// of the same `program`, so callers running many datasets (the
    /// artifact engine) pay the decode cost once.
    ///
    /// # Errors
    ///
    /// Fails on a runtime error (fuel, memory, bad address).
    pub fn run_decoded<O: bpfree_sim::ExecObserver>(
        &self,
        program: &Program,
        decoded: &BytecodeProgram,
        dataset: &Dataset,
        observer: &mut O,
    ) -> Result<RunResult, SuiteError> {
        let mut sim = Simulator::with_decoded(program, decoded);
        sim.set_globals(&dataset.values)?;
        Ok(sim.run(observer)?)
    }
}
