//! Differential properties of the trace evaluation tiers: over random
//! dictionary-compressed traces, segmented replay must leave observers
//! in exactly the state serial replay produces — at any segment count,
//! including 1 and more segments than events — and the O(dict) tally
//! tier must agree with an O(events) replay on every quantity it
//! derives (instruction totals, occurrence counts, edge profiles).

use bpfree_ir::{BlockId, BranchRef, FuncId};
use bpfree_sim::{BranchTrace, CountingObserver, EdgeProfiler, ExecObserver, TraceEvent};
use proptest::prelude::*;

fn arb_event() -> impl Strategy<Value = TraceEvent> {
    (0u64..50, 0u32..3, 0u32..8, any::<bool>()).prop_map(|(instrs, func, block, taken)| {
        TraceEvent {
            instrs,
            branch: BranchRef {
                func: FuncId(func),
                block: BlockId(block),
            },
            taken,
        }
    })
}

/// A random trace: a dictionary of 1–12 events, a sequence of up to 400
/// indices into it, and a trailing instruction count.
fn arb_trace() -> impl Strategy<Value = BranchTrace> {
    proptest::collection::vec(arb_event(), 1..12).prop_flat_map(|dict| {
        let n = dict.len() as u32;
        (
            Just(dict),
            proptest::collection::vec(0..n, 0..400),
            0u64..20,
        )
            .prop_map(|(dict, seq, tail)| {
                BranchTrace::from_parts(dict, seq, tail).expect("indices in range")
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Segmented replay ≡ serial replay for the counting observer, at
    /// segment counts from 1 to far beyond the event count.
    #[test]
    fn segmented_counting_equals_serial(trace in arb_trace(), jobs in 1usize..12) {
        let mut serial = CountingObserver::default();
        trace.replay(&mut serial);
        for jobs in [1, 2, 3, 7, jobs, trace.len(), trace.len() + 5] {
            let mut seg = CountingObserver::default();
            trace.replay_segmented_jobs(jobs, &mut seg);
            prop_assert_eq!(seg, serial, "jobs={}", jobs);
        }
    }

    /// Segmented replay ≡ serial replay for the edge profiler.
    #[test]
    fn segmented_profile_equals_serial(trace in arb_trace(), jobs in 1usize..12) {
        let mut serial = EdgeProfiler::new();
        trace.replay(&mut serial);
        for jobs in [1, jobs, trace.len() + 1] {
            let mut seg = EdgeProfiler::new();
            trace.replay_segmented_jobs(jobs, &mut seg);
            prop_assert_eq!(seg.profile(), serial.profile(), "jobs={}", jobs);
        }
    }

    /// The O(dict) tally agrees with an O(events) replay: occurrence
    /// counts sum to the sequence length, the instruction total matches
    /// a counting replay, and the derived edge profile is bit-identical
    /// to a replayed one.
    #[test]
    fn tally_equals_replay(trace in arb_trace()) {
        let tally = trace.tally();
        prop_assert_eq!(
            tally.counts().iter().sum::<u64>() as usize,
            trace.len()
        );

        let mut counter = CountingObserver::default();
        trace.replay(&mut counter);
        prop_assert_eq!(tally.instructions(), counter.instructions);
        prop_assert_eq!(trace.total_instructions(), counter.instructions);

        let mut profiler = EdgeProfiler::new();
        trace.replay(&mut profiler);
        prop_assert_eq!(&trace.edge_profile(), profiler.profile());
    }

    /// Per-entry occurrence counts match a hand count of the sequence.
    #[test]
    fn tally_counts_match_sequence(trace in arb_trace()) {
        for (idx, &count) in trace.tally().counts().iter().enumerate() {
            let expected = trace.indices().filter(|&i| i as usize == idx).count();
            prop_assert_eq!(count as usize, expected);
        }
    }
}

/// Not property-based but adjacent: an observer that records the exact
/// event order proves segments replay their ranges in range order after
/// the merge (the merge contract feeds parts back in order).
#[test]
fn replay_events_covers_exact_range() {
    #[derive(Default)]
    struct Log(Vec<(u64, bool)>);
    impl ExecObserver for Log {
        fn on_instrs(&mut self, count: u64) {
            self.0.push((count, false));
        }
        fn on_branch(&mut self, _branch: BranchRef, taken: bool) {
            self.0.push((0, taken));
        }
    }

    let dict = vec![
        TraceEvent {
            instrs: 3,
            branch: BranchRef {
                func: FuncId(0),
                block: BlockId(0),
            },
            taken: true,
        },
        TraceEvent {
            instrs: 0,
            branch: BranchRef {
                func: FuncId(0),
                block: BlockId(1),
            },
            taken: false,
        },
    ];
    let trace = BranchTrace::from_parts(dict, vec![0, 1, 0, 1, 0], 2).unwrap();

    let mut whole = Log::default();
    trace.replay(&mut whole);
    let mut stitched = Log::default();
    trace.replay_events(0..2, &mut stitched);
    trace.replay_events(2..2, &mut stitched); // empty range is a no-op
    trace.replay_events(2..5, &mut stitched);
    stitched.on_instrs(trace.trailing_instrs());
    assert_eq!(whole.0, stitched.0);
}
