//! Fuzz-style differential properties for the two interpreter tiers:
//! random small Cmm programs must behave *identically* under the
//! tree-walking reference and the pre-decoded bytecode tier — same
//! `Ok` results, same `SimError`s (variant and payload), and the same
//! `ExecObserver` event stream up to the point of success or failure.
//! Error paths are exercised on purpose: tiny fuel budgets (OutOfFuel),
//! shallow call-depth limits (StackOverflow), tiny memories
//! (OutOfMemory), and wild pointer offsets (BadAddress).

use bpfree_ir::BranchRef;
use bpfree_sim::{ExecObserver, InterpTier, SimConfig, SimError, Simulator};
use proptest::prelude::*;

/// Order-sensitive FNV-1a digest of the observer event stream.
struct EventHasher {
    hash: u64,
    events: u64,
}

impl EventHasher {
    fn new() -> EventHasher {
        EventHasher {
            hash: 0xcbf2_9ce4_8422_2325,
            events: 0,
        }
    }

    fn mix(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.hash ^= u64::from(byte);
            self.hash = self.hash.wrapping_mul(0x1000_0000_01b3);
        }
    }
}

impl ExecObserver for EventHasher {
    fn on_instrs(&mut self, count: u64) {
        self.events += 1;
        self.mix(1);
        self.mix(count);
    }

    fn on_branch(&mut self, branch: BranchRef, taken: bool) {
        self.events += 1;
        self.mix(2);
        self.mix(branch.func.index() as u64);
        self.mix(branch.block.index() as u64);
        self.mix(u64::from(taken));
    }
}

/// Runs `src` under `tier` and returns everything observable.
fn observe(
    src: &str,
    config: SimConfig,
    tier: InterpTier,
) -> (Result<(i64, u64), SimError>, u64, u64) {
    let program = bpfree_lang::compile(src).unwrap_or_else(|e| panic!("{}\n{src}", e.render(src)));
    let mut sim = Simulator::with_config(&program, SimConfig { tier, ..config });
    let mut hasher = EventHasher::new();
    let result = sim.run(&mut hasher).map(|r| (r.exit, r.instructions));
    (result, hasher.hash, hasher.events)
}

/// The property: both tiers observe identically (results, errors, and
/// event stream).
fn assert_tiers_agree(src: &str, config: SimConfig) {
    let tree = observe(src, config, InterpTier::Tree);
    let bytecode = observe(src, config, InterpTier::Bytecode);
    prop_assert_eq!(tree, bytecode, "program:\n{}", src);
}

/// Random nested integer expressions over three locals.
fn arb_expr() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        (-99i64..100).prop_map(|v| {
            if v < 0 {
                format!("(0 - {})", -v)
            } else {
                v.to_string()
            }
        }),
        (0usize..3).prop_map(|i| format!("v{i}")),
    ];
    leaf.prop_recursive(4, 48, 2, |inner| {
        (
            inner.clone(),
            prop_oneof![
                Just("+"),
                Just("-"),
                Just("*"),
                Just("/"),
                Just("%"),
                Just("&"),
                Just("|"),
                Just("^"),
                Just("<"),
                Just("<="),
                Just("=="),
                Just("!="),
            ],
            inner,
        )
            .prop_map(|(a, op, b)| format!("({a} {op} {b})"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pure computation: expressions, conditions, and a loop whose trip
    /// count and body both depend on generated expressions.
    #[test]
    fn random_programs_agree(
        e1 in arb_expr(),
        e2 in arb_expr(),
        vars in [-50i64..50, -50i64..50, -50i64..50],
        trips in 0i64..40,
    ) {
        let src = format!(
            "fn main() -> int {{
                int v0; int v1; int v2; int i; int s;
                v0 = {}; v1 = {}; v2 = {};
                for (i = 0; i < {trips}; i = i + 1) {{
                    s = s + {e1};
                    if ({e2}) {{ s = s - v1; }}
                }}
                return s;
            }}",
            vars[0], vars[1], vars[2]
        );
        assert_tiers_agree(&src, SimConfig { fuel: 1_000_000, ..SimConfig::default() });
    }

    /// Calls and recursion: helper functions survive or inline
    /// depending on the optimiser, and either way both tiers must walk
    /// the same frames in the same order.
    #[test]
    fn random_calls_agree(
        e in arb_expr(),
        vars in [-20i64..20, -20i64..20, -20i64..20],
        depth in 0i64..30,
    ) {
        let src = format!(
            "fn rec(int n, int acc, int v0, int v1, int v2) -> int {{
                if (n <= 0) {{ return acc; }}
                return rec(n - 1, acc + {e}, v0, v1, v2);
            }}
            fn main() -> int {{
                return rec({depth}, 0, {}, {}, {});
            }}",
            vars[0], vars[1], vars[2]
        );
        assert_tiers_agree(&src, SimConfig { fuel: 1_000_000, ..SimConfig::default() });
    }

    /// Fuel exhaustion: a random budget cuts execution somewhere in the
    /// middle, and both tiers must fail at the same block boundary with
    /// the same `executed` payload (or agree it fits).
    #[test]
    fn fuel_exhaustion_agrees(fuel in 0u64..400, trips in 0i64..40) {
        let src = format!(
            "fn main() -> int {{
                int i; int s;
                for (i = 0; i < {trips}; i = i + 1) {{ s = s + i; }}
                return s;
            }}"
        );
        assert_tiers_agree(&src, SimConfig { fuel, ..SimConfig::default() });
    }

    /// Stack overflow / frame overflow: recursion against a random
    /// call-depth limit (and sometimes a memory too small for the
    /// frames).
    #[test]
    fn stack_limits_agree(depth in 1usize..40, ask in 0i64..60, mem_kw in 1usize..3) {
        let src = format!(
            "fn rec(int n) -> int {{
                if (n <= 0) {{ return 0; }}
                return 1 + rec(n - 1);
            }}
            fn main() -> int {{ return rec({ask}); }}"
        );
        let config = SimConfig {
            max_call_depth: depth,
            mem_words: mem_kw << 10,
            fuel: 1_000_000,
            ..SimConfig::default()
        };
        assert_tiers_agree(&src, config);
    }

    /// Heap exhaustion: an allocation loop against a random small
    /// memory; the failing iteration and the `requested` payload must
    /// match.
    #[test]
    fn heap_exhaustion_agrees(mem in 64usize..2048, chunk in 1i64..200, n in 1i64..64) {
        let src = format!(
            "fn main() -> int {{
                int i; int p;
                for (i = 0; i < {n}; i = i + 1) {{ p = alloc({chunk}); }}
                return p;
            }}"
        );
        let config = SimConfig {
            mem_words: mem,
            fuel: 1_000_000,
            ..SimConfig::default()
        };
        assert_tiers_agree(&src, config);
    }

    /// Bad addresses: loads/stores at wild offsets off a small heap
    /// block — below the null word, inside, past the block, or beyond
    /// the top of memory — must trap (or not) identically, with the
    /// same faulting address.
    #[test]
    fn bad_addresses_agree(offset in prop_oneof![
        -16i64..16,
        Just(-(1i64 << 22)),
        Just(1i64 << 22),
        Just(1i64 << 40),
    ]) {
        let src = format!(
            "fn main() -> int {{
                int p;
                p = alloc(4);
                p[{offset}] = 7;
                return p[{offset}];
            }}"
        );
        assert_tiers_agree(&src, SimConfig { fuel: 1_000_000, ..SimConfig::default() });
    }
}
