//! End-to-end semantics tests: compile Cmm, run, check results and
//! profiles.

// Expected values are written as the per-iteration sums they come from.
#![allow(clippy::identity_op)]

use bpfree_ir::GlobalValues;
use bpfree_lang::compile;
use bpfree_sim::{
    CountingObserver, EdgeProfiler, NullObserver, Pair, SimConfig, SimError, Simulator,
};

fn run(src: &str) -> i64 {
    let p = compile(src).unwrap_or_else(|e| panic!("{}", e.render(src)));
    Simulator::new(&p).run(&mut NullObserver).unwrap().exit
}

#[test]
fn arithmetic() {
    assert_eq!(run("fn main() -> int { return 2 + 3 * 4 - 1; }"), 13);
    assert_eq!(run("fn main() -> int { return (2 + 3) * 4; }"), 20);
    assert_eq!(run("fn main() -> int { return 17 / 5; }"), 3);
    assert_eq!(run("fn main() -> int { return 17 % 5; }"), 2);
    assert_eq!(run("fn main() -> int { return -7; }"), -7);
    assert_eq!(run("fn main() -> int { return 1 << 10; }"), 1024);
    assert_eq!(run("fn main() -> int { return -16 >> 2; }"), -4);
    assert_eq!(run("fn main() -> int { return 12 & 10; }"), 8);
    assert_eq!(run("fn main() -> int { return 12 | 10; }"), 14);
    assert_eq!(run("fn main() -> int { return 12 ^ 10; }"), 6);
}

#[test]
fn division_by_zero_yields_zero() {
    assert_eq!(run("fn main() -> int { int z; z = 0; return 5 / z; }"), 0);
    assert_eq!(run("fn main() -> int { int z; z = 0; return 5 % z; }"), 0);
}

#[test]
fn comparisons_as_values() {
    assert_eq!(run("fn main() -> int { return 1 < 2; }"), 1);
    assert_eq!(run("fn main() -> int { return 2 < 1; }"), 0);
    assert_eq!(run("fn main() -> int { return 2 <= 2; }"), 1);
    assert_eq!(run("fn main() -> int { return 3 > 2; }"), 1);
    assert_eq!(run("fn main() -> int { return 2 >= 3; }"), 0);
    assert_eq!(run("fn main() -> int { return 5 == 5; }"), 1);
    assert_eq!(run("fn main() -> int { return 5 != 5; }"), 0);
    assert_eq!(run("fn main() -> int { return !5; }"), 0);
    assert_eq!(run("fn main() -> int { return !0; }"), 1);
}

#[test]
fn short_circuit_semantics() {
    // The right operand must not run when the left decides.
    let src = "global int hits;
        fn bump() -> int { hits = hits + 1; return 1; }
        fn main() -> int {
            int a;
            a = 0 && bump();
            a = 1 || bump();
            return hits;
        }";
    assert_eq!(run(src), 0);
    let src2 = "global int hits;
        fn bump() -> int { hits = hits + 1; return 1; }
        fn main() -> int {
            int a;
            a = 1 && bump();
            a = 0 || bump();
            return hits;
        }";
    assert_eq!(run(src2), 2);
}

#[test]
fn logical_values() {
    assert_eq!(run("fn main() -> int { return 2 && 3; }"), 1);
    assert_eq!(run("fn main() -> int { return 0 || 7; }"), 1);
    assert_eq!(run("fn main() -> int { return 0 || 0; }"), 0);
}

#[test]
fn control_flow() {
    assert_eq!(
        run("fn main() -> int {
            int i; int s;
            for (i = 0; i < 10; i = i + 1) {
                if (i % 2 == 0) { s = s + i; }
            }
            return s;
        }"),
        20
    );
    assert_eq!(
        run("fn main() -> int {
            int i;
            i = 0;
            while (i < 100) { i = i + 7; }
            return i;
        }"),
        105
    );
    assert_eq!(
        run("fn main() -> int {
            int i;
            do { i = i + 1; } while (i < 3);
            return i;
        }"),
        3
    );
}

#[test]
fn while_false_never_runs_body() {
    assert_eq!(
        run("fn main() -> int {
            int i; int n;
            n = 0;
            while (n > 0) { i = i + 1; n = n - 1; }
            return i;
        }"),
        0
    );
}

#[test]
fn do_while_runs_at_least_once() {
    assert_eq!(
        run("fn main() -> int {
            int i;
            do { i = i + 1; } while (0 > 1);
            return i;
        }"),
        1
    );
}

#[test]
fn break_and_continue() {
    assert_eq!(
        run("fn main() -> int {
            int i; int s;
            for (i = 0; i < 100; i = i + 1) {
                if (i == 5) { continue; }
                if (i == 8) { break; }
                s = s + i;
            }
            return s;
        }"),
        0 + 1 + 2 + 3 + 4 + 6 + 7
    );
}

#[test]
fn nested_loops_with_break() {
    assert_eq!(
        run("fn main() -> int {
            int i; int j; int c;
            for (i = 0; i < 4; i = i + 1) {
                for (j = 0; j < 4; j = j + 1) {
                    if (j > i) { break; }
                    c = c + 1;
                }
            }
            return c;
        }"),
        1 + 2 + 3 + 4
    );
}

#[test]
fn functions_and_recursion() {
    assert_eq!(
        run("fn fib(int n) -> int {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        fn main() -> int { return fib(12); }"),
        144
    );
    assert_eq!(
        run("fn gcd(int a, int b) -> int {
            if (b == 0) { return a; }
            return gcd(b, a % b);
        }
        fn main() -> int { return gcd(48, 36); }"),
        12
    );
}

#[test]
fn mutual_recursion() {
    assert_eq!(
        run("fn is_even(int n) -> int {
            if (n == 0) { return 1; }
            return is_odd(n - 1);
        }
        fn is_odd(int n) -> int {
            if (n == 0) { return 0; }
            return is_even(n - 1);
        }
        fn main() -> int { return is_even(10) + is_odd(7) * 10; }"),
        11
    );
}

#[test]
fn globals_and_arrays() {
    assert_eq!(
        run("global int xs[5];
        global int total;
        fn main() -> int {
            int i;
            for (i = 0; i < 5; i = i + 1) { xs[i] = i * i; }
            for (i = 0; i < 5; i = i + 1) { total = total + xs[i]; }
            return total;
        }"),
        0 + 1 + 4 + 9 + 16
    );
}

#[test]
fn local_arrays_are_per_frame() {
    assert_eq!(
        run("fn f(int depth) -> int {
            int buf[4];
            buf[0] = depth;
            if (depth > 0) {
                int ignore;
                ignore = f(depth - 1);
            }
            return buf[0];
        }
        fn main() -> int { return f(3); }"),
        3
    );
}

#[test]
fn heap_allocation_and_linked_list() {
    assert_eq!(
        run("fn main() -> int {
            ptr head; ptr node; int i; int s;
            head = null;
            for (i = 1; i <= 5; i = i + 1) {
                node = alloc(2);
                node[0] = i;
                node[1] = head;
                head = node;
            }
            while (head != null) {
                s = s + head[0];
                head = head[1];
            }
            return s;
        }"),
        15
    );
}

#[test]
fn alloc_blocks_are_zeroed_and_distinct() {
    assert_eq!(
        run("fn main() -> int {
            ptr a; ptr b;
            a = alloc(3);
            b = alloc(3);
            if (a == b) { return -1; }
            return a[0] + a[1] + a[2] + b[0];
        }"),
        0
    );
}

#[test]
fn floats() {
    assert_eq!(run("fn main() -> int { return int(1.5 + 2.25); }"), 3);
    assert_eq!(run("fn main() -> int { return int(10.0 / 4.0); }"), 2);
    assert_eq!(run("fn main() -> int { return int(float(7)); }"), 7);
    assert_eq!(
        run("fn main() -> int {
            float x;
            x = 0.1;
            if (x * 3.0 == 0.3) { return 1; }
            return 0;
        }"),
        0 // classic floating point: 0.1*3 != 0.3
    );
    assert_eq!(
        run("fn main() -> int {
            float s; int i;
            for (i = 0; i < 10; i = i + 1) { s = s + 0.5; }
            return int(s);
        }"),
        5
    );
}

#[test]
fn float_comparisons_in_control() {
    assert_eq!(
        run("fn main() -> int {
            float a; float b;
            a = 1.0; b = 2.0;
            if (a < b) { return 1; }
            return 0;
        }"),
        1
    );
    assert_eq!(
        run("fn main() -> int {
            float a;
            a = 5.0;
            if (a >= 5.0 && a <= 5.0) { return 1; }
            return 0;
        }"),
        1
    );
}

#[test]
fn float_int_promotion_in_comparison() {
    assert_eq!(
        run("fn main() -> int {
            float x;
            x = 2.5;
            if (x > 2) { return 1; }
            return 0;
        }"),
        1
    );
}

#[test]
fn global_float_scalars() {
    assert_eq!(
        run("global float acc;
        fn main() -> int {
            acc = 1.25;
            acc = acc * 4.0;
            return int(acc);
        }"),
        5
    );
}

#[test]
fn datasets_poke_globals() {
    let src = "global int xs[8];
        global int n;
        fn main() -> int {
            int i; int s;
            for (i = 0; i < n; i = i + 1) { s = s + xs[i]; }
            return s;
        }";
    let p = compile(src).unwrap();
    let mut sim = Simulator::new(&p);
    let mut g = GlobalValues::new();
    g.set_int("xs", vec![1, 2, 3, 4]);
    g.set_int("n", vec![4]);
    sim.set_globals(&g).unwrap();
    assert_eq!(sim.run(&mut NullObserver).unwrap().exit, 10);
}

#[test]
fn float_datasets_poke_globals() {
    let src = "global float ws[4];
        fn main() -> int {
            float s; int i;
            for (i = 0; i < 4; i = i + 1) { s = s + ws[i]; }
            return int(s * 10.0);
        }";
    let p = compile(src).unwrap();
    let mut sim = Simulator::new(&p);
    let mut g = GlobalValues::new();
    g.set_float("ws", vec![0.1, 0.2, 0.3, 0.4]);
    sim.set_globals(&g).unwrap();
    assert_eq!(sim.run(&mut NullObserver).unwrap().exit, 10);
}

#[test]
fn unknown_global_rejected() {
    let p = compile("fn main() -> int { return 0; }").unwrap();
    let mut sim = Simulator::new(&p);
    let mut g = GlobalValues::new();
    g.set_int("missing", vec![1]);
    assert!(matches!(
        sim.set_globals(&g),
        Err(SimError::UnknownGlobal { .. })
    ));
}

#[test]
fn oversized_dataset_rejected() {
    let p = compile("global int xs[2]; fn main() -> int { return xs[0]; }").unwrap();
    let mut sim = Simulator::new(&p);
    let mut g = GlobalValues::new();
    g.set_int("xs", vec![1, 2, 3]);
    assert!(matches!(
        sim.set_globals(&g),
        Err(SimError::GlobalTooSmall { .. })
    ));
}

#[test]
fn read_global_after_run() {
    let src = "global int out[3];
        fn main() -> int {
            out[0] = 10; out[1] = 20; out[2] = 30;
            return 0;
        }";
    let p = compile(src).unwrap();
    let mut sim = Simulator::new(&p);
    sim.run(&mut NullObserver).unwrap();
    assert_eq!(sim.read_global("out").unwrap(), vec![10, 20, 30]);
}

#[test]
fn null_dereference_traps() {
    let p = compile("fn main() -> int { ptr p; p = null; return p[0]; }").unwrap();
    let err = Simulator::new(&p).run(&mut NullObserver).unwrap_err();
    assert!(matches!(err, SimError::BadAddress { addr: 0, .. }));
}

#[test]
fn infinite_loop_runs_out_of_fuel() {
    let p = compile("fn main() -> int { int i; do { i = 1; } while (i > 0); return i; }").unwrap();
    let cfg = SimConfig {
        fuel: 10_000,
        ..SimConfig::default()
    };
    let err = Simulator::with_config(&p, cfg)
        .run(&mut NullObserver)
        .unwrap_err();
    assert!(matches!(err, SimError::OutOfFuel { .. }));
}

#[test]
fn runaway_recursion_overflows_stack() {
    let p = compile(
        "fn f(int n) -> int { return f(n + 1); }
        fn main() -> int { return f(0); }",
    )
    .unwrap();
    let cfg = SimConfig {
        max_call_depth: 100,
        ..SimConfig::default()
    };
    let err = Simulator::with_config(&p, cfg)
        .run(&mut NullObserver)
        .unwrap_err();
    assert!(matches!(err, SimError::StackOverflow { .. }));
}

#[test]
fn huge_alloc_reports_out_of_memory() {
    let p = compile("fn main() -> int { ptr p; p = alloc(1 << 40); return 0; }").unwrap();
    let err = Simulator::new(&p).run(&mut NullObserver).unwrap_err();
    assert!(matches!(err, SimError::OutOfMemory { .. }));
}

#[test]
fn edge_profile_counts_are_exact() {
    // for (i = 0; i < 5; ...) — guard runs once (not taken: enters loop);
    // bottom test runs 5 times, taken 4.
    let src = "fn main() -> int {
        int i;
        for (i = 0; i < 5; i = i + 1) { }
        return i;
    }";
    let p = compile(src).unwrap();
    let mut prof = EdgeProfiler::new();
    Simulator::new(&p).run(&mut prof).unwrap();
    let profile = prof.into_profile();
    assert_eq!(profile.n_sites(), 2);
    let mut totals: Vec<(u64, u64)> = profile.iter().map(|(_, c)| (c.taken, c.fallthru)).collect();
    totals.sort();
    // Guard: branch-over polarity means "enter loop" is the fall-through:
    // 0 taken / 1 fallthru. Latch: taken 4 (backedge), fallthru 1 (exit).
    assert_eq!(totals, vec![(0, 1), (4, 1)]);
}

#[test]
fn instruction_counts_match_between_observers() {
    let src = "fn main() -> int {
        int i; int s;
        for (i = 0; i < 50; i = i + 1) { s = s + i * i; }
        return s;
    }";
    let p = compile(src).unwrap();
    let mut pair = Pair(CountingObserver::default(), EdgeProfiler::new());
    let r = Simulator::new(&p).run(&mut pair).unwrap();
    assert_eq!(pair.0.instructions, r.instructions);
    assert_eq!(pair.0.branches, pair.1.profile().total_branches());
    assert_eq!(r.exit, (0..50).map(|i| i * i).sum::<i64>());
}

#[test]
fn deterministic_across_runs() {
    let src = "global int xs[16];
        fn main() -> int {
            int i; int h;
            for (i = 0; i < 16; i = i + 1) { xs[i] = i * 2654435761 % 97; }
            for (i = 0; i < 16; i = i + 1) { h = h ^ xs[i] + 31 * h; }
            return h;
        }";
    let p = compile(src).unwrap();
    let a = Simulator::new(&p).run(&mut NullObserver).unwrap();
    let b = Simulator::new(&p).run(&mut NullObserver).unwrap();
    assert_eq!(a, b);
}
