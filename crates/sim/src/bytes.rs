//! Shared-ownership byte windows for zero-copy artifact loading.
//!
//! The suite image (cache format v6) is read into one heap buffer and
//! every borrowed artifact — most importantly the byte-wide trace
//! sequences behind [`crate::BranchTrace::seq_u8`] — is served as a
//! window into that buffer. [`ByteView`] is that window: an
//! `Arc<Vec<u8>>` plus a bounds-checked `(offset, length)` pair, so a
//! mounted trace holds the image alive without copying a byte and
//! without any self-referential lifetime plumbing.

use std::sync::Arc;

/// A cheaply clonable, owned window into a shared byte buffer.
///
/// Equality and ordering are over the viewed bytes, not the backing
/// buffer identity, so two views of identical content compare equal
/// regardless of which buffer serves them.
#[derive(Clone)]
pub struct ByteView {
    buf: Arc<Vec<u8>>,
    off: usize,
    len: usize,
}

impl ByteView {
    /// A window of `len` bytes starting at `off`, or `None` when the
    /// range falls outside `buf` (corrupt section table).
    pub fn new(buf: Arc<Vec<u8>>, off: usize, len: usize) -> Option<ByteView> {
        let end = off.checked_add(len)?;
        if end > buf.len() {
            return None;
        }
        Some(ByteView { buf, off, len })
    }

    /// Wraps a whole owned buffer (the degenerate single-view case).
    pub fn from_vec(bytes: Vec<u8>) -> ByteView {
        let len = bytes.len();
        ByteView {
            buf: Arc::new(bytes),
            off: 0,
            len,
        }
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.off..self.off + self.len]
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the view empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::ops::Deref for ByteView {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for ByteView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ByteView")
            .field("off", &self.off)
            .field("len", &self.len)
            .finish()
    }
}

impl PartialEq for ByteView {
    fn eq(&self, other: &ByteView) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for ByteView {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_bounds_checked() {
        let buf = Arc::new(vec![1u8, 2, 3, 4]);
        let v = ByteView::new(buf.clone(), 1, 2).unwrap();
        assert_eq!(v.as_slice(), &[2, 3]);
        assert_eq!(v.len(), 2);
        assert!(ByteView::new(buf.clone(), 3, 2).is_none());
        assert!(ByteView::new(buf.clone(), usize::MAX, 2).is_none());
        assert!(ByteView::new(buf, 4, 0).unwrap().is_empty());
    }

    #[test]
    fn equality_is_over_content() {
        let a = ByteView::from_vec(vec![9, 9, 7]);
        let b = ByteView::new(Arc::new(vec![0, 9, 9, 7, 0]), 1, 3).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, ByteView::from_vec(vec![9, 9]));
    }
}
