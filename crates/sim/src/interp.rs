use bpfree_ir::{
    BinOp, BranchRef, Cond, FBinOp, FCmp, FuncId, GlobalValues, Instr, Program, Reg, Terminator,
};

use crate::decode::BytecodeProgram;
use crate::error::SimError;
use crate::observer::ExecObserver;

/// Which interpreter implementation a [`Simulator`] runs.
///
/// Both tiers are observationally identical — same results, same
/// [`SimError`]s, same [`ExecObserver`] event stream byte for byte —
/// which the differential and property test suites enforce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InterpTier {
    /// Pre-decoded flat bytecode ([`BytecodeProgram`]) executed over an
    /// explicit frame stack. The default: several times faster than the
    /// tree walker on the suite's hot benchmarks.
    #[default]
    Bytecode,
    /// The original tree-walking interpreter over the IR `Instr` enums,
    /// kept as the differential-testing reference.
    Tree,
}

impl InterpTier {
    /// Parses a CLI/environment spelling of a tier name.
    ///
    /// # Errors
    ///
    /// Returns a usage message naming the accepted spellings
    /// (`bytecode` and `tree`).
    pub fn parse(s: &str) -> Result<InterpTier, String> {
        match s {
            "bytecode" | "bc" => Ok(InterpTier::Bytecode),
            "tree" => Ok(InterpTier::Tree),
            other => Err(format!(
                "unknown interpreter tier `{other}` (expected `bytecode` or `tree`)"
            )),
        }
    }
}

impl std::fmt::Display for InterpTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            InterpTier::Bytecode => "bytecode",
            InterpTier::Tree => "tree",
        })
    }
}

/// Simulator resource limits and tier selection.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Memory size in 64-bit words (globals + heap + stack share it).
    pub mem_words: usize,
    /// Maximum dynamic instruction count before [`SimError::OutOfFuel`].
    pub fuel: u64,
    /// Maximum call depth before [`SimError::StackOverflow`].
    pub max_call_depth: usize,
    /// Interpreter implementation (default [`InterpTier::Bytecode`]).
    pub tier: InterpTier,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            mem_words: 1 << 22,
            fuel: 2_000_000_000,
            max_call_depth: 100_000,
            tier: InterpTier::default(),
        }
    }
}

/// Outcome of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// The entry function's integer return value (0 if it returned none).
    pub exit: i64,
    /// Total dynamic instructions executed (terminators included).
    pub instructions: u64,
}

/// Executes a [`Program`], streaming events to an [`ExecObserver`].
///
/// Memory is a flat array of 64-bit words. Address 0 is the null word and
/// traps on access; globals sit at `[1, 1+G)` addressed off `$gp = 1`; the
/// heap bumps upward from `1+G`; the stack grows downward from the top.
/// Floats are stored as raw `f64` bits. A simulator instance runs once —
/// create a fresh one per run.
///
/// # Example
///
/// ```
/// use bpfree_sim::{NullObserver, Simulator};
/// let p = bpfree_lang::compile("fn main() -> int { return 6 * 7; }").unwrap();
/// let r = Simulator::new(&p).run(&mut NullObserver).unwrap();
/// assert_eq!(r.exit, 42);
/// ```
#[derive(Debug)]
pub struct Simulator<'p> {
    program: &'p Program,
    pub(crate) config: SimConfig,
    pub(crate) mem: Vec<i64>,
    pub(crate) heap_next: i64,
    pub(crate) fuel_left: u64,
    depth: usize,
    decoded: Option<&'p BytecodeProgram>,
}

pub(crate) const GP_BASE: i64 = 1;

impl<'p> Simulator<'p> {
    /// Creates a simulator with default limits.
    pub fn new(program: &'p Program) -> Simulator<'p> {
        Simulator::with_config(program, SimConfig::default())
    }

    /// Creates a simulator with explicit limits.
    pub fn with_config(program: &'p Program, config: SimConfig) -> Simulator<'p> {
        let mem = vec![0i64; config.mem_words];
        let heap_next = GP_BASE + program.globals_words();
        Simulator {
            program,
            config,
            mem,
            heap_next,
            fuel_left: config.fuel,
            depth: 0,
            decoded: None,
        }
    }

    /// Creates a simulator that reuses an already-compiled
    /// [`BytecodeProgram`] (default limits). `decoded` must be the
    /// lowering of this same `program`; callers that run many datasets
    /// against one program use this to pay the decode cost once.
    pub fn with_decoded(program: &'p Program, decoded: &'p BytecodeProgram) -> Simulator<'p> {
        Simulator::with_decoded_config(program, decoded, SimConfig::default())
    }

    /// Creates a simulator with explicit limits that reuses an
    /// already-compiled [`BytecodeProgram`] of the same `program`. The
    /// pre-decoded form is only consulted when `config.tier` is
    /// [`InterpTier::Bytecode`].
    pub fn with_decoded_config(
        program: &'p Program,
        decoded: &'p BytecodeProgram,
        config: SimConfig,
    ) -> Simulator<'p> {
        let mut sim = Simulator::with_config(program, config);
        sim.decoded = Some(decoded);
        sim
    }

    /// Pokes initial values into named globals — the "dataset" of a run.
    ///
    /// # Errors
    ///
    /// Fails on unknown global names or value lists longer than the
    /// global's extent.
    pub fn set_globals(&mut self, values: &GlobalValues) -> Result<(), SimError> {
        for (name, ints) in values.ints() {
            let sym = self
                .program
                .symbol(name)
                .ok_or_else(|| SimError::UnknownGlobal { name: name.clone() })?;
            if ints.len() as i64 > sym.len {
                return Err(SimError::GlobalTooSmall {
                    name: name.clone(),
                    len: sym.len,
                    got: ints.len(),
                });
            }
            for (i, &v) in ints.iter().enumerate() {
                self.mem[(GP_BASE + sym.offset) as usize + i] = v;
            }
        }
        for (name, floats) in values.floats() {
            let sym = self
                .program
                .symbol(name)
                .ok_or_else(|| SimError::UnknownGlobal { name: name.clone() })?;
            if floats.len() as i64 > sym.len {
                return Err(SimError::GlobalTooSmall {
                    name: name.clone(),
                    len: sym.len,
                    got: floats.len(),
                });
            }
            for (i, &v) in floats.iter().enumerate() {
                self.mem[(GP_BASE + sym.offset) as usize + i] = v.to_bits() as i64;
            }
        }
        Ok(())
    }

    /// Reads back a global's current contents (after a run).
    ///
    /// # Errors
    ///
    /// Fails on an unknown global name.
    pub fn read_global(&self, name: &str) -> Result<Vec<i64>, SimError> {
        let sym = self
            .program
            .symbol(name)
            .ok_or_else(|| SimError::UnknownGlobal {
                name: name.to_string(),
            })?;
        let base = (GP_BASE + sym.offset) as usize;
        Ok(self.mem[base..base + sym.len as usize].to_vec())
    }

    /// Runs the program from its entry function under the configured
    /// [`InterpTier`]. Under the default bytecode tier a pre-decoded
    /// program attached via [`Simulator::with_decoded`] is reused;
    /// otherwise the program is lowered on the fly.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] raised during execution (fuel
    /// exhaustion, bad addresses, stack overflow, heap exhaustion).
    pub fn run<O: ExecObserver>(&mut self, observer: &mut O) -> Result<RunResult, SimError> {
        let (val, _fval) = match self.config.tier {
            InterpTier::Bytecode => match self.decoded {
                Some(bc) => crate::exec::run(self, bc, observer)?,
                None => {
                    let bc = BytecodeProgram::compile(self.program);
                    crate::exec::run(self, &bc, observer)?
                }
            },
            InterpTier::Tree => {
                let entry = self.program.entry();
                let sp_top = self.config.mem_words as i64;
                self.call(entry, &[], &[], sp_top, observer)?
            }
        };
        Ok(RunResult {
            exit: val,
            instructions: self.config.fuel - self.fuel_left,
        })
    }

    fn call<O: ExecObserver>(
        &mut self,
        func_id: FuncId,
        args: &[i64],
        fargs: &[f64],
        caller_sp: i64,
        observer: &mut O,
    ) -> Result<(i64, f64), SimError> {
        self.depth += 1;
        if self.depth > self.config.max_call_depth {
            return Err(SimError::StackOverflow { depth: self.depth });
        }
        let func = self.program.func(func_id);
        let sp = caller_sp - func.frame_words();
        if sp < self.heap_next {
            return Err(SimError::FrameOverflow { func: func_id });
        }

        let mut regs = vec![0i64; func.n_regs() as usize];
        let mut fregs = vec![0f64; func.n_fregs() as usize];
        let mut fflag = false;
        if (Reg::SP.index() as usize) < regs.len() {
            regs[Reg::SP.index() as usize] = sp;
        }
        if (Reg::GP.index() as usize) < regs.len() {
            regs[Reg::GP.index() as usize] = GP_BASE;
        }
        for (i, &a) in args.iter().enumerate() {
            regs[func.params()[i].index() as usize] = a;
        }
        for (i, &a) in fargs.iter().enumerate() {
            fregs[func.fparams()[i].index() as usize] = a;
        }

        let mut block = func.entry();
        loop {
            let b = func.block(block);
            let cost = b.len_with_term();
            if self.fuel_left < cost {
                return Err(SimError::OutOfFuel {
                    executed: self.config.fuel - self.fuel_left,
                });
            }
            self.fuel_left -= cost;
            for instr in &b.instrs {
                self.exec_instr(
                    func_id, instr, &mut regs, &mut fregs, &mut fflag, sp, observer,
                )?;
            }
            observer.on_instrs(cost);
            match &b.term {
                Terminator::Jump(t) => block = *t,
                Terminator::Branch {
                    cond,
                    taken,
                    fallthru,
                } => {
                    let is_taken = eval_cond(cond, &regs, fflag);
                    observer.on_branch(
                        BranchRef {
                            func: func_id,
                            block,
                        },
                        is_taken,
                    );
                    block = if is_taken { *taken } else { *fallthru };
                }
                Terminator::Ret { val, fval } => {
                    let v = val.map(|r| read_reg(&regs, r)).unwrap_or(0);
                    let fv = fval.map(|r| fregs[r.index() as usize]).unwrap_or(0.0);
                    self.depth -= 1;
                    return Ok((v, fv));
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // interpreter hot path: frame state is threaded explicitly
    fn exec_instr<O: ExecObserver>(
        &mut self,
        func_id: FuncId,
        instr: &Instr,
        regs: &mut [i64],
        fregs: &mut [f64],
        fflag: &mut bool,
        sp: i64,
        observer: &mut O,
    ) -> Result<(), SimError> {
        match instr {
            Instr::Li { rd, imm } => write_reg(regs, *rd, *imm),
            Instr::Move { rd, rs } => {
                let v = read_reg(regs, *rs);
                write_reg(regs, *rd, v);
            }
            Instr::Bin { op, rd, rs, rt } => {
                let a = read_reg(regs, *rs);
                let b = read_reg(regs, *rt);
                write_reg(regs, *rd, eval_bin(*op, a, b));
            }
            Instr::BinImm { op, rd, rs, imm } => {
                let a = read_reg(regs, *rs);
                write_reg(regs, *rd, eval_bin(*op, a, *imm));
            }
            Instr::LiF { fd, imm } => fregs[fd.index() as usize] = *imm,
            Instr::MoveF { fd, fs } => fregs[fd.index() as usize] = fregs[fs.index() as usize],
            Instr::BinF { op, fd, fs, ft } => {
                let a = fregs[fs.index() as usize];
                let b = fregs[ft.index() as usize];
                fregs[fd.index() as usize] = match op {
                    FBinOp::Add => a + b,
                    FBinOp::Sub => a - b,
                    FBinOp::Mul => a * b,
                    FBinOp::Div => a / b,
                };
            }
            Instr::CvtIF { fd, rs } => {
                fregs[fd.index() as usize] = read_reg(regs, *rs) as f64;
            }
            Instr::CvtFI { rd, fs } => {
                let f = fregs[fs.index() as usize];
                // Saturating truncation; NaN converts to 0 (like Rust's
                // `as` cast).
                write_reg(regs, *rd, f as i64);
            }
            Instr::CmpF { cmp, fs, ft } => {
                let a = fregs[fs.index() as usize];
                let b = fregs[ft.index() as usize];
                *fflag = match cmp {
                    FCmp::Eq => a == b,
                    FCmp::Lt => a < b,
                    FCmp::Le => a <= b,
                };
            }
            Instr::Load { rd, base, offset } => {
                let addr = read_reg(regs, *base).wrapping_add(*offset);
                let v = self.load(addr, func_id)?;
                write_reg(regs, *rd, v);
            }
            Instr::Store { rs, base, offset } => {
                let addr = read_reg(regs, *base).wrapping_add(*offset);
                let v = read_reg(regs, *rs);
                self.store(addr, v, func_id)?;
            }
            Instr::LoadF { fd, base, offset } => {
                let addr = read_reg(regs, *base).wrapping_add(*offset);
                let v = self.load(addr, func_id)?;
                fregs[fd.index() as usize] = f64::from_bits(v as u64);
            }
            Instr::StoreF { fs, base, offset } => {
                let addr = read_reg(regs, *base).wrapping_add(*offset);
                let v = fregs[fs.index() as usize].to_bits() as i64;
                self.store(addr, v, func_id)?;
            }
            Instr::Alloc { rd, size } => {
                let requested = read_reg(regs, *size);
                let usable = requested.max(0);
                let bump = requested.max(1);
                let addr = self.heap_next;
                // The current frame's `sp` is the lowest stack word in
                // use (frames are carved downward at call time), so the
                // heap may grow up to, but not into, `sp`.
                if addr + usable >= sp {
                    return Err(SimError::OutOfMemory { requested });
                }
                self.heap_next += bump;
                write_reg(regs, *rd, addr);
            }
            Instr::Call {
                callee,
                args,
                fargs,
                ret,
                fret,
            } => {
                let a: Vec<i64> = args.iter().map(|r| read_reg(regs, *r)).collect();
                let fa: Vec<f64> = fargs.iter().map(|r| fregs[r.index() as usize]).collect();
                let (v, fv) = self.call(*callee, &a, &fa, sp, observer)?;
                if let Some(r) = ret {
                    write_reg(regs, *r, v);
                }
                if let Some(r) = fret {
                    fregs[r.index() as usize] = fv;
                }
            }
        }
        Ok(())
    }

    fn load(&self, addr: i64, func: FuncId) -> Result<i64, SimError> {
        if addr < GP_BASE || addr as usize >= self.mem.len() {
            return Err(SimError::BadAddress { addr, func });
        }
        Ok(self.mem[addr as usize])
    }

    fn store(&mut self, addr: i64, value: i64, func: FuncId) -> Result<(), SimError> {
        if addr < GP_BASE || addr as usize >= self.mem.len() {
            return Err(SimError::BadAddress { addr, func });
        }
        self.mem[addr as usize] = value;
        Ok(())
    }
}

fn read_reg(regs: &[i64], r: Reg) -> i64 {
    if r == Reg::ZERO {
        0
    } else {
        regs[r.index() as usize]
    }
}

fn write_reg(regs: &mut [i64], r: Reg, v: i64) {
    if r != Reg::ZERO {
        regs[r.index() as usize] = v;
    }
}

#[inline(always)]
pub(crate) fn eval_bin(op: BinOp, a: i64, b: i64) -> i64 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        BinOp::Rem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Sll => ((a as u64) << (b as u64 & 63)) as i64,
        BinOp::Srl => ((a as u64) >> (b as u64 & 63)) as i64,
        BinOp::Sra => a >> (b as u64 & 63),
        BinOp::Slt => (a < b) as i64,
        BinOp::Sle => (a <= b) as i64,
        BinOp::Seq => (a == b) as i64,
        BinOp::Sne => (a != b) as i64,
    }
}

fn eval_cond(cond: &Cond, regs: &[i64], fflag: bool) -> bool {
    match *cond {
        Cond::Eqz(r) => read_reg(regs, r) == 0,
        Cond::Nez(r) => read_reg(regs, r) != 0,
        Cond::Lez(r) => read_reg(regs, r) <= 0,
        Cond::Ltz(r) => read_reg(regs, r) < 0,
        Cond::Gez(r) => read_reg(regs, r) >= 0,
        Cond::Gtz(r) => read_reg(regs, r) > 0,
        Cond::Eq(a, b) => read_reg(regs, a) == read_reg(regs, b),
        Cond::Ne(a, b) => read_reg(regs, a) != read_reg(regs, b),
        Cond::FTrue => fflag,
        Cond::FFalse => !fflag,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_bin_semantics() {
        assert_eq!(eval_bin(BinOp::Add, i64::MAX, 1), i64::MIN); // wrapping
        assert_eq!(eval_bin(BinOp::Div, 7, 0), 0);
        assert_eq!(eval_bin(BinOp::Rem, 7, 0), 0);
        assert_eq!(eval_bin(BinOp::Div, 7, 2), 3);
        assert_eq!(eval_bin(BinOp::Rem, -7, 2), -1);
        assert_eq!(eval_bin(BinOp::Sll, 1, 65), 2); // shift mod 64
        assert_eq!(eval_bin(BinOp::Sra, -8, 1), -4);
        assert_eq!(eval_bin(BinOp::Srl, -8, 1), (-8i64 as u64 >> 1) as i64);
        assert_eq!(eval_bin(BinOp::Slt, 1, 2), 1);
        assert_eq!(eval_bin(BinOp::Sle, 2, 2), 1);
        assert_eq!(eval_bin(BinOp::Seq, 3, 4), 0);
        assert_eq!(eval_bin(BinOp::Sne, 3, 4), 1);
    }

    #[test]
    fn zero_register_reads_zero_and_ignores_writes() {
        let mut regs = vec![7i64; 4];
        assert_eq!(read_reg(&regs, Reg::ZERO), 0);
        write_reg(&mut regs, Reg::ZERO, 42);
        assert_eq!(read_reg(&regs, Reg::ZERO), 0);
    }

    /// Regression test for the `Alloc` bound: the heap must be able to
    /// grow right up to the current frame's `sp` and no further, under
    /// both tiers. (The old check took `sp.min(stack_floor())` where
    /// `stack_floor()` always returned `mem_words` — a no-op.)
    #[test]
    fn alloc_collides_with_stack_not_mem_top() {
        use crate::observer::NullObserver;

        // `alloc n` bumps the heap by n words; mem_words is tiny so a
        // handful of allocations crosses sp.
        let p = bpfree_lang::compile(
            "fn main() -> int {
                int i; int p;
                for (i = 0; i < 100; i = i + 1) { p = alloc(64); }
                return p;
            }",
        )
        .unwrap();
        for tier in [InterpTier::Bytecode, InterpTier::Tree] {
            let config = SimConfig {
                mem_words: 512,
                tier,
                ..SimConfig::default()
            };
            let err = Simulator::with_config(&p, config)
                .run(&mut NullObserver)
                .unwrap_err();
            assert_eq!(err, SimError::OutOfMemory { requested: 64 }, "tier {tier}");

            // A run whose allocations stay below sp succeeds.
            let p_ok = bpfree_lang::compile("fn main() -> int { int p; p = alloc(64); return p; }")
                .unwrap();
            let r = Simulator::with_config(&p_ok, config)
                .run(&mut NullObserver)
                .unwrap();
            assert!(r.exit >= GP_BASE, "tier {tier}");
        }
    }
}
