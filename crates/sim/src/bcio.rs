//! Byte serialization of [`BytecodeProgram`] for the suite image.
//!
//! The decoded-bytecode section of the cache-v6 suite image stores the
//! finished decode — tagged, fixed-width, little-endian records, one
//! per [`Op`] — so a mounted engine skips [`BytecodeProgram::compile`]
//! entirely. Deserialization is paranoid by construction: every record
//! is length-checked, every enum tag matched exhaustively, the frame
//! geometry is pinned to the live [`Program`], and the whole result is
//! run through the same slot/target validation the decoder enforces
//! ([`super::decode::check`]), because the executor elides those bounds
//! checks in its hot loop. Any failure yields `None` and the engine
//! falls back to decoding from the program — never a panic, never an
//! unchecked op stream.

use bpfree_ir::{BinOp, BlockId, BranchRef, FBinOp, FCmp, FuncId, Program, Reg};

use crate::decode::{check, AluOp, BcCond, BcFunc, BytecodeProgram, Op};

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// A little-endian cursor whose every read is bounds-checked.
struct Rd<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn new(b: &'a [u8]) -> Rd<'a> {
        Rd { b, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.b.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn i64(&mut self) -> Option<i64> {
        Some(i64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    fn done(&self) -> bool {
        self.pos == self.b.len()
    }

    fn remaining(&self) -> usize {
        self.b.len() - self.pos
    }
}

fn bin_op_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Rem => 4,
        BinOp::And => 5,
        BinOp::Or => 6,
        BinOp::Xor => 7,
        BinOp::Sll => 8,
        BinOp::Srl => 9,
        BinOp::Sra => 10,
        BinOp::Slt => 11,
        BinOp::Sle => 12,
        BinOp::Seq => 13,
        BinOp::Sne => 14,
    }
}

fn bin_op_from(tag: u8) -> Option<BinOp> {
    Some(match tag {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Rem,
        5 => BinOp::And,
        6 => BinOp::Or,
        7 => BinOp::Xor,
        8 => BinOp::Sll,
        9 => BinOp::Srl,
        10 => BinOp::Sra,
        11 => BinOp::Slt,
        12 => BinOp::Sle,
        13 => BinOp::Seq,
        14 => BinOp::Sne,
        _ => return None,
    })
}

fn fbin_op_tag(op: FBinOp) -> u8 {
    match op {
        FBinOp::Add => 0,
        FBinOp::Sub => 1,
        FBinOp::Mul => 2,
        FBinOp::Div => 3,
    }
}

fn fbin_op_from(tag: u8) -> Option<FBinOp> {
    Some(match tag {
        0 => FBinOp::Add,
        1 => FBinOp::Sub,
        2 => FBinOp::Mul,
        3 => FBinOp::Div,
        _ => return None,
    })
}

fn fcmp_tag(cmp: FCmp) -> u8 {
    match cmp {
        FCmp::Eq => 0,
        FCmp::Lt => 1,
        FCmp::Le => 2,
    }
}

fn fcmp_from(tag: u8) -> Option<FCmp> {
    Some(match tag {
        0 => FCmp::Eq,
        1 => FCmp::Lt,
        2 => FCmp::Le,
        _ => return None,
    })
}

fn put_cond(out: &mut Vec<u8>, c: &BcCond) {
    match *c {
        BcCond::Eqz(a) => {
            out.push(0);
            put_u32(out, a);
        }
        BcCond::Nez(a) => {
            out.push(1);
            put_u32(out, a);
        }
        BcCond::Lez(a) => {
            out.push(2);
            put_u32(out, a);
        }
        BcCond::Ltz(a) => {
            out.push(3);
            put_u32(out, a);
        }
        BcCond::Gez(a) => {
            out.push(4);
            put_u32(out, a);
        }
        BcCond::Gtz(a) => {
            out.push(5);
            put_u32(out, a);
        }
        BcCond::Eq(a, b) => {
            out.push(6);
            put_u32(out, a);
            put_u32(out, b);
        }
        BcCond::Ne(a, b) => {
            out.push(7);
            put_u32(out, a);
            put_u32(out, b);
        }
        BcCond::FTrue => out.push(8),
        BcCond::FFalse => out.push(9),
    }
}

fn read_cond(rd: &mut Rd) -> Option<BcCond> {
    Some(match rd.u8()? {
        0 => BcCond::Eqz(rd.u32()?),
        1 => BcCond::Nez(rd.u32()?),
        2 => BcCond::Lez(rd.u32()?),
        3 => BcCond::Ltz(rd.u32()?),
        4 => BcCond::Gez(rd.u32()?),
        5 => BcCond::Gtz(rd.u32()?),
        6 => BcCond::Eq(rd.u32()?, rd.u32()?),
        7 => BcCond::Ne(rd.u32()?, rd.u32()?),
        8 => BcCond::FTrue,
        9 => BcCond::FFalse,
        _ => return None,
    })
}

fn put_alu(out: &mut Vec<u8>, a: &AluOp) {
    match *a {
        AluOp::RR { op, rd, rs, rt } => {
            out.push(0);
            out.push(bin_op_tag(op));
            put_u32(out, rd);
            put_u32(out, rs);
            put_u32(out, rt);
        }
        AluOp::RI { op, rd, rs, imm } => {
            out.push(1);
            out.push(bin_op_tag(op));
            put_u32(out, rd);
            put_u32(out, rs);
            put_i64(out, imm);
        }
    }
}

fn read_alu(rd: &mut Rd) -> Option<AluOp> {
    Some(match rd.u8()? {
        0 => AluOp::RR {
            op: bin_op_from(rd.u8()?)?,
            rd: rd.u32()?,
            rs: rd.u32()?,
            rt: rd.u32()?,
        },
        1 => AluOp::RI {
            op: bin_op_from(rd.u8()?)?,
            rd: rd.u32()?,
            rs: rd.u32()?,
            imm: rd.i64()?,
        },
        _ => return None,
    })
}

fn put_site(out: &mut Vec<u8>, site: BranchRef) {
    put_u32(out, site.func.0);
    put_u32(out, site.block.0);
}

fn read_site(rd: &mut Rd) -> Option<BranchRef> {
    Some(BranchRef {
        func: FuncId(rd.u32()?),
        block: BlockId(rd.u32()?),
    })
}

#[allow(clippy::too_many_lines)]
fn put_op(out: &mut Vec<u8>, op: &Op) {
    match op {
        Op::Li { rd, imm } => {
            out.push(0);
            put_u32(out, *rd);
            put_i64(out, *imm);
        }
        Op::Move { rd, rs } => {
            out.push(1);
            put_u32(out, *rd);
            put_u32(out, *rs);
        }
        Op::Bin { op, rd, rs, rt } => {
            out.push(2);
            out.push(bin_op_tag(*op));
            put_u32(out, *rd);
            put_u32(out, *rs);
            put_u32(out, *rt);
        }
        Op::BinImm { op, rd, rs, imm } => {
            out.push(3);
            out.push(bin_op_tag(*op));
            put_u32(out, *rd);
            put_u32(out, *rs);
            put_i64(out, *imm);
        }
        Op::LiF { fd, imm } => {
            out.push(4);
            put_u32(out, *fd);
            put_f64(out, *imm);
        }
        Op::MoveF { fd, fs } => {
            out.push(5);
            put_u32(out, *fd);
            put_u32(out, *fs);
        }
        Op::BinF { op, fd, fs, ft } => {
            out.push(6);
            out.push(fbin_op_tag(*op));
            put_u32(out, *fd);
            put_u32(out, *fs);
            put_u32(out, *ft);
        }
        Op::CvtIF { fd, rs } => {
            out.push(7);
            put_u32(out, *fd);
            put_u32(out, *rs);
        }
        Op::CvtFI { rd, fs } => {
            out.push(8);
            put_u32(out, *rd);
            put_u32(out, *fs);
        }
        Op::CmpF { cmp, fs, ft } => {
            out.push(9);
            out.push(fcmp_tag(*cmp));
            put_u32(out, *fs);
            put_u32(out, *ft);
        }
        Op::Load { rd, base, offset } => {
            out.push(10);
            put_u32(out, *rd);
            put_u32(out, *base);
            put_i64(out, *offset);
        }
        Op::Store { rs, base, offset } => {
            out.push(11);
            put_u32(out, *rs);
            put_u32(out, *base);
            put_i64(out, *offset);
        }
        Op::LoadF { fd, base, offset } => {
            out.push(12);
            put_u32(out, *fd);
            put_u32(out, *base);
            put_i64(out, *offset);
        }
        Op::StoreF { fs, base, offset } => {
            out.push(13);
            put_u32(out, *fs);
            put_u32(out, *base);
            put_i64(out, *offset);
        }
        Op::LoadRR {
            op,
            rd_addr,
            rs,
            rt,
            rd,
            offset,
        } => {
            out.push(14);
            out.push(bin_op_tag(*op));
            put_u32(out, *rd_addr);
            put_u32(out, *rs);
            put_u32(out, *rt);
            put_u32(out, *rd);
            put_i64(out, *offset);
        }
        Op::Alu2 { a, b } => {
            out.push(15);
            put_alu(out, a);
            put_alu(out, b);
        }
        Op::Alloc { rd, size } => {
            out.push(16);
            put_u32(out, *rd);
            put_u32(out, *size);
        }
        Op::Call {
            callee,
            args,
            fargs,
            ret,
            fret,
        } => {
            out.push(17);
            put_u32(out, *callee);
            put_u32(out, args.len() as u32);
            for &(a, b) in args.iter() {
                put_u32(out, a);
                put_u32(out, b);
            }
            put_u32(out, fargs.len() as u32);
            for &(a, b) in fargs.iter() {
                put_u32(out, a);
                put_u32(out, b);
            }
            put_u32(out, *ret);
            put_u32(out, *fret);
        }
        Op::Jump { target, cost, fuel } => {
            out.push(18);
            put_u32(out, *target);
            put_u64(out, *cost);
            put_u64(out, *fuel);
        }
        Op::Br {
            cond,
            taken,
            fallthru,
            taken_fuel,
            fallthru_fuel,
            site,
            cost,
        } => {
            out.push(19);
            put_cond(out, cond);
            put_u32(out, *taken);
            put_u32(out, *fallthru);
            put_u64(out, *taken_fuel);
            put_u64(out, *fallthru_fuel);
            put_site(out, *site);
            put_u64(out, *cost);
        }
        Op::BinBr {
            op,
            rd,
            rs,
            rt,
            cond,
            taken,
            fallthru,
            taken_fuel,
            fallthru_fuel,
            site,
            cost,
        } => {
            out.push(20);
            out.push(bin_op_tag(*op));
            put_u32(out, *rd);
            put_u32(out, *rs);
            put_u32(out, *rt);
            put_cond(out, cond);
            put_u32(out, *taken);
            put_u32(out, *fallthru);
            put_u64(out, *taken_fuel);
            put_u64(out, *fallthru_fuel);
            put_site(out, *site);
            put_u64(out, *cost);
        }
        Op::BinImmBr {
            op,
            rd,
            rs,
            imm,
            cond,
            taken,
            fallthru,
            taken_fuel,
            fallthru_fuel,
            site,
            cost,
        } => {
            out.push(21);
            out.push(bin_op_tag(*op));
            put_u32(out, *rd);
            put_u32(out, *rs);
            put_i64(out, *imm);
            put_cond(out, cond);
            put_u32(out, *taken);
            put_u32(out, *fallthru);
            put_u64(out, *taken_fuel);
            put_u64(out, *fallthru_fuel);
            put_site(out, *site);
            put_u64(out, *cost);
        }
        Op::AluLoadBinBr {
            pre,
            ld_rd,
            ld_base,
            ld_offset,
            op,
            rd,
            rs,
            rt,
            cond,
            taken,
            fallthru,
            taken_fuel,
            fallthru_fuel,
            site,
            cost,
        } => {
            out.push(22);
            put_alu(out, pre);
            put_u32(out, *ld_rd);
            put_u32(out, *ld_base);
            put_i64(out, *ld_offset);
            out.push(bin_op_tag(*op));
            put_u32(out, *rd);
            put_u32(out, *rs);
            put_u32(out, *rt);
            put_cond(out, cond);
            put_u32(out, *taken);
            put_u32(out, *fallthru);
            put_u64(out, *taken_fuel);
            put_u64(out, *fallthru_fuel);
            put_site(out, *site);
            put_u64(out, *cost);
        }
        Op::LoadBinBr {
            ld_rd,
            ld_base,
            ld_offset,
            op,
            rd,
            rs,
            rt,
            cond,
            taken,
            fallthru,
            taken_fuel,
            fallthru_fuel,
            site,
            cost,
        } => {
            out.push(23);
            put_u32(out, *ld_rd);
            put_u32(out, *ld_base);
            put_i64(out, *ld_offset);
            out.push(bin_op_tag(*op));
            put_u32(out, *rd);
            put_u32(out, *rs);
            put_u32(out, *rt);
            put_cond(out, cond);
            put_u32(out, *taken);
            put_u32(out, *fallthru);
            put_u64(out, *taken_fuel);
            put_u64(out, *fallthru_fuel);
            put_site(out, *site);
            put_u64(out, *cost);
        }
        Op::Ret { val, fval, cost } => {
            out.push(24);
            put_u32(out, *val);
            put_u32(out, *fval);
            put_u64(out, *cost);
        }
    }
}

#[allow(clippy::too_many_lines)]
fn read_op(rd: &mut Rd) -> Option<Op> {
    Some(match rd.u8()? {
        0 => Op::Li {
            rd: rd.u32()?,
            imm: rd.i64()?,
        },
        1 => Op::Move {
            rd: rd.u32()?,
            rs: rd.u32()?,
        },
        2 => Op::Bin {
            op: bin_op_from(rd.u8()?)?,
            rd: rd.u32()?,
            rs: rd.u32()?,
            rt: rd.u32()?,
        },
        3 => Op::BinImm {
            op: bin_op_from(rd.u8()?)?,
            rd: rd.u32()?,
            rs: rd.u32()?,
            imm: rd.i64()?,
        },
        4 => Op::LiF {
            fd: rd.u32()?,
            imm: rd.f64()?,
        },
        5 => Op::MoveF {
            fd: rd.u32()?,
            fs: rd.u32()?,
        },
        6 => Op::BinF {
            op: fbin_op_from(rd.u8()?)?,
            fd: rd.u32()?,
            fs: rd.u32()?,
            ft: rd.u32()?,
        },
        7 => Op::CvtIF {
            fd: rd.u32()?,
            rs: rd.u32()?,
        },
        8 => Op::CvtFI {
            rd: rd.u32()?,
            fs: rd.u32()?,
        },
        9 => Op::CmpF {
            cmp: fcmp_from(rd.u8()?)?,
            fs: rd.u32()?,
            ft: rd.u32()?,
        },
        10 => Op::Load {
            rd: rd.u32()?,
            base: rd.u32()?,
            offset: rd.i64()?,
        },
        11 => Op::Store {
            rs: rd.u32()?,
            base: rd.u32()?,
            offset: rd.i64()?,
        },
        12 => Op::LoadF {
            fd: rd.u32()?,
            base: rd.u32()?,
            offset: rd.i64()?,
        },
        13 => Op::StoreF {
            fs: rd.u32()?,
            base: rd.u32()?,
            offset: rd.i64()?,
        },
        14 => Op::LoadRR {
            op: bin_op_from(rd.u8()?)?,
            rd_addr: rd.u32()?,
            rs: rd.u32()?,
            rt: rd.u32()?,
            rd: rd.u32()?,
            offset: rd.i64()?,
        },
        15 => Op::Alu2 {
            a: read_alu(rd)?,
            b: read_alu(rd)?,
        },
        16 => Op::Alloc {
            rd: rd.u32()?,
            size: rd.u32()?,
        },
        17 => {
            let callee = rd.u32()?;
            let n_args = rd.u32()? as usize;
            // Each pair is 8 bytes; reject counts the record cannot hold
            // before reserving anything.
            if n_args > rd.remaining() / 8 {
                return None;
            }
            let mut args = Vec::with_capacity(n_args);
            for _ in 0..n_args {
                args.push((rd.u32()?, rd.u32()?));
            }
            let n_fargs = rd.u32()? as usize;
            if n_fargs > rd.remaining() / 8 {
                return None;
            }
            let mut fargs = Vec::with_capacity(n_fargs);
            for _ in 0..n_fargs {
                fargs.push((rd.u32()?, rd.u32()?));
            }
            Op::Call {
                callee,
                args: args.into_boxed_slice(),
                fargs: fargs.into_boxed_slice(),
                ret: rd.u32()?,
                fret: rd.u32()?,
            }
        }
        18 => Op::Jump {
            target: rd.u32()?,
            cost: rd.u64()?,
            fuel: rd.u64()?,
        },
        19 => Op::Br {
            cond: read_cond(rd)?,
            taken: rd.u32()?,
            fallthru: rd.u32()?,
            taken_fuel: rd.u64()?,
            fallthru_fuel: rd.u64()?,
            site: read_site(rd)?,
            cost: rd.u64()?,
        },
        20 => Op::BinBr {
            op: bin_op_from(rd.u8()?)?,
            rd: rd.u32()?,
            rs: rd.u32()?,
            rt: rd.u32()?,
            cond: read_cond(rd)?,
            taken: rd.u32()?,
            fallthru: rd.u32()?,
            taken_fuel: rd.u64()?,
            fallthru_fuel: rd.u64()?,
            site: read_site(rd)?,
            cost: rd.u64()?,
        },
        21 => Op::BinImmBr {
            op: bin_op_from(rd.u8()?)?,
            rd: rd.u32()?,
            rs: rd.u32()?,
            imm: rd.i64()?,
            cond: read_cond(rd)?,
            taken: rd.u32()?,
            fallthru: rd.u32()?,
            taken_fuel: rd.u64()?,
            fallthru_fuel: rd.u64()?,
            site: read_site(rd)?,
            cost: rd.u64()?,
        },
        22 => Op::AluLoadBinBr {
            pre: read_alu(rd)?,
            ld_rd: rd.u32()?,
            ld_base: rd.u32()?,
            ld_offset: rd.i64()?,
            op: bin_op_from(rd.u8()?)?,
            rd: rd.u32()?,
            rs: rd.u32()?,
            rt: rd.u32()?,
            cond: read_cond(rd)?,
            taken: rd.u32()?,
            fallthru: rd.u32()?,
            taken_fuel: rd.u64()?,
            fallthru_fuel: rd.u64()?,
            site: read_site(rd)?,
            cost: rd.u64()?,
        },
        23 => Op::LoadBinBr {
            ld_rd: rd.u32()?,
            ld_base: rd.u32()?,
            ld_offset: rd.i64()?,
            op: bin_op_from(rd.u8()?)?,
            rd: rd.u32()?,
            rs: rd.u32()?,
            rt: rd.u32()?,
            cond: read_cond(rd)?,
            taken: rd.u32()?,
            fallthru: rd.u32()?,
            taken_fuel: rd.u64()?,
            fallthru_fuel: rd.u64()?,
            site: read_site(rd)?,
            cost: rd.u64()?,
        },
        24 => Op::Ret {
            val: rd.u32()?,
            fval: rd.u32()?,
            cost: rd.u64()?,
        },
        _ => return None,
    })
}

impl BytecodeProgram {
    /// Serializes the decoded program into the suite image's
    /// decoded-bytecode payload: little-endian, tagged fixed-width
    /// records, deterministic byte-for-byte for a given decode.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.ops_len() * 16);
        put_u32(&mut out, self.funcs.len() as u32);
        put_u32(&mut out, self.entry);
        for f in &self.funcs {
            put_u32(&mut out, f.n_slots);
            put_u32(&mut out, f.n_fslots);
            put_i64(&mut out, f.frame_words);
            put_u64(&mut out, f.entry_fuel);
            put_u32(&mut out, f.ops.len() as u32);
            for op in f.ops.iter() {
                put_op(&mut out, op);
            }
        }
        out
    }

    /// Deserializes a decoded program previously written by
    /// [`BytecodeProgram::to_bytes`], validated against the live
    /// `program`: the function count, entry point, and every function's
    /// frame geometry must match the program exactly, and every op
    /// passes the decoder's own slot/target validation. Returns `None`
    /// on any mismatch, truncation, or unknown tag — corrupt or stale
    /// bytes fall back to a fresh decode.
    pub fn from_bytes(bytes: &[u8], program: &Program) -> Option<BytecodeProgram> {
        let mut rd = Rd::new(bytes);
        let n_funcs = rd.u32()? as usize;
        let entry = rd.u32()?;
        if n_funcs != program.func_ids().count() || entry != program.entry().0 {
            return None;
        }
        let mut funcs = Vec::with_capacity(n_funcs);
        for fid in program.func_ids() {
            let func = program.func(fid);
            let n_slots = rd.u32()?;
            let n_fslots = rd.u32()?;
            let frame_words = rd.i64()?;
            let entry_fuel = rd.u64()?;
            // Frame geometry is pinned to the live program — the
            // executor sizes arena frames from these fields and a
            // mismatch would break its unchecked slot accesses.
            let n_regs_eff = func.n_regs().max(Reg::FIRST_TEMP);
            if n_slots != n_regs_eff + 1
                || n_fslots != func.n_fregs()
                || frame_words != func.frame_words()
                || entry_fuel != func.block(func.entry()).len_with_term()
            {
                return None;
            }
            let n_ops = rd.u32()? as usize;
            // Every op record is at least one byte.
            if n_ops > rd.remaining() {
                return None;
            }
            let mut ops = Vec::with_capacity(n_ops);
            for _ in 0..n_ops {
                ops.push(read_op(&mut rd)?);
            }
            let bf = BcFunc {
                ops: ops.into_boxed_slice(),
                n_slots,
                n_fslots,
                frame_words,
                entry_fuel,
            };
            check(&bf, program).ok()?;
            funcs.push(bf);
        }
        if !rd.done() {
            return None;
        }
        Some(BytecodeProgram { funcs, entry })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NullObserver, Simulator};

    fn program(src: &str) -> Program {
        bpfree_lang::compile(src).unwrap()
    }

    const SRC: &str = "global int table[8];
        fn helper(int x) -> int { return x * 2; }
        fn main() -> int {
            int i; int s; float f;
            f = 0.5;
            for (i = 0; i < 8; i = i + 1) { s = s + table[i] + helper(i); }
            if (f < 1.0) { s = s + 1; }
            return s;
        }";

    #[test]
    fn roundtrip_preserves_execution() {
        let p = program(SRC);
        let bc = BytecodeProgram::compile(&p);
        let bytes = bc.to_bytes();
        let back = BytecodeProgram::from_bytes(&bytes, &p).expect("roundtrip");
        assert_eq!(back.ops_len(), bc.ops_len());
        let a = Simulator::with_decoded(&p, &bc)
            .run(&mut NullObserver)
            .unwrap();
        let b = Simulator::with_decoded(&p, &back)
            .run(&mut NullObserver)
            .unwrap();
        assert_eq!(a.exit, b.exit);
        assert_eq!(a.instructions, b.instructions);
        // Serialization is deterministic.
        assert_eq!(bytes, back.to_bytes());
    }

    #[test]
    fn rejects_truncation_and_bit_flips() {
        let p = program(SRC);
        let bytes = BytecodeProgram::compile(&p).to_bytes();
        for cut in [0, 1, 7, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                BytecodeProgram::from_bytes(&bytes[..cut], &p).is_none(),
                "truncation at {cut} must be rejected"
            );
        }
        // Flip every byte position one at a time: the result must be
        // rejected or at minimum still pass validation (a flip inside an
        // imm/fuel field changes data the checker cannot see — those
        // are caught by the image checksum, not here).
        for pos in 0..bytes.len().min(128) {
            let mut b = bytes.clone();
            b[pos] ^= 0xff;
            let _ = BytecodeProgram::from_bytes(&b, &p); // must not panic
        }
    }

    #[test]
    fn rejects_wrong_program() {
        let p = program(SRC);
        let other = program("fn main() -> int { return 1; }");
        let bytes = BytecodeProgram::compile(&p).to_bytes();
        assert!(BytecodeProgram::from_bytes(&bytes, &other).is_none());
    }
}
