//! The flat-bytecode execution engine — the default interpreter tier.
//!
//! Executes a [`BytecodeProgram`] over one reusable register arena with
//! an explicit frame stack: a call carves the next frame out of the
//! arena (zeroing it and copying arguments slot-to-slot in place, no
//! per-call `Vec`s) and a return pops back to the suspended caller, so
//! call depth costs no native stack. Fuel is charged block-at-a-time on
//! the control-flow **edge** into each block (every jump/branch carries
//! its target's cost, calls and the program start charge the entry
//! block), and observer events fire in exactly the order the tree
//! walker produces them: the callee's whole event stream lands between
//! the caller block's entry and its `on_instrs`, and `on_branch`
//! follows the `on_instrs` of the block the branch terminates.
//!
//! # Safety
//!
//! The hot loop elides bounds checks on the op stream and the register
//! arenas. This is sound because `decode::validate` asserts, once per
//! decoded function, that every encoded slot index is `< n_slots`
//! (resp. `< n_fslots`) and every jump target is `< ops.len()`, and the
//! executor maintains the matching invariants: the arena always holds
//! at least `base + n_slots` (resp. `fbase + n_fslots`) elements for
//! the active frame and never shrinks, `pc` only takes values that are
//! either validated targets or one past a non-terminator op (every
//! block ends in a terminator, so that successor exists), and saved
//! `Frame` state restores a prefix of the same arena. Memory accesses
//! keep their explicit range check — it *is* the `BadAddress`
//! semantics — and reuse it for the subsequent access.

use bpfree_ir::{FBinOp, FCmp, FuncId};

use crate::decode::{AluOp, BcCond, BytecodeProgram, Op, NO_SLOT};
use crate::error::SimError;
use crate::interp::{eval_bin, Simulator, GP_BASE};
use crate::observer::ExecObserver;

/// A suspended caller: where to resume, where its frame lives in the
/// arena, and which absolute slots receive the callee's results.
struct Frame {
    func: u32,
    pc: u32,
    base: u32,
    fbase: u32,
    sp: i64,
    fflag: bool,
    /// Absolute arena index for the integer result, or [`NO_SLOT`].
    ret: u32,
    /// Absolute arena index for the float result, or [`NO_SLOT`].
    fret: u32,
}

/// Executes one fused ALU op against the current frame.
///
/// # Safety
///
/// `base + slot < regs.len()` must hold for every slot in `alu` — the
/// executor's frame invariant plus `decode::validate`'s slot bounds.
#[inline(always)]
unsafe fn do_alu(alu: AluOp, regs: &mut [i64], base: u32) {
    match alu {
        AluOp::RR { op, rd, rs, rt } => {
            *regs.get_unchecked_mut((base + rd) as usize) = eval_bin(
                op,
                *regs.get_unchecked((base + rs) as usize),
                *regs.get_unchecked((base + rt) as usize),
            );
        }
        AluOp::RI { op, rd, rs, imm } => {
            *regs.get_unchecked_mut((base + rd) as usize) =
                eval_bin(op, *regs.get_unchecked((base + rs) as usize), imm);
        }
    }
}

/// Evaluates a branch condition against the current frame.
///
/// # Safety
///
/// `base + slot < regs.len()` must hold for every slot in `cond`.
#[inline(always)]
unsafe fn eval_cond(cond: BcCond, regs: &[i64], base: u32, fflag: bool) -> bool {
    let r = |slot: u32| *regs.get_unchecked((base + slot) as usize);
    match cond {
        BcCond::Eqz(a) => r(a) == 0,
        BcCond::Nez(a) => r(a) != 0,
        BcCond::Lez(a) => r(a) <= 0,
        BcCond::Ltz(a) => r(a) < 0,
        BcCond::Gez(a) => r(a) >= 0,
        BcCond::Gtz(a) => r(a) > 0,
        BcCond::Eq(a, b) => r(a) == r(b),
        BcCond::Ne(a, b) => r(a) != r(b),
        BcCond::FTrue => fflag,
        BcCond::FFalse => !fflag,
    }
}

/// Runs `bc` to completion against `sim`'s memory/fuel state, returning
/// the entry function's `(int, float)` results. Mirrors the tree
/// walker's observable behaviour exactly (events, errors, counters).
pub(crate) fn run<O: ExecObserver>(
    sim: &mut Simulator<'_>,
    bc: &BytecodeProgram,
    observer: &mut O,
) -> Result<(i64, f64), SimError> {
    let funcs = &bc.funcs;
    let mut frames: Vec<Frame> = Vec::new();

    // Split borrows of the simulator so the hot loop reads memory and
    // fuel without re-chasing the `&mut Simulator` pointer.
    let config = sim.config;
    let total_fuel = config.fuel;
    let mem: &mut [i64] = &mut sim.mem;
    let fuel_left: &mut u64 = &mut sim.fuel_left;
    let heap_next: &mut i64 = &mut sim.heap_next;

    // Charges the fuel of the block being entered, failing with
    // `OutOfFuel` exactly where the tree walker raises it.
    macro_rules! charge {
        ($cost:expr) => {
            if *fuel_left < $cost {
                return Err(SimError::OutOfFuel {
                    executed: total_fuel - *fuel_left,
                });
            }
            *fuel_left -= $cost;
        };
    }

    // Current-frame state, swapped on call/return.
    let mut func = bc.entry;
    let mut ops: &[Op] = &funcs[func as usize].ops;
    let mut n_slots = funcs[func as usize].n_slots;
    let mut n_fslots = funcs[func as usize].n_fslots;
    let mut pc: u32 = 0;
    let mut base: u32 = 0;
    let mut fbase: u32 = 0;
    let mut fflag = false;
    let mut depth: usize = 1;

    if depth > config.max_call_depth {
        return Err(SimError::StackOverflow { depth });
    }
    let mut sp = config.mem_words as i64 - funcs[func as usize].frame_words;
    if sp < *heap_next {
        return Err(SimError::FrameOverflow { func: FuncId(func) });
    }
    charge!(funcs[func as usize].entry_fuel);

    let mut regs: Vec<i64> = vec![0; n_slots as usize];
    let mut fregs: Vec<f64> = vec![0.0; n_fslots as usize];
    regs[1] = sp; // $sp
    regs[2] = GP_BASE; // $gp

    // Frame-relative register access. SAFETY (all four): the slot was
    // validated `< n_slots`/`< n_fslots` by `decode::validate`, and the
    // arena invariant guarantees `base + n_slots <= regs.len()`
    // (resp. fbase/fregs).
    macro_rules! rr {
        ($s:expr) => {{
            let i = (base + $s) as usize;
            unsafe { *regs.get_unchecked(i) }
        }};
    }
    macro_rules! wr {
        ($s:expr, $v:expr) => {{
            let v = $v;
            let i = (base + $s) as usize;
            unsafe { *regs.get_unchecked_mut(i) = v }
        }};
    }
    macro_rules! rf {
        ($s:expr) => {{
            let i = (fbase + $s) as usize;
            unsafe { *fregs.get_unchecked(i) }
        }};
    }
    macro_rules! wf {
        ($s:expr, $v:expr) => {{
            let v = $v;
            let i = (fbase + $s) as usize;
            unsafe { *fregs.get_unchecked_mut(i) = v }
        }};
    }
    // Checked memory address computation shared by loads and stores:
    // evaluates to a valid `usize` index or returns `BadAddress`.
    macro_rules! memaddr {
        ($base:expr, $offset:expr) => {{
            let addr = rr!($base).wrapping_add($offset);
            if addr < GP_BASE || addr as usize >= mem.len() {
                return Err(SimError::BadAddress {
                    addr,
                    func: FuncId(func),
                });
            }
            addr as usize
        }};
    }

    loop {
        // SAFETY: `pc` is 0 on function entry (every function has at
        // least one op), a validated branch target, or one past a
        // non-terminator op; blocks end in terminators, so in-bounds.
        let op = unsafe { ops.get_unchecked(pc as usize) };
        pc += 1;
        match *op {
            Op::Li { rd, imm } => wr!(rd, imm),
            Op::Move { rd, rs } => wr!(rd, rr!(rs)),
            Op::Bin { op, rd, rs, rt } => wr!(rd, eval_bin(op, rr!(rs), rr!(rt))),
            Op::BinImm { op, rd, rs, imm } => wr!(rd, eval_bin(op, rr!(rs), imm)),
            Op::LiF { fd, imm } => wf!(fd, imm),
            Op::MoveF { fd, fs } => wf!(fd, rf!(fs)),
            Op::BinF { op, fd, fs, ft } => {
                let a = rf!(fs);
                let b = rf!(ft);
                wf!(
                    fd,
                    match op {
                        FBinOp::Add => a + b,
                        FBinOp::Sub => a - b,
                        FBinOp::Mul => a * b,
                        FBinOp::Div => a / b,
                    }
                );
            }
            Op::CvtIF { fd, rs } => wf!(fd, rr!(rs) as f64),
            Op::CvtFI { rd, fs } => wr!(rd, rf!(fs) as i64),
            Op::CmpF { cmp, fs, ft } => {
                let a = rf!(fs);
                let b = rf!(ft);
                fflag = match cmp {
                    FCmp::Eq => a == b,
                    FCmp::Lt => a < b,
                    FCmp::Le => a <= b,
                };
            }
            Op::Load {
                rd,
                base: b,
                offset,
            } => {
                let at = memaddr!(b, offset);
                // SAFETY: `memaddr!` checked `at < mem.len()`.
                wr!(rd, unsafe { *mem.get_unchecked(at) });
            }
            Op::Store {
                rs,
                base: b,
                offset,
            } => {
                let at = memaddr!(b, offset);
                let v = rr!(rs);
                // SAFETY: `memaddr!` checked `at < mem.len()`.
                unsafe { *mem.get_unchecked_mut(at) = v };
            }
            Op::LoadF {
                fd,
                base: b,
                offset,
            } => {
                let at = memaddr!(b, offset);
                // SAFETY: `memaddr!` checked `at < mem.len()`.
                wf!(fd, f64::from_bits(unsafe { *mem.get_unchecked(at) } as u64));
            }
            Op::StoreF {
                fs,
                base: b,
                offset,
            } => {
                let at = memaddr!(b, offset);
                let v = rf!(fs).to_bits() as i64;
                // SAFETY: `memaddr!` checked `at < mem.len()`.
                unsafe { *mem.get_unchecked_mut(at) = v };
            }
            Op::LoadRR {
                op,
                rd_addr,
                rs,
                rt,
                rd,
                offset,
            } => {
                let addr_val = eval_bin(op, rr!(rs), rr!(rt));
                wr!(rd_addr, addr_val);
                let addr = addr_val.wrapping_add(offset);
                if addr < GP_BASE || addr as usize >= mem.len() {
                    return Err(SimError::BadAddress {
                        addr,
                        func: FuncId(func),
                    });
                }
                // SAFETY: just checked `addr < mem.len()`.
                wr!(rd, unsafe { *mem.get_unchecked(addr as usize) });
            }
            // SAFETY: frame invariant + validated slots (see above).
            Op::Alu2 { a, b } => unsafe {
                do_alu(a, &mut regs, base);
                do_alu(b, &mut regs, base);
            },
            Op::Alloc { rd, size } => {
                let requested = rr!(size);
                let usable = requested.max(0);
                let bump = requested.max(1);
                let addr = *heap_next;
                if addr + usable >= sp {
                    return Err(SimError::OutOfMemory { requested });
                }
                *heap_next += bump;
                wr!(rd, addr);
            }
            Op::Call {
                callee,
                ref args,
                ref fargs,
                ret,
                fret,
            } => {
                depth += 1;
                if depth > config.max_call_depth {
                    return Err(SimError::StackOverflow { depth });
                }
                let cf = &funcs[callee as usize];
                let new_sp = sp - cf.frame_words;
                if new_sp < *heap_next {
                    return Err(SimError::FrameOverflow {
                        func: FuncId(callee),
                    });
                }
                charge!(cf.entry_fuel);
                let new_base = base + n_slots;
                let new_fbase = fbase + n_fslots;
                let need = (new_base + cf.n_slots) as usize;
                if regs.len() < need {
                    regs.resize(need, 0);
                }
                let fneed = (new_fbase + cf.n_fslots) as usize;
                if fregs.len() < fneed {
                    fregs.resize(fneed, 0.0);
                }
                regs[new_base as usize..need].fill(0);
                fregs[new_fbase as usize..fneed].fill(0.0);
                regs[(new_base + 1) as usize] = new_sp; // $sp
                regs[(new_base + 2) as usize] = GP_BASE; // $gp
                for &(src, dst) in args.iter() {
                    regs[(new_base + dst) as usize] = regs[(base + src) as usize];
                }
                for &(src, dst) in fargs.iter() {
                    fregs[(new_fbase + dst) as usize] = fregs[(fbase + src) as usize];
                }
                frames.push(Frame {
                    func,
                    pc,
                    base,
                    fbase,
                    sp,
                    fflag,
                    ret: if ret == NO_SLOT { NO_SLOT } else { base + ret },
                    fret: if fret == NO_SLOT {
                        NO_SLOT
                    } else {
                        fbase + fret
                    },
                });
                func = callee;
                ops = &cf.ops;
                n_slots = cf.n_slots;
                n_fslots = cf.n_fslots;
                pc = 0;
                base = new_base;
                fbase = new_fbase;
                sp = new_sp;
                fflag = false;
            }
            Op::Jump { target, cost, fuel } => {
                observer.on_instrs(cost);
                charge!(fuel);
                pc = target;
            }
            Op::Br {
                cond,
                taken,
                fallthru,
                taken_fuel,
                fallthru_fuel,
                site,
                cost,
            } => {
                observer.on_instrs(cost);
                // SAFETY: frame invariant + validated slots.
                let is_taken = unsafe { eval_cond(cond, &regs, base, fflag) };
                observer.on_branch(site, is_taken);
                if is_taken {
                    charge!(taken_fuel);
                    pc = taken;
                } else {
                    charge!(fallthru_fuel);
                    pc = fallthru;
                }
            }
            Op::BinBr {
                op,
                rd,
                rs,
                rt,
                cond,
                taken,
                fallthru,
                taken_fuel,
                fallthru_fuel,
                site,
                cost,
            } => {
                wr!(rd, eval_bin(op, rr!(rs), rr!(rt)));
                observer.on_instrs(cost);
                // SAFETY: frame invariant + validated slots.
                let is_taken = unsafe { eval_cond(cond, &regs, base, fflag) };
                observer.on_branch(site, is_taken);
                if is_taken {
                    charge!(taken_fuel);
                    pc = taken;
                } else {
                    charge!(fallthru_fuel);
                    pc = fallthru;
                }
            }
            Op::BinImmBr {
                op,
                rd,
                rs,
                imm,
                cond,
                taken,
                fallthru,
                taken_fuel,
                fallthru_fuel,
                site,
                cost,
            } => {
                wr!(rd, eval_bin(op, rr!(rs), imm));
                observer.on_instrs(cost);
                // SAFETY: frame invariant + validated slots.
                let is_taken = unsafe { eval_cond(cond, &regs, base, fflag) };
                observer.on_branch(site, is_taken);
                if is_taken {
                    charge!(taken_fuel);
                    pc = taken;
                } else {
                    charge!(fallthru_fuel);
                    pc = fallthru;
                }
            }
            Op::AluLoadBinBr {
                pre,
                ld_rd,
                ld_base,
                ld_offset,
                op,
                rd,
                rs,
                rt,
                cond,
                taken,
                fallthru,
                taken_fuel,
                fallthru_fuel,
                site,
                cost,
            } => {
                // SAFETY: frame invariant + validated slots.
                unsafe { do_alu(pre, &mut regs, base) };
                let at = memaddr!(ld_base, ld_offset);
                // SAFETY: `memaddr!` checked `at < mem.len()`.
                wr!(ld_rd, unsafe { *mem.get_unchecked(at) });
                wr!(rd, eval_bin(op, rr!(rs), rr!(rt)));
                observer.on_instrs(cost);
                // SAFETY: frame invariant + validated slots.
                let is_taken = unsafe { eval_cond(cond, &regs, base, fflag) };
                observer.on_branch(site, is_taken);
                if is_taken {
                    charge!(taken_fuel);
                    pc = taken;
                } else {
                    charge!(fallthru_fuel);
                    pc = fallthru;
                }
            }
            Op::LoadBinBr {
                ld_rd,
                ld_base,
                ld_offset,
                op,
                rd,
                rs,
                rt,
                cond,
                taken,
                fallthru,
                taken_fuel,
                fallthru_fuel,
                site,
                cost,
            } => {
                let at = memaddr!(ld_base, ld_offset);
                // SAFETY: `memaddr!` checked `at < mem.len()`.
                wr!(ld_rd, unsafe { *mem.get_unchecked(at) });
                wr!(rd, eval_bin(op, rr!(rs), rr!(rt)));
                observer.on_instrs(cost);
                // SAFETY: frame invariant + validated slots.
                let is_taken = unsafe { eval_cond(cond, &regs, base, fflag) };
                observer.on_branch(site, is_taken);
                if is_taken {
                    charge!(taken_fuel);
                    pc = taken;
                } else {
                    charge!(fallthru_fuel);
                    pc = fallthru;
                }
            }
            Op::Ret { val, fval, cost } => {
                observer.on_instrs(cost);
                let v = if val == NO_SLOT { 0 } else { rr!(val) };
                let fv = if fval == NO_SLOT { 0.0 } else { rf!(fval) };
                depth -= 1;
                match frames.pop() {
                    None => return Ok((v, fv)),
                    Some(f) => {
                        if f.ret != NO_SLOT {
                            regs[f.ret as usize] = v;
                        }
                        if f.fret != NO_SLOT {
                            fregs[f.fret as usize] = fv;
                        }
                        func = f.func;
                        let bf = &funcs[func as usize];
                        ops = &bf.ops;
                        n_slots = bf.n_slots;
                        n_fslots = bf.n_fslots;
                        pc = f.pc;
                        base = f.base;
                        fbase = f.fbase;
                        sp = f.sp;
                        fflag = f.fflag;
                    }
                }
            }
        }
    }
}
