use bpfree_ir::BranchRef;

/// Receives execution events from the simulator.
///
/// This is the trace stream of the paper in streaming form: straight-line
/// instruction counts plus one event per conditional branch execution. The
/// branch instruction itself is included in the immediately preceding
/// [`ExecObserver::on_instrs`] count, so summing `on_instrs` gives the
/// total dynamic instruction count and a sequence "up to and including a
/// branch" is exactly the instructions reported since the previous branch
/// event.
pub trait ExecObserver {
    /// `count` straight-line instructions executed (a basic block,
    /// terminator included).
    fn on_instrs(&mut self, count: u64) {
        let _ = count;
    }

    /// A conditional branch at `branch` executed and went `taken`.
    fn on_branch(&mut self, branch: BranchRef, taken: bool) {
        let _ = (branch, taken);
    }
}

/// An observer that ignores everything (pure execution).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl ExecObserver for NullObserver {}

/// Counts instructions and branch executions.
///
/// # Example
///
/// ```
/// use bpfree_sim::{CountingObserver, Simulator};
/// let p = bpfree_lang::compile("fn main() -> int { return 1; }").unwrap();
/// let mut c = CountingObserver::default();
/// Simulator::new(&p).run(&mut c).unwrap();
/// assert!(c.instructions > 0);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CountingObserver {
    /// Total dynamic instructions (terminators included).
    pub instructions: u64,
    /// Total conditional branch executions.
    pub branches: u64,
    /// How many of those were taken.
    pub taken: u64,
}

impl ExecObserver for CountingObserver {
    fn on_instrs(&mut self, count: u64) {
        self.instructions += count;
    }

    fn on_branch(&mut self, _branch: BranchRef, taken: bool) {
        self.branches += 1;
        if taken {
            self.taken += 1;
        }
    }
}

impl<T: ExecObserver + ?Sized> ExecObserver for &mut T {
    fn on_instrs(&mut self, count: u64) {
        (**self).on_instrs(count);
    }

    fn on_branch(&mut self, branch: BranchRef, taken: bool) {
        (**self).on_branch(branch, taken);
    }
}

/// Fans one event stream out to a pair of observers. Nest pairs for more.
///
/// # Example
///
/// ```
/// use bpfree_sim::{CountingObserver, EdgeProfiler, Pair, Simulator};
/// let p = bpfree_lang::compile("fn main() -> int { return 1; }").unwrap();
/// let mut pair = Pair(CountingObserver::default(), EdgeProfiler::new());
/// Simulator::new(&p).run(&mut pair).unwrap();
/// ```
#[derive(Debug, Default)]
pub struct Pair<A, B>(pub A, pub B);

impl<A: ExecObserver, B: ExecObserver> ExecObserver for Pair<A, B> {
    fn on_instrs(&mut self, count: u64) {
        self.0.on_instrs(count);
        self.1.on_instrs(count);
    }

    fn on_branch(&mut self, branch: BranchRef, taken: bool) {
        self.0.on_branch(branch, taken);
        self.1.on_branch(branch, taken);
    }
}

/// Fans one event stream out to any number of observers in one
/// interpreter pass.
///
/// This is the engine's default way to derive several artifacts —
/// edge profile, run statistics, IPBC sequence stream — from a *single*
/// simulation instead of re-executing the program once per consumer.
/// Observers receive events in registration order.
///
/// # Example
///
/// ```
/// use bpfree_sim::{CountingObserver, EdgeProfiler, Multiplex, Simulator};
/// let p = bpfree_lang::compile("fn main() -> int { return 1; }").unwrap();
/// let mut counter = CountingObserver::default();
/// let mut profiler = EdgeProfiler::new();
/// let mut fan = Multiplex::new();
/// fan.push(&mut counter);
/// fan.push(&mut profiler);
/// Simulator::new(&p).run(&mut fan).unwrap();
/// assert!(counter.instructions > 0);
/// ```
#[derive(Default)]
pub struct Multiplex<'a> {
    observers: Vec<&'a mut dyn ExecObserver>,
}

impl<'a> Multiplex<'a> {
    /// An empty fan-out (events are dropped until observers are added).
    pub fn new() -> Multiplex<'a> {
        Multiplex {
            observers: Vec::new(),
        }
    }

    /// Adds an observer to the fan-out.
    pub fn push(&mut self, observer: &'a mut dyn ExecObserver) {
        self.observers.push(observer);
    }

    /// Number of registered observers.
    pub fn len(&self) -> usize {
        self.observers.len()
    }

    /// Is the fan-out empty?
    pub fn is_empty(&self) -> bool {
        self.observers.is_empty()
    }
}

impl<'a> From<Vec<&'a mut dyn ExecObserver>> for Multiplex<'a> {
    fn from(observers: Vec<&'a mut dyn ExecObserver>) -> Multiplex<'a> {
        Multiplex { observers }
    }
}

impl ExecObserver for Multiplex<'_> {
    fn on_instrs(&mut self, count: u64) {
        for obs in &mut self.observers {
            obs.on_instrs(count);
        }
    }

    fn on_branch(&mut self, branch: BranchRef, taken: bool) {
        for obs in &mut self.observers {
            obs.on_branch(branch, taken);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpfree_ir::{BlockId, FuncId};

    #[test]
    fn counting_observer_accumulates() {
        let mut c = CountingObserver::default();
        c.on_instrs(5);
        c.on_instrs(3);
        let b = BranchRef {
            func: FuncId(0),
            block: BlockId(0),
        };
        c.on_branch(b, true);
        c.on_branch(b, false);
        assert_eq!(c.instructions, 8);
        assert_eq!(c.branches, 2);
        assert_eq!(c.taken, 1);
    }

    #[test]
    fn pair_fans_out() {
        let mut p = Pair(CountingObserver::default(), CountingObserver::default());
        p.on_instrs(4);
        assert_eq!(p.0.instructions, 4);
        assert_eq!(p.1.instructions, 4);
    }

    #[test]
    fn multiplex_fans_out_to_all_in_order() {
        let mut a = CountingObserver::default();
        let mut b = CountingObserver::default();
        let mut c = CountingObserver::default();
        let mut fan = Multiplex::new();
        fan.push(&mut a);
        fan.push(&mut b);
        fan.push(&mut c);
        assert_eq!(fan.len(), 3);
        fan.on_instrs(7);
        fan.on_branch(
            BranchRef {
                func: FuncId(0),
                block: BlockId(1),
            },
            true,
        );
        drop(fan);
        for obs in [&a, &b, &c] {
            assert_eq!(obs.instructions, 7);
            assert_eq!(obs.branches, 1);
            assert_eq!(obs.taken, 1);
        }
    }

    #[test]
    fn empty_multiplex_drops_events() {
        let mut fan = Multiplex::new();
        assert!(fan.is_empty());
        fan.on_instrs(5); // must not panic
    }
}
