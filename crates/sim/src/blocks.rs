//! Per-block dynamic execution counting.
//!
//! The paper's profile work (and the frequency-estimation extension)
//! wants *block* frequencies, not just branch edge counts. The simulator
//! reports straight-line instruction batches without naming the block, so
//! this observer reconstructs block attribution from the branch stream:
//! each `on_instrs` batch belongs to the block whose terminator produces
//! the *next* control event. For branch-ending blocks that is exact; runs
//! ending in jumps or returns are attributed to the preceding branch
//! block's region, which is the granularity the estimator is evaluated
//! at.

use std::collections::HashMap;

use bpfree_ir::BranchRef;

use crate::observer::ExecObserver;

/// Counts executions and instructions per branch-terminated block.
///
/// # Example
///
/// ```
/// use bpfree_sim::{BranchBlockCounter, Simulator};
/// let p = bpfree_lang::compile(
///     "fn main() -> int {
///         int i;
///         for (i = 0; i < 7; i = i + 1) { }
///         return i;
///     }",
/// ).unwrap();
/// let mut counter = BranchBlockCounter::new();
/// Simulator::new(&p).run(&mut counter).unwrap();
/// // The rotated loop's bottom test ran 7 times.
/// assert!(counter.executions().values().any(|&c| c == 7));
/// ```
#[derive(Debug, Default)]
pub struct BranchBlockCounter {
    executions: HashMap<BranchRef, u64>,
    instructions: HashMap<BranchRef, u64>,
    pending_instrs: u64,
}

impl BranchBlockCounter {
    /// Creates an empty counter.
    pub fn new() -> BranchBlockCounter {
        BranchBlockCounter::default()
    }

    /// Dynamic execution count per branch site (= its block).
    pub fn executions(&self) -> &HashMap<BranchRef, u64> {
        &self.executions
    }

    /// Dynamic instructions attributed to each branch block's region
    /// (the straight-line run ending at that branch).
    pub fn instructions(&self) -> &HashMap<BranchRef, u64> {
        &self.instructions
    }
}

impl ExecObserver for BranchBlockCounter {
    fn on_instrs(&mut self, count: u64) {
        self.pending_instrs += count;
    }

    fn on_branch(&mut self, branch: BranchRef, _taken: bool) {
        *self.executions.entry(branch).or_default() += 1;
        *self.instructions.entry(branch).or_default() += std::mem::take(&mut self.pending_instrs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpfree_ir::{BlockId, FuncId};

    #[test]
    fn attributes_runs_to_the_next_branch() {
        let mut c = BranchBlockCounter::new();
        let b0 = BranchRef {
            func: FuncId(0),
            block: BlockId(0),
        };
        let b1 = BranchRef {
            func: FuncId(0),
            block: BlockId(3),
        };
        c.on_instrs(4);
        c.on_branch(b0, true);
        c.on_instrs(2);
        c.on_instrs(3);
        c.on_branch(b1, false);
        c.on_branch(b1, true);
        assert_eq!(c.executions()[&b0], 1);
        assert_eq!(c.executions()[&b1], 2);
        assert_eq!(c.instructions()[&b0], 4);
        assert_eq!(c.instructions()[&b1], 5);
    }
}
