use std::fmt;

use bpfree_ir::FuncId;

/// Runtime errors raised by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The configured instruction budget was exhausted — the program loops
    /// too long (or forever).
    OutOfFuel {
        /// Instructions executed before the budget ran out.
        executed: u64,
    },
    /// A load or store touched an address outside memory, or the null
    /// word at address 0.
    BadAddress {
        /// The offending address.
        addr: i64,
        /// The function whose load/store trapped.
        func: FuncId,
    },
    /// Heap allocation collided with the stack (out of memory).
    OutOfMemory {
        /// The allocation size (in words) that did not fit.
        requested: i64,
    },
    /// Call depth exceeded the configured limit (runaway recursion).
    StackOverflow {
        /// The call depth that crossed the limit.
        depth: usize,
    },
    /// The stack pointer ran below the heap (frame overflow).
    FrameOverflow {
        /// The function whose frame did not fit.
        func: FuncId,
    },
    /// A named global was not found when poking initial values.
    UnknownGlobal {
        /// The unknown name.
        name: String,
    },
    /// Poked more initial values than a global has room for.
    GlobalTooSmall {
        /// The global's name.
        name: String,
        /// Its declared extent in words.
        len: i64,
        /// How many values were provided.
        got: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfFuel { executed } => {
                write!(f, "out of fuel after {executed} instructions")
            }
            SimError::BadAddress { addr, func } => {
                write!(f, "bad memory address {addr} in function {func}")
            }
            SimError::OutOfMemory { requested } => {
                write!(
                    f,
                    "heap allocation of {requested} words collided with the stack"
                )
            }
            SimError::StackOverflow { depth } => {
                write!(f, "call depth exceeded {depth}")
            }
            SimError::FrameOverflow { func } => {
                write!(f, "stack frame of function {func} ran into the heap")
            }
            SimError::UnknownGlobal { name } => write!(f, "unknown global `{name}`"),
            SimError::GlobalTooSmall { name, len, got } => {
                write!(
                    f,
                    "global `{name}` holds {len} words but {got} were provided"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = SimError::OutOfFuel { executed: 1000 };
        assert!(e.to_string().contains("1000"));
        let e = SimError::UnknownGlobal { name: "xs".into() };
        assert!(e.to_string().contains("xs"));
    }
}
