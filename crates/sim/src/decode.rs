//! Pre-decoding of a [`Program`] into flat bytecode.
//!
//! The tree-walking interpreter re-examines every [`Instr`] operand on
//! every execution: enum-tree matching, `Reg::ZERO` branches on each
//! register access, and block ids resolved through slice indexing at
//! run time. [`BytecodeProgram::compile`] pays those costs **once**,
//! lowering each function into a linear `Vec<Op>` where
//!
//! * operands are raw register-arena slot indices,
//! * jump/branch targets are op-stream offsets,
//! * reads of [`Reg::ZERO`] go to a dedicated always-zero slot (slot 0,
//!   which no op ever writes) and writes to it are redirected to a
//!   write-only sink slot, so the hot loop has **no** zero-register
//!   branch on either side,
//! * fuel is charged on control-flow **edges** instead of by a
//!   per-block op: every jump/branch carries the fuel of its target
//!   block (and each function its entry block's), so block entry costs
//!   zero dispatches while `OutOfFuel` still fires exactly where the
//!   tree walker raises it, and
//! * adjacent instructions fuse into superinstructions: a trailing
//!   `Bin`/`BinImm` into the branch that ends the block
//!   (`BinBr`/`BinImmBr`), a trailing `Load`+`Bin` pair into the branch
//!   (`LoadBinBr` — the "load global bound, compare, branch" loop
//!   header), and a `Bin` feeding a `Load`'s address into `LoadRR`
//!   (the array-indexing idiom).
//!
//! Decoding changes nothing observable: the executor in [`crate::exec`]
//! replays the exact [`ExecObserver`](crate::ExecObserver) event stream
//! (`on_instrs` / `on_branch` order, counts, and block-granular fuel
//! accounting) of the tree walker, which the differential and property
//! tests enforce.

use bpfree_ir::{
    BinOp, BlockId, BranchRef, Cond, FBinOp, FCmp, FReg, FuncId, Instr, Program, Reg, Terminator,
};

/// Sentinel slot index meaning "no register" (absent `ret`/`fret`/`val`).
pub(crate) const NO_SLOT: u32 = u32::MAX;

/// A conditional-branch test with operands resolved to arena slots.
#[derive(Debug, Clone, Copy)]
pub(crate) enum BcCond {
    Eqz(u32),
    Nez(u32),
    Lez(u32),
    Ltz(u32),
    Gez(u32),
    Gtz(u32),
    Eq(u32, u32),
    Ne(u32, u32),
    FTrue,
    FFalse,
}

/// One integer ALU operation, the unit the [`Op::Alu2`] pair fusion
/// glues together. Pure (never traps), so two of them execute back to
/// back with exactly the semantics of the unfused sequence.
#[derive(Debug, Clone, Copy)]
pub(crate) enum AluOp {
    RR {
        op: BinOp,
        rd: u32,
        rs: u32,
        rt: u32,
    },
    RI {
        op: BinOp,
        rd: u32,
        rs: u32,
        imm: i64,
    },
}

/// One flat bytecode operation. Register fields are frame-relative slot
/// indices (reads of `$zero` point at the always-zero slot 0, writes to
/// it at the sink slot); `target`/`taken`/`fallthru` are op-stream
/// offsets within the owning function, and every control transfer
/// carries the target block's fuel (`fuel`/`taken_fuel`/`fallthru_fuel`).
#[derive(Debug, Clone)]
pub(crate) enum Op {
    Li {
        rd: u32,
        imm: i64,
    },
    Move {
        rd: u32,
        rs: u32,
    },
    Bin {
        op: BinOp,
        rd: u32,
        rs: u32,
        rt: u32,
    },
    BinImm {
        op: BinOp,
        rd: u32,
        rs: u32,
        imm: i64,
    },
    LiF {
        fd: u32,
        imm: f64,
    },
    MoveF {
        fd: u32,
        fs: u32,
    },
    BinF {
        op: FBinOp,
        fd: u32,
        fs: u32,
        ft: u32,
    },
    CvtIF {
        fd: u32,
        rs: u32,
    },
    CvtFI {
        rd: u32,
        fs: u32,
    },
    CmpF {
        cmp: FCmp,
        fs: u32,
        ft: u32,
    },
    Load {
        rd: u32,
        base: u32,
        offset: i64,
    },
    Store {
        rs: u32,
        base: u32,
        offset: i64,
    },
    LoadF {
        fd: u32,
        base: u32,
        offset: i64,
    },
    StoreF {
        fs: u32,
        base: u32,
        offset: i64,
    },
    /// Superinstruction: a `Bin` whose result is the very next `Load`'s
    /// base address (the array-indexing idiom `t = base + i; v = t[k]`).
    /// The address is still written to `rd_addr` (it may be live
    /// elsewhere) before the load checks it, exactly as the unfused
    /// pair behaves.
    LoadRR {
        op: BinOp,
        rd_addr: u32,
        rs: u32,
        rt: u32,
        rd: u32,
        offset: i64,
    },
    /// Superinstruction: two adjacent integer ALU ops (`Bin`/`BinImm`
    /// in any combination) in one dispatch — the accumulate-and-step
    /// pair at the bottom of every counted loop body.
    Alu2 {
        a: AluOp,
        b: AluOp,
    },
    Alloc {
        rd: u32,
        size: u32,
    },
    /// Direct call. `args`/`fargs` are `(caller slot, callee slot)`
    /// copy pairs precomputed from the callee's parameter list; `ret`/
    /// `fret` are caller slots (or [`NO_SLOT`]). The callee's
    /// [`BcFunc::entry_fuel`] is charged after the overflow checks —
    /// where the tree walker charges it on entering the callee.
    Call {
        callee: u32,
        args: Box<[(u32, u32)]>,
        fargs: Box<[(u32, u32)]>,
        ret: u32,
        fret: u32,
    },
    Jump {
        target: u32,
        cost: u64,
        fuel: u64,
    },
    Br {
        cond: BcCond,
        taken: u32,
        fallthru: u32,
        taken_fuel: u64,
        fallthru_fuel: u64,
        site: BranchRef,
        cost: u64,
    },
    /// Superinstruction: `Bin` fused with the branch that ends the same
    /// block. The ALU result is still written to `rd` (it may be live
    /// elsewhere) before the condition is evaluated, exactly as the
    /// unfused pair behaves.
    BinBr {
        op: BinOp,
        rd: u32,
        rs: u32,
        rt: u32,
        cond: BcCond,
        taken: u32,
        fallthru: u32,
        taken_fuel: u64,
        fallthru_fuel: u64,
        site: BranchRef,
        cost: u64,
    },
    /// Superinstruction: `BinImm` fused with the block-ending branch.
    BinImmBr {
        op: BinOp,
        rd: u32,
        rs: u32,
        imm: i64,
        cond: BcCond,
        taken: u32,
        fallthru: u32,
        taken_fuel: u64,
        fallthru_fuel: u64,
        site: BranchRef,
        cost: u64,
    },
    /// Superinstruction: an ALU op, then a `Load` + `Bin` pair, fused
    /// with the block-ending branch — a whole "step the counter, load
    /// the bound, compare, branch" loop latch in one dispatch. Executes
    /// strictly in program order: the ALU write, the load (which may
    /// trap), the compare write, then the branch events.
    AluLoadBinBr {
        pre: AluOp,
        ld_rd: u32,
        ld_base: u32,
        ld_offset: i64,
        op: BinOp,
        rd: u32,
        rs: u32,
        rt: u32,
        cond: BcCond,
        taken: u32,
        fallthru: u32,
        taken_fuel: u64,
        fallthru_fuel: u64,
        site: BranchRef,
        cost: u64,
    },
    /// Superinstruction: a trailing `Load` + `Bin` pair fused with the
    /// block-ending branch — the "load a global bound, compare against
    /// it, branch" shape every counted loop header lowers to. Executes
    /// strictly in sequence: the load (which may trap first), the ALU
    /// write, then the branch events.
    LoadBinBr {
        ld_rd: u32,
        ld_base: u32,
        ld_offset: i64,
        op: BinOp,
        rd: u32,
        rs: u32,
        rt: u32,
        cond: BcCond,
        taken: u32,
        fallthru: u32,
        taken_fuel: u64,
        fallthru_fuel: u64,
        site: BranchRef,
        cost: u64,
    },
    Ret {
        val: u32,
        fval: u32,
        cost: u64,
    },
}

/// One decoded function: its op stream plus the frame geometry the
/// executor needs to carve a frame out of the shared register arena.
#[derive(Debug)]
pub(crate) struct BcFunc {
    pub(crate) ops: Box<[Op]>,
    /// Integer slots per frame: `max(n_regs, 3)` architectural slots
    /// plus the trailing write sink for `$zero`.
    pub(crate) n_slots: u32,
    pub(crate) n_fslots: u32,
    pub(crate) frame_words: i64,
    /// Fuel of the entry block, charged on function entry (calls and
    /// the program start) since no edge op precedes it.
    pub(crate) entry_fuel: u64,
}

/// A [`Program`] lowered to flat, pre-decoded bytecode — the input of
/// the default interpreter tier.
///
/// Compile once per program (the artifact engine memoizes it per
/// `(benchmark, Options)`), then execute any number of datasets against
/// it via [`Simulator::with_decoded`](crate::Simulator::with_decoded).
/// Execution is observationally identical to the tree-walking tier:
/// same results, same errors, same observer event stream, byte for
/// byte.
///
/// # Example
///
/// ```
/// use bpfree_sim::{BytecodeProgram, NullObserver, Simulator};
/// let p = bpfree_lang::compile("fn main() -> int { return 6 * 7; }").unwrap();
/// let bc = BytecodeProgram::compile(&p);
/// let r = Simulator::with_decoded(&p, &bc).run(&mut NullObserver).unwrap();
/// assert_eq!(r.exit, 42);
/// ```
#[derive(Debug)]
pub struct BytecodeProgram {
    pub(crate) funcs: Vec<BcFunc>,
    pub(crate) entry: u32,
}

impl BytecodeProgram {
    /// Lowers `program` into flat bytecode. Pure decoding — no
    /// execution state is captured, so one `BytecodeProgram` serves any
    /// number of concurrent simulations of the same program.
    pub fn compile(program: &Program) -> BytecodeProgram {
        let funcs = program
            .func_ids()
            .map(|fid| decode_func(program, fid))
            .collect();
        BytecodeProgram {
            funcs,
            entry: program.entry().0,
        }
    }

    /// Total decoded ops across all functions (a size diagnostic;
    /// superinstruction fusion makes this smaller than the static
    /// instruction count plus per-block overhead).
    pub fn ops_len(&self) -> usize {
        self.funcs.iter().map(|f| f.ops.len()).sum()
    }
}

/// How many trailing straight-line instructions the terminator fusion
/// consumes, and which superinstruction they become.
enum TermFusion {
    None,
    Bin,
    BinImm,
    LoadBin,
    AluLoadBin,
}

fn decode_func(program: &Program, fid: FuncId) -> BcFunc {
    let func = program.func(fid);
    // Slot layout: [0] = $zero (never written), [1] = $sp, [2] = $gp,
    // [3..] = temporaries, [n_regs_eff] = write sink for $zero.
    let n_regs_eff = func.n_regs().max(Reg::FIRST_TEMP);
    let sink = n_regs_eff;
    let rslot = |r: Reg| r.index();
    let wslot = |r: Reg| if r == Reg::ZERO { sink } else { r.index() };
    let fslot = |f: FReg| f.index();
    let cslot = |c: &Cond| match *c {
        Cond::Eqz(r) => BcCond::Eqz(rslot(r)),
        Cond::Nez(r) => BcCond::Nez(rslot(r)),
        Cond::Lez(r) => BcCond::Lez(rslot(r)),
        Cond::Ltz(r) => BcCond::Ltz(rslot(r)),
        Cond::Gez(r) => BcCond::Gez(rslot(r)),
        Cond::Gtz(r) => BcCond::Gtz(rslot(r)),
        Cond::Eq(a, b) => BcCond::Eq(rslot(a), rslot(b)),
        Cond::Ne(a, b) => BcCond::Ne(rslot(a), rslot(b)),
        Cond::FTrue => BcCond::FTrue,
        Cond::FFalse => BcCond::FFalse,
    };
    let lower = |instr: &Instr| match instr {
        Instr::Li { rd, imm } => Op::Li {
            rd: wslot(*rd),
            imm: *imm,
        },
        Instr::Move { rd, rs } => Op::Move {
            rd: wslot(*rd),
            rs: rslot(*rs),
        },
        Instr::Bin { op, rd, rs, rt } => Op::Bin {
            op: *op,
            rd: wslot(*rd),
            rs: rslot(*rs),
            rt: rslot(*rt),
        },
        Instr::BinImm { op, rd, rs, imm } => Op::BinImm {
            op: *op,
            rd: wslot(*rd),
            rs: rslot(*rs),
            imm: *imm,
        },
        Instr::LiF { fd, imm } => Op::LiF {
            fd: fslot(*fd),
            imm: *imm,
        },
        Instr::MoveF { fd, fs } => Op::MoveF {
            fd: fslot(*fd),
            fs: fslot(*fs),
        },
        Instr::BinF { op, fd, fs, ft } => Op::BinF {
            op: *op,
            fd: fslot(*fd),
            fs: fslot(*fs),
            ft: fslot(*ft),
        },
        Instr::CvtIF { fd, rs } => Op::CvtIF {
            fd: fslot(*fd),
            rs: rslot(*rs),
        },
        Instr::CvtFI { rd, fs } => Op::CvtFI {
            rd: wslot(*rd),
            fs: fslot(*fs),
        },
        Instr::CmpF { cmp, fs, ft } => Op::CmpF {
            cmp: *cmp,
            fs: fslot(*fs),
            ft: fslot(*ft),
        },
        Instr::Load { rd, base, offset } => Op::Load {
            rd: wslot(*rd),
            base: rslot(*base),
            offset: *offset,
        },
        Instr::Store { rs, base, offset } => Op::Store {
            rs: rslot(*rs),
            base: rslot(*base),
            offset: *offset,
        },
        Instr::LoadF { fd, base, offset } => Op::LoadF {
            fd: fslot(*fd),
            base: rslot(*base),
            offset: *offset,
        },
        Instr::StoreF { fs, base, offset } => Op::StoreF {
            fs: fslot(*fs),
            base: rslot(*base),
            offset: *offset,
        },
        Instr::Alloc { rd, size } => Op::Alloc {
            rd: wslot(*rd),
            size: rslot(*size),
        },
        Instr::Call {
            callee,
            args,
            fargs,
            ret,
            fret,
        } => {
            let cf = program.func(*callee);
            let csink = cf.n_regs().max(Reg::FIRST_TEMP);
            let cwslot = |r: Reg| if r == Reg::ZERO { csink } else { r.index() };
            Op::Call {
                callee: callee.0,
                args: args
                    .iter()
                    .zip(cf.params())
                    .map(|(a, p)| (rslot(*a), cwslot(*p)))
                    .collect(),
                fargs: fargs
                    .iter()
                    .zip(cf.fparams())
                    .map(|(a, p)| (fslot(*a), fslot(*p)))
                    .collect(),
                ret: ret.map(wslot).unwrap_or(NO_SLOT),
                fret: fret.map(fslot).unwrap_or(NO_SLOT),
            }
        }
    };

    let mut ops: Vec<Op> = Vec::with_capacity(func.static_size() as usize + func.blocks().len());
    let mut block_pc = vec![0u32; func.blocks().len()];
    let mut block_cost = vec![0u64; func.blocks().len()];
    for (bi, block) in func.blocks().iter().enumerate() {
        block_pc[bi] = ops.len() as u32;
        let cost = block.len_with_term();
        block_cost[bi] = cost;
        // Decide what the terminator swallows. Writing ALU results
        // before evaluating the condition matches the unfused order, so
        // any `Bin`/`BinImm` (none of which can trap) fuses with any
        // condition; a `Load` ahead of the `Bin` fuses too because the
        // fused op still performs (and traps in) program order.
        let fusion = if matches!(block.term, Terminator::Branch { .. }) {
            match block.instrs[..] {
                [.., Instr::Bin { .. } | Instr::BinImm { .. }, Instr::Load { .. }, Instr::Bin { .. }] => {
                    TermFusion::AluLoadBin
                }
                [.., Instr::Load { .. }, Instr::Bin { .. }] => TermFusion::LoadBin,
                [.., Instr::Bin { .. }] => TermFusion::Bin,
                [.., Instr::BinImm { .. }] => TermFusion::BinImm,
                _ => TermFusion::None,
            }
        } else {
            TermFusion::None
        };
        let consumed = match fusion {
            TermFusion::None => 0,
            TermFusion::Bin | TermFusion::BinImm => 1,
            TermFusion::LoadBin => 2,
            TermFusion::AluLoadBin => 3,
        };
        let straight = &block.instrs[..block.instrs.len() - consumed];
        // Straight-line lowering with two peepholes: a `Bin` computing
        // the very next `Load`'s base address fuses into `LoadRR`
        // (array indexing; the address write is kept, so no liveness
        // analysis is needed, and `$zero` destinations are excluded
        // because their write goes to the sink slot while the load
        // would read slot 0), and any two adjacent integer ALU ops fuse
        // into `Alu2`.
        let as_alu = |instr: &Instr| match instr {
            Instr::Bin { op, rd, rs, rt } => Some(AluOp::RR {
                op: *op,
                rd: wslot(*rd),
                rs: rslot(*rs),
                rt: rslot(*rt),
            }),
            Instr::BinImm { op, rd, rs, imm } => Some(AluOp::RI {
                op: *op,
                rd: wslot(*rd),
                rs: rslot(*rs),
                imm: *imm,
            }),
            _ => None,
        };
        let mut i = 0;
        while i < straight.len() {
            if i + 1 < straight.len() {
                if let Instr::Bin { op, rd, rs, rt } = &straight[i] {
                    if let Instr::Load {
                        rd: ld_rd,
                        base,
                        offset,
                    } = &straight[i + 1]
                    {
                        if base == rd && *rd != Reg::ZERO {
                            ops.push(Op::LoadRR {
                                op: *op,
                                rd_addr: rslot(*rd),
                                rs: rslot(*rs),
                                rt: rslot(*rt),
                                rd: wslot(*ld_rd),
                                offset: *offset,
                            });
                            i += 2;
                            continue;
                        }
                    }
                }
                if let (Some(a), Some(b)) = (as_alu(&straight[i]), as_alu(&straight[i + 1])) {
                    ops.push(Op::Alu2 { a, b });
                    i += 2;
                    continue;
                }
            }
            ops.push(lower(&straight[i]));
            i += 1;
        }
        // Terminator (targets hold BlockIds here; patched to op-stream
        // offsets — and edge fuels — below once every block is sized).
        match &block.term {
            Terminator::Jump(t) => ops.push(Op::Jump {
                target: t.0,
                cost,
                fuel: 0,
            }),
            Terminator::Branch {
                cond,
                taken,
                fallthru,
            } => {
                let site = BranchRef {
                    func: fid,
                    block: BlockId(bi as u32),
                };
                let (cond, taken, fallthru) = (cslot(cond), taken.0, fallthru.0);
                let n = block.instrs.len();
                match fusion {
                    TermFusion::Bin => {
                        let Instr::Bin { op, rd, rs, rt } = &block.instrs[n - 1] else {
                            unreachable!("fusion picked Bin")
                        };
                        ops.push(Op::BinBr {
                            op: *op,
                            rd: wslot(*rd),
                            rs: rslot(*rs),
                            rt: rslot(*rt),
                            cond,
                            taken,
                            fallthru,
                            taken_fuel: 0,
                            fallthru_fuel: 0,
                            site,
                            cost,
                        });
                    }
                    TermFusion::BinImm => {
                        let Instr::BinImm { op, rd, rs, imm } = &block.instrs[n - 1] else {
                            unreachable!("fusion picked BinImm")
                        };
                        ops.push(Op::BinImmBr {
                            op: *op,
                            rd: wslot(*rd),
                            rs: rslot(*rs),
                            imm: *imm,
                            cond,
                            taken,
                            fallthru,
                            taken_fuel: 0,
                            fallthru_fuel: 0,
                            site,
                            cost,
                        });
                    }
                    TermFusion::AluLoadBin => {
                        let pre = as_alu(&block.instrs[n - 3]).expect("fusion picked an ALU op");
                        let Instr::Load {
                            rd: ld_rd,
                            base,
                            offset,
                        } = &block.instrs[n - 2]
                        else {
                            unreachable!("fusion picked Alu+Load+Bin")
                        };
                        let Instr::Bin { op, rd, rs, rt } = &block.instrs[n - 1] else {
                            unreachable!("fusion picked Alu+Load+Bin")
                        };
                        ops.push(Op::AluLoadBinBr {
                            pre,
                            ld_rd: wslot(*ld_rd),
                            ld_base: rslot(*base),
                            ld_offset: *offset,
                            op: *op,
                            rd: wslot(*rd),
                            rs: rslot(*rs),
                            rt: rslot(*rt),
                            cond,
                            taken,
                            fallthru,
                            taken_fuel: 0,
                            fallthru_fuel: 0,
                            site,
                            cost,
                        });
                    }
                    TermFusion::LoadBin => {
                        let Instr::Load {
                            rd: ld_rd,
                            base,
                            offset,
                        } = &block.instrs[n - 2]
                        else {
                            unreachable!("fusion picked Load+Bin")
                        };
                        let Instr::Bin { op, rd, rs, rt } = &block.instrs[n - 1] else {
                            unreachable!("fusion picked Load+Bin")
                        };
                        ops.push(Op::LoadBinBr {
                            ld_rd: wslot(*ld_rd),
                            ld_base: rslot(*base),
                            ld_offset: *offset,
                            op: *op,
                            rd: wslot(*rd),
                            rs: rslot(*rs),
                            rt: rslot(*rt),
                            cond,
                            taken,
                            fallthru,
                            taken_fuel: 0,
                            fallthru_fuel: 0,
                            site,
                            cost,
                        });
                    }
                    TermFusion::None => ops.push(Op::Br {
                        cond,
                        taken,
                        fallthru,
                        taken_fuel: 0,
                        fallthru_fuel: 0,
                        site,
                        cost,
                    }),
                }
            }
            Terminator::Ret { val, fval } => ops.push(Op::Ret {
                val: val.map(rslot).unwrap_or(NO_SLOT),
                fval: fval.map(fslot).unwrap_or(NO_SLOT),
                cost,
            }),
        }
    }
    // Patch block ids into op-stream offsets and stamp each edge with
    // its target block's fuel.
    for op in &mut ops {
        match op {
            Op::Jump { target, fuel, .. } => {
                *fuel = block_cost[*target as usize];
                *target = block_pc[*target as usize];
            }
            Op::Br {
                taken,
                fallthru,
                taken_fuel,
                fallthru_fuel,
                ..
            }
            | Op::BinBr {
                taken,
                fallthru,
                taken_fuel,
                fallthru_fuel,
                ..
            }
            | Op::BinImmBr {
                taken,
                fallthru,
                taken_fuel,
                fallthru_fuel,
                ..
            }
            | Op::LoadBinBr {
                taken,
                fallthru,
                taken_fuel,
                fallthru_fuel,
                ..
            }
            | Op::AluLoadBinBr {
                taken,
                fallthru,
                taken_fuel,
                fallthru_fuel,
                ..
            } => {
                *taken_fuel = block_cost[*taken as usize];
                *fallthru_fuel = block_cost[*fallthru as usize];
                *taken = block_pc[*taken as usize];
                *fallthru = block_pc[*fallthru as usize];
            }
            _ => {}
        }
    }
    let bf = BcFunc {
        ops: ops.into_boxed_slice(),
        n_slots: n_regs_eff + 1,
        n_fslots: func.n_fregs(),
        frame_words: func.frame_words(),
        entry_fuel: block_cost[func.entry().index()],
    };
    validate(&bf, program);
    bf
}

/// Decode-time validation of every slot index and jump target. The
/// executor relies on these bounds to elide per-access checks in its
/// hot loop (see `crate::exec`), so decoding enforces them with a hard
/// assert — once per decode, not per executed op.
fn validate(bf: &BcFunc, program: &Program) {
    if let Err(e) = check(bf, program) {
        panic!("{e}");
    }
}

/// The validation behind [`validate`], with failures reported instead
/// of panicking. Deserializing bytecode from a suite image runs the
/// same checks, so a corrupt (or merely stale) image section is
/// rejected and recomputed rather than handed to the unchecked
/// executor.
pub(crate) fn check(bf: &BcFunc, program: &Program) -> Result<(), String> {
    let len = bf.ops.len() as u32;
    let n_funcs = program.func_ids().count() as u32;
    let slot = |s: u32| {
        if s < bf.n_slots {
            Ok(())
        } else {
            Err(format!("int slot {s} out of {}", bf.n_slots))
        }
    };
    let fslt = |s: u32| {
        if s < bf.n_fslots {
            Ok(())
        } else {
            Err(format!("float slot {s} out of {}", bf.n_fslots))
        }
    };
    let oslot = |s: u32| if s == NO_SLOT { Ok(()) } else { slot(s) };
    let ofslt = |s: u32| if s == NO_SLOT { Ok(()) } else { fslt(s) };
    let target = |t: u32| {
        if t < len {
            Ok(())
        } else {
            Err(format!("target {t} out of {len} ops"))
        }
    };
    let alu = |a: &AluOp| match *a {
        AluOp::RR { rd, rs, rt, .. } => {
            slot(rd)?;
            slot(rs)?;
            slot(rt)
        }
        AluOp::RI { rd, rs, .. } => {
            slot(rd)?;
            slot(rs)
        }
    };
    let cond = |c: &BcCond| match *c {
        BcCond::Eqz(a)
        | BcCond::Nez(a)
        | BcCond::Lez(a)
        | BcCond::Ltz(a)
        | BcCond::Gez(a)
        | BcCond::Gtz(a) => slot(a),
        BcCond::Eq(a, b) | BcCond::Ne(a, b) => {
            slot(a)?;
            slot(b)
        }
        BcCond::FTrue | BcCond::FFalse => Ok(()),
    };
    for op in bf.ops.iter() {
        match op {
            Op::Li { rd, .. } => slot(*rd)?,
            Op::Move { rd, rs } => {
                slot(*rd)?;
                slot(*rs)?;
            }
            Op::Bin { rd, rs, rt, .. } => {
                slot(*rd)?;
                slot(*rs)?;
                slot(*rt)?;
            }
            Op::BinImm { rd, rs, .. } => {
                slot(*rd)?;
                slot(*rs)?;
            }
            Op::LiF { fd, .. } => fslt(*fd)?,
            Op::MoveF { fd, fs } => {
                fslt(*fd)?;
                fslt(*fs)?;
            }
            Op::BinF { fd, fs, ft, .. } => {
                fslt(*fd)?;
                fslt(*fs)?;
                fslt(*ft)?;
            }
            Op::CvtIF { fd, rs } => {
                fslt(*fd)?;
                slot(*rs)?;
            }
            Op::CvtFI { rd, fs } => {
                slot(*rd)?;
                fslt(*fs)?;
            }
            Op::CmpF { fs, ft, .. } => {
                fslt(*fs)?;
                fslt(*ft)?;
            }
            Op::Load { rd, base, .. } => {
                slot(*rd)?;
                slot(*base)?;
            }
            Op::Store { rs, base, .. } => {
                slot(*rs)?;
                slot(*base)?;
            }
            Op::LoadF { fd, base, .. } => {
                fslt(*fd)?;
                slot(*base)?;
            }
            Op::StoreF { fs, base, .. } => {
                fslt(*fs)?;
                slot(*base)?;
            }
            Op::LoadRR {
                rd_addr,
                rs,
                rt,
                rd,
                ..
            } => {
                slot(*rd_addr)?;
                slot(*rs)?;
                slot(*rt)?;
                slot(*rd)?;
            }
            Op::Alu2 { a, b } => {
                alu(a)?;
                alu(b)?;
            }
            Op::Alloc { rd, size } => {
                slot(*rd)?;
                slot(*size)?;
            }
            Op::Call {
                callee,
                args,
                fargs,
                ret,
                fret,
            } => {
                if *callee >= n_funcs {
                    return Err(format!("callee {callee} out of {n_funcs} functions"));
                }
                let cf = program.func(FuncId(*callee));
                let c_slots = cf.n_regs().max(Reg::FIRST_TEMP) + 1;
                let c_fslots = cf.n_fregs();
                for &(src, dst) in args.iter() {
                    slot(src)?;
                    if dst >= c_slots {
                        return Err(format!("callee slot {dst} out of {c_slots}"));
                    }
                }
                for &(src, dst) in fargs.iter() {
                    fslt(src)?;
                    if dst >= c_fslots {
                        return Err(format!("callee fslot {dst} out of {c_fslots}"));
                    }
                }
                oslot(*ret)?;
                ofslt(*fret)?;
            }
            Op::Jump { target: t, .. } => target(*t)?,
            Op::Br {
                cond: c,
                taken,
                fallthru,
                ..
            } => {
                cond(c)?;
                target(*taken)?;
                target(*fallthru)?;
            }
            Op::BinBr {
                rd,
                rs,
                rt,
                cond: c,
                taken,
                fallthru,
                ..
            } => {
                slot(*rd)?;
                slot(*rs)?;
                slot(*rt)?;
                cond(c)?;
                target(*taken)?;
                target(*fallthru)?;
            }
            Op::BinImmBr {
                rd,
                rs,
                cond: c,
                taken,
                fallthru,
                ..
            } => {
                slot(*rd)?;
                slot(*rs)?;
                cond(c)?;
                target(*taken)?;
                target(*fallthru)?;
            }
            Op::AluLoadBinBr {
                pre,
                ld_rd,
                ld_base,
                rd,
                rs,
                rt,
                cond: c,
                taken,
                fallthru,
                ..
            } => {
                alu(pre)?;
                slot(*ld_rd)?;
                slot(*ld_base)?;
                slot(*rd)?;
                slot(*rs)?;
                slot(*rt)?;
                cond(c)?;
                target(*taken)?;
                target(*fallthru)?;
            }
            Op::LoadBinBr {
                ld_rd,
                ld_base,
                rd,
                rs,
                rt,
                cond: c,
                taken,
                fallthru,
                ..
            } => {
                slot(*ld_rd)?;
                slot(*ld_base)?;
                slot(*rd)?;
                slot(*rs)?;
                slot(*rt)?;
                cond(c)?;
                target(*taken)?;
                target(*fallthru)?;
            }
            Op::Ret { val, fval, .. } => {
                oslot(*val)?;
                ofslt(*fval)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode(src: &str) -> BytecodeProgram {
        BytecodeProgram::compile(&bpfree_lang::compile(src).unwrap())
    }

    #[test]
    fn fuses_trailing_alu_into_branches() {
        let bc = decode(
            "fn main() -> int {
                int i; int s;
                for (i = 0; i < 10; i = i + 1) { s = s + i; }
                return s;
            }",
        );
        let fused = bc.funcs[bc.entry as usize]
            .ops
            .iter()
            .filter(|op| {
                matches!(
                    op,
                    Op::BinBr { .. } | Op::BinImmBr { .. } | Op::LoadBinBr { .. }
                )
            })
            .count();
        assert!(fused > 0, "loop compare+branch should fuse");
    }

    #[test]
    fn fuses_address_computation_into_loads() {
        let bc = decode(
            "global int table[8];
            fn main() -> int {
                int i; int s;
                for (i = 0; i < 8; i = i + 1) { s = s + table[i]; }
                return s;
            }",
        );
        let fused: usize = bc
            .funcs
            .iter()
            .flat_map(|f| f.ops.iter())
            .filter(|op| matches!(op, Op::LoadRR { .. }))
            .count();
        assert!(fused > 0, "indexed global load should fuse into LoadRR");
    }

    #[test]
    fn edges_carry_target_block_fuel() {
        let p = bpfree_lang::compile(
            "fn main() -> int {
                int i; int s;
                for (i = 0; i < 10; i = i + 1) { s = s + i; }
                return s;
            }",
        )
        .unwrap();
        let bc = BytecodeProgram::compile(&p);
        for (f, bf) in p.funcs().iter().zip(&bc.funcs) {
            assert_eq!(
                bf.entry_fuel,
                f.block(f.entry()).len_with_term(),
                "entry fuel is the entry block's cost"
            );
            for op in bf.ops.iter() {
                match op {
                    Op::Jump { fuel, .. } => assert!(*fuel > 0, "jump edge charges its target"),
                    Op::Br {
                        taken_fuel,
                        fallthru_fuel,
                        ..
                    }
                    | Op::BinBr {
                        taken_fuel,
                        fallthru_fuel,
                        ..
                    }
                    | Op::BinImmBr {
                        taken_fuel,
                        fallthru_fuel,
                        ..
                    }
                    | Op::LoadBinBr {
                        taken_fuel,
                        fallthru_fuel,
                        ..
                    } => {
                        assert!(*taken_fuel > 0 && *fallthru_fuel > 0);
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn slot_layout_reserves_zero_and_sink() {
        let p = bpfree_lang::compile("fn main() -> int { return 0; }").unwrap();
        let bc = BytecodeProgram::compile(&p);
        for (f, bf) in p.funcs().iter().zip(&bc.funcs) {
            assert_eq!(bf.n_slots, f.n_regs().max(3) + 1);
        }
    }
}
