//! Segmented parallel trace replay.
//!
//! [`BranchTrace::replay`](crate::BranchTrace::replay) streams events
//! serially through one [`ExecObserver`]; this module adds the parallel
//! tier. The event sequence is split into contiguous index ranges (one
//! per worker), each range is replayed independently into a
//! [`TraceSegment`], and the per-segment states are merged back — in
//! range order — into the parent observer. Observers that can express
//! their state as "independently computable per segment + ordered
//! merge" implement [`SegmentedObserver`]; for all of them the result
//! is *bit-identical* to serial replay at any segment count, because
//! every quantity involved is an integer sum or an ordered stitch of
//! integer run-lengths (no floating-point reassociation happens before
//! the final reporting step).
//!
//! Order-dependent state (e.g. the length of a correct-prediction run
//! in IPBC analysis) is handled by the merge contract: a segment keeps
//! the run that was *open when it started* separate from its local
//! histogram, and `merge` joins the parent's open tail with each
//! segment's open prefix in order. See `DESIGN.md` §8 for the proof
//! sketch.

use std::ops::Range;

use crate::observer::{CountingObserver, ExecObserver};
use crate::profile::EdgeProfiler;
use crate::trace::BranchTrace;

/// Per-worker replay state for one contiguous slice of a trace.
///
/// A segment starts blank (via [`SegmentedObserver::segment`]), replays
/// exactly the events of its index range — never the trailing
/// instruction count, which the parent delivers after the merge — and
/// is then consumed by [`SegmentedObserver::merge`].
pub trait TraceSegment: Send {
    /// Replays the trace's index sequence over `range` into this
    /// segment's state.
    ///
    /// Implementations are free to bypass the generic
    /// [`ExecObserver`] dispatch and scan the dictionary-compressed
    /// representation directly (see `IpbcAnalyzer`'s fused kernel).
    fn replay(&mut self, trace: &BranchTrace, range: Range<usize>);
}

/// An observer whose state can be computed segment-wise and merged.
///
/// The contract: for any partition of the event sequence into
/// contiguous ranges, `prepare` + (`segment` → [`TraceSegment::replay`]
/// per range, in any thread order) + `merge` with the parts in *range
/// order* must leave the observer in exactly the state serial replay of
/// the same events would have produced.
pub trait SegmentedObserver: ExecObserver {
    /// The per-worker state type.
    type Segment: TraceSegment;

    /// One-time hook before segments are spawned — e.g. to precompute
    /// shared per-dictionary lookup tables for the trace at hand.
    fn prepare(&mut self, trace: &BranchTrace) {
        let _ = trace;
    }

    /// Creates a blank segment (called once per range, before replay).
    fn segment(&self) -> Self::Segment;

    /// Folds per-segment states back in. `parts` is ordered by range —
    /// `parts[0]` replayed the earliest events — which is what lets
    /// order-dependent state (open run-lengths) stitch correctly.
    fn merge(&mut self, parts: Vec<Self::Segment>);
}

impl BranchTrace {
    /// Replays this trace through `observer` split into
    /// [`bpfree_par::jobs`] segments executed on the shared
    /// work-stealing pool — the parallel tier. Equivalent to (and
    /// bit-identical with) [`BranchTrace::replay`] for any conforming
    /// [`SegmentedObserver`], at any job count.
    pub fn replay_segmented<O: SegmentedObserver + Sync>(&self, observer: &mut O) {
        self.replay_segmented_jobs(bpfree_par::jobs(), observer);
    }

    /// [`BranchTrace::replay_segmented`] with an explicit worker count
    /// (also the segment count). `n_jobs` of 0 or 1 still goes through
    /// the segment/merge path — useful for equivalence tests — but runs
    /// on the calling thread.
    ///
    /// The *segmentation* always follows `n_jobs` (so the merge
    /// structure, and hence the exact arithmetic, is a function of the
    /// requested job count alone), but the concurrent execution width
    /// is capped by [`bpfree_par::clamp_workers`] — the segments run as
    /// tasks on the shared process-wide pool, and queueing more tasks
    /// than the machine has cores only adds scheduling cost, while the
    /// merge contract makes the result identical either way.
    pub fn replay_segmented_jobs<O: SegmentedObserver + Sync>(
        &self,
        n_jobs: usize,
        observer: &mut O,
    ) {
        observer.prepare(self);
        let n_jobs = n_jobs.max(1);
        let ranges = bpfree_par::split_ranges(self.len() as u64, n_jobs);
        let workers = bpfree_par::clamp_workers(n_jobs);
        let shared: &O = observer;
        let parts = bpfree_par::par_map_jobs(workers, &ranges, |range| {
            let mut segment = shared.segment();
            segment.replay(self, range.start as usize..range.end as usize);
            segment
        });
        observer.merge(parts);
        if self.trailing_instrs() > 0 {
            observer.on_instrs(self.trailing_instrs());
        }
    }
}

impl TraceSegment for EdgeProfiler {
    fn replay(&mut self, trace: &BranchTrace, range: Range<usize>) {
        trace.replay_events(range, self);
    }
}

impl SegmentedObserver for EdgeProfiler {
    type Segment = EdgeProfiler;

    fn segment(&self) -> EdgeProfiler {
        EdgeProfiler::new()
    }

    fn merge(&mut self, parts: Vec<EdgeProfiler>) {
        for part in parts {
            self.absorb(part);
        }
    }
}

impl TraceSegment for CountingObserver {
    fn replay(&mut self, trace: &BranchTrace, range: Range<usize>) {
        trace.replay_events(range, self);
    }
}

impl SegmentedObserver for CountingObserver {
    type Segment = CountingObserver;

    fn segment(&self) -> CountingObserver {
        CountingObserver::default()
    }

    fn merge(&mut self, parts: Vec<CountingObserver>) {
        for part in parts {
            self.instructions += part.instructions;
            self.branches += part.branches;
            self.taken += part.taken;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceRecorder;
    use bpfree_ir::{BlockId, BranchRef, FuncId};

    fn b(block: u32) -> BranchRef {
        BranchRef {
            func: FuncId(0),
            block: BlockId(block),
        }
    }

    fn sample_trace() -> BranchTrace {
        let mut rec = TraceRecorder::new();
        for i in 0u64..257 {
            rec.on_instrs(1 + i % 4);
            rec.on_branch(b((i % 5) as u32), i % 3 != 0);
        }
        rec.on_instrs(9);
        rec.into_trace()
    }

    #[test]
    fn segmented_counting_matches_serial_at_any_job_count() {
        let trace = sample_trace();
        let mut serial = CountingObserver::default();
        trace.replay(&mut serial);
        for jobs in [0, 1, 2, 3, 7, 64, 1000] {
            let mut seg = CountingObserver::default();
            trace.replay_segmented_jobs(jobs, &mut seg);
            assert_eq!(seg, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn segmented_profile_matches_serial_at_any_job_count() {
        let trace = sample_trace();
        let mut serial = EdgeProfiler::new();
        trace.replay(&mut serial);
        for jobs in [1, 2, 5, 300] {
            let mut seg = EdgeProfiler::new();
            trace.replay_segmented_jobs(jobs, &mut seg);
            assert_eq!(seg.profile(), serial.profile(), "jobs={jobs}");
        }
    }

    #[test]
    fn empty_trace_still_delivers_trailing_instrs() {
        let mut rec = TraceRecorder::new();
        rec.on_instrs(42);
        let trace = rec.into_trace();
        let mut seg = CountingObserver::default();
        trace.replay_segmented_jobs(8, &mut seg);
        assert_eq!(seg.instructions, 42);
        assert_eq!(seg.branches, 0);
    }
}
