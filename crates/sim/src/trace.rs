//! Replayable branch traces.
//!
//! The observer API streams execution events so that long runs need no
//! storage, but some artifacts (the IPBC sequence distributions) depend
//! on predictions that are not known until *after* a run — the perfect
//! predictor trains on the run's own edge profile. [`TraceRecorder`]
//! captures the branch-event stream of one execution compactly enough to
//! keep (and cache), and [`BranchTrace::replay`] feeds it back to any
//! [`ExecObserver`] without re-running the interpreter.
//!
//! # Fidelity
//!
//! Replay coalesces the straight-line instruction counts between two
//! branch events into a single [`ExecObserver::on_instrs`] call. Any
//! observer that accumulates counts (every observer in this workspace)
//! sees bit-identical totals at every branch event; only the block-level
//! granularity of `on_instrs` calls differs from the live run.
//!
//! # Representation
//!
//! Executions revisit the same few branch sites millions of times, so
//! the trace is dictionary-compressed: the distinct `(instrs, branch,
//! taken)` events are interned once and the execution is a sequence of
//! dictionary indices. The suite's largest traced benchmark (~1.7M
//! branch events) fits in a few megabytes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use bpfree_ir::BranchRef;

use crate::bytes::ByteView;
use crate::observer::ExecObserver;
use crate::profile::EdgeProfile;

/// Process-wide count of owned trace-sequence materializations —
/// every allocation that decodes or widens a sequence buffer (the v5
/// cache's RLE decode, the lazy byte-wide copy behind
/// [`BranchTrace::seq_u8`]). The mounted suite image serves sequences
/// as borrowed [`ByteView`]s, so a fully mounted warm run leaves this
/// counter untouched; the warm-start perf report uses the delta as its
/// zero-allocation proof.
static SEQ_ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Current value of the process-wide sequence-materialization counter.
pub fn trace_seq_allocs() -> u64 {
    SEQ_ALLOCS.load(Ordering::Relaxed)
}

/// Records one owned sequence materialization. Public so the cache
/// crate's v5 decoder can report its allocations to the same counter.
pub fn note_trace_seq_alloc() {
    SEQ_ALLOCS.fetch_add(1, Ordering::Relaxed);
}

/// One branch execution: the straight-line instructions since the
/// previous branch event (this branch's block included), the branch
/// site, and the direction it went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceEvent {
    /// Instructions executed since the previous branch event, including
    /// the block this branch terminates.
    pub instrs: u64,
    /// The branch site.
    pub branch: BranchRef,
    /// Did it go taken?
    pub taken: bool,
}

/// Per-dictionary-entry occurrence counts of one trace, computed in a
/// single O(seq) integer pass at trace construction.
///
/// This is the input of the **O(dict) fused evaluation tier**: the
/// paper's predictors are per-site and history-free, so any per-event
/// quantity that ignores event *order* — misprediction totals, edge
/// profiles, IPBC averages, dynamic instruction counts — depends only on
/// how often each distinct `(instrs, branch, taken)` event occurred.
/// Folding over the dictionary with these counts replaces an O(events)
/// replay (millions of observer calls) with O(dict) ≈ hundreds of
/// integer operations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceTally {
    counts: Vec<u64>,
    instructions: u64,
}

impl TraceTally {
    fn build(dict: &[TraceEvent], seq: &[u32], trailing_instrs: u64) -> TraceTally {
        let mut counts = vec![0u64; dict.len()];
        for &i in seq {
            counts[i as usize] += 1;
        }
        TraceTally::from_counts(dict, counts, trailing_instrs)
    }

    fn from_counts(dict: &[TraceEvent], counts: Vec<u64>, trailing_instrs: u64) -> TraceTally {
        let instructions = dict
            .iter()
            .zip(&counts)
            .map(|(e, &c)| e.instrs * c)
            .sum::<u64>()
            + trailing_instrs;
        TraceTally {
            counts,
            instructions,
        }
    }

    /// Occurrences of each dictionary entry, indexed like the dict.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Occurrences of dictionary entry `idx`.
    pub fn count(&self, idx: usize) -> u64 {
        self.counts[idx]
    }

    /// Total dynamic instructions (trailing straight-line run included).
    pub fn instructions(&self) -> u64 {
        self.instructions
    }
}

/// The index sequence at its stored width.
///
/// Recorded (and v5-cache-decoded) traces own wide `u32` indices;
/// traces mounted from a suite image borrow byte-wide indices straight
/// from the image buffer. Replay kernels that want width-specialized
/// loops match on [`BranchTrace::seq_slice`].
#[derive(Debug, Clone, Copy)]
pub enum SeqSlice<'a> {
    /// Owned wide indices (any dictionary size).
    Wide(&'a [u32]),
    /// Byte-wide indices (dictionary ≤ 256 entries, possibly borrowed
    /// from a mounted image).
    Bytes(&'a [u8]),
}

#[derive(Debug, Clone)]
enum SeqStore {
    /// Owned wide indices, with a lazily-built byte-wide copy for
    /// small dictionaries (see [`BranchTrace::seq_u8`]). The copy is
    /// derived data — excluded from equality, built at most once.
    Wide(Vec<u32>, std::sync::OnceLock<Vec<u8>>),
    /// Byte-wide indices borrowed from a shared buffer (the mounted
    /// suite image). Only constructed for dictionaries ≤ 256 entries.
    Borrowed(ByteView),
}

impl Default for SeqStore {
    fn default() -> SeqStore {
        SeqStore::Wide(Vec::new(), std::sync::OnceLock::new())
    }
}

/// A dictionary-compressed branch-event trace of one execution.
#[derive(Debug, Clone, Default)]
pub struct BranchTrace {
    dict: Vec<TraceEvent>,
    seq: SeqStore,
    trailing_instrs: u64,
    tally: TraceTally,
}

/// Equality is over the logical trace (dictionary, index sequence,
/// trailing run) regardless of sequence storage width; the tally is a
/// deterministic function of those, so it does not participate.
impl PartialEq for BranchTrace {
    fn eq(&self, other: &BranchTrace) -> bool {
        if self.dict != other.dict || self.trailing_instrs != other.trailing_instrs {
            return false;
        }
        match (&self.seq, &other.seq) {
            (SeqStore::Wide(a, _), SeqStore::Wide(b, _)) => a == b,
            _ => self.indices().eq(other.indices()),
        }
    }
}

impl Eq for BranchTrace {}

impl BranchTrace {
    /// Assembles a trace whose sequence indices are known to be in
    /// range, computing the tally as part of construction.
    fn assemble(dict: Vec<TraceEvent>, seq: Vec<u32>, trailing_instrs: u64) -> BranchTrace {
        let tally = TraceTally::build(&dict, &seq, trailing_instrs);
        BranchTrace {
            dict,
            seq: SeqStore::Wide(seq, std::sync::OnceLock::new()),
            trailing_instrs,
            tally,
        }
    }

    /// Rebuilds a trace from its serialized parts, or `None` if any
    /// sequence index is out of range (corrupt input).
    pub fn from_parts(dict: Vec<TraceEvent>, seq: Vec<u32>, trailing_instrs: u64) -> Option<Self> {
        let n = dict.len() as u32;
        if seq.iter().any(|&i| i >= n) {
            return None;
        }
        Some(BranchTrace::assemble(dict, seq, trailing_instrs))
    }

    /// Rebuilds a trace whose sequence *borrows* byte-wide indices from
    /// a shared buffer (the mounted suite image) — no sequence
    /// allocation, no decode. Returns `None` when the dictionary has
    /// more than 256 entries (byte indices could not address it) or any
    /// index is out of range (corrupt input). The single validation
    /// pass also computes the tally, so construction does exactly one
    /// read of the borrowed bytes and allocates only the O(dict)
    /// counts.
    pub fn from_borrowed_parts(
        dict: Vec<TraceEvent>,
        seq: ByteView,
        trailing_instrs: u64,
    ) -> Option<Self> {
        if dict.len() > 256 {
            return None;
        }
        let n = dict.len();
        let mut counts = vec![0u64; n];
        for &b in seq.as_slice() {
            let i = b as usize;
            if i >= n {
                return None;
            }
            counts[i] += 1;
        }
        let tally = TraceTally::from_counts(&dict, counts, trailing_instrs);
        Some(BranchTrace {
            dict,
            seq: SeqStore::Borrowed(seq),
            trailing_instrs,
            tally,
        })
    }

    /// The interned distinct events.
    pub fn dict(&self) -> &[TraceEvent] {
        &self.dict
    }

    /// The index sequence at its stored width, for width-specialized
    /// replay loops.
    pub fn seq_slice(&self) -> SeqSlice<'_> {
        match &self.seq {
            SeqStore::Wide(s, _) => SeqSlice::Wide(s),
            SeqStore::Borrowed(v) => SeqSlice::Bytes(v.as_slice()),
        }
    }

    /// The execution as wide dictionary indices, or `None` when the
    /// sequence is stored byte-wide (mounted from an image). A `None`
    /// here implies [`BranchTrace::seq_u8`] is `Some`, so every caller
    /// has a zero-copy path.
    pub fn seq_u32(&self) -> Option<&[u32]> {
        match &self.seq {
            SeqStore::Wide(s, _) => Some(s),
            SeqStore::Borrowed(_) => None,
        }
    }

    /// The execution as dictionary indices, in order.
    pub fn indices(&self) -> impl Iterator<Item = u32> + '_ {
        match &self.seq {
            SeqStore::Wide(s, _) => IdxIter::Wide(s.iter()),
            SeqStore::Borrowed(v) => IdxIter::Bytes(v.as_slice().iter()),
        }
    }

    /// The sequence as byte-wide indices, or `None` when the dictionary
    /// has more than 256 entries. Real traces intern a few dozen
    /// distinct events, so replay kernels that stream the sequence can
    /// read a quarter of the memory — and index a 256-entry lookup
    /// table without bounds checks. Traces mounted from a suite image
    /// already store byte-wide indices and answer borrowed image bytes
    /// directly; owned wide traces build the byte copy on first use,
    /// then cache it for the life of the trace (replays are the hot
    /// path; construction is not).
    pub fn seq_u8(&self) -> Option<&[u8]> {
        match &self.seq {
            SeqStore::Borrowed(v) => Some(v.as_slice()),
            SeqStore::Wide(s, seq8) => {
                if self.dict.len() > 256 {
                    return None;
                }
                Some(seq8.get_or_init(|| {
                    note_trace_seq_alloc();
                    s.iter().map(|&i| i as u8).collect()
                }))
            }
        }
    }

    /// Straight-line instructions after the last branch event.
    pub fn trailing_instrs(&self) -> u64 {
        self.trailing_instrs
    }

    /// Number of branch events.
    pub fn len(&self) -> usize {
        match &self.seq {
            SeqStore::Wide(s, _) => s.len(),
            SeqStore::Borrowed(v) => v.len(),
        }
    }

    /// Did the execution run no conditional branch?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-dict-entry occurrence counts — the O(dict) fused evaluation
    /// tier's input (see [`TraceTally`]). Precomputed at construction,
    /// so this is free.
    pub fn tally(&self) -> &TraceTally {
        &self.tally
    }

    /// Total dynamic instructions in the trace. O(1): derived from the
    /// precomputed tally instead of re-summing the event sequence.
    pub fn total_instructions(&self) -> u64 {
        self.tally.instructions
    }

    /// The edge profile of the recorded execution, computed from the
    /// tally in O(dict) — bit-identical to replaying the trace into an
    /// [`crate::EdgeProfiler`], at a millionth of the event dispatch.
    pub fn edge_profile(&self) -> EdgeProfile {
        let mut profile = EdgeProfile::new();
        for (event, &count) in self.dict.iter().zip(self.tally.counts()) {
            if count > 0 {
                profile.record_many(event.branch, event.taken, count);
            }
        }
        profile
    }

    /// The events in execution order.
    pub fn events(&self) -> impl Iterator<Item = TraceEvent> + '_ {
        self.indices().map(|i| self.dict[i as usize])
    }

    /// Streams the recorded execution into `observer`, as if the program
    /// ran again (with straight-line runs coalesced — see the module
    /// docs). Any number of observers can replay the same trace, so one
    /// interpreter pass serves every post-hoc analysis.
    ///
    /// This is the serial reference; see [`BranchTrace::replay_segmented`]
    /// for the parallel tier and [`BranchTrace::tally`] for the O(dict)
    /// tier, both provably equivalent for their supported observers.
    pub fn replay<O: ExecObserver + ?Sized>(&self, observer: &mut O) {
        self.replay_events(0..self.len(), observer);
        if self.trailing_instrs > 0 {
            observer.on_instrs(self.trailing_instrs);
        }
    }

    /// Streams the events of one contiguous index range (no trailing
    /// instructions) — the building block segmented replay hands each
    /// worker.
    pub fn replay_events<O: ExecObserver + ?Sized>(
        &self,
        range: std::ops::Range<usize>,
        observer: &mut O,
    ) {
        fn stream<O: ExecObserver + ?Sized>(
            dict: &[TraceEvent],
            indices: impl Iterator<Item = usize>,
            observer: &mut O,
        ) {
            for idx in indices {
                let event = dict[idx];
                if event.instrs > 0 {
                    observer.on_instrs(event.instrs);
                }
                observer.on_branch(event.branch, event.taken);
            }
        }
        match self.seq_slice() {
            SeqSlice::Wide(s) => stream(&self.dict, s[range].iter().map(|&i| i as usize), observer),
            SeqSlice::Bytes(s) => {
                stream(&self.dict, s[range].iter().map(|&i| i as usize), observer)
            }
        }
    }
}

/// Width-erasing iterator behind [`BranchTrace::indices`].
enum IdxIter<'a> {
    Wide(std::slice::Iter<'a, u32>),
    Bytes(std::slice::Iter<'a, u8>),
}

impl Iterator for IdxIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match self {
            IdxIter::Wide(it) => it.next().copied(),
            IdxIter::Bytes(it) => it.next().map(|&b| u32::from(b)),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            IdxIter::Wide(it) => it.size_hint(),
            IdxIter::Bytes(it) => it.size_hint(),
        }
    }
}

/// Records the branch-event stream of one execution into a
/// [`BranchTrace`].
///
/// # Example
///
/// ```
/// use bpfree_sim::{CountingObserver, Simulator, TraceRecorder};
/// let p = bpfree_lang::compile(
///     "fn main() -> int {
///         int i; int s;
///         for (i = 0; i < 10; i = i + 1) { s = s + i; }
///         return s;
///     }",
/// ).unwrap();
/// let mut rec = TraceRecorder::new();
/// let live = Simulator::new(&p).run(&mut rec).unwrap();
/// let trace = rec.into_trace();
/// // Replay drives observers exactly like the live run did.
/// let mut counter = CountingObserver::default();
/// trace.replay(&mut counter);
/// assert_eq!(counter.instructions, live.instructions);
/// ```
#[derive(Debug, Default)]
pub struct TraceRecorder {
    dict: Vec<TraceEvent>,
    index: HashMap<TraceEvent, u32>,
    seq: Vec<u32>,
    pending_instrs: u64,
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> TraceRecorder {
        TraceRecorder::default()
    }

    /// Finalises the recording.
    pub fn into_trace(self) -> BranchTrace {
        BranchTrace::assemble(self.dict, self.seq, self.pending_instrs)
    }
}

impl ExecObserver for TraceRecorder {
    fn on_instrs(&mut self, count: u64) {
        self.pending_instrs += count;
    }

    fn on_branch(&mut self, branch: BranchRef, taken: bool) {
        let event = TraceEvent {
            instrs: self.pending_instrs,
            branch,
            taken,
        };
        self.pending_instrs = 0;
        let next = self.dict.len() as u32;
        let idx = *self.index.entry(event).or_insert_with(|| {
            self.dict.push(event);
            next
        });
        self.seq.push(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::CountingObserver;
    use crate::profile::EdgeProfiler;
    use bpfree_ir::{BlockId, FuncId};

    fn b(n: u32) -> BranchRef {
        BranchRef {
            func: FuncId(0),
            block: BlockId(n),
        }
    }

    #[test]
    fn record_and_replay_roundtrip() {
        let mut rec = TraceRecorder::new();
        rec.on_instrs(3);
        rec.on_instrs(2);
        rec.on_branch(b(1), true);
        rec.on_instrs(4);
        rec.on_branch(b(1), true); // same event interns once
        rec.on_instrs(4);
        rec.on_branch(b(2), false);
        rec.on_instrs(1);
        let trace = rec.into_trace();

        assert_eq!(trace.len(), 3);
        assert_eq!(trace.trailing_instrs(), 1);
        assert_eq!(trace.total_instructions(), 14);
        // (5, b1, T), (4, b1, T), (4, b2, F): three distinct events.
        assert_eq!(trace.dict().len(), 3);

        let mut counter = CountingObserver::default();
        let mut profiler = EdgeProfiler::new();
        trace.replay(&mut counter);
        trace.replay(&mut profiler);
        assert_eq!(counter.instructions, 14);
        assert_eq!(counter.branches, 3);
        assert_eq!(counter.taken, 2);
        let profile = profiler.into_profile();
        assert_eq!(profile.counts(b(1)).taken, 2);
        assert_eq!(profile.counts(b(2)).fallthru, 1);
    }

    #[test]
    fn interning_dedupes_repeated_loop_events() {
        let mut rec = TraceRecorder::new();
        for _ in 0..1000 {
            rec.on_instrs(5);
            rec.on_branch(b(3), true);
        }
        let trace = rec.into_trace();
        assert_eq!(trace.len(), 1000);
        assert_eq!(trace.dict().len(), 1, "one distinct event");
    }

    #[test]
    fn tally_counts_every_dict_entry() {
        let mut rec = TraceRecorder::new();
        for i in 0..100 {
            rec.on_instrs(5);
            rec.on_branch(b(3), i % 10 != 9);
        }
        rec.on_instrs(7);
        let trace = rec.into_trace();
        assert_eq!(trace.dict().len(), 2);
        let tally = trace.tally();
        assert_eq!(tally.counts().iter().sum::<u64>(), 100);
        assert_eq!(tally.instructions(), 507);
        assert_eq!(trace.total_instructions(), 507);
    }

    #[test]
    fn edge_profile_matches_replay() {
        let mut rec = TraceRecorder::new();
        for i in 0..50 {
            rec.on_instrs(2);
            rec.on_branch(b(1), i % 3 == 0);
            rec.on_instrs(1);
            rec.on_branch(b(2), i % 7 == 0);
        }
        let trace = rec.into_trace();
        let mut profiler = EdgeProfiler::new();
        trace.replay(&mut profiler);
        assert_eq!(trace.edge_profile(), profiler.into_profile());
    }

    #[test]
    fn from_parts_rejects_bad_indices() {
        let e = TraceEvent {
            instrs: 1,
            branch: b(0),
            taken: true,
        };
        assert!(BranchTrace::from_parts(vec![e], vec![0, 0], 0).is_some());
        assert!(BranchTrace::from_parts(vec![e], vec![1], 0).is_none());
    }

    #[test]
    fn borrowed_parts_match_wide_trace() {
        let mut rec = TraceRecorder::new();
        for i in 0..100 {
            rec.on_instrs(5);
            rec.on_branch(b(3), i % 10 != 9);
            rec.on_instrs(2);
            rec.on_branch(b(4), i % 3 == 0);
        }
        rec.on_instrs(7);
        let wide = rec.into_trace();
        let bytes: Vec<u8> = wide.seq_u8().unwrap().to_vec();
        let borrowed = BranchTrace::from_borrowed_parts(
            wide.dict().to_vec(),
            ByteView::from_vec(bytes),
            wide.trailing_instrs(),
        )
        .unwrap();

        assert_eq!(borrowed, wide);
        assert_eq!(borrowed.tally(), wide.tally());
        assert_eq!(borrowed.total_instructions(), wide.total_instructions());
        assert_eq!(borrowed.edge_profile(), wide.edge_profile());
        assert!(borrowed.seq_u32().is_none());
        assert_eq!(borrowed.seq_u8().unwrap(), wide.seq_u8().unwrap());

        let mut a = CountingObserver::default();
        let mut b_ = CountingObserver::default();
        borrowed.replay(&mut a);
        wide.replay(&mut b_);
        assert_eq!(a.instructions, b_.instructions);
        assert_eq!(a.taken, b_.taken);
    }

    #[test]
    fn borrowed_parts_reject_bad_input() {
        let e = TraceEvent {
            instrs: 1,
            branch: b(0),
            taken: true,
        };
        // Out-of-range byte index.
        assert!(
            BranchTrace::from_borrowed_parts(vec![e], ByteView::from_vec(vec![0, 1]), 0).is_none()
        );
        // Oversized dictionary cannot be addressed byte-wide.
        let big: Vec<TraceEvent> = (0..257)
            .map(|i| TraceEvent {
                instrs: i,
                branch: b(0),
                taken: true,
            })
            .collect();
        assert!(BranchTrace::from_borrowed_parts(big, ByteView::from_vec(vec![0]), 0).is_none());
    }
}
