//! Replayable branch traces.
//!
//! The observer API streams execution events so that long runs need no
//! storage, but some artifacts (the IPBC sequence distributions) depend
//! on predictions that are not known until *after* a run — the perfect
//! predictor trains on the run's own edge profile. [`TraceRecorder`]
//! captures the branch-event stream of one execution compactly enough to
//! keep (and cache), and [`BranchTrace::replay`] feeds it back to any
//! [`ExecObserver`] without re-running the interpreter.
//!
//! # Fidelity
//!
//! Replay coalesces the straight-line instruction counts between two
//! branch events into a single [`ExecObserver::on_instrs`] call. Any
//! observer that accumulates counts (every observer in this workspace)
//! sees bit-identical totals at every branch event; only the block-level
//! granularity of `on_instrs` calls differs from the live run.
//!
//! # Representation
//!
//! Executions revisit the same few branch sites millions of times, so
//! the trace is dictionary-compressed: the distinct `(instrs, branch,
//! taken)` events are interned once and the execution is a sequence of
//! dictionary indices. The suite's largest traced benchmark (~1.7M
//! branch events) fits in a few megabytes.

use std::collections::HashMap;

use bpfree_ir::BranchRef;

use crate::observer::ExecObserver;
use crate::profile::EdgeProfile;

/// One branch execution: the straight-line instructions since the
/// previous branch event (this branch's block included), the branch
/// site, and the direction it went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceEvent {
    /// Instructions executed since the previous branch event, including
    /// the block this branch terminates.
    pub instrs: u64,
    /// The branch site.
    pub branch: BranchRef,
    /// Did it go taken?
    pub taken: bool,
}

/// Per-dictionary-entry occurrence counts of one trace, computed in a
/// single O(seq) integer pass at trace construction.
///
/// This is the input of the **O(dict) fused evaluation tier**: the
/// paper's predictors are per-site and history-free, so any per-event
/// quantity that ignores event *order* — misprediction totals, edge
/// profiles, IPBC averages, dynamic instruction counts — depends only on
/// how often each distinct `(instrs, branch, taken)` event occurred.
/// Folding over the dictionary with these counts replaces an O(events)
/// replay (millions of observer calls) with O(dict) ≈ hundreds of
/// integer operations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceTally {
    counts: Vec<u64>,
    instructions: u64,
}

impl TraceTally {
    fn build(dict: &[TraceEvent], seq: &[u32], trailing_instrs: u64) -> TraceTally {
        let mut counts = vec![0u64; dict.len()];
        for &i in seq {
            counts[i as usize] += 1;
        }
        let instructions = dict
            .iter()
            .zip(&counts)
            .map(|(e, &c)| e.instrs * c)
            .sum::<u64>()
            + trailing_instrs;
        TraceTally {
            counts,
            instructions,
        }
    }

    /// Occurrences of each dictionary entry, indexed like the dict.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Occurrences of dictionary entry `idx`.
    pub fn count(&self, idx: usize) -> u64 {
        self.counts[idx]
    }

    /// Total dynamic instructions (trailing straight-line run included).
    pub fn instructions(&self) -> u64 {
        self.instructions
    }
}

/// A dictionary-compressed branch-event trace of one execution.
#[derive(Debug, Clone, Default)]
pub struct BranchTrace {
    dict: Vec<TraceEvent>,
    seq: Vec<u32>,
    trailing_instrs: u64,
    tally: TraceTally,
    /// Lazily-built byte-wide copy of `seq` for small dictionaries
    /// (see [`BranchTrace::seq_u8`]). Derived data — excluded from
    /// equality, built at most once per trace.
    seq8: std::sync::OnceLock<Vec<u8>>,
}

/// Equality is over the logical trace (dictionary, sequence, trailing
/// run); the tally is a deterministic function of those and the `seq8`
/// cache is derived data, so neither participates.
impl PartialEq for BranchTrace {
    fn eq(&self, other: &BranchTrace) -> bool {
        self.dict == other.dict
            && self.seq == other.seq
            && self.trailing_instrs == other.trailing_instrs
    }
}

impl Eq for BranchTrace {}

impl BranchTrace {
    /// Assembles a trace whose sequence indices are known to be in
    /// range, computing the tally as part of construction.
    fn assemble(dict: Vec<TraceEvent>, seq: Vec<u32>, trailing_instrs: u64) -> BranchTrace {
        let tally = TraceTally::build(&dict, &seq, trailing_instrs);
        BranchTrace {
            dict,
            seq,
            trailing_instrs,
            tally,
            seq8: std::sync::OnceLock::new(),
        }
    }

    /// Rebuilds a trace from its serialized parts, or `None` if any
    /// sequence index is out of range (corrupt input).
    pub fn from_parts(dict: Vec<TraceEvent>, seq: Vec<u32>, trailing_instrs: u64) -> Option<Self> {
        let n = dict.len() as u32;
        if seq.iter().any(|&i| i >= n) {
            return None;
        }
        Some(BranchTrace::assemble(dict, seq, trailing_instrs))
    }

    /// The interned distinct events.
    pub fn dict(&self) -> &[TraceEvent] {
        &self.dict
    }

    /// The execution as dictionary indices, in order.
    pub fn seq(&self) -> &[u32] {
        &self.seq
    }

    /// The sequence as byte-wide indices, or `None` when the dictionary
    /// has more than 256 entries. Real traces intern a few dozen
    /// distinct events, so replay kernels that stream the sequence can
    /// read a quarter of the memory — and index a 256-entry lookup
    /// table without bounds checks. Built on first use, then cached for
    /// the life of the trace (replays are the hot path; construction is
    /// not).
    pub fn seq_u8(&self) -> Option<&[u8]> {
        if self.dict.len() > 256 {
            return None;
        }
        Some(
            self.seq8
                .get_or_init(|| self.seq.iter().map(|&i| i as u8).collect()),
        )
    }

    /// Straight-line instructions after the last branch event.
    pub fn trailing_instrs(&self) -> u64 {
        self.trailing_instrs
    }

    /// Number of branch events.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// Did the execution run no conditional branch?
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Per-dict-entry occurrence counts — the O(dict) fused evaluation
    /// tier's input (see [`TraceTally`]). Precomputed at construction,
    /// so this is free.
    pub fn tally(&self) -> &TraceTally {
        &self.tally
    }

    /// Total dynamic instructions in the trace. O(1): derived from the
    /// precomputed tally instead of re-summing the event sequence.
    pub fn total_instructions(&self) -> u64 {
        self.tally.instructions
    }

    /// The edge profile of the recorded execution, computed from the
    /// tally in O(dict) — bit-identical to replaying the trace into an
    /// [`crate::EdgeProfiler`], at a millionth of the event dispatch.
    pub fn edge_profile(&self) -> EdgeProfile {
        let mut profile = EdgeProfile::new();
        for (event, &count) in self.dict.iter().zip(self.tally.counts()) {
            if count > 0 {
                profile.record_many(event.branch, event.taken, count);
            }
        }
        profile
    }

    /// The events in execution order.
    pub fn events(&self) -> impl Iterator<Item = TraceEvent> + '_ {
        self.seq.iter().map(|&i| self.dict[i as usize])
    }

    /// Streams the recorded execution into `observer`, as if the program
    /// ran again (with straight-line runs coalesced — see the module
    /// docs). Any number of observers can replay the same trace, so one
    /// interpreter pass serves every post-hoc analysis.
    ///
    /// This is the serial reference; see [`BranchTrace::replay_segmented`]
    /// for the parallel tier and [`BranchTrace::tally`] for the O(dict)
    /// tier, both provably equivalent for their supported observers.
    pub fn replay<O: ExecObserver + ?Sized>(&self, observer: &mut O) {
        self.replay_events(0..self.seq.len(), observer);
        if self.trailing_instrs > 0 {
            observer.on_instrs(self.trailing_instrs);
        }
    }

    /// Streams the events of one contiguous index range (no trailing
    /// instructions) — the building block segmented replay hands each
    /// worker.
    pub fn replay_events<O: ExecObserver + ?Sized>(
        &self,
        range: std::ops::Range<usize>,
        observer: &mut O,
    ) {
        for &idx in &self.seq[range] {
            let event = self.dict[idx as usize];
            if event.instrs > 0 {
                observer.on_instrs(event.instrs);
            }
            observer.on_branch(event.branch, event.taken);
        }
    }
}

/// Records the branch-event stream of one execution into a
/// [`BranchTrace`].
///
/// # Example
///
/// ```
/// use bpfree_sim::{CountingObserver, Simulator, TraceRecorder};
/// let p = bpfree_lang::compile(
///     "fn main() -> int {
///         int i; int s;
///         for (i = 0; i < 10; i = i + 1) { s = s + i; }
///         return s;
///     }",
/// ).unwrap();
/// let mut rec = TraceRecorder::new();
/// let live = Simulator::new(&p).run(&mut rec).unwrap();
/// let trace = rec.into_trace();
/// // Replay drives observers exactly like the live run did.
/// let mut counter = CountingObserver::default();
/// trace.replay(&mut counter);
/// assert_eq!(counter.instructions, live.instructions);
/// ```
#[derive(Debug, Default)]
pub struct TraceRecorder {
    dict: Vec<TraceEvent>,
    index: HashMap<TraceEvent, u32>,
    seq: Vec<u32>,
    pending_instrs: u64,
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> TraceRecorder {
        TraceRecorder::default()
    }

    /// Finalises the recording.
    pub fn into_trace(self) -> BranchTrace {
        BranchTrace::assemble(self.dict, self.seq, self.pending_instrs)
    }
}

impl ExecObserver for TraceRecorder {
    fn on_instrs(&mut self, count: u64) {
        self.pending_instrs += count;
    }

    fn on_branch(&mut self, branch: BranchRef, taken: bool) {
        let event = TraceEvent {
            instrs: self.pending_instrs,
            branch,
            taken,
        };
        self.pending_instrs = 0;
        let next = self.dict.len() as u32;
        let idx = *self.index.entry(event).or_insert_with(|| {
            self.dict.push(event);
            next
        });
        self.seq.push(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::CountingObserver;
    use crate::profile::EdgeProfiler;
    use bpfree_ir::{BlockId, FuncId};

    fn b(n: u32) -> BranchRef {
        BranchRef {
            func: FuncId(0),
            block: BlockId(n),
        }
    }

    #[test]
    fn record_and_replay_roundtrip() {
        let mut rec = TraceRecorder::new();
        rec.on_instrs(3);
        rec.on_instrs(2);
        rec.on_branch(b(1), true);
        rec.on_instrs(4);
        rec.on_branch(b(1), true); // same event interns once
        rec.on_instrs(4);
        rec.on_branch(b(2), false);
        rec.on_instrs(1);
        let trace = rec.into_trace();

        assert_eq!(trace.len(), 3);
        assert_eq!(trace.trailing_instrs(), 1);
        assert_eq!(trace.total_instructions(), 14);
        // (5, b1, T), (4, b1, T), (4, b2, F): three distinct events.
        assert_eq!(trace.dict().len(), 3);

        let mut counter = CountingObserver::default();
        let mut profiler = EdgeProfiler::new();
        trace.replay(&mut counter);
        trace.replay(&mut profiler);
        assert_eq!(counter.instructions, 14);
        assert_eq!(counter.branches, 3);
        assert_eq!(counter.taken, 2);
        let profile = profiler.into_profile();
        assert_eq!(profile.counts(b(1)).taken, 2);
        assert_eq!(profile.counts(b(2)).fallthru, 1);
    }

    #[test]
    fn interning_dedupes_repeated_loop_events() {
        let mut rec = TraceRecorder::new();
        for _ in 0..1000 {
            rec.on_instrs(5);
            rec.on_branch(b(3), true);
        }
        let trace = rec.into_trace();
        assert_eq!(trace.len(), 1000);
        assert_eq!(trace.dict().len(), 1, "one distinct event");
    }

    #[test]
    fn tally_counts_every_dict_entry() {
        let mut rec = TraceRecorder::new();
        for i in 0..100 {
            rec.on_instrs(5);
            rec.on_branch(b(3), i % 10 != 9);
        }
        rec.on_instrs(7);
        let trace = rec.into_trace();
        assert_eq!(trace.dict().len(), 2);
        let tally = trace.tally();
        assert_eq!(tally.counts().iter().sum::<u64>(), 100);
        assert_eq!(tally.instructions(), 507);
        assert_eq!(trace.total_instructions(), 507);
    }

    #[test]
    fn edge_profile_matches_replay() {
        let mut rec = TraceRecorder::new();
        for i in 0..50 {
            rec.on_instrs(2);
            rec.on_branch(b(1), i % 3 == 0);
            rec.on_instrs(1);
            rec.on_branch(b(2), i % 7 == 0);
        }
        let trace = rec.into_trace();
        let mut profiler = EdgeProfiler::new();
        trace.replay(&mut profiler);
        assert_eq!(trace.edge_profile(), profiler.into_profile());
    }

    #[test]
    fn from_parts_rejects_bad_indices() {
        let e = TraceEvent {
            instrs: 1,
            branch: b(0),
            taken: true,
        };
        assert!(BranchTrace::from_parts(vec![e], vec![0, 0], 0).is_some());
        assert!(BranchTrace::from_parts(vec![e], vec![1], 0).is_none());
    }
}
