//! Replayable branch traces.
//!
//! The observer API streams execution events so that long runs need no
//! storage, but some artifacts (the IPBC sequence distributions) depend
//! on predictions that are not known until *after* a run — the perfect
//! predictor trains on the run's own edge profile. [`TraceRecorder`]
//! captures the branch-event stream of one execution compactly enough to
//! keep (and cache), and [`BranchTrace::replay`] feeds it back to any
//! [`ExecObserver`] without re-running the interpreter.
//!
//! # Fidelity
//!
//! Replay coalesces the straight-line instruction counts between two
//! branch events into a single [`ExecObserver::on_instrs`] call. Any
//! observer that accumulates counts (every observer in this workspace)
//! sees bit-identical totals at every branch event; only the block-level
//! granularity of `on_instrs` calls differs from the live run.
//!
//! # Representation
//!
//! Executions revisit the same few branch sites millions of times, so
//! the trace is dictionary-compressed: the distinct `(instrs, branch,
//! taken)` events are interned once and the execution is a sequence of
//! dictionary indices. The suite's largest traced benchmark (~1.7M
//! branch events) fits in a few megabytes.

use std::collections::HashMap;

use bpfree_ir::BranchRef;

use crate::observer::ExecObserver;

/// One branch execution: the straight-line instructions since the
/// previous branch event (this branch's block included), the branch
/// site, and the direction it went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceEvent {
    /// Instructions executed since the previous branch event, including
    /// the block this branch terminates.
    pub instrs: u64,
    /// The branch site.
    pub branch: BranchRef,
    /// Did it go taken?
    pub taken: bool,
}

/// A dictionary-compressed branch-event trace of one execution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BranchTrace {
    dict: Vec<TraceEvent>,
    seq: Vec<u32>,
    trailing_instrs: u64,
}

impl BranchTrace {
    /// Rebuilds a trace from its serialized parts, or `None` if any
    /// sequence index is out of range (corrupt input).
    pub fn from_parts(dict: Vec<TraceEvent>, seq: Vec<u32>, trailing_instrs: u64) -> Option<Self> {
        let n = dict.len() as u32;
        if seq.iter().any(|&i| i >= n) {
            return None;
        }
        Some(BranchTrace {
            dict,
            seq,
            trailing_instrs,
        })
    }

    /// The interned distinct events.
    pub fn dict(&self) -> &[TraceEvent] {
        &self.dict
    }

    /// The execution as dictionary indices, in order.
    pub fn seq(&self) -> &[u32] {
        &self.seq
    }

    /// Straight-line instructions after the last branch event.
    pub fn trailing_instrs(&self) -> u64 {
        self.trailing_instrs
    }

    /// Number of branch events.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// Did the execution run no conditional branch?
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Total dynamic instructions in the trace.
    pub fn total_instructions(&self) -> u64 {
        self.seq
            .iter()
            .map(|&i| self.dict[i as usize].instrs)
            .sum::<u64>()
            + self.trailing_instrs
    }

    /// The events in execution order.
    pub fn events(&self) -> impl Iterator<Item = TraceEvent> + '_ {
        self.seq.iter().map(|&i| self.dict[i as usize])
    }

    /// Streams the recorded execution into `observer`, as if the program
    /// ran again (with straight-line runs coalesced — see the module
    /// docs). Any number of observers can replay the same trace, so one
    /// interpreter pass serves every post-hoc analysis.
    pub fn replay<O: ExecObserver + ?Sized>(&self, observer: &mut O) {
        for event in self.events() {
            if event.instrs > 0 {
                observer.on_instrs(event.instrs);
            }
            observer.on_branch(event.branch, event.taken);
        }
        if self.trailing_instrs > 0 {
            observer.on_instrs(self.trailing_instrs);
        }
    }
}

/// Records the branch-event stream of one execution into a
/// [`BranchTrace`].
///
/// # Example
///
/// ```
/// use bpfree_sim::{CountingObserver, Simulator, TraceRecorder};
/// let p = bpfree_lang::compile(
///     "fn main() -> int {
///         int i; int s;
///         for (i = 0; i < 10; i = i + 1) { s = s + i; }
///         return s;
///     }",
/// ).unwrap();
/// let mut rec = TraceRecorder::new();
/// let live = Simulator::new(&p).run(&mut rec).unwrap();
/// let trace = rec.into_trace();
/// // Replay drives observers exactly like the live run did.
/// let mut counter = CountingObserver::default();
/// trace.replay(&mut counter);
/// assert_eq!(counter.instructions, live.instructions);
/// ```
#[derive(Debug, Default)]
pub struct TraceRecorder {
    dict: Vec<TraceEvent>,
    index: HashMap<TraceEvent, u32>,
    seq: Vec<u32>,
    pending_instrs: u64,
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> TraceRecorder {
        TraceRecorder::default()
    }

    /// Finalises the recording.
    pub fn into_trace(self) -> BranchTrace {
        BranchTrace {
            dict: self.dict,
            seq: self.seq,
            trailing_instrs: self.pending_instrs,
        }
    }
}

impl ExecObserver for TraceRecorder {
    fn on_instrs(&mut self, count: u64) {
        self.pending_instrs += count;
    }

    fn on_branch(&mut self, branch: BranchRef, taken: bool) {
        let event = TraceEvent {
            instrs: self.pending_instrs,
            branch,
            taken,
        };
        self.pending_instrs = 0;
        let next = self.dict.len() as u32;
        let idx = *self.index.entry(event).or_insert_with(|| {
            self.dict.push(event);
            next
        });
        self.seq.push(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::CountingObserver;
    use crate::profile::EdgeProfiler;
    use bpfree_ir::{BlockId, FuncId};

    fn b(n: u32) -> BranchRef {
        BranchRef {
            func: FuncId(0),
            block: BlockId(n),
        }
    }

    #[test]
    fn record_and_replay_roundtrip() {
        let mut rec = TraceRecorder::new();
        rec.on_instrs(3);
        rec.on_instrs(2);
        rec.on_branch(b(1), true);
        rec.on_instrs(4);
        rec.on_branch(b(1), true); // same event interns once
        rec.on_instrs(4);
        rec.on_branch(b(2), false);
        rec.on_instrs(1);
        let trace = rec.into_trace();

        assert_eq!(trace.len(), 3);
        assert_eq!(trace.trailing_instrs(), 1);
        assert_eq!(trace.total_instructions(), 14);
        // (5, b1, T), (4, b1, T), (4, b2, F): three distinct events.
        assert_eq!(trace.dict().len(), 3);

        let mut counter = CountingObserver::default();
        let mut profiler = EdgeProfiler::new();
        trace.replay(&mut counter);
        trace.replay(&mut profiler);
        assert_eq!(counter.instructions, 14);
        assert_eq!(counter.branches, 3);
        assert_eq!(counter.taken, 2);
        let profile = profiler.into_profile();
        assert_eq!(profile.counts(b(1)).taken, 2);
        assert_eq!(profile.counts(b(2)).fallthru, 1);
    }

    #[test]
    fn interning_dedupes_repeated_loop_events() {
        let mut rec = TraceRecorder::new();
        for _ in 0..1000 {
            rec.on_instrs(5);
            rec.on_branch(b(3), true);
        }
        let trace = rec.into_trace();
        assert_eq!(trace.len(), 1000);
        assert_eq!(trace.dict().len(), 1, "one distinct event");
    }

    #[test]
    fn from_parts_rejects_bad_indices() {
        let e = TraceEvent {
            instrs: 1,
            branch: b(0),
            taken: true,
        };
        assert!(BranchTrace::from_parts(vec![e], vec![0, 0], 0).is_some());
        assert!(BranchTrace::from_parts(vec![e], vec![1], 0).is_none());
    }
}
