//! An interpreter for the bpfree IR, playing the role the authors' QPT
//! tool played in the paper: it executes programs while streaming
//! execution events to observers, from which edge profiles (per-branch
//! taken/fall-through counts) and instruction-granularity traces are
//! derived.
//!
//! The paper instrumented MIPS executables; we interpret IR directly. The
//! observable events are identical: dynamic instruction counts and, for
//! every conditional branch execution, which way it went. A streaming
//! [`ExecObserver`] API replaces materialised trace files so that
//! hundred-million-instruction runs need no storage.
//!
//! Two interpreter tiers execute the same IR (see [`InterpTier`]): the
//! default pre-decoded flat-bytecode tier ([`BytecodeProgram`] compiled
//! once, executed over an explicit frame stack), and the original
//! tree-walking reference. Their observable behaviour — results,
//! errors, and the full observer event stream — is identical by
//! construction and enforced by differential tests.
//!
//! # Example
//!
//! ```
//! use bpfree_sim::{EdgeProfiler, Simulator};
//!
//! let program = bpfree_lang::compile(
//!     "fn main() -> int {
//!         int i; int s;
//!         for (i = 0; i < 10; i = i + 1) { s = s + i; }
//!         return s;
//!     }",
//! ).unwrap();
//! let mut profiler = EdgeProfiler::new();
//! let result = Simulator::new(&program).run(&mut profiler).unwrap();
//! assert_eq!(result.exit, 45);
//! let profile = profiler.into_profile();
//! assert!(profile.total_branches() > 0);
//! ```

#![deny(missing_docs)]

mod bcio;
mod blocks;
mod bytes;
mod decode;
mod error;
mod exec;
mod interp;
mod observer;
mod profile;
mod replay;
mod trace;

pub use blocks::BranchBlockCounter;
pub use bytes::ByteView;
pub use decode::BytecodeProgram;
pub use error::SimError;
pub use interp::{InterpTier, RunResult, SimConfig, Simulator};
pub use observer::{CountingObserver, ExecObserver, Multiplex, NullObserver, Pair};
pub use profile::{EdgeCounts, EdgeProfile, EdgeProfiler};
pub use replay::{SegmentedObserver, TraceSegment};
pub use trace::{
    note_trace_seq_alloc, trace_seq_allocs, BranchTrace, SeqSlice, TraceEvent, TraceRecorder,
    TraceTally,
};
