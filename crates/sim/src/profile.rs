use std::collections::HashMap;

use bpfree_ir::BranchRef;

use crate::observer::ExecObserver;

/// Dynamic taken/fall-through counts for one branch site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeCounts {
    /// Executions that took the branch.
    pub taken: u64,
    /// Executions that fell through.
    pub fallthru: u64,
}

impl EdgeCounts {
    /// Total executions of the branch.
    pub fn total(self) -> u64 {
        self.taken + self.fallthru
    }

    /// Executions of the *more* frequent side — what a perfect static
    /// predictor gets right.
    pub fn majority(self) -> u64 {
        self.taken.max(self.fallthru)
    }

    /// Executions of the *less* frequent side — what a perfect static
    /// predictor misses.
    pub fn minority(self) -> u64 {
        self.taken.min(self.fallthru)
    }

    /// Did the taken side win (ties predict taken)?
    pub fn taken_majority(self) -> bool {
        self.taken >= self.fallthru
    }
}

/// An edge profile: per-branch dynamic counts, exactly what QPT's edge
/// profiling produced for the paper.
///
/// # Example
///
/// ```
/// use bpfree_sim::{EdgeProfiler, Simulator};
/// let p = bpfree_lang::compile(
///     "fn main() -> int {
///         int i;
///         for (i = 0; i < 5; i = i + 1) { }
///         return i;
///     }",
/// ).unwrap();
/// let mut prof = EdgeProfiler::new();
/// Simulator::new(&p).run(&mut prof).unwrap();
/// let profile = prof.into_profile();
/// // The rotated loop executes its bottom test 5 times.
/// assert_eq!(profile.total_branches(), 6); // 1 guard + 5 latch tests
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EdgeProfile {
    counts: HashMap<BranchRef, EdgeCounts>,
}

impl EdgeProfile {
    /// Creates an empty profile.
    pub fn new() -> EdgeProfile {
        EdgeProfile::default()
    }

    /// The counts for `branch` (zero if never executed).
    pub fn counts(&self, branch: BranchRef) -> EdgeCounts {
        self.counts.get(&branch).copied().unwrap_or_default()
    }

    /// Iterator over executed branches and their counts.
    pub fn iter(&self) -> impl Iterator<Item = (BranchRef, EdgeCounts)> + '_ {
        self.counts.iter().map(|(&b, &c)| (b, c))
    }

    /// Number of distinct branch sites that executed at least once.
    pub fn n_sites(&self) -> usize {
        self.counts.len()
    }

    /// Total dynamic conditional branch count.
    pub fn total_branches(&self) -> u64 {
        self.counts.values().map(|c| c.total()).sum()
    }

    /// Records one execution (exposed for building profiles in tests).
    pub fn record(&mut self, branch: BranchRef, taken: bool) {
        let e = self.counts.entry(branch).or_default();
        if taken {
            e.taken += 1;
        } else {
            e.fallthru += 1;
        }
    }

    /// Records `n` executions of `branch` in one step — the bulk
    /// counterpart of [`EdgeProfile::record`] used by the O(dict)
    /// tally tier, where each dictionary entry stands for many events.
    pub fn record_many(&mut self, branch: BranchRef, taken: bool, n: u64) {
        let e = self.counts.entry(branch).or_default();
        if taken {
            e.taken += n;
        } else {
            e.fallthru += n;
        }
    }

    /// Merges another profile into this one (summing counts) — e.g. to
    /// aggregate multiple datasets.
    pub fn merge(&mut self, other: &EdgeProfile) {
        for (b, c) in other.iter() {
            let e = self.counts.entry(b).or_default();
            e.taken += c.taken;
            e.fallthru += c.fallthru;
        }
    }
}

impl FromIterator<(BranchRef, EdgeCounts)> for EdgeProfile {
    fn from_iter<I: IntoIterator<Item = (BranchRef, EdgeCounts)>>(iter: I) -> EdgeProfile {
        EdgeProfile {
            counts: iter.into_iter().collect(),
        }
    }
}

/// An [`ExecObserver`] that accumulates an [`EdgeProfile`].
#[derive(Debug, Clone, Default)]
pub struct EdgeProfiler {
    profile: EdgeProfile,
}

impl EdgeProfiler {
    /// Creates an empty profiler.
    pub fn new() -> EdgeProfiler {
        EdgeProfiler::default()
    }

    /// Consumes the profiler, yielding the accumulated profile.
    pub fn into_profile(self) -> EdgeProfile {
        self.profile
    }

    /// Borrows the profile accumulated so far.
    pub fn profile(&self) -> &EdgeProfile {
        &self.profile
    }

    /// Merges everything `other` observed into this profiler — how
    /// segmented replay folds per-segment profilers back together.
    pub fn absorb(&mut self, other: EdgeProfiler) {
        self.profile.merge(&other.profile);
    }
}

impl ExecObserver for EdgeProfiler {
    fn on_branch(&mut self, branch: BranchRef, taken: bool) {
        self.profile.record(branch, taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpfree_ir::{BlockId, FuncId};

    fn br(b: u32) -> BranchRef {
        BranchRef {
            func: FuncId(0),
            block: BlockId(b),
        }
    }

    #[test]
    fn record_and_query() {
        let mut p = EdgeProfile::new();
        p.record(br(0), true);
        p.record(br(0), true);
        p.record(br(0), false);
        let c = p.counts(br(0));
        assert_eq!(
            c,
            EdgeCounts {
                taken: 2,
                fallthru: 1
            }
        );
        assert_eq!(c.total(), 3);
        assert_eq!(c.majority(), 2);
        assert_eq!(c.minority(), 1);
        assert!(c.taken_majority());
        assert_eq!(p.counts(br(9)), EdgeCounts::default());
    }

    #[test]
    fn ties_predict_taken() {
        let c = EdgeCounts {
            taken: 5,
            fallthru: 5,
        };
        assert!(c.taken_majority());
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = EdgeProfile::new();
        a.record(br(0), true);
        let mut b = EdgeProfile::new();
        b.record(br(0), false);
        b.record(br(1), true);
        a.merge(&b);
        assert_eq!(
            a.counts(br(0)),
            EdgeCounts {
                taken: 1,
                fallthru: 1
            }
        );
        assert_eq!(a.n_sites(), 2);
        assert_eq!(a.total_branches(), 3);
    }
}
