//! A tiny JSON document builder for the machine-readable outputs
//! (`summary_json` and friends). The build environment has no crates.io
//! access, so this replaces `serde_json` for the handful of documents
//! the harness emits; output formatting matches `serde_json`'s
//! pretty-printer (two-space indent) so existing golden files diff
//! cleanly.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    UInt(u64),
    Int(i64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object builder preserving insertion order.
    pub fn obj() -> ObjBuilder {
        ObjBuilder(Vec::new())
    }

    /// Pretty-prints with two-space indentation and a trailing newline
    /// omitted (as `serde_json::to_string_pretty`).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => out.push_str(&n.to_string()),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    let s = x.to_string();
                    out.push_str(&s);
                    // serde_json always keeps a decimal point on floats.
                    if !s.contains('.') && !s.contains('e') {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Ordered `(key, value)` accumulation ending in [`Json::Obj`].
pub struct ObjBuilder(Vec<(String, Json)>);

impl ObjBuilder {
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> ObjBuilder {
        self.0.push((key.to_string(), value.into()));
        self
    }

    pub fn build(self) -> Json {
        Json::Obj(self.0)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::UInt(n)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_matches_serde_json_conventions() {
        let doc = Json::obj()
            .field("name", "a\"b")
            .field("n", 3u64)
            .field("x", 0.5f64)
            .field("whole", 2.0f64)
            .field("flag", true)
            .field("items", vec![Json::UInt(1), Json::Null])
            .field("empty", Vec::new())
            .build();
        let expected = "{\n  \"name\": \"a\\\"b\",\n  \"n\": 3,\n  \"x\": 0.5,\n  \"whole\": 2.0,\n  \"flag\": true,\n  \"items\": [\n    1,\n    null\n  ],\n  \"empty\": []\n}";
        assert_eq!(doc.pretty(), expected);
    }

    #[test]
    fn escapes_control_characters() {
        let doc = Json::Str("line\nbreak\u{1}".into());
        assert_eq!(doc.pretty(), "\"line\\nbreak\\u0001\"");
    }
}
