//! The experiment registry: every paper table and figure as a named,
//! runnable value.
//!
//! Until PR 3 each experiment was a standalone binary that cold-started
//! the artifact engine, so the engine's memoization never amortized
//! across experiments. The registry turns each binary's `main` into an
//! [`Experiment`] implementation that writes through a
//! [`Sink`](crate::sink::Sink); [`run_experiments`] then executes any
//! subset in ONE process against a shared [`Engine`], so every
//! `(benchmark, Options, dataset)` triple is compiled/simulated/traced
//! at most once for all tables and graphs combined. The 19 binaries
//! remain as shims over [`legacy_main`], byte-identical on stdout.

use std::collections::BTreeSet;
use std::io;

use bpfree_engine::Engine;
use bpfree_lang::Options;

use crate::experiments;
use crate::sink::{Sink, StdoutSink};

/// One registered experiment — a table or figure of the paper (or one
/// of our extension studies), reproducible on demand.
///
/// Implementations hold no state; everything they need comes from the
/// [`Engine`] they are handed, and everything they produce goes through
/// the [`Sink`]. The bytes written to [`Sink::out`] are the experiment's
/// contract: they must match the legacy standalone binary's stdout
/// exactly. Progress and diagnostics go to stderr, never the sink.
pub trait Experiment: Sync {
    /// The registry name (also the legacy binary's name).
    fn name(&self) -> &'static str;

    /// One-line summary for `bpfree exp list`.
    fn description(&self) -> &'static str;

    /// The paper table/figure this reproduces.
    fn paper_ref(&self) -> &'static str;

    /// Benchmarks whose replayable branch trace this experiment
    /// records. The runner pre-traces these before any experiment runs,
    /// so an earlier plain profile of the same benchmark never forces a
    /// second interpreter pass for the trace.
    fn traced(&self) -> &'static [&'static str] {
        &[]
    }

    /// Regenerates the experiment, writing its report to `sink`.
    fn run(&self, engine: &Engine, sink: &mut dyn Sink) -> io::Result<()>;
}

/// Every registered experiment, in the paper's presentation order
/// (tables, then graphs, then the extension studies).
pub fn all() -> &'static [&'static dyn Experiment] {
    experiments::REGISTRY
}

/// Looks up an experiment by its registry name.
pub fn by_name(name: &str) -> Option<&'static dyn Experiment> {
    all().iter().copied().find(|e| e.name() == name)
}

/// The registered name closest to `name` (case-insensitive Levenshtein
/// distance ≤ 3) — what `bpfree exp run` suggests on a typo.
pub fn suggest(name: &str) -> Option<&'static str> {
    all()
        .iter()
        .map(|e| (edit_distance(name, e.name()), e.name()))
        .min_by_key(|(d, _)| *d)
        .filter(|(d, _)| *d <= 3)
        .map(|(_, n)| n)
}

fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.to_ascii_lowercase().chars().collect();
    let b: Vec<char> = b.to_ascii_lowercase().chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Runs `exps` in order against one shared engine, bracketing each with
/// [`Sink::begin`]/[`Sink::end`]. With `progress`, a one-line banner per
/// experiment goes to stderr (stdout stays pure experiment output).
///
/// Before anything runs, the union of the experiments'
/// [`Experiment::traced`] benchmarks is traced on the reference dataset,
/// in parallel. Tracing shares its single interpreter pass with the edge
/// profile, so this guarantees the at-most-once-per-(benchmark, dataset)
/// property across the whole batch: without it, a plain run by an early
/// experiment would force a later trace request to simulate again.
pub fn run_experiments(
    exps: &[&'static dyn Experiment],
    engine: &Engine,
    sink: &mut dyn Sink,
    progress: bool,
) -> io::Result<()> {
    let traced: BTreeSet<&'static str> = exps.iter().flat_map(|e| e.traced()).copied().collect();
    if !traced.is_empty() {
        let benches: Vec<bpfree_suite::Benchmark> = traced
            .iter()
            .map(|n| bpfree_suite::by_name(n).unwrap_or_else(|| panic!("unknown benchmark {n}")))
            .collect();
        bpfree_par::par_map(&benches, |b| {
            let _ = engine.trace(b, Options::default(), 0);
        });
    }
    for exp in exps {
        if progress {
            eprintln!("[bpfree] running {} ({})", exp.name(), exp.paper_ref());
        }
        sink.begin(*exp)?;
        exp.run(engine, sink)?;
        sink.end(*exp)?;
    }
    Ok(())
}

/// The whole body of a legacy experiment binary: parse the standard
/// flags, run the named experiment through the registry onto stdout,
/// exit. Keeps the 19 `src/bin/*.rs` files down to one line each while
/// guaranteeing their stdout is byte-identical to
/// `bpfree exp run <name>`.
pub fn legacy_main(name: &'static str) -> ! {
    crate::config::init(name);
    let exp = by_name(name).unwrap_or_else(|| panic!("experiment `{name}` is not registered"));
    let mut sink = StdoutSink::new();
    let code = match run_experiments(&[exp], crate::config::engine(), &mut sink, false) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("{name}: {e}");
            1
        }
    };
    std::process::exit(code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let names: Vec<&str> = all().iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), 19, "one experiment per legacy binary");
        let unique: BTreeSet<&str> = names.iter().copied().collect();
        assert_eq!(unique.len(), names.len(), "names are unique");
        for n in ["table1", "table7", "graph1", "graphs4_11", "summary_json"] {
            assert!(by_name(n).is_some(), "{n} registered");
        }
        assert!(by_name("nonesuch").is_none());
    }

    #[test]
    fn suggestions_catch_typos() {
        assert_eq!(suggest("tabel1"), Some("table1"));
        assert_eq!(suggest("graph_13"), Some("graph13"));
        assert_eq!(suggest("sumary-json"), Some("summary_json"));
        assert_eq!(suggest("zzzzzzzzzzzz"), None);
    }

    #[test]
    fn metadata_is_filled_in() {
        for e in all() {
            assert!(!e.description().is_empty(), "{}", e.name());
            assert!(!e.paper_ref().is_empty(), "{}", e.name());
        }
    }
}
