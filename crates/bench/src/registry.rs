//! The experiment registry: every paper table and figure as a named,
//! runnable value.
//!
//! Until PR 3 each experiment was a standalone binary that cold-started
//! the artifact engine, so the engine's memoization never amortized
//! across experiments. The registry turns each binary's `main` into an
//! [`Experiment`] implementation that writes through a
//! [`Sink`](crate::sink::Sink); [`run_experiments`] then executes any
//! subset in ONE process against a shared [`Engine`], so every
//! `(benchmark, Options, dataset)` triple is compiled/simulated/traced
//! at most once for all tables and graphs combined. The 19 binaries
//! remain as shims over [`legacy_main`], byte-identical on stdout.

use std::collections::BTreeSet;
use std::io;
use std::sync::Mutex;
use std::time::Instant;

use bpfree_engine::Engine;
use bpfree_lang::Options;
use bpfree_par::timings::timed;

use crate::experiments;
use crate::sink::{Sink, StdoutSink, VecSink};

/// One registered experiment — a table or figure of the paper (or one
/// of our extension studies), reproducible on demand.
///
/// Implementations hold no state; everything they need comes from the
/// [`Engine`] they are handed, and everything they produce goes through
/// the [`Sink`]. The bytes written to [`Sink::out`] are the experiment's
/// contract: they must match the legacy standalone binary's stdout
/// exactly. Progress and diagnostics go to stderr, never the sink.
pub trait Experiment: Sync {
    /// The registry name (also the legacy binary's name).
    fn name(&self) -> &'static str;

    /// One-line summary for `bpfree exp list`.
    fn description(&self) -> &'static str;

    /// The paper table/figure this reproduces.
    fn paper_ref(&self) -> &'static str;

    /// Benchmarks whose replayable branch trace this experiment
    /// records. The runner pre-traces these before any experiment runs,
    /// so an earlier plain profile of the same benchmark never forces a
    /// second interpreter pass for the trace.
    fn traced(&self) -> &'static [&'static str] {
        &[]
    }

    /// Regenerates the experiment, writing its report to `sink`.
    fn run(&self, engine: &Engine, sink: &mut dyn Sink) -> io::Result<()>;
}

/// Every registered experiment, in the paper's presentation order
/// (tables, then graphs, then the extension studies).
pub fn all() -> &'static [&'static dyn Experiment] {
    experiments::REGISTRY
}

/// Looks up an experiment by its registry name.
pub fn by_name(name: &str) -> Option<&'static dyn Experiment> {
    all().iter().copied().find(|e| e.name() == name)
}

/// The registered name closest to `name` (case-insensitive Levenshtein
/// distance ≤ 3) — what `bpfree exp run` suggests on a typo.
pub fn suggest(name: &str) -> Option<&'static str> {
    all()
        .iter()
        .map(|e| (edit_distance(name, e.name()), e.name()))
        .min_by_key(|(d, _)| *d)
        .filter(|(d, _)| *d <= 3)
        .map(|(_, n)| n)
}

fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.to_ascii_lowercase().chars().collect();
    let b: Vec<char> = b.to_ascii_lowercase().chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Runs `exps` against one shared engine, bracketing each with
/// [`Sink::begin`]/[`Sink::end`]. With `progress`, a one-line banner per
/// experiment goes to stderr (stdout stays pure experiment output).
///
/// With an effective job count above one ([`bpfree_par::jobs`]` > 1`)
/// the batch executes as a task graph on the shared pool — see
/// [`run_experiments_planned`]; otherwise it takes the serial path. The
/// sink sees the same bytes in the same (registry) order either way.
pub fn run_experiments(
    exps: &[&'static dyn Experiment],
    engine: &Engine,
    sink: &mut dyn Sink,
    progress: bool,
) -> io::Result<()> {
    if bpfree_par::jobs() <= 1 {
        run_experiments_serial(exps, engine, sink, progress)
    } else {
        run_experiments_planned(exps, engine, sink, progress)
    }
}

/// The union of the experiments' [`Experiment::traced`] benchmarks,
/// resolved against the suite.
fn traced_benches(exps: &[&'static dyn Experiment]) -> Vec<bpfree_suite::Benchmark> {
    let traced: BTreeSet<&'static str> = exps.iter().flat_map(|e| e.traced()).copied().collect();
    traced
        .iter()
        .map(|n| bpfree_suite::by_name(n).unwrap_or_else(|| panic!("unknown benchmark {n}")))
        .collect()
}

/// The serial batch runner: pre-trace the [`Experiment::traced`] union,
/// then run each experiment in order, writing straight through to the
/// sink. Tracing shares its single interpreter pass with the edge
/// profile, so pre-tracing guarantees the
/// at-most-once-per-(benchmark, dataset) property across the whole
/// batch: without it, a plain run by an early experiment would force a
/// later trace request to simulate again.
///
/// Public because the perf harness uses it as the scheduling baseline
/// the planned runner is measured against.
pub fn run_experiments_serial(
    exps: &[&'static dyn Experiment],
    engine: &Engine,
    sink: &mut dyn Sink,
    progress: bool,
) -> io::Result<()> {
    let benches = traced_benches(exps);
    for b in &benches {
        let _ = engine.trace(b, Options::default(), 0);
    }
    for exp in exps {
        if progress {
            eprintln!("[bpfree] running {} ({})", exp.name(), exp.paper_ref());
        }
        sink.begin(*exp)?;
        timed(
            "experiment",
            || exp.name().to_string(),
            || exp.run(engine, sink),
        )?;
        sink.end(*exp)?;
    }
    Ok(())
}

/// The planned batch runner: the whole batch becomes one
/// [`bpfree_par::Plan`] on the shared pool. Each traced benchmark
/// contributes its warm-up chain (datasets → compile → decode → trace,
/// via [`Engine::plan_warmup`]); each experiment becomes a node
/// depending on **every** trace node, buffering its report into a
/// [`VecSink`]. The blanket dependency is the serial pre-trace
/// invariant made explicit: an experiment that merely *runs* a traced
/// benchmark would otherwise race the trace node and pay a duplicate
/// interpreter pass (tracing fills the run memo as a by-product, but
/// only if it gets there first). Warm-up chains still overlap each
/// other, and so do the experiments once the traces are in.
///
/// Determinism: the plan orders *scheduling only*. Every experiment's
/// bytes are buffered, then emitted through `sink` in registry order
/// after the graph drains, so stdout is byte-identical to the serial
/// runner at any `--jobs`. The measured per-experiment wall-clock is
/// forwarded with [`Sink::note_millis`] (the begin/end bracket happens
/// long after the work).
pub fn run_experiments_planned(
    exps: &[&'static dyn Experiment],
    engine: &Engine,
    sink: &mut dyn Sink,
    progress: bool,
) -> io::Result<()> {
    let benches = traced_benches(exps);
    type Slot = Mutex<Option<(io::Result<Vec<u8>>, u64)>>;
    let slots: Vec<Slot> = exps.iter().map(|_| Mutex::new(None)).collect();
    let mut plan = bpfree_par::Plan::new();
    let trace_nodes: Vec<bpfree_par::NodeId> = benches
        .iter()
        .map(|b| engine.plan_warmup(&mut plan, b, Options::default(), true))
        .collect();
    for (exp, slot) in exps.iter().zip(&slots) {
        let exp = *exp;
        plan.add(&trace_nodes, move || {
            if progress {
                eprintln!("[bpfree] running {} ({})", exp.name(), exp.paper_ref());
            }
            let start = Instant::now();
            let result = timed(
                "experiment",
                || exp.name().to_string(),
                || {
                    let mut buf = VecSink::new();
                    exp.run(engine, &mut buf).map(|()| buf.take())
                },
            );
            let millis = start.elapsed().as_millis() as u64;
            *slot.lock().expect("experiment slot poisoned") = Some((result, millis));
        });
    }
    plan.run();
    for (exp, slot) in exps.iter().zip(&slots) {
        let (result, millis) = slot
            .lock()
            .expect("experiment slot poisoned")
            .take()
            .expect("every experiment node ran");
        sink.begin(*exp)?;
        sink.out().write_all(&result?)?;
        sink.note_millis(millis);
        sink.end(*exp)?;
    }
    Ok(())
}

/// The whole body of a legacy experiment binary: parse the standard
/// flags, run the named experiment through the registry onto stdout,
/// exit. Keeps the 19 `src/bin/*.rs` files down to one line each while
/// guaranteeing their stdout is byte-identical to
/// `bpfree exp run <name>`.
pub fn legacy_main(name: &'static str) -> ! {
    crate::config::init(name);
    let exp = by_name(name).unwrap_or_else(|| panic!("experiment `{name}` is not registered"));
    let mut sink = StdoutSink::new();
    let code = match run_experiments(&[exp], crate::config::engine(), &mut sink, false) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("{name}: {e}");
            1
        }
    };
    std::process::exit(code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let names: Vec<&str> = all().iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), 19, "one experiment per legacy binary");
        let unique: BTreeSet<&str> = names.iter().copied().collect();
        assert_eq!(unique.len(), names.len(), "names are unique");
        for n in ["table1", "table7", "graph1", "graphs4_11", "summary_json"] {
            assert!(by_name(n).is_some(), "{n} registered");
        }
        assert!(by_name("nonesuch").is_none());
    }

    #[test]
    fn suggestions_catch_typos() {
        assert_eq!(suggest("tabel1"), Some("table1"));
        assert_eq!(suggest("graph_13"), Some("graph13"));
        assert_eq!(suggest("sumary-json"), Some("summary_json"));
        assert_eq!(suggest("zzzzzzzzzzzz"), None);
    }

    #[test]
    fn metadata_is_filled_in() {
        for e in all() {
            assert!(!e.description().is_empty(), "{}", e.name());
            assert!(!e.paper_ref().is_empty(), "{}", e.name());
        }
    }
}
