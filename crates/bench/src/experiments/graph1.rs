//! Regenerates **Graph 1**: the average non-loop miss rate of every one
//! of the 7! = 5040 heuristic orderings, sorted ascending — showing how
//! much (and how little) the priority order matters. The paper excludes
//! matrix300; so do we.

use std::io;

use bpfree_engine::Engine;
use bpfree_lang::Options;
use bpfree_suite::Benchmark;

use crate::registry::Experiment;
use crate::sink::Sink;
use crate::{ordering_roster, pct};

pub struct Graph1;

impl Experiment for Graph1 {
    fn name(&self) -> &'static str {
        "graph1"
    }

    fn description(&self) -> &'static str {
        "average non-loop miss rate of all 5040 heuristic orderings"
    }

    fn paper_ref(&self) -> &'static str {
        "Graph 1"
    }

    fn run(&self, engine: &Engine, sink: &mut dyn Sink) -> io::Result<()> {
        let w = sink.out();
        let roster = ordering_roster();
        let refs: Vec<&Benchmark> = roster.iter().collect();
        eprintln!("evaluating 5040 orders over {} benchmarks...", refs.len());
        let study = engine.ordering_study(&refs, Options::default());
        let rates = study.sorted_average_rates();

        writeln!(w, "# Graph 1: order rank vs average non-loop miss rate (%)")?;
        writeln!(w, "# rank miss%")?;
        for (i, r) in rates.iter().enumerate() {
            if i % 50 == 0 || i == rates.len() - 1 {
                writeln!(w, "{:>5} {:>6}", i, pct(*r))?;
            }
        }
        let (best_order, best_rate) = study.best_order();
        writeln!(w)?;
        writeln!(
            w,
            "best order: {:?} at {}%",
            best_order.iter().map(|k| k.label()).collect::<Vec<_>>(),
            pct(best_rate)
        )?;
        writeln!(
            w,
            "worst rate: {}%",
            pct(*rates.last().expect("5040 orders"))
        )?;
        writeln!(
            w,
            "spread: {:.1} points",
            100.0 * (rates.last().unwrap() - rates[0])
        )?;
        writeln!(w)?;
        writeln!(
            w,
            "Paper (Graph 1): rates from ~25.5% to ~29%, a broad flat region in the"
        )?;
        writeln!(
            w,
            "middle — ordering matters, but many orders are near-optimal."
        )?;
        Ok(())
    }
}
