//! Ablation: how much do the compiler's `-O` passes matter to the
//! heuristics?
//!
//! The paper analysed `-O`-compiled binaries, and DESIGN.md claims the
//! optimisation idioms (leaf inlining, block straightening, copy
//! propagation) are load-bearing for the heuristics — e.g. the pointer
//! heuristic needs the load and the null test in one block. This
//! experiment compiles every benchmark at three levels and reports the
//! combined predictor's miss rates.

use std::io;

use bpfree_core::{evaluate, CombinedPredictor, HeuristicKind};
use bpfree_engine::Engine;
use bpfree_lang::Options;

use crate::registry::Experiment;
use crate::sink::Sink;
use crate::{mean_std, pct};

fn run_at(engine: &Engine, bench: &bpfree_suite::Benchmark, options: Options) -> (f64, f64) {
    // Each optimisation level is a distinct engine artifact — the cache
    // keys include the options fingerprint, so -O0 entries can never
    // collide with the -O artifacts the other experiments share.
    let compiled = engine.compiled(bench, options);
    let run = engine.run(bench, options, 0);
    let cp = CombinedPredictor::new(
        &compiled.program,
        &compiled.classifier,
        HeuristicKind::paper_order(),
    );
    let r = evaluate(&cp.predictions(), &run.profile, &compiled.classifier);
    (r.all.miss_rate(), r.nonloop.miss_rate())
}

pub struct OptAblate;

impl Experiment for OptAblate {
    fn name(&self) -> &'static str {
        "opt_ablate"
    }

    fn description(&self) -> &'static str {
        "heuristic miss rates at -O, no-inline, and -O0"
    }

    fn paper_ref(&self) -> &'static str {
        "§3 (optimised binaries)"
    }

    fn run(&self, engine: &Engine, sink: &mut dyn Sink) -> io::Result<()> {
        let w = sink.out();
        writeln!(
            w,
            "{:<11} {:>9} {:>11} {:>7}   (all-branch miss%)",
            "Program", "-O (dflt)", "no-inline", "-O0"
        )?;
        writeln!(w, "{:-<48}", "")?;
        let mut opt = Vec::new();
        let mut noinline = Vec::new();
        let mut o0 = Vec::new();
        for b in bpfree_suite::all() {
            let (a, _) = run_at(engine, &b, Options::default());
            let (ni, _) = run_at(engine, &b, Options::no_inline());
            let (raw, _) = run_at(engine, &b, Options::o0());
            writeln!(
                w,
                "{:<11} {:>9} {:>11} {:>7}",
                b.name,
                pct(a),
                pct(ni),
                pct(raw)
            )?;
            opt.push(a);
            noinline.push(ni);
            o0.push(raw);
        }
        let (om, _) = mean_std(&opt);
        let (nm, _) = mean_std(&noinline);
        let (zm, _) = mean_std(&o0);
        writeln!(w, "{:-<48}", "")?;
        writeln!(
            w,
            "{:<11} {:>9} {:>11} {:>7}",
            "MEAN",
            pct(om),
            pct(nm),
            pct(zm)
        )?;
        writeln!(w)?;
        writeln!(
            w,
            "The heuristics were designed for optimised code: -O0's split blocks"
        )?;
        writeln!(
            w,
            "and helper calls hide the load-feeds-branch and store/call patterns."
        )?;
        Ok(())
    }
}
