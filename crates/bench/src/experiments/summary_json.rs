//! Emits the reproduction's key metrics as JSON on stdout — the
//! machine-readable companion to EXPERIMENTS.md (captured into
//! `results/summary.json`).

use std::io;

use bpfree_core::{
    evaluate, loop_rand_predictions, perfect_predictions, random_predictions, taken_predictions,
    ClassStats, CombinedPredictor, HeuristicKind, Report, DEFAULT_SEED,
};
use bpfree_engine::Engine;

use crate::json::Json;
use crate::load_suite_on;
use crate::registry::Experiment;
use crate::sink::Sink;

fn class_stats(s: &ClassStats) -> Json {
    Json::obj()
        .field("dynamic", s.dynamic)
        .field("misses", s.misses)
        .field("perfect_misses", s.perfect_misses)
        .build()
}

fn report(r: &Report) -> Json {
    Json::obj()
        .field("loop_branches", class_stats(&r.loop_branches))
        .field("nonloop", class_stats(&r.nonloop))
        .field("all", class_stats(&r.all))
        .build()
}

pub struct SummaryJson;

impl Experiment for SummaryJson {
    fn name(&self) -> &'static str {
        "summary_json"
    }

    fn description(&self) -> &'static str {
        "key reproduction metrics as machine-readable JSON"
    }

    fn paper_ref(&self) -> &'static str {
        "summary"
    }

    fn run(&self, engine: &Engine, sink: &mut dyn Sink) -> io::Result<()> {
        let w = sink.out();
        let mut benchmarks = Vec::new();
        let mut sum_heuristic = 0.0;
        let mut sum_perfect = 0.0;
        let mut sum_random_nonloop = 0.0;
        let suite = load_suite_on(engine);
        let n = suite.len() as f64;
        for d in suite {
            let cp =
                CombinedPredictor::new(&d.program, &d.classifier, HeuristicKind::paper_order());
            let heuristic = evaluate(&cp.predictions(), &d.profile, &d.classifier);
            let perfect = evaluate(
                &perfect_predictions(&d.program, &d.profile),
                &d.profile,
                &d.classifier,
            );
            let taken = evaluate(&taken_predictions(&d.program), &d.profile, &d.classifier);
            let random = evaluate(
                &random_predictions(&d.program, DEFAULT_SEED),
                &d.profile,
                &d.classifier,
            );
            let loop_rand = evaluate(
                &loop_rand_predictions(&d.program, &d.classifier, DEFAULT_SEED),
                &d.profile,
                &d.classifier,
            );
            sum_heuristic += heuristic.all.miss_rate();
            sum_perfect += perfect.all.miss_rate();
            sum_random_nonloop += random.nonloop.miss_rate();
            benchmarks.push(
                Json::obj()
                    .field("name", d.bench.name)
                    .field("lang", d.bench.lang.to_string())
                    .field("spec", d.bench.spec)
                    .field("static_instructions", d.program.static_size())
                    .field("dynamic_instructions", d.run.instructions)
                    .field("dynamic_branches", d.profile.total_branches())
                    .field("nonloop_fraction", heuristic.nonloop_fraction())
                    .field("heuristic", report(&heuristic))
                    .field("perfect", report(&perfect))
                    .field("taken", report(&taken))
                    .field("random", report(&random))
                    .field("loop_rand", report(&loop_rand))
                    .build(),
            );
        }
        let summary = Json::obj()
            .field(
                "paper",
                "Ball & Larus, Branch Prediction for Free, PLDI 1993",
            )
            .field("benchmarks", benchmarks)
            .field("mean_heuristic_all_miss", sum_heuristic / n)
            .field("mean_perfect_all_miss", sum_perfect / n)
            .field("mean_random_nonloop_miss", sum_random_nonloop / n)
            .build();
        writeln!(w, "{}", summary.pretty())?;
        Ok(())
    }
}
