//! Regenerates **Table 3**: each heuristic applied in isolation to the
//! non-loop branches.
//!
//! Per benchmark and heuristic: coverage (% of dynamic non-loop branches
//! the heuristic applies to, the paper's bold number) and the miss/perfect
//! pair on the covered subset. Entries under 1% coverage print blank and
//! are excluded from the means, exactly like the paper.

use std::io;

use bpfree_core::{evaluate_coverage, HeuristicKind, Predictions};
use bpfree_engine::Engine;

use crate::registry::Experiment;
use crate::sink::Sink;
use crate::{load_suite_on, mean_std, pct};

pub struct Table3;

impl Experiment for Table3 {
    fn name(&self) -> &'static str {
        "table3"
    }

    fn description(&self) -> &'static str {
        "each heuristic applied in isolation to the non-loop branches"
    }

    fn paper_ref(&self) -> &'static str {
        "Table 3"
    }

    fn run(&self, engine: &Engine, sink: &mut dyn Sink) -> io::Result<()> {
        let w = sink.out();
        let suite = load_suite_on(engine);
        write!(w, "{:<11} {:>4}", "Program", "NL")?;
        for k in HeuristicKind::ALL {
            write!(w, " {:>14}", k.label())?;
        }
        writeln!(w)?;
        writeln!(w, "{:-<125}", "")?;

        let mut per_heuristic: Vec<Vec<(f64, f64, f64)>> = vec![Vec::new(); 7];

        for d in &suite {
            let total: u64 = d.profile.iter().map(|(_, c)| c.total()).sum();
            let nl: u64 = d
                .profile
                .iter()
                .filter(|(b, _)| d.classifier.class(*b) == bpfree_core::BranchClass::NonLoop)
                .map(|(_, c)| c.total())
                .sum();
            write!(
                w,
                "{:<11} {:>4}",
                d.bench.name,
                if total == 0 {
                    "0".into()
                } else {
                    pct(nl as f64 / total as f64)
                }
            )?;
            for k in HeuristicKind::ALL {
                // Isolate the heuristic: prediction set = its predictions only.
                let preds: Predictions = d
                    .table
                    .branches()
                    .filter_map(|b| d.table.prediction(b, k).map(|dir| (b, dir)))
                    .collect();
                let cov = evaluate_coverage(&preds, &d.profile, &d.classifier);
                if cov.coverage() < 0.01 {
                    write!(w, " {:>14}", "")?;
                    continue;
                }
                write!(
                    w,
                    " {:>4} {:>9}",
                    pct(cov.coverage()),
                    format!("{}/{}", pct(cov.miss_rate()), pct(cov.perfect_rate()))
                )?;
                per_heuristic[k.index()].push((
                    cov.coverage(),
                    cov.miss_rate(),
                    cov.perfect_rate(),
                ));
            }
            writeln!(w)?;
        }

        writeln!(w, "{:-<125}", "")?;
        write!(w, "{:<16}", "MEAN")?;
        for k in HeuristicKind::ALL {
            let rows = &per_heuristic[k.index()];
            let (miss_m, _) = mean_std(&rows.iter().map(|r| r.1).collect::<Vec<_>>());
            let (perf_m, _) = mean_std(&rows.iter().map(|r| r.2).collect::<Vec<_>>());
            write!(w, " {:>14}", format!("{}/{}", pct(miss_m), pct(perf_m)))?;
        }
        writeln!(w)?;
        write!(w, "{:<16}", "Std.Dev")?;
        for k in HeuristicKind::ALL {
            let rows = &per_heuristic[k.index()];
            let (_, miss_s) = mean_std(&rows.iter().map(|r| r.1).collect::<Vec<_>>());
            write!(w, " {:>14}", pct(miss_s))?;
        }
        writeln!(w)?;
        write!(w, "{:<16}", "Mean cover")?;
        for k in HeuristicKind::ALL {
            let rows = &per_heuristic[k.index()];
            let (cov_m, _) = mean_std(&rows.iter().map(|r| r.0).collect::<Vec<_>>());
            write!(w, " {:>14}", pct(cov_m))?;
        }
        writeln!(w)?;
        writeln!(w)?;
        writeln!(
            w,
            "Paper (Table 3) means: Opcode 16/4, Loop 25/4, Call 22/6, Return 28/4,"
        )?;
        writeln!(w, "Guard 38/8, Store 45/8, Point 41/10.")?;
        Ok(())
    }
}
