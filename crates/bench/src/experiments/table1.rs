//! Regenerates **Table 1**: the benchmark roster with language group and
//! code size (static IR instructions stand in for object-code bytes),
//! sorted within groups by size like the paper.

use std::io;

use bpfree_engine::Engine;
use bpfree_suite::Lang;

use crate::registry::Experiment;
use crate::sink::Sink;

pub struct Table1;

impl Experiment for Table1 {
    fn name(&self) -> &'static str {
        "table1"
    }

    fn description(&self) -> &'static str {
        "benchmark roster with language group and code size"
    }

    fn paper_ref(&self) -> &'static str {
        "Table 1"
    }

    fn run(&self, engine: &Engine, sink: &mut dyn Sink) -> io::Result<()> {
        let w = sink.out();
        let mut rows: Vec<(String, String, Lang, bool, u64, usize)> = crate::load_suite_on(engine)
            .into_iter()
            .map(|d| {
                (
                    d.bench.name.to_string(),
                    d.bench.description.to_string(),
                    d.bench.lang,
                    d.bench.spec,
                    d.program.static_size(),
                    d.program.funcs().len(),
                )
            })
            .collect();
        rows.sort_by(|a, b| {
            (a.2 == Lang::Fortran)
                .cmp(&(b.2 == Lang::Fortran))
                .then(b.4.cmp(&a.4))
        });

        writeln!(
            w,
            "{:<11} {:<42} {:>4} {:>5} {:>7} {:>6}",
            "Program", "Description", "Lng", "SPEC", "Instrs", "Funcs"
        )?;
        writeln!(w, "{:-<80}", "")?;
        let mut last_lang = None;
        for (name, desc, lang, spec, size, funcs) in rows {
            if last_lang.is_some() && last_lang != Some(lang) {
                writeln!(w, "{:-<80}", "")?;
            }
            last_lang = Some(lang);
            writeln!(
                w,
                "{:<11} {:<42} {:>4} {:>5} {:>7} {:>6}",
                name,
                desc,
                lang.to_string(),
                if spec { "*" } else { "" },
                size,
                funcs
            )?;
        }
        writeln!(w)?;
        writeln!(
            w,
            "Paper (Table 1): 23 benchmarks, SPEC89 marked *, C group then Fortran group,"
        )?;
        writeln!(
            w,
            "sorted by object code size. Sizes here are static IR instruction counts."
        )?;
        Ok(())
    }
}
