//! Regenerates **Table 6**: the final results.
//!
//! Per benchmark: coverage and miss rates of the heuristics (excluding
//! Default) on non-loop branches, `+Default` adding random predictions
//! for uncovered branches, `All` adding loop branches under the loop
//! predictor, and `Loop+Rand` (loop prediction + random non-loop) for
//! comparison.

use std::io;

use bpfree_core::{
    evaluate, evaluate_with_attribution, loop_rand_predictions, CombinedPredictor, HeuristicKind,
    DEFAULT_SEED,
};
use bpfree_engine::Engine;

use crate::registry::Experiment;
use crate::sink::Sink;
use crate::{load_suite_on, pct};

pub struct Table6;

impl Experiment for Table6 {
    fn name(&self) -> &'static str {
        "table6"
    }

    fn description(&self) -> &'static str {
        "the final results: combined predictor vs. baselines"
    }

    fn paper_ref(&self) -> &'static str {
        "Table 6"
    }

    fn run(&self, engine: &Engine, sink: &mut dyn Sink) -> io::Result<()> {
        let w = sink.out();
        writeln!(
            w,
            "{:<11} {:>16} {:>9} {:>9} {:>10}",
            "Program", "Heuristics", "+Default", "All", "Loop+Rand"
        )?;
        writeln!(w, "{:-<60}", "")?;

        for d in load_suite_on(engine) {
            let cp =
                CombinedPredictor::new(&d.program, &d.classifier, HeuristicKind::paper_order());
            let att = evaluate_with_attribution(&cp, &d.profile, &d.classifier);

            // Heuristics-only stats (the non-Default sources), aggregated
            // by the attribution report itself.
            let h = &att.heuristics;

            let lr = loop_rand_predictions(&d.program, &d.classifier, DEFAULT_SEED);
            let r_lr = evaluate(&lr, &d.profile, &d.classifier);

            writeln!(
                w,
                "{:<11} {:>4} {:>11} {:>9} {:>9} {:>10}",
                d.bench.name,
                pct(h.coverage()),
                format!("{}/{}", pct(h.miss_rate()), pct(h.perfect_rate())),
                format!(
                    "{}/{}",
                    pct(att.report.nonloop.miss_rate()),
                    pct(att.report.nonloop.perfect_rate())
                ),
                format!(
                    "{}/{}",
                    pct(att.report.all.miss_rate()),
                    pct(att.report.all.perfect_rate())
                ),
                format!(
                    "{}/{}",
                    pct(r_lr.all.miss_rate()),
                    pct(r_lr.all.perfect_rate())
                ),
            )?;
        }
        writeln!(w)?;
        writeln!(
            w,
            "Paper (Table 6): heuristics cover most non-loop branches; the combined"
        )?;
        writeln!(
            w,
            "predictor averages ~26% misses on non-loop branches and ~20% on all"
        )?;
        writeln!(w, "branches, vs ~10% for the perfect static predictor.")?;
        Ok(())
    }
}
