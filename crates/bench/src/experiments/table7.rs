//! Regenerates **Table 7**: means and standard deviations of the final
//! results (Table 6), for all benchmarks and for "most" — excluding the
//! four programs whose non-loop behaviour a handful of branches dominate
//! (the paper excluded eqntott, grep, tomcatv, matrix300). Target and
//! random non-loop prediction appear for comparison.

use std::io;

use bpfree_core::{
    evaluate, loop_rand_predictions, random_predictions, taken_predictions, CombinedPredictor,
    HeuristicKind, DEFAULT_SEED,
};
use bpfree_engine::Engine;

use crate::registry::Experiment;
use crate::sink::Sink;
use crate::{load_suite_on, mean_std, pct};

const EXCLUDED: [&str; 4] = ["eqntott", "grep", "tomcatv", "matrix300"];

pub struct Table7;

impl Experiment for Table7 {
    fn name(&self) -> &'static str {
        "table7"
    }

    fn description(&self) -> &'static str {
        "means and standard deviations of the final results"
    }

    fn paper_ref(&self) -> &'static str {
        "Table 7"
    }

    fn run(&self, engine: &Engine, sink: &mut dyn Sink) -> io::Result<()> {
        let w = sink.out();
        struct Row {
            name: String,
            heuristic_nl: f64,
            heuristic_all: f64,
            loop_rand_all: f64,
            tgt_nl: f64,
            rnd_nl: f64,
            perfect_nl: f64,
            perfect_all: f64,
        }

        let mut rows = Vec::new();
        for d in load_suite_on(engine) {
            let cp =
                CombinedPredictor::new(&d.program, &d.classifier, HeuristicKind::paper_order());
            let r = evaluate(&cp.predictions(), &d.profile, &d.classifier);
            let lr = evaluate(
                &loop_rand_predictions(&d.program, &d.classifier, DEFAULT_SEED),
                &d.profile,
                &d.classifier,
            );
            let tgt = evaluate(&taken_predictions(&d.program), &d.profile, &d.classifier);
            let rnd = evaluate(
                &random_predictions(&d.program, DEFAULT_SEED),
                &d.profile,
                &d.classifier,
            );
            rows.push(Row {
                name: d.bench.name.to_string(),
                heuristic_nl: r.nonloop.miss_rate(),
                heuristic_all: r.all.miss_rate(),
                loop_rand_all: lr.all.miss_rate(),
                tgt_nl: tgt.nonloop.miss_rate(),
                rnd_nl: rnd.nonloop.miss_rate(),
                perfect_nl: r.nonloop.perfect_rate(),
                perfect_all: r.all.perfect_rate(),
            });
        }

        for (label, filter) in [
            ("(all)", false),
            ("(most: excl. eqntott/grep/tomcatv/matrix300)", true),
        ] {
            let sel: Vec<&Row> = rows
                .iter()
                .filter(|r| !filter || !EXCLUDED.contains(&r.name.as_str()))
                .collect();
            let stat = |f: fn(&Row) -> f64| mean_std(&sel.iter().map(|r| f(r)).collect::<Vec<_>>());
            let (h_nl, h_nl_s) = stat(|r| r.heuristic_nl);
            let (h_all, h_all_s) = stat(|r| r.heuristic_all);
            let (lr_all, lr_all_s) = stat(|r| r.loop_rand_all);
            let (t_nl, t_nl_s) = stat(|r| r.tgt_nl);
            let (r_nl, r_nl_s) = stat(|r| r.rnd_nl);
            let (p_nl, _) = stat(|r| r.perfect_nl);
            let (p_all, _) = stat(|r| r.perfect_all);

            writeln!(w, "Table 7 {label}: {} benchmarks", sel.len())?;
            writeln!(
                w,
                "  Heuristic non-loop   : {}±{}  (perfect {})",
                pct(h_nl),
                pct(h_nl_s),
                pct(p_nl)
            )?;
            writeln!(
                w,
                "  Heuristic all        : {}±{}  (perfect {})",
                pct(h_all),
                pct(h_all_s),
                pct(p_all)
            )?;
            writeln!(
                w,
                "  Loop+Rand all        : {}±{}",
                pct(lr_all),
                pct(lr_all_s)
            )?;
            writeln!(w, "  Tgt non-loop         : {}±{}", pct(t_nl), pct(t_nl_s))?;
            writeln!(w, "  Rnd non-loop         : {}±{}", pct(r_nl), pct(r_nl_s))?;
            writeln!(w)?;
        }
        writeln!(
            w,
            "Paper (Table 7, all): heuristic non-loop 26%, all 20%; Tgt 51%, Rnd 49%;"
        )?;
        writeln!(w, "perfect non-loop 10%, all 8%.")?;
        Ok(())
    }
}
