//! The paper's open question (Section 4.4): how do multi-block
//! generalisations of the heuristics affect coverage and performance?
//!
//! For each generalisable heuristic, compare the base (one-block)
//! version against the deep version at several depth bounds, on the
//! whole suite: dynamic non-loop coverage and miss rate on the covered
//! subset.

use std::io;

use bpfree_core::heuristics::BranchContext;
use bpfree_core::{evaluate_coverage, BranchClass, ExtKind, HeuristicKind, Predictions};
use bpfree_engine::Engine;

use crate::registry::Experiment;
use crate::sink::Sink;
use crate::{load_suite_on, pct};

pub struct Extensions;

impl Experiment for Extensions {
    fn name(&self) -> &'static str {
        "extensions"
    }

    fn description(&self) -> &'static str {
        "multi-block generalisations of the heuristics"
    }

    fn paper_ref(&self) -> &'static str {
        "§4.4"
    }

    fn run(&self, engine: &Engine, sink: &mut dyn Sink) -> io::Result<()> {
        let w = sink.out();
        let suite = load_suite_on(engine);
        let pairs = [
            (HeuristicKind::Guard, ExtKind::GuardDeep),
            (HeuristicKind::Call, ExtKind::CallDeep),
            (HeuristicKind::Return, ExtKind::ReturnDeep),
            (HeuristicKind::Store, ExtKind::StoreDeep),
        ];
        let depths = [1usize, 4, 16];

        writeln!(
            w,
            "{:<9} {:>16} {:>16} {:>16} {:>16}",
            "", "base", "deep(1)", "deep(4)", "deep(16)"
        )?;
        writeln!(
            w,
            "{:<9} {:>16} {:>16} {:>16} {:>16}",
            "", "cov% miss%", "cov% miss%", "cov% miss%", "cov% miss%"
        )?;
        writeln!(w, "{:-<80}", "")?;

        for (base, deep) in pairs {
            // Aggregate over the whole suite, dynamic-weighted.
            let mut cells: Vec<(u64, u64, u64)> = vec![(0, 0, 0); depths.len() + 1];
            for d in &suite {
                // Base heuristic.
                let preds: Predictions = d
                    .table
                    .branches()
                    .filter_map(|b| d.table.prediction(b, base).map(|dir| (b, dir)))
                    .collect();
                let cov = evaluate_coverage(&preds, &d.profile, &d.classifier);
                cells[0].0 += cov.covered;
                cells[0].1 += cov.misses;
                cells[0].2 += cov.total_nonloop;
                // Deep versions.
                for (i, &depth) in depths.iter().enumerate() {
                    let preds: Predictions = d
                        .program
                        .branches()
                        .into_iter()
                        .filter(|b| d.classifier.class(*b) == BranchClass::NonLoop)
                        .filter_map(|b| {
                            let ctx = BranchContext::new(
                                &d.program,
                                d.classifier.analysis(&d.program, b.func),
                                b,
                            );
                            deep.predict(&ctx, depth).map(|dir| (b, dir))
                        })
                        .collect();
                    let cov = evaluate_coverage(&preds, &d.profile, &d.classifier);
                    cells[i + 1].0 += cov.covered;
                    cells[i + 1].1 += cov.misses;
                    cells[i + 1].2 += cov.total_nonloop;
                }
            }
            write!(w, "{:<9}", deep.label())?;
            for (covered, misses, total) in cells {
                let covp = if total == 0 {
                    0.0
                } else {
                    covered as f64 / total as f64
                };
                let missp = if covered == 0 {
                    0.0
                } else {
                    misses as f64 / covered as f64
                };
                write!(w, " {:>7} {:>8}", pct(covp), pct(missp))?;
            }
            writeln!(w)?;
        }
        writeln!(w)?;
        writeln!(
            w,
            "Reading: deeper regions buy coverage; whether the extra branches are"
        )?;
        writeln!(
            w,
            "predicted as well as the local ones answers the paper's question."
        )?;
        Ok(())
    }
}
