//! Regenerates **Graph 12**: the analytic model `f(m, s) = 1 - (1-m)^s`
//! for miss rates m = 0.025 .. 0.30 in steps of 0.025 — the cumulative
//! fraction of executed instructions in sequences of length ≤ s under
//! unit-length blocks and independent branches.

use std::io;

use bpfree_core::model::{dividing_length, graph12_curves};
use bpfree_engine::Engine;

use crate::registry::Experiment;
use crate::sink::Sink;

pub struct Graph12;

impl Experiment for Graph12 {
    fn name(&self) -> &'static str {
        "graph12"
    }

    fn description(&self) -> &'static str {
        "the analytic model f(m, s) = 1 - (1-m)^s"
    }

    fn paper_ref(&self) -> &'static str {
        "Graph 12"
    }

    fn run(&self, _engine: &Engine, sink: &mut dyn Sink) -> io::Result<()> {
        let w = sink.out();
        let curves = graph12_curves(200, 10);
        write!(w, "{:>6}", "len")?;
        for c in &curves {
            write!(w, " {:>6.3}", c.miss_rate)?;
        }
        writeln!(w)?;
        let n_points = curves[0].points.len();
        for i in 0..n_points {
            write!(w, "{:>6}", curves[0].points[i].0)?;
            for c in &curves {
                write!(w, " {:>6.1}", 100.0 * c.points[i].1)?;
            }
            writeln!(w)?;
        }
        writeln!(w)?;
        writeln!(w, "model dividing lengths (50% of instructions):")?;
        for c in &curves {
            writeln!(
                w,
                "  m = {:>5.3}  ->  {}",
                c.miss_rate,
                dividing_length(c.miss_rate)
            )?;
        }
        writeln!(w)?;
        writeln!(
            w,
            "Paper's reading: the payoff in sequence length comes from pushing the"
        )?;
        writeln!(w, "miss rate below ~15%, not from 30% -> 15%.")?;
        Ok(())
    }
}
