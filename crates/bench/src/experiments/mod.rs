//! The registered experiments: one module per paper table/figure (and
//! per extension study), each a [`crate::registry::Experiment`] whose
//! output is byte-identical to the legacy standalone binary of the same
//! name.

pub mod btfnt;
pub mod extensions;
pub mod ff_stability;
pub mod freq_estimate;
pub mod graph1;
pub mod graph12;
pub mod graph13;
pub mod graphs4_11;
pub mod leave_one_out;
pub mod opt_ablate;
pub mod ordering_ablate;
pub mod summary_json;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;

use crate::registry::Experiment;

/// Registry order: the paper's tables, then its graphs, then the
/// extension studies. `bpfree exp all` runs exactly this sequence.
pub(crate) static REGISTRY: &[&dyn Experiment] = &[
    &table1::Table1,
    &table2::Table2,
    &table3::Table3,
    &table4::Table4,
    &table5::Table5,
    &table6::Table6,
    &table7::Table7,
    &graph1::Graph1,
    &graphs4_11::Graphs4To11,
    &graph12::Graph12,
    &graph13::Graph13,
    &btfnt::Btfnt,
    &extensions::Extensions,
    &ff_stability::FfStability,
    &freq_estimate::FreqEstimate,
    &leave_one_out::LeaveOneOut,
    &opt_ablate::OptAblate,
    &ordering_ablate::OrderingAblate,
    &summary_json::SummaryJson,
];
