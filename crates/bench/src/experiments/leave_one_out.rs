//! Ablation: which heuristic carries the combined predictor?
//!
//! For each heuristic, remove it from the paper's priority order (its
//! branches fall through to later heuristics or the Default) and measure
//! the suite-mean non-loop miss rate delta. Also reports each heuristic
//! alone (plus Default) for the other direction of the question.

use std::io;
use std::sync::Arc;

use bpfree_core::ordering::BenchOrderData;
use bpfree_core::HeuristicKind;
use bpfree_engine::Engine;
use bpfree_lang::Options;
use bpfree_suite::Benchmark;

use crate::registry::Experiment;
use crate::sink::Sink;
use crate::{mean_std, pct};

/// Suite-mean non-loop miss rate of a (possibly partial) priority
/// order, scored against the engine's condensed [`BenchOrderData`]
/// groups. The grouped `u64` miss sums are exactly the per-branch sums
/// a [`bpfree_core::CombinedPredictor`] evaluation adds up — same
/// numerator, same denominator, same division — so every rate (and the
/// printed table) is bit-identical to the old rebuild-the-predictor
/// path while touching a few dozen groups instead of every branch.
fn mean_nonloop_rate(suite: &[Arc<BenchOrderData>], order: &[HeuristicKind]) -> f64 {
    let rates: Vec<f64> = suite.iter().map(|d| d.miss_rate(order)).collect();
    mean_std(&rates).0
}

pub struct LeaveOneOut;

impl Experiment for LeaveOneOut {
    fn name(&self) -> &'static str {
        "leave_one_out"
    }

    fn description(&self) -> &'static str {
        "leave-one-out / alone ablation of the seven heuristics"
    }

    fn paper_ref(&self) -> &'static str {
        "§4.2 (heuristic contributions)"
    }

    fn run(&self, engine: &Engine, sink: &mut dyn Sink) -> io::Result<()> {
        let w = sink.out();
        let opt = Options::default();
        let benches = bpfree_suite::all();
        let refs: Vec<&Benchmark> = benches.iter().collect();
        engine.prefetch(&refs, opt, &[]);
        let suite: Vec<Arc<BenchOrderData>> =
            refs.iter().map(|b| engine.order_data(b, opt)).collect();
        let full = HeuristicKind::paper_order();
        let baseline = mean_nonloop_rate(&suite, &full);
        writeln!(
            w,
            "paper order, all seven heuristics: {}% mean non-loop miss",
            pct(baseline)
        )?;
        writeln!(w)?;
        writeln!(
            w,
            "{:<9} {:>12} {:>8} {:>12}",
            "heuristic", "without", "delta", "alone"
        )?;
        writeln!(w, "{:-<44}", "")?;
        for k in HeuristicKind::ALL {
            let without: Vec<HeuristicKind> = full.iter().copied().filter(|x| *x != k).collect();
            let r_without = mean_nonloop_rate(&suite, &without);
            let r_alone = mean_nonloop_rate(&suite, &[k]);
            writeln!(
                w,
                "{:<9} {:>11}% {:>+7.1} {:>11}%",
                k.label(),
                pct(r_without),
                100.0 * (r_without - baseline),
                pct(r_alone),
            )?;
        }
        writeln!(w)?;
        writeln!(
            w,
            "`without` = paper order minus that heuristic (positive delta: removing"
        )?;
        writeln!(
            w,
            "it hurts); `alone` = that heuristic plus random Default only."
        )?;
        Ok(())
    }
}
