//! The Fisher & Freudenberger premise (ASPLOS 1992), which the paper
//! builds on: *"most branches take one direction with high probability
//! and the highly probable direction is the same across different program
//! executions."*
//!
//! For every benchmark with ≥2 datasets: train the perfect static
//! predictor on dataset A, test it on dataset B, and report (a) the
//! fraction of dynamic branches in B whose site kept the same majority
//! direction as in A (weighted agreement), and (b) the cross-trained
//! predictor's miss rate vs B's own perfect bound.

use std::io;

use bpfree_core::{evaluate, perfect_predictions, Direction};
use bpfree_engine::Engine;

use crate::registry::Experiment;
use crate::sink::Sink;
use crate::{load_suite_on, mean_std, pct};

pub struct FfStability;

impl Experiment for FfStability {
    fn name(&self) -> &'static str {
        "ff_stability"
    }

    fn description(&self) -> &'static str {
        "cross-dataset stability of the preferred branch direction"
    }

    fn paper_ref(&self) -> &'static str {
        "§1 (Fisher & Freudenberger premise)"
    }

    fn run(&self, engine: &Engine, sink: &mut dyn Sink) -> io::Result<()> {
        let w = sink.out();
        writeln!(
            w,
            "{:<11} {:>10} {:>12} {:>10}",
            "Program", "agree%", "crossmiss%", "perfect%"
        )?;
        writeln!(w, "{:-<46}", "")?;
        let mut agrees = Vec::new();
        let mut cross = Vec::new();
        let mut perf = Vec::new();
        let suite = load_suite_on(engine);
        // Warm every second dataset's run bundle in parallel (one
        // benchmark per worker) before the serial report loop below,
        // which then formats pure memo hits instead of simulating each
        // alternate dataset one at a time.
        let multi: Vec<&crate::BenchData> = suite
            .iter()
            .filter(|d| d.datasets(engine).len() >= 2)
            .collect();
        let _ = bpfree_par::par_map(&multi, |d| d.profile_dataset(engine, 1));
        for d in suite {
            if d.datasets(engine).len() < 2 {
                continue;
            }
            let (profile_b, _) = d.profile_dataset(engine, 1);
            let trained_on_a = perfect_predictions(&d.program, &d.profile);
            let perfect_on_b = perfect_predictions(&d.program, &profile_b);

            // Weighted agreement: dynamic branches in B whose site's majority
            // direction matched A's majority.
            let mut agree_dyn = 0u64;
            let mut total_dyn = 0u64;
            for (b, counts) in profile_b.iter() {
                total_dyn += counts.total();
                let dir_a = trained_on_a.get(b).unwrap_or(Direction::Taken);
                let dir_b = if counts.taken_majority() {
                    Direction::Taken
                } else {
                    Direction::FallThru
                };
                if dir_a == dir_b {
                    agree_dyn += counts.total();
                }
            }
            let agreement = agree_dyn as f64 / total_dyn.max(1) as f64;

            let r_cross = evaluate(&trained_on_a, &profile_b, &d.classifier);
            let r_perf = evaluate(&perfect_on_b, &profile_b, &d.classifier);
            writeln!(
                w,
                "{:<11} {:>10} {:>12} {:>10}",
                d.bench.name,
                pct(agreement),
                pct(r_cross.all.miss_rate()),
                pct(r_perf.all.miss_rate()),
            )?;
            agrees.push(agreement);
            cross.push(r_cross.all.miss_rate());
            perf.push(r_perf.all.miss_rate());
        }
        let (am, _) = mean_std(&agrees);
        let (cm, _) = mean_std(&cross);
        let (pm, _) = mean_std(&perf);
        writeln!(w, "{:-<46}", "")?;
        writeln!(
            w,
            "{:<11} {:>10} {:>12} {:>10}",
            "MEAN",
            pct(am),
            pct(cm),
            pct(pm)
        )?;
        writeln!(w)?;
        writeln!(
            w,
            "Fisher & Freudenberger found profiles transfer well between runs; the"
        )?;
        writeln!(
            w,
            "agreement column is the fraction of dynamic branches whose preferred"
        )?;
        writeln!(
            w,
            "direction is stable across datasets (they reported ~high-90s%)."
        )?;
        Ok(())
    }
}
