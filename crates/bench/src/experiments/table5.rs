//! Regenerates **Table 5**: the heuristics applied in the paper's
//! priority order (Pointer, Call, Opcode, Return, Store, Loop, Guard),
//! with per-heuristic attribution — for each benchmark, what share of
//! dynamic non-loop branches each heuristic ended up predicting (bold in
//! the paper) and its miss/perfect rates on that share. `Default` covers
//! branches no heuristic reached.

use std::io;

use bpfree_core::{evaluate_with_attribution, CombinedPredictor, HeuristicKind};
use bpfree_engine::Engine;

use crate::registry::Experiment;
use crate::sink::Sink;
use crate::{load_suite_on, mean_std, pct};

pub struct Table5;

impl Experiment for Table5 {
    fn name(&self) -> &'static str {
        "table5"
    }

    fn description(&self) -> &'static str {
        "heuristics in the paper's priority order, with attribution"
    }

    fn paper_ref(&self) -> &'static str {
        "Table 5"
    }

    fn run(&self, engine: &Engine, sink: &mut dyn Sink) -> io::Result<()> {
        let w = sink.out();
        let order = HeuristicKind::paper_order();
        let mut columns: Vec<String> = order.iter().map(|k| k.label().to_string()).collect();
        columns.push("Default".to_string());

        write!(w, "{:<11}", "Program")?;
        for c in &columns {
            write!(w, " {:>14}", c)?;
        }
        writeln!(w)?;
        writeln!(w, "{:-<131}", "")?;

        let mut sums: Vec<Vec<(f64, f64)>> = vec![Vec::new(); columns.len()];

        for d in load_suite_on(engine) {
            let cp = CombinedPredictor::new(&d.program, &d.classifier, order);
            let att = evaluate_with_attribution(&cp, &d.profile, &d.classifier);
            write!(w, "{:<11}", d.bench.name)?;
            for (ci, c) in columns.iter().enumerate() {
                match att.by_source.get(c) {
                    Some(s) if s.coverage() >= 0.01 => {
                        write!(
                            w,
                            " {:>4} {:>9}",
                            pct(s.coverage()),
                            format!("{}/{}", pct(s.miss_rate()), pct(s.perfect_rate()))
                        )?;
                        sums[ci].push((s.miss_rate(), s.perfect_rate()));
                    }
                    _ => write!(w, " {:>14}", "")?,
                }
            }
            writeln!(w)?;
        }

        writeln!(w, "{:-<131}", "")?;
        write!(w, "{:<11}", "MEAN")?;
        for col in &sums {
            let (mm, _) = mean_std(&col.iter().map(|x| x.0).collect::<Vec<_>>());
            let (pm, _) = mean_std(&col.iter().map(|x| x.1).collect::<Vec<_>>());
            write!(w, " {:>14}", format!("{}/{}", pct(mm), pct(pm)))?;
        }
        writeln!(w)?;
        write!(w, "{:<11}", "Std.Dev")?;
        for col in &sums {
            let (_, ms) = mean_std(&col.iter().map(|x| x.0).collect::<Vec<_>>());
            write!(w, " {:>14}", pct(ms))?;
        }
        writeln!(w)?;
        writeln!(w)?;
        writeln!(
            w,
            "Paper (Table 5) means: Point 41/10, Call 21/5, Opcode 20/5, Return 28/6,"
        )?;
        writeln!(w, "Store 36/7, Loop 35/5, Guard 33/12, Default 45/11.")?;
        Ok(())
    }
}
