//! Ablation for the Table 4 machinery: exact enumeration with Pareto
//! pruning vs. Monte-Carlo sampling over all 5040 orders, plus the
//! paper's cheap pairwise-order construction.
//!
//! Checks that (a) pruning does not change the exact result, (b) sampling
//! converges to the same winners, and (c) how the pairwise order ranks.

use std::io;
use std::time::Instant;

use bpfree_core::ordering::OrderingStudy;
use bpfree_core::HeuristicTable;
use bpfree_engine::Engine;
use bpfree_lang::Options;
use bpfree_sim::EdgeProfile;
use bpfree_suite::Benchmark;

use crate::registry::Experiment;
use crate::sink::Sink;
use crate::{load_suite_on, pct};

pub struct OrderingAblate;

impl Experiment for OrderingAblate {
    fn name(&self) -> &'static str {
        "ordering_ablate"
    }

    fn description(&self) -> &'static str {
        "exact vs. sampled subset study, plus the pairwise order's rank"
    }

    fn paper_ref(&self) -> &'static str {
        "Table 4 (methodology)"
    }

    fn run(&self, engine: &Engine, sink: &mut dyn Sink) -> io::Result<()> {
        let w = sink.out();
        let loaded = load_suite_on(engine);
        // Borrow the engine's shared tables and profiles for the
        // pairwise construction instead of rebuilding/cloning them.
        let pairwise_input: Vec<(&HeuristicTable, &EdgeProfile)> = loaded
            .iter()
            .filter(|d| d.bench.name != "matrix300")
            .map(|d| (&*d.table, &*d.profile))
            .collect();
        let refs: Vec<&Benchmark> = loaded
            .iter()
            .filter(|d| d.bench.name != "matrix300")
            .map(|d| &d.bench)
            .collect();
        let n = refs.len();
        let k = n / 2;
        let study = engine.ordering_study(&refs, Options::default());

        let t0 = Instant::now();
        let exact = study.subset_experiment(k);
        let exact_time = t0.elapsed();

        let t1 = Instant::now();
        let sampled = study.subset_experiment_sampled(k, 20_000, 7);
        let sampled_time = t1.elapsed();

        writeln!(
            w,
            "exact (pareto-pruned) : {:?} for all C({n},{k}) subsets",
            exact_time
        )?;
        writeln!(
            w,
            "sampled (full 5040)   : {:?} for 20k samples",
            sampled_time
        )?;
        writeln!(w)?;
        writeln!(w, "top winners, exact vs sampled trial share:")?;
        for win in exact.iter().take(5) {
            let s = sampled
                .iter()
                .find(|x| x.order == win.order)
                .map(|x| x.trial_fraction)
                .unwrap_or(0.0);
            writeln!(
                w,
                "  {:>6.2}% vs {:>6.2}%  {}",
                100.0 * win.trial_fraction,
                100.0 * s,
                win.order.join(" ")
            )?;
        }

        // Agreement check: the exact top winner should lead the sample too.
        let agree = exact
            .first()
            .map(|e| sampled.first().map(|s| s.order == e.order).unwrap_or(false))
            .unwrap_or(false);
        writeln!(w)?;
        writeln!(
            w,
            "top-winner agreement: {}",
            if agree { "yes" } else { "no (sampling noise)" }
        )?;

        // The paper's pairwise construction.
        let pairwise = OrderingStudy::pairwise_order(&pairwise_input);
        let pw_rate: f64 = study
            .benches()
            .iter()
            .map(|b| b.miss_rate(&pairwise))
            .sum::<f64>()
            / study.benches().len() as f64;
        let sorted = study.sorted_average_rates();
        let rank = sorted.iter().filter(|&&r| r < pw_rate).count();
        writeln!(w)?;
        writeln!(
            w,
            "pairwise order {:?}: {}% miss, rank {}/5040",
            pairwise.iter().map(|k| k.label()).collect::<Vec<_>>(),
            pct(pw_rate),
            rank
        )?;
        writeln!(w)?;
        writeln!(
            w,
            "Paper: pairwise-derived orders were 'generally inferior' to the subset"
        )?;
        writeln!(w, "winners 'but were in the top quarter of performers'.")?;
        Ok(())
    }
}
