//! Ablation: "backward taken, forward not taken" (BTFNT) vs. the paper's
//! natural-loop predictor.
//!
//! The paper motivates natural-loop analysis by noting that many loop
//! branches are *not* backwards branches (40% of dynamic loop branches in
//! xlisp, 45% in doduc). BTFNT is what the hardware-assisted schemes of
//! the era assumed; this experiment shows how much the loop analysis buys
//! on loop branches, benchmark by benchmark.

use std::io;

use bpfree_core::{btfnt_predictions, evaluate, loop_rand_predictions, DEFAULT_SEED};
use bpfree_engine::Engine;

use crate::registry::Experiment;
use crate::sink::Sink;
use crate::{load_suite_on, mean_std, pct};

pub struct Btfnt;

impl Experiment for Btfnt {
    fn name(&self) -> &'static str {
        "btfnt"
    }

    fn description(&self) -> &'static str {
        "backward-taken/forward-not-taken vs. the natural-loop predictor"
    }

    fn paper_ref(&self) -> &'static str {
        "§2 (loop prediction)"
    }

    fn run(&self, engine: &Engine, sink: &mut dyn Sink) -> io::Result<()> {
        let w = sink.out();
        writeln!(
            w,
            "{:<11} {:>10} {:>10} {:>9}",
            "Program", "BTFNT", "LoopPred", "Perfect"
        )?;
        writeln!(w, "{:-<45}", "")?;
        let mut bt = Vec::new();
        let mut lp = Vec::new();
        for d in load_suite_on(engine) {
            let r_bt = evaluate(&btfnt_predictions(&d.program), &d.profile, &d.classifier);
            let r_lp = evaluate(
                &loop_rand_predictions(&d.program, &d.classifier, DEFAULT_SEED),
                &d.profile,
                &d.classifier,
            );
            writeln!(
                w,
                "{:<11} {:>10} {:>10} {:>9}",
                d.bench.name,
                pct(r_bt.loop_branches.miss_rate()),
                pct(r_lp.loop_branches.miss_rate()),
                pct(r_lp.loop_branches.perfect_rate()),
            )?;
            bt.push(r_bt.loop_branches.miss_rate());
            lp.push(r_lp.loop_branches.miss_rate());
        }
        let (bm, _) = mean_std(&bt);
        let (lm, _) = mean_std(&lp);
        writeln!(w, "{:-<45}", "")?;
        writeln!(w, "{:<11} {:>10} {:>10}", "MEAN", pct(bm), pct(lm))?;
        writeln!(w)?;
        writeln!(
            w,
            "Natural-loop prediction handles the loop branches that are not"
        )?;
        writeln!(
            w,
            "backwards branches (loop exits and forward continues); BTFNT cannot."
        )?;
        Ok(())
    }
}
