//! Regenerates **Graphs 4–11**: trace-based sequence-length analysis.
//!
//! For the trace benchmarks (the paper used gcc, lcc, qpt, xlisp, doduc,
//! fpppp, spice2g6) and three predictors — Perfect, Heuristic, and
//! Loop+Rand — this prints each predictor's overall miss rate, its
//! profile-based IPBC average, its dividing length (the sequence length
//! covering 50% of executed instructions), and the cumulative
//! distribution of sequence lengths weighted by instructions. For the
//! spice2g6 analogue it also prints the break-weighted distribution
//! (Graph 5), whose skew explains why the IPBC average misleads.

use std::io;

use bpfree_core::ipbc::IpbcAnalyzer;
use bpfree_core::{
    evaluate_trace, loop_rand_predictions, perfect_predictions, CombinedPredictor, HeuristicKind,
    DEFAULT_SEED,
};
use bpfree_engine::Engine;

use crate::registry::Experiment;
use crate::sink::Sink;
use crate::{load_named_traced_on, pct, report_simulations};

/// The trace benchmarks. Exposed so the runner (and `exp all`) can
/// pre-trace them before any experiment profiles the suite plainly.
pub const TRACED: [&str; 7] = ["spice2g6", "gcc", "lcc", "qpt", "xlisp", "doduc", "fpppp"];

pub struct Graphs4To11;

impl Experiment for Graphs4To11 {
    fn name(&self) -> &'static str {
        "graphs4_11"
    }

    fn description(&self) -> &'static str {
        "trace-based sequence-length analysis for the trace benchmarks"
    }

    fn paper_ref(&self) -> &'static str {
        "Graphs 4-11"
    }

    fn traced(&self) -> &'static [&'static str] {
        &TRACED
    }

    fn run(&self, engine: &Engine, sink: &mut dyn Sink) -> io::Result<()> {
        let w = sink.out();
        for d in load_named_traced_on(engine, &TRACED) {
            let perfect = perfect_predictions(&d.program, &d.profile);
            let cp =
                CombinedPredictor::new(&d.program, &d.classifier, HeuristicKind::paper_order());
            let heuristic = cp.predictions();
            let loop_rand = loop_rand_predictions(&d.program, &d.classifier, DEFAULT_SEED);

            let trace = d.trace(engine);
            // Order-independent numbers (miss rate, IPBC average) come
            // from the O(dict) tally tier; only the sequence-length
            // *distributions* need the event order, and those replay
            // segmented in parallel (honouring --jobs). Both tiers are
            // bit-identical to a serial replay.
            let evals = [&loop_rand, &heuristic, &perfect].map(|p| evaluate_trace(p, &trace));

            let mut analyzer = IpbcAnalyzer::new(&d.program);
            analyzer.add_predictor("Loop+Rand", &loop_rand);
            analyzer.add_predictor("Heuristic", &heuristic);
            analyzer.add_predictor("Perfect", &perfect);
            // The perfect predictor above trained on this run's own edge
            // profile, so the sequence analysis cannot share the live pass.
            // Replaying the recorded branch trace is bit-identical for the
            // analyzer and costs no interpreter pass.
            trace.replay_segmented(&mut analyzer);
            let dists = analyzer.finish();

            writeln!(w, "== {} ==", d.bench.name)?;
            writeln!(
                w,
                "{:<10} {:>6} {:>8} {:>9}",
                "predictor", "miss%", "ipbc", "dividing"
            )?;
            for (dist, eval) in dists.iter().zip(&evals) {
                debug_assert_eq!(eval.mispredicted, dist.mispredicted);
                debug_assert_eq!(eval.total_instructions, dist.total_instructions);
                writeln!(
                    w,
                    "{:<10} {:>6} {:>8.0} {:>9}",
                    dist.name,
                    pct(eval.miss_rate()),
                    eval.ipbc_average(),
                    dist.dividing_length()
                )?;
            }
            // Instruction-weighted CDF at a few lengths (the graph's y axis).
            write!(w, "{:<10}", "len")?;
            let xs = [10u64, 30, 50, 100, 200, 400, 800, 1600, 3200];
            for x in xs {
                write!(w, " {:>6}", x)?;
            }
            writeln!(w)?;
            for dist in &dists {
                write!(w, "{:<10}", dist.name)?;
                for x in xs {
                    write!(w, " {:>6}", pct(dist.cumulative_instructions_below(x)))?;
                }
                writeln!(w)?;
            }
            if d.bench.name == "spice2g6" {
                writeln!(w, "-- Graph 5 (breaks-weighted CDF for spice2g6) --")?;
                for dist in &dists {
                    write!(w, "{:<10}", dist.name)?;
                    for x in xs {
                        write!(w, " {:>6}", pct(dist.cumulative_breaks_below(x)))?;
                    }
                    writeln!(w)?;
                }
            }
            writeln!(w)?;
        }
        writeln!(
            w,
            "Paper: Perfect < Heuristic < Loop+Rand in miss rate; the heuristic's"
        )?;
        writeln!(
            w,
            "sequence distribution sits between Loop+Rand and Perfect (often closer"
        )?;
        writeln!(
            w,
            "to Loop+Rand: long sequences demand very low miss rates); IPBC averages"
        )?;
        writeln!(
            w,
            "underestimate available sequence lengths because short sequences"
        )?;
        writeln!(w, "dominate the break count.")?;
        report_simulations(engine);
        Ok(())
    }
}
