//! Extension experiment: program-based *profile estimation* (the
//! direction of Wall's cited study and the later Wu–Larus work).
//!
//! Converts the Ball–Larus predictions into branch probabilities,
//! propagates them to block frequencies, and measures the Spearman rank
//! correlation between estimated and actual branch-block execution
//! counts — "does the static estimator order hot blocks the way the real
//! profile does?" Wall reported his estimators did poorly; heuristic
//! probabilities do considerably better.

use std::io;

use bpfree_core::freq::{estimate_branch_block_frequencies, spearman, Confidence};
use bpfree_core::{CombinedPredictor, HeuristicKind};
use bpfree_engine::Engine;

use crate::load_suite_on;
use crate::registry::Experiment;
use crate::sink::Sink;

pub struct FreqEstimate;

impl Experiment for FreqEstimate {
    fn name(&self) -> &'static str {
        "freq_estimate"
    }

    fn description(&self) -> &'static str {
        "program-based profile estimation vs. real block frequencies"
    }

    fn paper_ref(&self) -> &'static str {
        "§5 (Wall / Wu-Larus direction)"
    }

    fn run(&self, engine: &Engine, sink: &mut dyn Sink) -> io::Result<()> {
        let w = sink.out();
        let suite = load_suite_on(engine);
        // Calibrate confidences once, over the whole suite (leave-in
        // calibration: the point is realistic magnitudes, not generalisation;
        // Wu & Larus likewise reused corpus-measured hit rates).
        let predictors: Vec<CombinedPredictor> = suite
            .iter()
            .map(|d| {
                CombinedPredictor::new(&d.program, &d.classifier, HeuristicKind::paper_order())
            })
            .collect();
        let calibrated = Confidence::calibrate(
            suite
                .iter()
                .zip(&predictors)
                .map(|(d, cp)| (cp, &*d.profile, &*d.classifier)),
        );
        writeln!(
            w,
            "calibrated confidences: loop {:.2}, heuristic {:.2}",
            calibrated.loop_branch, calibrated.heuristic
        )?;
        writeln!(w)?;
        writeln!(
            w,
            "{:<11} {:>8} {:>10} {:>10} {:>10}",
            "Program", "sites", "rho(pred)", "rho(cal)", "rho(50/50)"
        )?;
        writeln!(w, "{:-<53}", "")?;
        let mut rhos = Vec::new();
        for (d, cp) in suite.iter().zip(&predictors) {
            let est = estimate_branch_block_frequencies(
                &d.program,
                &d.classifier,
                cp,
                Confidence::default(),
            );
            let cal = estimate_branch_block_frequencies(&d.program, &d.classifier, cp, calibrated);
            // Strawman: all branches 50/50 (structure-only estimation).
            let flat = estimate_branch_block_frequencies(
                &d.program,
                &d.classifier,
                cp,
                Confidence {
                    loop_branch: 0.5,
                    heuristic: 0.5,
                    default: 0.5,
                },
            );
            let mut xs = Vec::new();
            let mut cs = Vec::new();
            let mut ys = Vec::new();
            let mut zs = Vec::new();
            for (b, freq) in est.iter() {
                let counts = d.profile.counts(b);
                if counts.total() == 0 {
                    continue;
                }
                xs.push(freq);
                cs.push(cal.get(b));
                zs.push(flat.get(b));
                ys.push(counts.total() as f64);
            }
            let rho = spearman(&xs, &ys);
            let rho_cal = spearman(&cs, &ys);
            let rho_flat = spearman(&zs, &ys);
            writeln!(
                w,
                "{:<11} {:>8} {:>10.2} {:>10.2} {:>10.2}",
                d.bench.name,
                xs.len(),
                rho,
                rho_cal,
                rho_flat
            )?;
            rhos.push((rho, rho_cal, rho_flat));
        }
        let n = rhos.len() as f64;
        let mean: f64 = rhos.iter().map(|r| r.0).sum::<f64>() / n;
        let mean_cal: f64 = rhos.iter().map(|r| r.1).sum::<f64>() / n;
        let mean_flat: f64 = rhos.iter().map(|r| r.2).sum::<f64>() / n;
        writeln!(w, "{:-<53}", "")?;
        writeln!(
            w,
            "{:<11} {:>8} {:>10.2} {:>10.2} {:>10.2}",
            "MEAN", "", mean, mean_cal, mean_flat
        )?;
        writeln!(w)?;
        writeln!(
            w,
            "rho(pred) uses the paper-derived confidences (loop 0.88 / heuristic"
        )?;
        writeln!(
            w,
            "0.74); rho(cal) recalibrates them on the suite; rho(50/50) is the"
        )?;
        writeln!(
            w,
            "structure-only strawman. Wall (PLDI 1991) reported estimated profiles"
        )?;
        writeln!(
            w,
            "comparing poorly to real ones; heuristic probabilities close much of"
        )?;
        writeln!(w, "that gap.")?;
        Ok(())
    }
}
