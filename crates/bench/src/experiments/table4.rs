//! Regenerates **Table 4** and **Graphs 2–3**: the C(22,11) subset
//! experiment.
//!
//! For every 11-benchmark subset of the 22 benchmarks (matrix300
//! excluded), find the heuristic order minimising the subset's average
//! non-loop miss rate; report the most common winners, the share of
//! trials each accounts for (Table 4 / Graph 2), and each winner's
//! overall mean miss rate (Graph 3).

use std::io;

use bpfree_engine::Engine;
use bpfree_lang::Options;
use bpfree_suite::Benchmark;

use crate::registry::Experiment;
use crate::sink::Sink;
use crate::{ordering_roster, pct};

pub struct Table4;

impl Experiment for Table4 {
    fn name(&self) -> &'static str {
        "table4"
    }

    fn description(&self) -> &'static str {
        "the C(22,11) subset experiment: most common winning orders"
    }

    fn paper_ref(&self) -> &'static str {
        "Table 4, Graphs 2-3"
    }

    fn run(&self, engine: &Engine, sink: &mut dyn Sink) -> io::Result<()> {
        let w = sink.out();
        let roster = ordering_roster();
        let refs: Vec<&Benchmark> = roster.iter().collect();
        let n = refs.len();
        let k = n / 2;
        eprintln!("building 5040 x {n} rate matrix...");
        let study = engine.ordering_study(&refs, Options::default());
        eprintln!(
            "pareto front: {} of 5040 orders; enumerating C({n},{k}) subsets...",
            study.pareto_front().len()
        );
        let winners = study.subset_experiment(k);
        let total_trials: u64 = winners.iter().map(|w| w.trials).sum();

        writeln!(
            w,
            "# Table 4: the most common winning orders over {total_trials} trials"
        )?;
        writeln!(w, "{:>7} {:>6} {:<60}", "%Trials", "Miss%", "Order")?;
        for win in winners.iter().take(10) {
            writeln!(
                w,
                "{:>7} {:>6} {:<60}",
                format!("{:.2}", 100.0 * win.trial_fraction),
                pct(win.mean_miss_rate),
                win.order.join(" ")
            )?;
        }

        writeln!(w)?;
        writeln!(
            w,
            "# Graph 2: cumulative trial share of the most common orders"
        )?;
        let mut cum = 0.0;
        for (i, win) in winners.iter().enumerate().take(101) {
            cum += win.trial_fraction;
            if i % 5 == 0 || i == winners.len() - 1 {
                writeln!(w, "{:>4} {:>7.1}", i + 1, 100.0 * cum)?;
            }
        }

        writeln!(w)?;
        writeln!(
            w,
            "# Graph 3: overall mean miss rate of the most common orders"
        )?;
        for (i, win) in winners.iter().enumerate().take(101) {
            if i % 5 == 0 {
                writeln!(w, "{:>4} {:>6}", i + 1, pct(win.mean_miss_rate))?;
            }
        }
        writeln!(w)?;
        writeln!(w, "distinct winning orders: {}", winners.len())?;
        writeln!(w)?;
        writeln!(
            w,
            "Paper: 622 of 5040 orders appeared; the top 40 covered ~90% of trials;"
        )?;
        writeln!(
            w,
            "most common orders averaged under 27% misses; the third most frequent"
        )?;
        writeln!(w, "order was also the global optimum.")?;
        Ok(())
    }
}
