//! Regenerates **Graph 13**: miss rates across datasets.
//!
//! The heuristic predictor makes the SAME predictions regardless of
//! dataset; the perfect predictor re-derives its predictions per dataset.
//! For every benchmark and every dataset, print both miss rates (all
//! branches) — the paper's check that program-based prediction is stable
//! across inputs.

use std::io;

use bpfree_core::{evaluate, perfect_predictions, CombinedPredictor, HeuristicKind};
use bpfree_engine::Engine;

use crate::registry::Experiment;
use crate::sink::Sink;
use crate::{load_suite_on, pct};

pub struct Graph13;

impl Experiment for Graph13 {
    fn name(&self) -> &'static str {
        "graph13"
    }

    fn description(&self) -> &'static str {
        "miss rates across datasets: heuristic vs. re-derived perfect"
    }

    fn paper_ref(&self) -> &'static str {
        "Graph 13"
    }

    fn run(&self, engine: &Engine, sink: &mut dyn Sink) -> io::Result<()> {
        let w = sink.out();
        writeln!(
            w,
            "{:<11} {:<6} {:>10} {:>9}",
            "Program", "data", "Heuristic", "Perfect"
        )?;
        writeln!(w, "{:-<40}", "")?;
        let mut max_spread: f64 = 0.0;
        let mut spread_bench = String::new();
        for d in load_suite_on(engine) {
            let cp =
                CombinedPredictor::new(&d.program, &d.classifier, HeuristicKind::paper_order());
            let heuristic = cp.predictions();
            let mut rates = Vec::new();
            for (i, ds) in d.datasets(engine).iter().enumerate() {
                let (profile, _) = if i == 0 {
                    (d.profile.clone(), d.run)
                } else {
                    d.profile_dataset(engine, i)
                };
                let perfect = perfect_predictions(&d.program, &profile);
                let rh = evaluate(&heuristic, &profile, &d.classifier);
                let rp = evaluate(&perfect, &profile, &d.classifier);
                writeln!(
                    w,
                    "{:<11} {:<6} {:>10} {:>9}",
                    if i == 0 { d.bench.name } else { "" },
                    ds.name,
                    pct(rh.all.miss_rate()),
                    pct(rp.all.miss_rate())
                )?;
                rates.push(rh.all.miss_rate());
            }
            let spread = rates.iter().cloned().fold(0.0f64, f64::max)
                - rates.iter().cloned().fold(1.0f64, f64::min);
            if spread > max_spread {
                max_spread = spread;
                spread_bench = d.bench.name.to_string();
            }
        }
        writeln!(w)?;
        writeln!(
            w,
            "largest heuristic spread across datasets: {:.1} points ({})",
            100.0 * max_spread,
            spread_bench
        )?;
        writeln!(w)?;
        writeln!(
            w,
            "Paper (Graph 13): for most benchmarks the heuristic's miss rate varies"
        )?;
        writeln!(
            w,
            "little across datasets, and where it moves, the perfect predictor's"
        )?;
        writeln!(w, "rate usually moves with it.")?;
        Ok(())
    }
}
