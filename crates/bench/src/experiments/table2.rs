//! Regenerates **Table 2**: dynamic breakdown of loop vs. non-loop
//! branches.
//!
//! Per benchmark: the loop predictor's miss rate vs. perfect on loop
//! branches (`Prd/Prf`), the fraction of dynamic branches that are
//! non-loop (`%All`), always-taken and random prediction vs. perfect on
//! non-loop branches (`Tgt/Prf`, `Rnd/Prf`), and the "Big" columns — how
//! many non-loop branch sites each contribute >5% of dynamic non-loop
//! executions, and what share those sites cover.

use std::io;

use bpfree_core::{
    evaluate, loop_rand_predictions, random_predictions, taken_predictions, BranchClass,
    DEFAULT_SEED,
};
use bpfree_engine::Engine;

use crate::registry::Experiment;
use crate::sink::Sink;
use crate::{load_suite_on, mean_std, pct};

pub struct Table2;

impl Experiment for Table2 {
    fn name(&self) -> &'static str {
        "table2"
    }

    fn description(&self) -> &'static str {
        "dynamic breakdown of loop vs. non-loop branches"
    }

    fn paper_ref(&self) -> &'static str {
        "Table 2"
    }

    fn run(&self, engine: &Engine, sink: &mut dyn Sink) -> io::Result<()> {
        let w = sink.out();
        writeln!(
            w,
            "{:<11} {:>8} {:>6} {:>8} {:>8} {:>5} {:>6}",
            "Program", "Loop", "%All", "Tgt", "Rnd", "Big", "Big%"
        )?;
        writeln!(
            w,
            "{:<11} {:>8} {:>6} {:>8} {:>8} {:>5} {:>6}",
            "", "Prd/Prf", "", "/Prf", "/Prf", "", ""
        )?;

        let mut loop_rates = Vec::new();
        let mut loop_perf = Vec::new();
        let mut nl_fracs = Vec::new();
        let mut tgt_rates = Vec::new();
        let mut rnd_rates = Vec::new();
        let mut nl_perf = Vec::new();

        for d in load_suite_on(engine) {
            let lr = loop_rand_predictions(&d.program, &d.classifier, DEFAULT_SEED);
            let tgt = taken_predictions(&d.program);
            let rnd = random_predictions(&d.program, DEFAULT_SEED);

            let r_loop = evaluate(&lr, &d.profile, &d.classifier);
            let r_tgt = evaluate(&tgt, &d.profile, &d.classifier);
            let r_rnd = evaluate(&rnd, &d.profile, &d.classifier);

            // "Big" non-loop branch sites: each >5% of dynamic non-loop count.
            let total_nl: u64 = d
                .profile
                .iter()
                .filter(|(b, _)| d.classifier.class(*b) == BranchClass::NonLoop)
                .map(|(_, c)| c.total())
                .sum();
            let mut big_sites = 0u64;
            let mut big_dyn = 0u64;
            for (b, c) in d.profile.iter() {
                if d.classifier.class(b) == BranchClass::NonLoop && c.total() * 20 > total_nl {
                    big_sites += 1;
                    big_dyn += c.total();
                }
            }

            writeln!(
                w,
                "{:<11} {:>8} {:>6} {:>8} {:>8} {:>5} {:>6}",
                d.bench.name,
                format!(
                    "{}/{}",
                    pct(r_loop.loop_branches.miss_rate()),
                    pct(r_loop.loop_branches.perfect_rate())
                ),
                pct(r_loop.nonloop_fraction()),
                format!(
                    "{}/{}",
                    pct(r_tgt.nonloop.miss_rate()),
                    pct(r_tgt.nonloop.perfect_rate())
                ),
                format!(
                    "{}/{}",
                    pct(r_rnd.nonloop.miss_rate()),
                    pct(r_rnd.nonloop.perfect_rate())
                ),
                big_sites,
                if total_nl == 0 {
                    "0".to_string()
                } else {
                    pct(big_dyn as f64 / total_nl as f64)
                },
            )?;

            loop_rates.push(r_loop.loop_branches.miss_rate());
            loop_perf.push(r_loop.loop_branches.perfect_rate());
            nl_fracs.push(r_loop.nonloop_fraction());
            tgt_rates.push(r_tgt.nonloop.miss_rate());
            rnd_rates.push(r_rnd.nonloop.miss_rate());
            nl_perf.push(r_tgt.nonloop.perfect_rate());
        }

        let (lm, ls) = mean_std(&loop_rates);
        let (lpm, _) = mean_std(&loop_perf);
        let (nm, _) = mean_std(&nl_fracs);
        let (tm, ts) = mean_std(&tgt_rates);
        let (rm, rs) = mean_std(&rnd_rates);
        let (pm, _) = mean_std(&nl_perf);
        writeln!(w, "{:-<60}", "")?;
        writeln!(
            w,
            "{:<11} {:>8} {:>6} {:>8} {:>8}",
            "MEAN",
            format!("{}/{}", pct(lm), pct(lpm)),
            pct(nm),
            format!("{}/{}", pct(tm), pct(pm)),
            format!("{}/{}", pct(rm), pct(pm)),
        )?;
        writeln!(
            w,
            "{:<11} {:>8} {:>6} {:>8} {:>8}",
            "Std.Dev",
            pct(ls),
            "",
            pct(ts),
            pct(rs),
        )?;
        writeln!(w)?;
        writeln!(
            w,
            "Paper (Table 2): loop predictor 12/8 mean, %NL mean 43, Tgt 51/10, Rnd 49/10."
        )?;
        Ok(())
    }
}
