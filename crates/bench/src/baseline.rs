//! The pre-dense, hash-keyed analysis pipeline, kept as a measurable
//! seed baseline.
//!
//! Before the dense program database, the classifier stored one
//! `HashMap<BranchRef, _>` per program and the heuristic table one
//! `HashMap<BranchRef, [Option<Direction>; 7]>`. This module re-creates
//! that exact shape through the public analysis API — same CFG /
//! dominator / loop analyses, same per-branch heuristic evaluation,
//! hash-keyed storage instead of `Vec`s indexed by `BranchId` — so the
//! perf harness ([`crate::perf::analysis_report`]) and the
//! `analysis_throughput` Criterion group can time dense-vs-seed on the
//! real suite and assert the answers agree branch-for-branch.

use std::collections::HashMap;

use bpfree_cfg::FunctionAnalysis;
use bpfree_core::heuristics::BranchContext;
use bpfree_core::{BranchClass, Direction, HeuristicKind};
use bpfree_ir::{BlockId, BranchRef, FuncId, Program, Terminator};

/// Per-branch classification and prediction matrix in the seed's
/// hash-keyed shape.
pub struct HashAnalysis {
    /// Section 3 taxonomy per conditional branch.
    pub class: HashMap<BranchRef, BranchClass>,
    /// The loop-branch prediction (`None` for non-loop branches).
    pub loop_pred: HashMap<BranchRef, Option<Direction>>,
    /// The seven-heuristic prediction row per *non-loop* branch.
    pub table: HashMap<BranchRef, [Option<Direction>; 7]>,
}

/// Classifies every branch and evaluates all seven heuristics on every
/// non-loop branch, hash-keyed. The classification logic mirrors the
/// paper's Section 3 taxonomy exactly as the dense classifier
/// implements it; the heuristic cells come from the same
/// [`HeuristicKind::predict`] calls the dense table makes.
pub fn analyze_hash_keyed(program: &Program) -> HashAnalysis {
    let mut class = HashMap::new();
    let mut loop_pred = HashMap::new();
    let mut table = HashMap::new();
    for (fid, func) in program.funcs().iter().enumerate() {
        let a = FunctionAnalysis::new(func);
        for (bid, block) in func.blocks().iter().enumerate() {
            let Terminator::Branch {
                taken, fallthru, ..
            } = block.term
            else {
                continue;
            };
            let blk = BlockId(bid as u32);
            let b = BranchRef {
                func: FuncId(fid as u32),
                block: blk,
            };
            let taken_back = a.loops.is_backedge(blk, taken);
            let fall_back = a.loops.is_backedge(blk, fallthru);
            let taken_exit = a.loops.is_exit_edge(blk, taken);
            let fall_exit = a.loops.is_exit_edge(blk, fallthru);
            if !taken_back && !fall_back && !taken_exit && !fall_exit {
                class.insert(b, BranchClass::NonLoop);
                loop_pred.insert(b, None);
                let ctx = BranchContext::new(program, &a, b);
                let mut row = [None; 7];
                for kind in HeuristicKind::ALL {
                    row[kind.index()] = kind.predict(&ctx);
                }
                table.insert(b, row);
                continue;
            }
            let deeper_taken = a.loops.depth(taken) >= a.loops.depth(fallthru);
            let pred = if taken_back && fall_back {
                if deeper_taken {
                    Direction::Taken
                } else {
                    Direction::FallThru
                }
            } else if taken_back {
                Direction::Taken
            } else if fall_back || (taken_exit && !fall_exit) {
                Direction::FallThru
            } else if fall_exit && !taken_exit {
                Direction::Taken
            } else {
                // Both edges are exit edges: stay in the deeper loop.
                if deeper_taken {
                    Direction::Taken
                } else {
                    Direction::FallThru
                }
            };
            class.insert(b, BranchClass::Loop);
            loop_pred.insert(b, Some(pred));
        }
    }
    HashAnalysis {
        class,
        loop_pred,
        table,
    }
}

/// Panics unless `analysis` agrees with the dense classifier and table
/// on every branch — the live parity check the perf harness runs before
/// timing anything.
pub fn assert_matches_dense(
    analysis: &HashAnalysis,
    classifier: &bpfree_core::BranchClassifier,
    table: &bpfree_core::HeuristicTable,
) {
    assert_eq!(classifier.rows().count(), analysis.class.len());
    for (b, class, pred) in classifier.rows() {
        assert_eq!(analysis.class[&b], class, "class of {b}");
        assert_eq!(analysis.loop_pred[&b], pred, "loop prediction of {b}");
    }
    assert_eq!(table.rows().count(), analysis.table.len());
    for (b, row) in table.rows() {
        assert_eq!(&analysis.table[&b], row, "heuristic row of {b}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpfree_core::{BranchClassifier, HeuristicTable};

    #[test]
    fn hash_keyed_baseline_matches_dense_on_a_real_benchmark() {
        let bench = bpfree_suite::by_name("grep").expect("suite has grep");
        let program = bench.compile().expect("grep compiles");
        let classifier = BranchClassifier::analyze(&program);
        let table = HeuristicTable::build(&program, &classifier);
        let hashed = analyze_hash_keyed(&program);
        assert_matches_dense(&hashed, &classifier, &table);
        assert!(
            hashed.class.values().any(|&c| c == BranchClass::Loop),
            "grep has loop branches"
        );
        assert!(!hashed.table.is_empty(), "grep has non-loop branches");
    }
}
