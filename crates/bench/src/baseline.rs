//! The pre-dense, hash-keyed analysis pipeline, kept as a measurable
//! seed baseline.
//!
//! Before the dense program database, the classifier stored one
//! `HashMap<BranchRef, _>` per program and the heuristic table one
//! `HashMap<BranchRef, [Option<Direction>; 7]>`. This module re-creates
//! that exact shape through the public analysis API — same CFG /
//! dominator / loop analyses, same per-branch heuristic evaluation,
//! hash-keyed storage instead of `Vec`s indexed by `BranchId` — so the
//! perf harness ([`crate::perf::analysis_report`]) and the
//! `analysis_throughput` Criterion group can time dense-vs-seed on the
//! real suite and assert the answers agree branch-for-branch.
//!
//! It also retains the pre-kernel ordering-study loops
//! ([`naive_rate_matrix`], [`naive_pareto`], [`naive_subset_sweep`]):
//! the 7-way first-hit scan per group, the full O(5040²·b) domination
//! scan, and the per-candidate scalar gather per subset. The perf
//! harness ([`crate::perf::ordering_report`]) and the
//! `ordering_throughput` Criterion group time these against the
//! prefix-reuse kernels and assert bit-identical matrices, fronts, and
//! tallies first.

use std::collections::HashMap;

use bpfree_cfg::FunctionAnalysis;
use bpfree_core::heuristics::BranchContext;
use bpfree_core::ordering::{all_orders, BenchOrderData};
use bpfree_core::{BranchClass, Direction, HeuristicKind};
use bpfree_ir::{BlockId, BranchRef, FuncId, Program, Terminator};

/// Per-branch classification and prediction matrix in the seed's
/// hash-keyed shape.
pub struct HashAnalysis {
    /// Section 3 taxonomy per conditional branch.
    pub class: HashMap<BranchRef, BranchClass>,
    /// The loop-branch prediction (`None` for non-loop branches).
    pub loop_pred: HashMap<BranchRef, Option<Direction>>,
    /// The seven-heuristic prediction row per *non-loop* branch.
    pub table: HashMap<BranchRef, [Option<Direction>; 7]>,
}

/// Classifies every branch and evaluates all seven heuristics on every
/// non-loop branch, hash-keyed. The classification logic mirrors the
/// paper's Section 3 taxonomy exactly as the dense classifier
/// implements it; the heuristic cells come from the same
/// [`HeuristicKind::predict`] calls the dense table makes.
pub fn analyze_hash_keyed(program: &Program) -> HashAnalysis {
    let mut class = HashMap::new();
    let mut loop_pred = HashMap::new();
    let mut table = HashMap::new();
    for (fid, func) in program.funcs().iter().enumerate() {
        let a = FunctionAnalysis::new(func);
        for (bid, block) in func.blocks().iter().enumerate() {
            let Terminator::Branch {
                taken, fallthru, ..
            } = block.term
            else {
                continue;
            };
            let blk = BlockId(bid as u32);
            let b = BranchRef {
                func: FuncId(fid as u32),
                block: blk,
            };
            let taken_back = a.loops.is_backedge(blk, taken);
            let fall_back = a.loops.is_backedge(blk, fallthru);
            let taken_exit = a.loops.is_exit_edge(blk, taken);
            let fall_exit = a.loops.is_exit_edge(blk, fallthru);
            if !taken_back && !fall_back && !taken_exit && !fall_exit {
                class.insert(b, BranchClass::NonLoop);
                loop_pred.insert(b, None);
                let ctx = BranchContext::new(program, &a, b);
                let mut row = [None; 7];
                for kind in HeuristicKind::ALL {
                    row[kind.index()] = kind.predict(&ctx);
                }
                table.insert(b, row);
                continue;
            }
            let deeper_taken = a.loops.depth(taken) >= a.loops.depth(fallthru);
            let pred = if taken_back && fall_back {
                if deeper_taken {
                    Direction::Taken
                } else {
                    Direction::FallThru
                }
            } else if taken_back {
                Direction::Taken
            } else if fall_back || (taken_exit && !fall_exit) {
                Direction::FallThru
            } else if fall_exit && !taken_exit {
                Direction::Taken
            } else {
                // Both edges are exit edges: stay in the deeper loop.
                if deeper_taken {
                    Direction::Taken
                } else {
                    Direction::FallThru
                }
            };
            class.insert(b, BranchClass::Loop);
            loop_pred.insert(b, Some(pred));
        }
    }
    HashAnalysis {
        class,
        loop_pred,
        table,
    }
}

/// Panics unless `analysis` agrees with the dense classifier and table
/// on every branch — the live parity check the perf harness runs before
/// timing anything.
pub fn assert_matches_dense(
    analysis: &HashAnalysis,
    classifier: &bpfree_core::BranchClassifier,
    table: &bpfree_core::HeuristicTable,
) {
    assert_eq!(classifier.rows().count(), analysis.class.len());
    for (b, class, pred) in classifier.rows() {
        assert_eq!(analysis.class[&b], class, "class of {b}");
        assert_eq!(analysis.loop_pred[&b], pred, "loop prediction of {b}");
    }
    assert_eq!(table.rows().count(), analysis.table.len());
    for (b, row) in table.rows() {
        assert_eq!(&analysis.table[&b], row, "heuristic row of {b}");
    }
}

/// The seed-path 5040 × n rate matrix: one parallel task per order,
/// each row resolving every group with the 7-way first-hit scan
/// ([`BenchOrderData::miss_rate`]) instead of a precomputed
/// [`bpfree_core::ordering::FirstHit`] table. The summed misses are the
/// same exact `u64`s, so the matrix is bit-identical to the fast
/// build — which is what the perf harness asserts before timing.
pub fn naive_rate_matrix(benches: &[BenchOrderData]) -> Vec<Vec<f64>> {
    let orders = all_orders();
    bpfree_par::par_map(&orders, |o| {
        benches.iter().map(|b| b.miss_rate(o)).collect()
    })
}

/// The seed-path Pareto prune: every candidate scanned against **all**
/// other rows (no mean-sorted early exit), same domination predicate,
/// kept set assembled in index order.
pub fn naive_pareto(rates: &[Vec<f64>]) -> Vec<usize> {
    let indices: Vec<usize> = (0..rates.len()).collect();
    let kept = bpfree_par::par_map(&indices, |&i| {
        for (j, row) in rates.iter().enumerate() {
            if i == j {
                continue;
            }
            let dominates =
                row.iter().zip(&rates[i]).all(|(rj, ri)| rj <= ri) && (row != &rates[i] || j < i);
            if dominates {
                return false;
            }
        }
        true
    });
    indices.into_iter().filter(|&i| kept[i]).collect()
}

/// The seed-path subset sweep over one contiguous rank range: per
/// subset, a scalar gather per candidate (`sum = 0.0; sum += rates[b];
/// …`) over candidate-major rows (`rows[ci][b]`), first strict minimum
/// wins. No prefix reuse, no transposition — exactly the loop
/// [`bpfree_core::ordering::subset_sweep_wins`] replaced, retained so
/// the perf harness can time old-vs-new on the real C(22,11) sweep and
/// assert the tallies agree.
pub fn naive_subset_sweep(
    rows: &[Vec<f64>],
    n: usize,
    k: usize,
    start: u64,
    len: u64,
    wins: &mut [u64],
) {
    bpfree_core::ordering::KSubsets::range(n, k, start, len).for_each_subset(|subset| {
        let mut best = 0usize;
        let mut best_rate = f64::INFINITY;
        for (ci, cand) in rows.iter().enumerate() {
            let mut sum = 0.0;
            for &b in subset {
                sum += cand[b];
            }
            if sum < best_rate {
                best_rate = sum;
                best = ci;
            }
        }
        wins[best] += 1;
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpfree_core::ordering::{subset_sweep_wins, KSubsets, OrderingStudy};
    use bpfree_core::{BranchClassifier, HeuristicTable};

    /// The three naive ordering kernels agree bit-for-bit with the fast
    /// paths on real (small-roster) study data — the same parity the
    /// perf harness asserts on the full roster before timing.
    #[test]
    fn naive_ordering_kernels_match_the_fast_paths() {
        let engine = bpfree_engine::Engine::new(bpfree_engine::EngineConfig::no_cache());
        let opt = bpfree_lang::Options::default();
        let data: Vec<BenchOrderData> = ["grep", "eqntott"]
            .iter()
            .map(|n| {
                let b = bpfree_suite::by_name(n).unwrap();
                (*engine.order_data(&b, opt)).clone()
            })
            .collect();
        let study = OrderingStudy::new(data.clone());

        let naive = naive_rate_matrix(&data);
        assert_eq!(naive.len(), study.rates().len());
        for (a, b) in naive.iter().zip(study.rates()) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits(), "bit-exact matrix");
            }
        }

        assert_eq!(naive_pareto(study.rates()), study.pareto_front());

        let candidates = study.pareto_front();
        let n = data.len();
        let k = 1;
        let rows: Vec<Vec<f64>> = candidates
            .iter()
            .map(|&o| study.rates()[o].clone())
            .collect();
        let cols: Vec<Vec<f64>> = (0..n)
            .map(|b| candidates.iter().map(|&o| study.rates()[o][b]).collect())
            .collect();
        let trials = KSubsets::count(n, k);
        let mut naive_wins = vec![0u64; candidates.len()];
        naive_subset_sweep(&rows, n, k, 0, trials, &mut naive_wins);
        let mut fast_wins = vec![0u64; candidates.len()];
        subset_sweep_wins(&cols, n, k, 0, trials, &mut fast_wins);
        assert_eq!(naive_wins, fast_wins);
        assert_eq!(naive_wins.iter().sum::<u64>(), trials);
    }

    #[test]
    fn hash_keyed_baseline_matches_dense_on_a_real_benchmark() {
        let bench = bpfree_suite::by_name("grep").expect("suite has grep");
        let program = bench.compile().expect("grep compiles");
        let classifier = BranchClassifier::analyze(&program);
        let table = HeuristicTable::build(&program, &classifier);
        let hashed = analyze_hash_keyed(&program);
        assert_matches_dense(&hashed, &classifier, &table);
        assert!(
            hashed.class.values().any(|&c| c == BranchClass::Loop),
            "grep has loop branches"
        );
        assert!(!hashed.table.is_empty(), "grep has non-loop branches");
    }
}
