//! Shared harness for the experiment-regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper; this library loads the whole suite once (compile + analyze +
//! profile) and provides small formatting helpers so the binaries print
//! rows shaped like the paper's.
//!
//! Loading is parallel (one benchmark per worker, see [`bpfree_par`])
//! and backed by the on-disk artifact cache (see [`bpfree_cache`]):
//! a warm run skips compilation and simulation entirely. Both are
//! controlled by the standard flags parsed by [`config::init`].

pub mod config;
pub mod json;

use bpfree_core::{BranchClassifier, HeuristicTable};
use bpfree_ir::Program;
use bpfree_sim::{EdgeProfile, RunResult};
use bpfree_suite::{Benchmark, Dataset};

pub use config::init;

/// Everything the experiments need about one benchmark, precomputed on
/// the reference dataset (index 0).
pub struct BenchData {
    pub bench: Benchmark,
    pub program: Program,
    pub classifier: BranchClassifier,
    pub table: HeuristicTable,
    pub profile: EdgeProfile,
    pub run: RunResult,
}

impl BenchData {
    /// Loads one benchmark: compile, analyze, build the heuristic table,
    /// and profile the reference dataset. When the artifact cache is
    /// enabled (the default — see [`config`]) and holds a current entry,
    /// the compile and simulate steps are skipped; only the (cheap)
    /// branch classification reruns.
    ///
    /// # Panics
    ///
    /// Panics if the benchmark fails to compile or run — suite bugs are
    /// fatal for experiments.
    pub fn load(bench: Benchmark) -> BenchData {
        let cfg = config::config();
        let cache_key = if cfg.use_cache {
            let key = bpfree_cache::key(bench.name, bench.source, &bench.datasets());
            if let Some(hit) = bpfree_cache::lookup(&cfg.cache_dir, &key) {
                eprintln!("[bpfree-cache] hit  {}", bench.name);
                let classifier = BranchClassifier::analyze(&hit.program);
                return BenchData {
                    bench,
                    program: hit.program,
                    classifier,
                    table: hit.table,
                    profile: hit.profile,
                    run: hit.run,
                };
            }
            eprintln!("[bpfree-cache] miss {}", bench.name);
            Some(key)
        } else {
            None
        };

        let program = bench
            .compile()
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        let classifier = BranchClassifier::analyze(&program);
        let table = HeuristicTable::build(&program, &classifier);
        let (profile, run) = bench
            .profile(&program, 0)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));

        if let Some(key) = cache_key {
            let artifacts = bpfree_cache::Artifacts {
                program: program.clone(),
                table: table.clone(),
                profile: profile.clone(),
                run,
            };
            if let Err(e) = bpfree_cache::store(&cfg.cache_dir, &key, &artifacts) {
                eprintln!(
                    "[bpfree-cache] cannot write {} ({e}); continuing uncached",
                    cfg.cache_dir.display()
                );
            }
        }
        BenchData {
            bench,
            program,
            classifier,
            table,
            profile,
            run,
        }
    }

    /// Profiles an alternate dataset of this benchmark.
    ///
    /// # Panics
    ///
    /// Panics on an invalid index or a runtime failure.
    pub fn profile_dataset(&self, index: usize) -> (EdgeProfile, RunResult) {
        self.bench
            .profile(&self.program, index)
            .unwrap_or_else(|e| panic!("{} dataset {index}: {e}", self.bench.name))
    }

    /// The benchmark's datasets.
    pub fn datasets(&self) -> Vec<Dataset> {
        self.bench.datasets()
    }
}

/// Loads the whole suite (23 benchmarks) on the reference datasets,
/// one benchmark per parallel task, in the registry's order.
pub fn load_suite() -> Vec<BenchData> {
    let benches = bpfree_suite::all();
    bpfree_par::par_map(&benches, |b| BenchData::load(b.clone()))
}

/// Loads a named subset of the suite, preserving the given order.
///
/// # Panics
///
/// Panics on an unknown benchmark name.
pub fn load_named(names: &[&str]) -> Vec<BenchData> {
    let benches: Vec<Benchmark> = names
        .iter()
        .map(|n| bpfree_suite::by_name(n).unwrap_or_else(|| panic!("unknown benchmark {n}")))
        .collect();
    bpfree_par::par_map(&benches, |b| BenchData::load(b.clone()))
}

/// Formats a fraction as a whole percentage, paper style.
pub fn pct(x: f64) -> String {
    format!("{:.0}", 100.0 * x)
}

/// Formats the paper's `C/D` pair from two rates.
pub fn c_over_d(c: f64, d: f64) -> String {
    format!("{}/{}", pct(c), pct(d))
}

/// Mean and (population) standard deviation of a slice.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_and_cd_format_like_the_paper() {
        assert_eq!(pct(0.26), "26");
        assert_eq!(c_over_d(0.26, 0.10), "26/10");
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }
}
