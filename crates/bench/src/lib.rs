//! Shared harness for the paper-reproduction experiments.
//!
//! Since PR 3 every experiment lives in the [`registry`]: a named
//! [`registry::Experiment`] value that queries artifacts from a shared
//! [`bpfree_engine::Engine`] and writes its report through a
//! [`sink::Sink`]. `bpfree exp all` runs the whole reproduction in one
//! process, so each `(benchmark, Options, dataset)` triple is
//! compiled/simulated/traced at most once for all tables and graphs
//! combined; the binaries in `src/bin/` are one-line shims over
//! [`registry::legacy_main`] with byte-identical stdout.
//!
//! The heavy lifting stays in [`bpfree_engine`] (PR 2): experiments
//! query typed artifacts (compiled programs, heuristic tables, edge
//! profiles, branch traces) that the engine computes at most once per
//! process and persists through the on-disk cache. This crate bundles
//! the per-benchmark artifacts the experiments iterate over
//! ([`BenchData`]) plus small formatting helpers so they print rows
//! shaped like the paper's.
//!
//! Loading is parallel (one benchmark per worker, see [`bpfree_par`]);
//! a warm run skips compilation and simulation entirely. Both are
//! controlled by the standard flags parsed by [`config::init`].

pub mod baseline;
pub mod config;
pub mod experiments;
pub mod json;
pub mod perf;
pub mod registry;
pub mod sink;

/// The per-task timing log behind `--timings` (re-exported so the CLI
/// can drain it without depending on `bpfree-par` directly).
pub use bpfree_par::timings;

use std::sync::Arc;

use bpfree_core::{BranchClassifier, HeuristicTable};
use bpfree_engine::Engine;
use bpfree_ir::Program;
use bpfree_lang::Options;
use bpfree_sim::{BranchTrace, EdgeProfile, RunResult};
use bpfree_suite::{Benchmark, Dataset};

pub use config::init;

/// Everything the experiments need about one benchmark, precomputed on
/// the reference dataset (index 0). The `Arc` fields deref-coerce, so
/// call sites pass `&d.program` etc. exactly as before the engine
/// refactor.
pub struct BenchData {
    pub bench: Benchmark,
    pub program: Arc<Program>,
    pub classifier: Arc<BranchClassifier>,
    pub table: Arc<HeuristicTable>,
    pub profile: Arc<EdgeProfile>,
    pub run: RunResult,
}

impl BenchData {
    /// Loads one benchmark through `engine`: compile, analyze, build
    /// the heuristic table, and profile the reference dataset — each at
    /// most once per process, and not at all when the on-disk cache
    /// (see [`config`]) holds a current entry.
    ///
    /// # Panics
    ///
    /// Panics if the benchmark fails to compile or run — suite bugs are
    /// fatal for experiments.
    pub fn load(engine: &Engine, bench: Benchmark) -> BenchData {
        let opt = Options::default();
        let compiled = engine.compiled(&bench, opt);
        let run = engine.run(&bench, opt, 0);
        BenchData {
            bench,
            program: compiled.program,
            classifier: compiled.classifier,
            table: compiled.table,
            profile: run.profile,
            run: run.result,
        }
    }

    /// The replayable branch trace of the reference dataset. Recording
    /// shares the single interpreter pass that produced [`Self::profile`]
    /// (or replays from the cache), so trace consumers cost no extra
    /// simulation.
    pub fn trace(&self, engine: &Engine) -> Arc<BranchTrace> {
        engine.trace(&self.bench, Options::default(), 0)
    }

    /// Profiles an alternate dataset of this benchmark (memoized and
    /// cached like every engine artifact).
    ///
    /// # Panics
    ///
    /// Panics on an invalid index or a runtime failure.
    pub fn profile_dataset(&self, engine: &Engine, index: usize) -> (Arc<EdgeProfile>, RunResult) {
        let bundle = engine
            .try_run(&self.bench, Options::default(), index)
            .unwrap_or_else(|e| panic!("{} dataset {index}: {e}", self.bench.name));
        (bundle.profile, bundle.result)
    }

    /// The benchmark's datasets.
    pub fn datasets(&self, engine: &Engine) -> Arc<Vec<Dataset>> {
        engine.datasets(&self.bench)
    }
}

/// Loads the whole suite (23 benchmarks) on the reference datasets,
/// one benchmark per parallel task, in the registry's order.
pub fn load_suite_on(engine: &Engine) -> Vec<BenchData> {
    let benches = bpfree_suite::all();
    let refs: Vec<&Benchmark> = benches.iter().collect();
    engine.prefetch(&refs, Options::default(), &[]);
    benches
        .into_iter()
        .map(|b| BenchData::load(engine, b))
        .collect()
}

/// [`load_suite_on`] against the process-wide engine (see [`config`]).
pub fn load_suite() -> Vec<BenchData> {
    load_suite_on(config::engine())
}

/// The ordering-study roster: the whole suite minus matrix300 (the
/// paper excludes it from Graph 1 and the subset studies), in registry
/// order. Every experiment that consumes
/// [`bpfree_engine::Engine::ordering_study`] passes this same roster,
/// so they all share one memoized (and one cached) rate matrix.
pub fn ordering_roster() -> Vec<Benchmark> {
    bpfree_suite::all()
        .into_iter()
        .filter(|b| b.name != "matrix300")
        .collect()
}

/// Loads a named subset of the suite, preserving the given order.
///
/// # Panics
///
/// Panics on an unknown benchmark name.
pub fn load_named_on(engine: &Engine, names: &[&str]) -> Vec<BenchData> {
    load_named_inner(engine, names, &[])
}

/// [`load_named_on`], additionally recording a replayable branch trace
/// for every benchmark — still one interpreter pass each, with the
/// profile and trace observers fanned out of the same execution.
pub fn load_named_traced_on(engine: &Engine, names: &[&str]) -> Vec<BenchData> {
    load_named_inner(engine, names, names)
}

fn load_named_inner(engine: &Engine, names: &[&str], traced: &[&str]) -> Vec<BenchData> {
    let benches: Vec<Benchmark> = names
        .iter()
        .map(|n| bpfree_suite::by_name(n).unwrap_or_else(|| panic!("unknown benchmark {n}")))
        .collect();
    let refs: Vec<&Benchmark> = benches.iter().collect();
    engine.prefetch(&refs, Options::default(), traced);
    benches
        .into_iter()
        .map(|b| BenchData::load(engine, b))
        .collect()
}

/// Reports the engine's interpreter-pass count on stderr — the proof
/// line for the single-pass property (cold runs pay one pass per
/// (benchmark, dataset); warm runs pay zero).
pub fn report_simulations(engine: &Engine) {
    eprintln!(
        "[bpfree-engine] interpreter passes this process: {}",
        engine.simulations()
    );
}

/// Formats a fraction as a whole percentage, paper style.
pub fn pct(x: f64) -> String {
    format!("{:.0}", 100.0 * x)
}

/// Formats the paper's `C/D` pair from two rates.
pub fn c_over_d(c: f64, d: f64) -> String {
    format!("{}/{}", pct(c), pct(d))
}

/// Mean and (population) standard deviation of a slice.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_and_cd_format_like_the_paper() {
        assert_eq!(pct(0.26), "26");
        assert_eq!(c_over_d(0.26, 0.10), "26/10");
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }
}
