//! Shared CLI configuration for the experiment pipeline.
//!
//! Every experiment entry point — the legacy binaries *and* the root
//! `bpfree` CLI's `bench`/`predict`/`exp` subcommands — accepts the
//! same flags:
//!
//! - `--jobs N` (or `BPFREE_JOBS=N`): worker threads for the parallel
//!   loops. Results are bit-identical at any value; `--jobs 1` forces
//!   the serial path.
//! - `--no-cache` (or `BPFREE_NO_CACHE=1`): bypass the on-disk
//!   suite-artifact cache.
//! - `--cache-dir DIR` (or `BPFREE_CACHE_DIR=DIR`): cache location
//!   (default `target/bpfree-cache`).
//! - `--interp TIER` (or `BPFREE_INTERP=TIER`): interpreter tier,
//!   `bytecode` (default) or `tree`. Both tiers are observationally
//!   identical — the flag exists for differential testing and perf
//!   comparison.
//! - `--timings[=PATH]` (or `BPFREE_TIMINGS=1|PATH`): record
//!   per-task scheduler timings (query kind, key, wall-clock, worker)
//!   and emit them as JSON to stderr (bare flag) or `PATH`.
//! - `--help`: usage (legacy binaries only; the root CLI has its own).
//!
//! The legacy binaries parse their whole argument list with [`init`];
//! the root CLI pulls the standard flags out of a mixed argument list
//! with [`extract`] and applies them with [`apply`]. Both paths are
//! re-entrant: the first [`apply`] wins and later calls (any experiment
//! run in the same process, nested helpers, tests) observe the already
//! installed configuration instead of racing to replace it.

use std::path::PathBuf;
use std::sync::OnceLock;

use bpfree_sim::InterpTier;

/// Where the per-task timing log goes when `--timings` is on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimingsOut {
    /// Pretty-printed JSON to stderr after the batch summary.
    Stderr,
    /// Written to this file.
    File(PathBuf),
}

/// Resolved configuration, also stored process-globally so
/// [`crate::load_suite`] and [`crate::BenchData::load`] can honor it
/// without threading it through every call site.
#[derive(Debug, Clone)]
pub struct Config {
    /// Worker threads (`None` = machine default / `BPFREE_JOBS`).
    pub jobs: Option<usize>,
    /// Whether suite artifacts may be read from / written to disk.
    pub use_cache: bool,
    /// Cache directory.
    pub cache_dir: PathBuf,
    /// Interpreter tier for every simulation in the process.
    pub interp: InterpTier,
    /// Per-task timing log destination (`None` = off).
    pub timings: Option<TimingsOut>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            jobs: None,
            use_cache: !bpfree_cache::disabled_by_env(),
            cache_dir: bpfree_cache::default_dir(),
            interp: interp_from_env(),
            timings: timings_from_env(),
        }
    }
}

/// `BPFREE_TIMINGS`'s destination: unset/empty/`0` is off, `1`, `true`,
/// or `stderr` means stderr, anything else is a file path.
fn timings_from_env() -> Option<TimingsOut> {
    match std::env::var("BPFREE_TIMINGS").ok()?.as_str() {
        "" | "0" => None,
        "1" | "true" | "stderr" => Some(TimingsOut::Stderr),
        path => Some(TimingsOut::File(PathBuf::from(path))),
    }
}

/// `BPFREE_INTERP`'s tier, or the default on unset/invalid values
/// (environment typos should not silently change semantics — but both
/// tiers are identical anyway, so falling back to the default is safe).
fn interp_from_env() -> InterpTier {
    std::env::var("BPFREE_INTERP")
        .ok()
        .and_then(|v| InterpTier::parse(&v).ok())
        .unwrap_or_default()
}

static CONFIG: OnceLock<Config> = OnceLock::new();

/// The active configuration ([`apply`]'s result, or the environment
/// defaults if nothing called [`apply`]).
pub fn config() -> &'static Config {
    CONFIG.get_or_init(Config::default)
}

/// Parses the standard experiment flags from `std::env::args`, applies
/// the job count via [`bpfree_par::set_jobs`], and stores the result
/// process-globally. Call once at the top of each legacy binary's
/// `main`.
///
/// Exits the process on `--help` or an unrecognized argument.
pub fn init(bin: &str) -> &'static Config {
    let cfg = parse(bin, std::env::args().skip(1)).unwrap_or_else(|err| {
        eprintln!("{bin}: {err}");
        eprintln!("{}", usage(bin));
        std::process::exit(2);
    });
    apply(cfg)
}

/// Stores `cfg` globally, applies its job count, and installs the
/// process-wide artifact engine with matching cache settings.
///
/// Re-entrant, first caller wins (matching `OnceLock` semantics): a
/// second `apply` — e.g. an experiment run in-process after the CLI
/// already configured itself — leaves the installed configuration and
/// engine untouched and returns them.
pub fn apply(cfg: Config) -> &'static Config {
    if CONFIG.set(cfg).is_ok() {
        // First application: this config owns the process-wide knobs.
        if let Some(n) = config().jobs {
            bpfree_par::set_jobs(n);
        }
        if config().timings.is_some() {
            bpfree_par::timings::enable();
        }
    }
    engine();
    config()
}

/// The process-wide artifact engine, configured from [`config`] (or the
/// environment defaults if nothing called [`apply`]).
pub fn engine() -> &'static bpfree_engine::Engine {
    let cfg = config();
    bpfree_engine::install(bpfree_engine::EngineConfig {
        use_cache: cfg.use_cache,
        cache_dir: cfg.cache_dir.clone(),
        verbose: true,
        tier: cfg.interp,
    })
}

fn usage(bin: &str) -> String {
    format!(
        "usage: {bin} [--jobs N] [--no-cache] [--cache-dir DIR] [--interp TIER]\n\
         \x20           [--timings[=PATH]]\n\
         \n\
         --jobs N         worker threads (default: all cores; output is\n\
         \x20                identical at any value)\n\
         --no-cache       recompute suite artifacts instead of using the\n\
         \x20                on-disk cache\n\
         --cache-dir DIR  cache location (default: target/bpfree-cache)\n\
         --interp TIER    interpreter tier: bytecode (default) or tree\n\
         \x20                (identical output; tree is the slow reference)\n\
         --timings[=PATH] per-task scheduler timings as JSON, to stderr\n\
         \x20                or PATH\n\
         \n\
         environment: BPFREE_JOBS, BPFREE_NO_CACHE, BPFREE_CACHE_DIR,\n\
         BPFREE_INTERP, BPFREE_TIMINGS"
    )
}

/// Pulls the standard experiment flags out of a mixed argument list,
/// returning the parsed [`Config`] and the remaining arguments in their
/// original order. This is how the root `bpfree` CLI shares the flags
/// with the legacy binaries: `--jobs/--no-cache/--cache-dir` may appear
/// anywhere on its command line, before or after the subcommand, and
/// whatever is left over belongs to the subcommand.
pub fn extract(args: impl IntoIterator<Item = String>) -> Result<(Config, Vec<String>), String> {
    let mut cfg = Config::default();
    let mut rest = Vec::new();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--no-cache" => cfg.use_cache = false,
            "--jobs" | "-j" => {
                let v = args
                    .next()
                    .ok_or_else(|| "--jobs requires a value".to_string())?;
                cfg.jobs = Some(parse_jobs(&v)?);
            }
            s if s.starts_with("--jobs=") => {
                cfg.jobs = Some(parse_jobs(&s["--jobs=".len()..])?);
            }
            "--cache-dir" => {
                let v = args
                    .next()
                    .ok_or_else(|| "--cache-dir requires a value".to_string())?;
                cfg.cache_dir = PathBuf::from(v);
            }
            s if s.starts_with("--cache-dir=") => {
                cfg.cache_dir = PathBuf::from(&s["--cache-dir=".len()..]);
            }
            "--interp" => {
                let v = args
                    .next()
                    .ok_or_else(|| "--interp requires a value".to_string())?;
                cfg.interp = InterpTier::parse(&v)?;
            }
            s if s.starts_with("--interp=") => {
                cfg.interp = InterpTier::parse(&s["--interp=".len()..])?;
            }
            "--timings" => cfg.timings = Some(TimingsOut::Stderr),
            s if s.starts_with("--timings=") => {
                let v = &s["--timings=".len()..];
                if v.is_empty() {
                    return Err("--timings= requires a path".to_string());
                }
                cfg.timings = Some(TimingsOut::File(PathBuf::from(v)));
            }
            _ => rest.push(arg),
        }
    }
    Ok((cfg, rest))
}

fn parse(bin: &str, args: impl Iterator<Item = String>) -> Result<Config, String> {
    let (cfg, rest) = extract(args)?;
    match rest.first().map(String::as_str) {
        None => Ok(cfg),
        Some("--help" | "-h") => {
            println!("{}", usage(bin));
            std::process::exit(0);
        }
        Some(other) => Err(format!("unrecognized argument `{other}`")),
    }
}

fn parse_jobs(v: &str) -> Result<usize, String> {
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("--jobs expects a positive integer, got `{v}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(args: &[&str]) -> Result<Config, String> {
        parse("test", args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_jobs_and_cache_flags() {
        let c = p(&["--jobs", "4", "--no-cache", "--cache-dir", "/tmp/x"]).unwrap();
        assert_eq!(c.jobs, Some(4));
        assert!(!c.use_cache);
        assert_eq!(c.cache_dir, PathBuf::from("/tmp/x"));

        let c = p(&["--jobs=2", "--cache-dir=/tmp/y"]).unwrap();
        assert_eq!(c.jobs, Some(2));
        assert_eq!(c.cache_dir, PathBuf::from("/tmp/y"));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(p(&["--jobs", "0"]).is_err());
        assert!(p(&["--jobs", "zap"]).is_err());
        assert!(p(&["--jobs"]).is_err());
        assert!(p(&["--frobnicate"]).is_err());
        assert!(p(&["--interp"]).is_err());
        assert!(p(&["--interp", "jit"]).is_err());
    }

    #[test]
    fn parses_interp_tier() {
        assert_eq!(p(&[]).unwrap().interp, InterpTier::Bytecode);
        assert_eq!(p(&["--interp", "tree"]).unwrap().interp, InterpTier::Tree);
        assert_eq!(
            p(&["--interp=bytecode"]).unwrap().interp,
            InterpTier::Bytecode
        );
        assert_eq!(p(&["--interp=bc"]).unwrap().interp, InterpTier::Bytecode);
    }

    #[test]
    fn extract_leaves_subcommand_args_in_order() {
        let (cfg, rest) = extract(
            [
                "exp",
                "--jobs",
                "2",
                "run",
                "table1",
                "--no-cache",
                "--out-dir",
                "/tmp/o",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(cfg.jobs, Some(2));
        assert!(!cfg.use_cache);
        assert_eq!(rest, ["exp", "run", "table1", "--out-dir", "/tmp/o"]);
    }

    #[test]
    fn parses_timings_flag() {
        assert_eq!(p(&["--timings"]).unwrap().timings, Some(TimingsOut::Stderr));
        assert_eq!(
            p(&["--timings=/tmp/t.json"]).unwrap().timings,
            Some(TimingsOut::File(PathBuf::from("/tmp/t.json")))
        );
        assert!(p(&["--timings="]).is_err());
    }

    #[test]
    fn apply_is_reentrant_first_wins() {
        let first = apply(Config {
            jobs: None,
            use_cache: false,
            cache_dir: PathBuf::from("/tmp/first"),
            interp: InterpTier::Bytecode,
            timings: None,
        });
        let second = apply(Config {
            jobs: None,
            use_cache: true,
            cache_dir: PathBuf::from("/tmp/second"),
            interp: InterpTier::Bytecode,
            timings: None,
        });
        assert_eq!(first.cache_dir, second.cache_dir);
        assert_eq!(second.cache_dir, PathBuf::from("/tmp/first"));
    }
}
