//! Shared CLI configuration for the experiment binaries.
//!
//! Every binary accepts the same flags, parsed by [`init`]:
//!
//! - `--jobs N` (or `BPFREE_JOBS=N`): worker threads for the parallel
//!   loops. Results are bit-identical at any value; `--jobs 1` forces
//!   the serial path.
//! - `--no-cache` (or `BPFREE_NO_CACHE=1`): bypass the on-disk
//!   suite-artifact cache.
//! - `--cache-dir DIR` (or `BPFREE_CACHE_DIR=DIR`): cache location
//!   (default `target/bpfree-cache`).
//! - `--help`: usage.

use std::path::PathBuf;
use std::sync::OnceLock;

/// Resolved configuration, also stored process-globally so
/// [`crate::load_suite`] and [`crate::BenchData::load`] can honor it
/// without threading it through every call site.
#[derive(Debug, Clone)]
pub struct Config {
    /// Worker threads (`None` = machine default / `BPFREE_JOBS`).
    pub jobs: Option<usize>,
    /// Whether suite artifacts may be read from / written to disk.
    pub use_cache: bool,
    /// Cache directory.
    pub cache_dir: PathBuf,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            jobs: None,
            use_cache: !bpfree_cache::disabled_by_env(),
            cache_dir: bpfree_cache::default_dir(),
        }
    }
}

static CONFIG: OnceLock<Config> = OnceLock::new();

/// The active configuration ([`init`]'s result, or the environment
/// defaults if no binary called `init`).
pub fn config() -> &'static Config {
    CONFIG.get_or_init(Config::default)
}

/// Parses the standard experiment flags from `std::env::args`, applies
/// the job count via [`bpfree_par::set_jobs`], and stores the result
/// process-globally. Call once at the top of each binary's `main`.
///
/// Exits the process on `--help` or an unrecognized argument.
pub fn init(bin: &str) -> &'static Config {
    let cfg = parse(bin, std::env::args().skip(1)).unwrap_or_else(|err| {
        eprintln!("{bin}: {err}");
        eprintln!("{}", usage(bin));
        std::process::exit(2);
    });
    apply(cfg)
}

/// Stores `cfg` globally, applies its job count, and installs the
/// process-wide artifact engine with matching cache settings. Split
/// from [`init`] for tests; first caller wins, matching `OnceLock`
/// semantics.
pub fn apply(cfg: Config) -> &'static Config {
    if let Some(n) = cfg.jobs {
        bpfree_par::set_jobs(n);
    }
    let _ = CONFIG.set(cfg);
    let cfg = config();
    bpfree_engine::install(bpfree_engine::EngineConfig {
        use_cache: cfg.use_cache,
        cache_dir: cfg.cache_dir.clone(),
        verbose: true,
    });
    cfg
}

/// The process-wide artifact engine, configured from [`config`] (or the
/// environment defaults if no binary called [`init`]).
pub fn engine() -> &'static bpfree_engine::Engine {
    let cfg = config();
    bpfree_engine::install(bpfree_engine::EngineConfig {
        use_cache: cfg.use_cache,
        cache_dir: cfg.cache_dir.clone(),
        verbose: true,
    })
}

fn usage(bin: &str) -> String {
    format!(
        "usage: {bin} [--jobs N] [--no-cache] [--cache-dir DIR]\n\
         \n\
         --jobs N         worker threads (default: all cores; output is\n\
         \x20                identical at any value)\n\
         --no-cache       recompute suite artifacts instead of using the\n\
         \x20                on-disk cache\n\
         --cache-dir DIR  cache location (default: target/bpfree-cache)\n\
         \n\
         environment: BPFREE_JOBS, BPFREE_NO_CACHE, BPFREE_CACHE_DIR"
    )
}

fn parse(bin: &str, args: impl Iterator<Item = String>) -> Result<Config, String> {
    let mut cfg = Config::default();
    let mut args = args;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{}", usage(bin));
                std::process::exit(0);
            }
            "--no-cache" => cfg.use_cache = false,
            "--jobs" | "-j" => {
                let v = args
                    .next()
                    .ok_or_else(|| "--jobs requires a value".to_string())?;
                cfg.jobs = Some(parse_jobs(&v)?);
            }
            s if s.starts_with("--jobs=") => {
                cfg.jobs = Some(parse_jobs(&s["--jobs=".len()..])?);
            }
            "--cache-dir" => {
                let v = args
                    .next()
                    .ok_or_else(|| "--cache-dir requires a value".to_string())?;
                cfg.cache_dir = PathBuf::from(v);
            }
            s if s.starts_with("--cache-dir=") => {
                cfg.cache_dir = PathBuf::from(&s["--cache-dir=".len()..]);
            }
            other => return Err(format!("unrecognized argument `{other}`")),
        }
    }
    Ok(cfg)
}

fn parse_jobs(v: &str) -> Result<usize, String> {
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("--jobs expects a positive integer, got `{v}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(args: &[&str]) -> Result<Config, String> {
        parse("test", args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_jobs_and_cache_flags() {
        let c = p(&["--jobs", "4", "--no-cache", "--cache-dir", "/tmp/x"]).unwrap();
        assert_eq!(c.jobs, Some(4));
        assert!(!c.use_cache);
        assert_eq!(c.cache_dir, PathBuf::from("/tmp/x"));

        let c = p(&["--jobs=2", "--cache-dir=/tmp/y"]).unwrap();
        assert_eq!(c.jobs, Some(2));
        assert_eq!(c.cache_dir, PathBuf::from("/tmp/y"));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(p(&["--jobs", "0"]).is_err());
        assert!(p(&["--jobs", "zap"]).is_err());
        assert!(p(&["--jobs"]).is_err());
        assert!(p(&["--frobnicate"]).is_err());
    }
}
