//! Output sinks for registered experiments.
//!
//! Experiments never print directly: they write rows through a
//! [`Sink`], so the same experiment body can stream to stdout (the
//! legacy binaries, `bpfree exp run`), capture per-experiment files for
//! golden diffing (`bpfree exp all --out-dir`), or buffer into memory
//! (the registry parity tests). Whatever the sink, the bytes an
//! experiment writes are identical — the sink only decides where they
//! land.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::json::Json;
use crate::registry::Experiment;

/// Where one experiment's output stream goes. The runner brackets every
/// experiment with [`Sink::begin`]/[`Sink::end`]; between the two, the
/// experiment writes its stdout bytes to [`Sink::out`].
pub trait Sink {
    /// Starts capture for `exp`; subsequent [`Sink::out`] writes belong
    /// to it.
    fn begin(&mut self, exp: &dyn Experiment) -> io::Result<()>;

    /// The current experiment's output stream.
    fn out(&mut self) -> &mut dyn Write;

    /// Finishes the current experiment (flush, close, bookkeeping).
    fn end(&mut self, exp: &dyn Experiment) -> io::Result<()>;

    /// Overrides the wall-clock the sink would otherwise measure for
    /// the current experiment. The planned batch runner calls this:
    /// experiments execute on pool workers long before their begin/end
    /// bracket, so bracketing would time the buffer copy, not the work.
    fn note_millis(&mut self, _millis: u64) {}
}

/// Streams every experiment straight to the process's stdout — what the
/// legacy binaries always did.
#[derive(Default)]
pub struct StdoutSink {
    out: Option<io::BufWriter<io::Stdout>>,
}

impl StdoutSink {
    pub fn new() -> StdoutSink {
        StdoutSink::default()
    }
}

impl Sink for StdoutSink {
    fn begin(&mut self, _exp: &dyn Experiment) -> io::Result<()> {
        self.out = Some(io::BufWriter::new(io::stdout()));
        Ok(())
    }

    fn out(&mut self) -> &mut dyn Write {
        self.out.as_mut().expect("Sink::out outside begin/end")
    }

    fn end(&mut self, _exp: &dyn Experiment) -> io::Result<()> {
        if let Some(mut w) = self.out.take() {
            w.flush()?;
        }
        Ok(())
    }
}

/// Swallows every byte — for callers that want an experiment's *side
/// effects* (engine artifact computation, wall-clock) without its
/// report, e.g. the perf harness timing a cold `exp all`.
pub struct DiscardSink {
    sink: io::Sink,
}

impl DiscardSink {
    pub fn new() -> DiscardSink {
        DiscardSink { sink: io::sink() }
    }
}

impl Default for DiscardSink {
    fn default() -> DiscardSink {
        DiscardSink::new()
    }
}

impl Sink for DiscardSink {
    fn begin(&mut self, _exp: &dyn Experiment) -> io::Result<()> {
        Ok(())
    }

    fn out(&mut self) -> &mut dyn Write {
        &mut self.sink
    }

    fn end(&mut self, _exp: &dyn Experiment) -> io::Result<()> {
        Ok(())
    }
}

/// Captures each experiment into `<dir>/<name>.txt` (bytes identical to
/// the experiment's stdout) and records a `manifest.json` with paper
/// references and per-experiment wall-clock — the harness-facing sink
/// behind `bpfree exp all --out-dir`.
pub struct CaptureSink {
    dir: PathBuf,
    file: Option<io::BufWriter<fs::File>>,
    started: Option<Instant>,
    noted: Option<u64>,
    entries: Vec<Entry>,
}

struct Entry {
    name: &'static str,
    paper_ref: &'static str,
    file: String,
    millis: u64,
}

impl CaptureSink {
    /// Creates `dir` (and parents) and an empty sink writing into it.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<CaptureSink> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CaptureSink {
            dir,
            file: None,
            started: None,
            noted: None,
            entries: Vec::new(),
        })
    }

    /// Writes `manifest.json` describing everything captured so far and
    /// returns its path. Call after the last experiment.
    pub fn finish(&mut self) -> io::Result<PathBuf> {
        let experiments: Vec<Json> = self
            .entries
            .iter()
            .map(|e| {
                Json::obj()
                    .field("name", e.name)
                    .field("paper_ref", e.paper_ref)
                    .field("file", e.file.as_str())
                    .field("millis", e.millis)
                    .build()
            })
            .collect();
        let manifest = Json::obj()
            .field(
                "paper",
                "Ball & Larus, Branch Prediction for Free, PLDI 1993",
            )
            .field("experiments", experiments)
            .build();
        let path = self.dir.join("manifest.json");
        fs::write(&path, format!("{}\n", manifest.pretty()))?;
        Ok(path)
    }
}

impl Sink for CaptureSink {
    fn begin(&mut self, exp: &dyn Experiment) -> io::Result<()> {
        let file = fs::File::create(self.dir.join(format!("{}.txt", exp.name())))?;
        self.file = Some(io::BufWriter::new(file));
        self.started = Some(Instant::now());
        Ok(())
    }

    fn out(&mut self) -> &mut dyn Write {
        self.file.as_mut().expect("Sink::out outside begin/end")
    }

    fn note_millis(&mut self, millis: u64) {
        self.noted = Some(millis);
    }

    fn end(&mut self, exp: &dyn Experiment) -> io::Result<()> {
        if let Some(mut w) = self.file.take() {
            w.flush()?;
        }
        let bracket = self.started.take().map(|t| t.elapsed().as_millis() as u64);
        let millis = self.noted.take().or(bracket).unwrap_or(0);
        self.entries.push(Entry {
            name: exp.name(),
            paper_ref: exp.paper_ref(),
            file: format!("{}.txt", exp.name()),
            millis,
        });
        Ok(())
    }
}

/// Buffers each experiment's bytes in memory — what the parity tests
/// diff against the legacy binaries' stdout.
#[derive(Default)]
pub struct VecSink {
    buf: Vec<u8>,
}

impl VecSink {
    pub fn new() -> VecSink {
        VecSink::default()
    }

    /// The bytes written since construction (or the last `take`).
    pub fn take(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.buf)
    }
}

impl Sink for VecSink {
    fn begin(&mut self, _exp: &dyn Experiment) -> io::Result<()> {
        Ok(())
    }

    fn out(&mut self) -> &mut dyn Write {
        &mut self.buf
    }

    fn end(&mut self, _exp: &dyn Experiment) -> io::Result<()> {
        Ok(())
    }
}

/// The capture file [`CaptureSink`] writes for experiment `name`.
pub fn capture_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.txt"))
}
