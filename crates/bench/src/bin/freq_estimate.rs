//! Extension experiment: program-based *profile estimation* (the
//! direction of Wall's cited study and the later Wu–Larus work).
//!
//! Converts the Ball–Larus predictions into branch probabilities,
//! propagates them to block frequencies, and measures the Spearman rank
//! correlation between estimated and actual branch-block execution
//! counts — "does the static estimator order hot blocks the way the real
//! profile does?" Wall reported his estimators did poorly; heuristic
//! probabilities do considerably better.

use bpfree_bench::load_suite;
use bpfree_core::freq::{estimate_branch_block_frequencies, spearman, Confidence};
use bpfree_core::{CombinedPredictor, HeuristicKind};

fn main() {
    bpfree_bench::init("freq_estimate");
    let suite = load_suite();
    // Calibrate confidences once, over the whole suite (leave-in
    // calibration: the point is realistic magnitudes, not generalisation;
    // Wu & Larus likewise reused corpus-measured hit rates).
    let predictors: Vec<CombinedPredictor> = suite
        .iter()
        .map(|d| CombinedPredictor::new(&d.program, &d.classifier, HeuristicKind::paper_order()))
        .collect();
    let calibrated = Confidence::calibrate(
        suite
            .iter()
            .zip(&predictors)
            .map(|(d, cp)| (cp, &*d.profile, &*d.classifier)),
    );
    println!(
        "calibrated confidences: loop {:.2}, heuristic {:.2}",
        calibrated.loop_branch, calibrated.heuristic
    );
    println!();
    println!(
        "{:<11} {:>8} {:>10} {:>10} {:>10}",
        "Program", "sites", "rho(pred)", "rho(cal)", "rho(50/50)"
    );
    println!("{:-<53}", "");
    let mut rhos = Vec::new();
    for (d, cp) in suite.iter().zip(&predictors) {
        let est =
            estimate_branch_block_frequencies(&d.program, &d.classifier, cp, Confidence::default());
        let cal = estimate_branch_block_frequencies(&d.program, &d.classifier, cp, calibrated);
        // Strawman: all branches 50/50 (structure-only estimation).
        let flat = estimate_branch_block_frequencies(
            &d.program,
            &d.classifier,
            cp,
            Confidence {
                loop_branch: 0.5,
                heuristic: 0.5,
                default: 0.5,
            },
        );
        let mut xs = Vec::new();
        let mut cs = Vec::new();
        let mut ys = Vec::new();
        let mut zs = Vec::new();
        for (b, counts) in d.profile.iter() {
            xs.push(est[&b]);
            cs.push(cal[&b]);
            zs.push(flat[&b]);
            ys.push(counts.total() as f64);
        }
        let rho = spearman(&xs, &ys);
        let rho_cal = spearman(&cs, &ys);
        let rho_flat = spearman(&zs, &ys);
        println!(
            "{:<11} {:>8} {:>10.2} {:>10.2} {:>10.2}",
            d.bench.name,
            xs.len(),
            rho,
            rho_cal,
            rho_flat
        );
        rhos.push((rho, rho_cal, rho_flat));
    }
    let n = rhos.len() as f64;
    let mean: f64 = rhos.iter().map(|r| r.0).sum::<f64>() / n;
    let mean_cal: f64 = rhos.iter().map(|r| r.1).sum::<f64>() / n;
    let mean_flat: f64 = rhos.iter().map(|r| r.2).sum::<f64>() / n;
    println!("{:-<53}", "");
    println!(
        "{:<11} {:>8} {:>10.2} {:>10.2} {:>10.2}",
        "MEAN", "", mean, mean_cal, mean_flat
    );
    println!();
    println!("rho(pred) uses the paper-derived confidences (loop 0.88 / heuristic");
    println!("0.74); rho(cal) recalibrates them on the suite; rho(50/50) is the");
    println!("structure-only strawman. Wall (PLDI 1991) reported estimated profiles");
    println!("comparing poorly to real ones; heuristic probabilities close much of");
    println!("that gap.");
}
