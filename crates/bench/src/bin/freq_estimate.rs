//! Thin shim: `freq_estimate` now lives in the experiment registry
//! (`bpfree_bench::experiments`); this binary survives for muscle memory
//! and produces byte-identical stdout via `bpfree exp run freq_estimate`.

fn main() {
    bpfree_bench::registry::legacy_main("freq_estimate");
}
