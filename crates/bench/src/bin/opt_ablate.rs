//! Ablation: how much do the compiler's `-O` passes matter to the
//! heuristics?
//!
//! The paper analysed `-O`-compiled binaries, and DESIGN.md claims the
//! optimisation idioms (leaf inlining, block straightening, copy
//! propagation) are load-bearing for the heuristics — e.g. the pointer
//! heuristic needs the load and the null test in one block. This binary
//! compiles every benchmark at three levels and reports the combined
//! predictor's miss rates.

use bpfree_bench::{mean_std, pct};
use bpfree_core::{evaluate, BranchClassifier, CombinedPredictor, HeuristicKind};
use bpfree_lang::{compile_with, Options};
use bpfree_sim::{EdgeProfiler, Simulator};

fn run_at(bench: &bpfree_suite::Benchmark, options: Options) -> (f64, f64) {
    let program =
        compile_with(bench.source, options).unwrap_or_else(|e| panic!("{}: {e}", bench.name));
    let classifier = BranchClassifier::analyze(&program);
    let dataset = &bench.datasets()[0];
    let mut profiler = EdgeProfiler::new();
    let mut sim = Simulator::new(&program);
    sim.set_globals(&dataset.values)
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
    sim.run(&mut profiler)
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
    let profile = profiler.into_profile();
    let cp = CombinedPredictor::new(&program, &classifier, HeuristicKind::paper_order());
    let r = evaluate(&cp.predictions(), &profile, &classifier);
    (r.all.miss_rate(), r.nonloop.miss_rate())
}

fn main() {
    bpfree_bench::init("opt_ablate");
    println!(
        "{:<11} {:>9} {:>11} {:>7}   (all-branch miss%)",
        "Program", "-O (dflt)", "no-inline", "-O0"
    );
    println!("{:-<48}", "");
    let mut opt = Vec::new();
    let mut noinline = Vec::new();
    let mut o0 = Vec::new();
    for b in bpfree_suite::all() {
        let (a, _) = run_at(&b, Options::default());
        let (ni, _) = run_at(&b, Options::no_inline());
        let (raw, _) = run_at(&b, Options::o0());
        println!(
            "{:<11} {:>9} {:>11} {:>7}",
            b.name,
            pct(a),
            pct(ni),
            pct(raw)
        );
        opt.push(a);
        noinline.push(ni);
        o0.push(raw);
    }
    let (om, _) = mean_std(&opt);
    let (nm, _) = mean_std(&noinline);
    let (zm, _) = mean_std(&o0);
    println!("{:-<48}", "");
    println!(
        "{:<11} {:>9} {:>11} {:>7}",
        "MEAN",
        pct(om),
        pct(nm),
        pct(zm)
    );
    println!();
    println!("The heuristics were designed for optimised code: -O0's split blocks");
    println!("and helper calls hide the load-feeds-branch and store/call patterns.");
}
