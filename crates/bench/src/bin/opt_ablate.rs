//! Thin shim: `opt_ablate` now lives in the experiment registry
//! (`bpfree_bench::experiments`); this binary survives for muscle memory
//! and produces byte-identical stdout via `bpfree exp run opt_ablate`.

fn main() {
    bpfree_bench::registry::legacy_main("opt_ablate");
}
