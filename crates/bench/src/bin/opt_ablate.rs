//! Ablation: how much do the compiler's `-O` passes matter to the
//! heuristics?
//!
//! The paper analysed `-O`-compiled binaries, and DESIGN.md claims the
//! optimisation idioms (leaf inlining, block straightening, copy
//! propagation) are load-bearing for the heuristics — e.g. the pointer
//! heuristic needs the load and the null test in one block. This binary
//! compiles every benchmark at three levels and reports the combined
//! predictor's miss rates.

use bpfree_bench::{config, mean_std, pct};
use bpfree_core::{evaluate, CombinedPredictor, HeuristicKind};
use bpfree_engine::Engine;
use bpfree_lang::Options;

fn run_at(engine: &Engine, bench: &bpfree_suite::Benchmark, options: Options) -> (f64, f64) {
    // Each optimisation level is a distinct engine artifact — the cache
    // keys include the options fingerprint, so -O0 entries can never
    // collide with the -O artifacts the other binaries share.
    let compiled = engine.compiled(bench, options);
    let run = engine.run(bench, options, 0);
    let cp = CombinedPredictor::new(
        &compiled.program,
        &compiled.classifier,
        HeuristicKind::paper_order(),
    );
    let r = evaluate(&cp.predictions(), &run.profile, &compiled.classifier);
    (r.all.miss_rate(), r.nonloop.miss_rate())
}

fn main() {
    bpfree_bench::init("opt_ablate");
    let engine = config::engine();
    println!(
        "{:<11} {:>9} {:>11} {:>7}   (all-branch miss%)",
        "Program", "-O (dflt)", "no-inline", "-O0"
    );
    println!("{:-<48}", "");
    let mut opt = Vec::new();
    let mut noinline = Vec::new();
    let mut o0 = Vec::new();
    for b in bpfree_suite::all() {
        let (a, _) = run_at(engine, &b, Options::default());
        let (ni, _) = run_at(engine, &b, Options::no_inline());
        let (raw, _) = run_at(engine, &b, Options::o0());
        println!(
            "{:<11} {:>9} {:>11} {:>7}",
            b.name,
            pct(a),
            pct(ni),
            pct(raw)
        );
        opt.push(a);
        noinline.push(ni);
        o0.push(raw);
    }
    let (om, _) = mean_std(&opt);
    let (nm, _) = mean_std(&noinline);
    let (zm, _) = mean_std(&o0);
    println!("{:-<48}", "");
    println!(
        "{:<11} {:>9} {:>11} {:>7}",
        "MEAN",
        pct(om),
        pct(nm),
        pct(zm)
    );
    println!();
    println!("The heuristics were designed for optimised code: -O0's split blocks");
    println!("and helper calls hide the load-feeds-branch and store/call patterns.");
}
