//! Regenerates **Table 6**: the final results.
//!
//! Per benchmark: coverage and miss rates of the heuristics (excluding
//! Default) on non-loop branches, `+Default` adding random predictions
//! for uncovered branches, `All` adding loop branches under the loop
//! predictor, and `Loop+Rand` (loop prediction + random non-loop) for
//! comparison.

use bpfree_bench::{load_suite, pct};
use bpfree_core::{
    evaluate, evaluate_with_attribution, loop_rand_predictions, CombinedPredictor, HeuristicKind,
    DEFAULT_SEED,
};

fn main() {
    bpfree_bench::init("table6");
    println!(
        "{:<11} {:>16} {:>9} {:>9} {:>10}",
        "Program", "Heuristics", "+Default", "All", "Loop+Rand"
    );
    println!("{:-<60}", "");

    for d in load_suite() {
        let cp = CombinedPredictor::new(&d.program, &d.classifier, HeuristicKind::paper_order());
        let att = evaluate_with_attribution(&cp, &d.profile, &d.classifier);

        // Heuristics-only stats: aggregate the non-Default sources.
        let mut covered = 0u64;
        let mut misses = 0u64;
        let mut perfect = 0u64;
        let mut total_nl = 0u64;
        for (name, s) in &att.by_source {
            total_nl = total_nl.max(s.total_nonloop);
            if name != "Default" {
                covered += s.covered;
                misses += s.misses;
                perfect += s.perfect_misses;
            }
        }
        let cov_frac = if total_nl == 0 {
            0.0
        } else {
            covered as f64 / total_nl as f64
        };
        let h_miss = if covered == 0 {
            0.0
        } else {
            misses as f64 / covered as f64
        };
        let h_perf = if covered == 0 {
            0.0
        } else {
            perfect as f64 / covered as f64
        };

        let lr = loop_rand_predictions(&d.program, &d.classifier, DEFAULT_SEED);
        let r_lr = evaluate(&lr, &d.profile, &d.classifier);

        println!(
            "{:<11} {:>4} {:>11} {:>9} {:>9} {:>10}",
            d.bench.name,
            pct(cov_frac),
            format!("{}/{}", pct(h_miss), pct(h_perf)),
            format!(
                "{}/{}",
                pct(att.report.nonloop.miss_rate()),
                pct(att.report.nonloop.perfect_rate())
            ),
            format!(
                "{}/{}",
                pct(att.report.all.miss_rate()),
                pct(att.report.all.perfect_rate())
            ),
            format!(
                "{}/{}",
                pct(r_lr.all.miss_rate()),
                pct(r_lr.all.perfect_rate())
            ),
        );
    }
    println!();
    println!("Paper (Table 6): heuristics cover most non-loop branches; the combined");
    println!("predictor averages ~26% misses on non-loop branches and ~20% on all");
    println!("branches, vs ~10% for the perfect static predictor.");
}
