//! Regenerates **Table 7**: means and standard deviations of the final
//! results (Table 6), for all benchmarks and for "most" — excluding the
//! four programs whose non-loop behaviour a handful of branches dominate
//! (the paper excluded eqntott, grep, tomcatv, matrix300). Target and
//! random non-loop prediction appear for comparison.

use bpfree_bench::{load_suite, mean_std, pct};
use bpfree_core::{
    evaluate, loop_rand_predictions, random_predictions, taken_predictions, CombinedPredictor,
    HeuristicKind, DEFAULT_SEED,
};

const EXCLUDED: [&str; 4] = ["eqntott", "grep", "tomcatv", "matrix300"];

fn main() {
    bpfree_bench::init("table7");
    struct Row {
        name: String,
        heuristic_nl: f64,
        heuristic_all: f64,
        loop_rand_all: f64,
        tgt_nl: f64,
        rnd_nl: f64,
        perfect_nl: f64,
        perfect_all: f64,
    }

    let mut rows = Vec::new();
    for d in load_suite() {
        let cp = CombinedPredictor::new(&d.program, &d.classifier, HeuristicKind::paper_order());
        let r = evaluate(&cp.predictions(), &d.profile, &d.classifier);
        let lr = evaluate(
            &loop_rand_predictions(&d.program, &d.classifier, DEFAULT_SEED),
            &d.profile,
            &d.classifier,
        );
        let tgt = evaluate(&taken_predictions(&d.program), &d.profile, &d.classifier);
        let rnd = evaluate(
            &random_predictions(&d.program, DEFAULT_SEED),
            &d.profile,
            &d.classifier,
        );
        rows.push(Row {
            name: d.bench.name.to_string(),
            heuristic_nl: r.nonloop.miss_rate(),
            heuristic_all: r.all.miss_rate(),
            loop_rand_all: lr.all.miss_rate(),
            tgt_nl: tgt.nonloop.miss_rate(),
            rnd_nl: rnd.nonloop.miss_rate(),
            perfect_nl: r.nonloop.perfect_rate(),
            perfect_all: r.all.perfect_rate(),
        });
    }

    for (label, filter) in [
        ("(all)", false),
        ("(most: excl. eqntott/grep/tomcatv/matrix300)", true),
    ] {
        let sel: Vec<&Row> = rows
            .iter()
            .filter(|r| !filter || !EXCLUDED.contains(&r.name.as_str()))
            .collect();
        let stat = |f: fn(&Row) -> f64| mean_std(&sel.iter().map(|r| f(r)).collect::<Vec<_>>());
        let (h_nl, h_nl_s) = stat(|r| r.heuristic_nl);
        let (h_all, h_all_s) = stat(|r| r.heuristic_all);
        let (lr_all, lr_all_s) = stat(|r| r.loop_rand_all);
        let (t_nl, t_nl_s) = stat(|r| r.tgt_nl);
        let (r_nl, r_nl_s) = stat(|r| r.rnd_nl);
        let (p_nl, _) = stat(|r| r.perfect_nl);
        let (p_all, _) = stat(|r| r.perfect_all);

        println!("Table 7 {label}: {} benchmarks", sel.len());
        println!(
            "  Heuristic non-loop   : {}±{}  (perfect {})",
            pct(h_nl),
            pct(h_nl_s),
            pct(p_nl)
        );
        println!(
            "  Heuristic all        : {}±{}  (perfect {})",
            pct(h_all),
            pct(h_all_s),
            pct(p_all)
        );
        println!("  Loop+Rand all        : {}±{}", pct(lr_all), pct(lr_all_s));
        println!("  Tgt non-loop         : {}±{}", pct(t_nl), pct(t_nl_s));
        println!("  Rnd non-loop         : {}±{}", pct(r_nl), pct(r_nl_s));
        println!();
    }
    println!("Paper (Table 7, all): heuristic non-loop 26%, all 20%; Tgt 51%, Rnd 49%;");
    println!("perfect non-loop 10%, all 8%.");
}
