//! Regenerates **Graphs 4–11**: trace-based sequence-length analysis.
//!
//! For the trace benchmarks (the paper used gcc, lcc, qpt, xlisp, doduc,
//! fpppp, spice2g6) and three predictors — Perfect, Heuristic, and
//! Loop+Rand — this prints each predictor's overall miss rate, its
//! profile-based IPBC average, its dividing length (the sequence length
//! covering 50% of executed instructions), and the cumulative
//! distribution of sequence lengths weighted by instructions. For the
//! spice2g6 analogue it also prints the break-weighted distribution
//! (Graph 5), whose skew explains why the IPBC average misleads.

use bpfree_bench::{load_named_traced, pct, report_simulations};
use bpfree_core::ipbc::IpbcAnalyzer;
use bpfree_core::{
    loop_rand_predictions, perfect_predictions, CombinedPredictor, HeuristicKind, DEFAULT_SEED,
};

const TRACED: [&str; 7] = ["spice2g6", "gcc", "lcc", "qpt", "xlisp", "doduc", "fpppp"];

fn main() {
    bpfree_bench::init("graphs4_11");
    for d in load_named_traced(&TRACED) {
        let perfect = perfect_predictions(&d.program, &d.profile);
        let cp = CombinedPredictor::new(&d.program, &d.classifier, HeuristicKind::paper_order());
        let heuristic = cp.predictions();
        let loop_rand = loop_rand_predictions(&d.program, &d.classifier, DEFAULT_SEED);

        let mut analyzer = IpbcAnalyzer::new(&d.program);
        analyzer.add_predictor("Loop+Rand", &loop_rand);
        analyzer.add_predictor("Heuristic", &heuristic);
        analyzer.add_predictor("Perfect", &perfect);
        // The perfect predictor above trained on this run's own edge
        // profile, so the sequence analysis cannot share the live pass.
        // Replaying the recorded branch trace is bit-identical for the
        // analyzer and costs no interpreter pass.
        d.trace().replay(&mut analyzer);
        let dists = analyzer.finish();

        println!("== {} ==", d.bench.name);
        println!(
            "{:<10} {:>6} {:>8} {:>9}",
            "predictor", "miss%", "ipbc", "dividing"
        );
        for dist in &dists {
            println!(
                "{:<10} {:>6} {:>8.0} {:>9}",
                dist.name,
                pct(dist.miss_rate()),
                dist.ipbc_average(),
                dist.dividing_length()
            );
        }
        // Instruction-weighted CDF at a few lengths (the graph's y axis).
        print!("{:<10}", "len");
        let xs = [10u64, 30, 50, 100, 200, 400, 800, 1600, 3200];
        for x in xs {
            print!(" {:>6}", x);
        }
        println!();
        for dist in &dists {
            print!("{:<10}", dist.name);
            for x in xs {
                print!(" {:>6}", pct(dist.cumulative_instructions_below(x)));
            }
            println!();
        }
        if d.bench.name == "spice2g6" {
            println!("-- Graph 5 (breaks-weighted CDF for spice2g6) --");
            for dist in &dists {
                print!("{:<10}", dist.name);
                for x in xs {
                    print!(" {:>6}", pct(dist.cumulative_breaks_below(x)));
                }
                println!();
            }
        }
        println!();
    }
    println!("Paper: Perfect < Heuristic < Loop+Rand in miss rate; the heuristic's");
    println!("sequence distribution sits between Loop+Rand and Perfect (often closer");
    println!("to Loop+Rand: long sequences demand very low miss rates); IPBC averages");
    println!("underestimate available sequence lengths because short sequences");
    println!("dominate the break count.");
    report_simulations();
}
