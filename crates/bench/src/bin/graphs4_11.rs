//! Thin shim: `graphs4_11` now lives in the experiment registry
//! (`bpfree_bench::experiments`); this binary survives for muscle memory
//! and produces byte-identical stdout via `bpfree exp run graphs4_11`.

fn main() {
    bpfree_bench::registry::legacy_main("graphs4_11");
}
