//! Thin shim: `graph1` now lives in the experiment registry
//! (`bpfree_bench::experiments`); this binary survives for muscle memory
//! and produces byte-identical stdout via `bpfree exp run graph1`.

fn main() {
    bpfree_bench::registry::legacy_main("graph1");
}
