//! Regenerates **Graph 1**: the average non-loop miss rate of every one
//! of the 7! = 5040 heuristic orderings, sorted ascending — showing how
//! much (and how little) the priority order matters. The paper excludes
//! matrix300; so do we.

use bpfree_bench::{load_suite, pct};
use bpfree_core::ordering::{BenchOrderData, OrderingStudy};
use bpfree_core::DEFAULT_SEED;

fn main() {
    bpfree_bench::init("graph1");
    let benches: Vec<BenchOrderData> = load_suite()
        .into_iter()
        .filter(|d| d.bench.name != "matrix300")
        .map(|d| {
            BenchOrderData::build(
                d.bench.name,
                &d.table,
                &d.profile,
                &d.classifier,
                DEFAULT_SEED,
            )
        })
        .collect();
    eprintln!(
        "evaluating 5040 orders over {} benchmarks...",
        benches.len()
    );
    let study = OrderingStudy::new(benches);
    let rates = study.sorted_average_rates();

    println!("# Graph 1: order rank vs average non-loop miss rate (%)");
    println!("# rank miss%");
    for (i, r) in rates.iter().enumerate() {
        if i % 50 == 0 || i == rates.len() - 1 {
            println!("{:>5} {:>6}", i, pct(*r));
        }
    }
    let (best_order, best_rate) = study.best_order();
    println!();
    println!(
        "best order: {:?} at {}%",
        best_order.iter().map(|k| k.label()).collect::<Vec<_>>(),
        pct(best_rate)
    );
    println!("worst rate: {}%", pct(*rates.last().expect("5040 orders")));
    println!(
        "spread: {:.1} points",
        100.0 * (rates.last().unwrap() - rates[0])
    );
    println!();
    println!("Paper (Graph 1): rates from ~25.5% to ~29%, a broad flat region in the");
    println!("middle — ordering matters, but many orders are near-optimal.");
}
