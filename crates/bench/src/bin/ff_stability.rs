//! Thin shim: `ff_stability` now lives in the experiment registry
//! (`bpfree_bench::experiments`); this binary survives for muscle memory
//! and produces byte-identical stdout via `bpfree exp run ff_stability`.

fn main() {
    bpfree_bench::registry::legacy_main("ff_stability");
}
