//! Regenerates **Table 4** and **Graphs 2–3**: the C(22,11) subset
//! experiment.
//!
//! For every 11-benchmark subset of the 22 benchmarks (matrix300
//! excluded), find the heuristic order minimising the subset's average
//! non-loop miss rate; report the most common winners, the share of
//! trials each accounts for (Table 4 / Graph 2), and each winner's
//! overall mean miss rate (Graph 3).

use bpfree_bench::{load_suite, pct};
use bpfree_core::ordering::{BenchOrderData, OrderingStudy};
use bpfree_core::DEFAULT_SEED;

fn main() {
    bpfree_bench::init("table4");
    let benches: Vec<BenchOrderData> = load_suite()
        .into_iter()
        .filter(|d| d.bench.name != "matrix300")
        .map(|d| {
            BenchOrderData::build(
                d.bench.name,
                &d.table,
                &d.profile,
                &d.classifier,
                DEFAULT_SEED,
            )
        })
        .collect();
    let n = benches.len();
    let k = n / 2;
    eprintln!("building 5040 x {n} rate matrix...");
    let study = OrderingStudy::new(benches);
    eprintln!(
        "pareto front: {} of 5040 orders; enumerating C({n},{k}) subsets...",
        study.pareto_order_indices().len()
    );
    let winners = study.subset_experiment(k);
    let total_trials: u64 = winners.iter().map(|w| w.trials).sum();

    println!("# Table 4: the most common winning orders over {total_trials} trials");
    println!("{:>7} {:>6} {:<60}", "%Trials", "Miss%", "Order");
    for w in winners.iter().take(10) {
        println!(
            "{:>7} {:>6} {:<60}",
            format!("{:.2}", 100.0 * w.trial_fraction),
            pct(w.mean_miss_rate),
            w.order.join(" ")
        );
    }

    println!();
    println!("# Graph 2: cumulative trial share of the most common orders");
    let mut cum = 0.0;
    for (i, w) in winners.iter().enumerate().take(101) {
        cum += w.trial_fraction;
        if i % 5 == 0 || i == winners.len() - 1 {
            println!("{:>4} {:>7.1}", i + 1, 100.0 * cum);
        }
    }

    println!();
    println!("# Graph 3: overall mean miss rate of the most common orders");
    for (i, w) in winners.iter().enumerate().take(101) {
        if i % 5 == 0 {
            println!("{:>4} {:>6}", i + 1, pct(w.mean_miss_rate));
        }
    }
    println!();
    println!("distinct winning orders: {}", winners.len());
    println!();
    println!("Paper: 622 of 5040 orders appeared; the top 40 covered ~90% of trials;");
    println!("most common orders averaged under 27% misses; the third most frequent");
    println!("order was also the global optimum.");
}
