//! Regenerates **Graph 13**: miss rates across datasets.
//!
//! The heuristic predictor makes the SAME predictions regardless of
//! dataset; the perfect predictor re-derives its predictions per dataset.
//! For every benchmark and every dataset, print both miss rates (all
//! branches) — the paper's check that program-based prediction is stable
//! across inputs.

use bpfree_bench::{load_suite, pct};
use bpfree_core::{evaluate, perfect_predictions, CombinedPredictor, HeuristicKind};

fn main() {
    bpfree_bench::init("graph13");
    println!(
        "{:<11} {:<6} {:>10} {:>9}",
        "Program", "data", "Heuristic", "Perfect"
    );
    println!("{:-<40}", "");
    let mut max_spread: f64 = 0.0;
    let mut spread_bench = String::new();
    for d in load_suite() {
        let cp = CombinedPredictor::new(&d.program, &d.classifier, HeuristicKind::paper_order());
        let heuristic = cp.predictions();
        let mut rates = Vec::new();
        for (i, ds) in d.datasets().iter().enumerate() {
            let (profile, _) = if i == 0 {
                (d.profile.clone(), d.run)
            } else {
                d.profile_dataset(i)
            };
            let perfect = perfect_predictions(&d.program, &profile);
            let rh = evaluate(&heuristic, &profile, &d.classifier);
            let rp = evaluate(&perfect, &profile, &d.classifier);
            println!(
                "{:<11} {:<6} {:>10} {:>9}",
                if i == 0 { d.bench.name } else { "" },
                ds.name,
                pct(rh.all.miss_rate()),
                pct(rp.all.miss_rate())
            );
            rates.push(rh.all.miss_rate());
        }
        let spread = rates.iter().cloned().fold(0.0f64, f64::max)
            - rates.iter().cloned().fold(1.0f64, f64::min);
        if spread > max_spread {
            max_spread = spread;
            spread_bench = d.bench.name.to_string();
        }
    }
    println!();
    println!(
        "largest heuristic spread across datasets: {:.1} points ({})",
        100.0 * max_spread,
        spread_bench
    );
    println!();
    println!("Paper (Graph 13): for most benchmarks the heuristic's miss rate varies");
    println!("little across datasets, and where it moves, the perfect predictor's");
    println!("rate usually moves with it.");
}
