//! Thin shim: `leave_one_out` now lives in the experiment registry
//! (`bpfree_bench::experiments`); this binary survives for muscle memory
//! and produces byte-identical stdout via `bpfree exp run leave_one_out`.

fn main() {
    bpfree_bench::registry::legacy_main("leave_one_out");
}
