//! Ablation: which heuristic carries the combined predictor?
//!
//! For each heuristic, remove it from the paper's priority order (its
//! branches fall through to later heuristics or the Default) and measure
//! the suite-mean non-loop miss rate delta. Also reports each heuristic
//! alone (plus Default) for the other direction of the question.

use bpfree_bench::{load_suite, mean_std, pct};
use bpfree_core::{evaluate, CombinedPredictor, HeuristicKind, DEFAULT_SEED};

fn mean_nonloop_rate(suite: &[bpfree_bench::BenchData], order: &[HeuristicKind]) -> f64 {
    let rates: Vec<f64> = suite
        .iter()
        .map(|d| {
            let cp = CombinedPredictor::with_seed(
                &d.program,
                &d.classifier,
                order.iter().copied(),
                DEFAULT_SEED,
            );
            evaluate(&cp.predictions(), &d.profile, &d.classifier)
                .nonloop
                .miss_rate()
        })
        .collect();
    mean_std(&rates).0
}

fn main() {
    bpfree_bench::init("leave_one_out");
    let suite = load_suite();
    let full = HeuristicKind::paper_order();
    let baseline = mean_nonloop_rate(&suite, &full);
    println!(
        "paper order, all seven heuristics: {}% mean non-loop miss",
        pct(baseline)
    );
    println!();
    println!(
        "{:<9} {:>12} {:>8} {:>12}",
        "heuristic", "without", "delta", "alone"
    );
    println!("{:-<44}", "");
    for k in HeuristicKind::ALL {
        let without: Vec<HeuristicKind> = full.iter().copied().filter(|x| *x != k).collect();
        let r_without = mean_nonloop_rate(&suite, &without);
        let r_alone = mean_nonloop_rate(&suite, &[k]);
        println!(
            "{:<9} {:>11}% {:>+7.1} {:>11}%",
            k.label(),
            pct(r_without),
            100.0 * (r_without - baseline),
            pct(r_alone),
        );
    }
    println!();
    println!("`without` = paper order minus that heuristic (positive delta: removing");
    println!("it hurts); `alone` = that heuristic plus random Default only.");
}
