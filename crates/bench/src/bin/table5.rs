//! Thin shim: `table5` now lives in the experiment registry
//! (`bpfree_bench::experiments`); this binary survives for muscle memory
//! and produces byte-identical stdout via `bpfree exp run table5`.

fn main() {
    bpfree_bench::registry::legacy_main("table5");
}
