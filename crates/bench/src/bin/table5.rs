//! Regenerates **Table 5**: the heuristics applied in the paper's
//! priority order (Pointer, Call, Opcode, Return, Store, Loop, Guard),
//! with per-heuristic attribution — for each benchmark, what share of
//! dynamic non-loop branches each heuristic ended up predicting (bold in
//! the paper) and its miss/perfect rates on that share. `Default` covers
//! branches no heuristic reached.

use bpfree_bench::{load_suite, mean_std, pct};
use bpfree_core::{evaluate_with_attribution, CombinedPredictor, HeuristicKind};

fn main() {
    bpfree_bench::init("table5");
    let order = HeuristicKind::paper_order();
    let mut columns: Vec<String> = order.iter().map(|k| k.label().to_string()).collect();
    columns.push("Default".to_string());

    print!("{:<11}", "Program");
    for c in &columns {
        print!(" {:>14}", c);
    }
    println!();
    println!("{:-<131}", "");

    let mut sums: Vec<Vec<(f64, f64)>> = vec![Vec::new(); columns.len()];

    for d in load_suite() {
        let cp = CombinedPredictor::new(&d.program, &d.classifier, order);
        let att = evaluate_with_attribution(&cp, &d.profile, &d.classifier);
        print!("{:<11}", d.bench.name);
        for (ci, c) in columns.iter().enumerate() {
            match att.by_source.get(c) {
                Some(s) if s.coverage() >= 0.01 => {
                    print!(
                        " {:>4} {:>9}",
                        pct(s.coverage()),
                        format!("{}/{}", pct(s.miss_rate()), pct(s.perfect_rate()))
                    );
                    sums[ci].push((s.miss_rate(), s.perfect_rate()));
                }
                _ => print!(" {:>14}", ""),
            }
        }
        println!();
    }

    println!("{:-<131}", "");
    print!("{:<11}", "MEAN");
    for col in &sums {
        let (mm, _) = mean_std(&col.iter().map(|x| x.0).collect::<Vec<_>>());
        let (pm, _) = mean_std(&col.iter().map(|x| x.1).collect::<Vec<_>>());
        print!(" {:>14}", format!("{}/{}", pct(mm), pct(pm)));
    }
    println!();
    print!("{:<11}", "Std.Dev");
    for col in &sums {
        let (_, ms) = mean_std(&col.iter().map(|x| x.0).collect::<Vec<_>>());
        print!(" {:>14}", pct(ms));
    }
    println!();
    println!();
    println!("Paper (Table 5) means: Point 41/10, Call 21/5, Opcode 20/5, Return 28/6,");
    println!("Store 36/7, Loop 35/5, Guard 33/12, Default 45/11.");
}
