//! Emits the reproduction's key metrics as JSON on stdout — the
//! machine-readable companion to EXPERIMENTS.md (captured into
//! `results/summary.json`).

use bpfree_bench::load_suite;
use bpfree_core::{
    evaluate, loop_rand_predictions, perfect_predictions, random_predictions,
    taken_predictions, CombinedPredictor, HeuristicKind, Report, DEFAULT_SEED,
};
use serde::Serialize;

#[derive(Serialize)]
struct BenchmarkSummary {
    name: String,
    lang: String,
    spec: bool,
    static_instructions: u64,
    dynamic_instructions: u64,
    dynamic_branches: u64,
    nonloop_fraction: f64,
    heuristic: Report,
    perfect: Report,
    taken: Report,
    random: Report,
    loop_rand: Report,
}

#[derive(Serialize)]
struct Summary {
    paper: &'static str,
    benchmarks: Vec<BenchmarkSummary>,
    mean_heuristic_all_miss: f64,
    mean_perfect_all_miss: f64,
    mean_random_nonloop_miss: f64,
}

fn main() {
    let mut benchmarks = Vec::new();
    for d in load_suite() {
        let cp = CombinedPredictor::new(&d.program, &d.classifier, HeuristicKind::paper_order());
        let heuristic = evaluate(&cp.predictions(), &d.profile, &d.classifier);
        let perfect = evaluate(
            &perfect_predictions(&d.program, &d.profile),
            &d.profile,
            &d.classifier,
        );
        let taken = evaluate(&taken_predictions(&d.program), &d.profile, &d.classifier);
        let random = evaluate(
            &random_predictions(&d.program, DEFAULT_SEED),
            &d.profile,
            &d.classifier,
        );
        let loop_rand = evaluate(
            &loop_rand_predictions(&d.program, &d.classifier, DEFAULT_SEED),
            &d.profile,
            &d.classifier,
        );
        benchmarks.push(BenchmarkSummary {
            name: d.bench.name.to_string(),
            lang: d.bench.lang.to_string(),
            spec: d.bench.spec,
            static_instructions: d.program.static_size(),
            dynamic_instructions: d.run.instructions,
            dynamic_branches: d.profile.total_branches(),
            nonloop_fraction: heuristic.nonloop_fraction(),
            heuristic,
            perfect,
            taken,
            random,
            loop_rand,
        });
    }
    let n = benchmarks.len() as f64;
    let summary = Summary {
        paper: "Ball & Larus, Branch Prediction for Free, PLDI 1993",
        mean_heuristic_all_miss: benchmarks
            .iter()
            .map(|b| b.heuristic.all.miss_rate())
            .sum::<f64>()
            / n,
        mean_perfect_all_miss: benchmarks
            .iter()
            .map(|b| b.perfect.all.miss_rate())
            .sum::<f64>()
            / n,
        mean_random_nonloop_miss: benchmarks
            .iter()
            .map(|b| b.random.nonloop.miss_rate())
            .sum::<f64>()
            / n,
        benchmarks,
    };
    println!(
        "{}",
        serde_json::to_string_pretty(&summary).expect("summary serialises")
    );
}
