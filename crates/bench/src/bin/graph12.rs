//! Regenerates **Graph 12**: the analytic model `f(m, s) = 1 - (1-m)^s`
//! for miss rates m = 0.025 .. 0.30 in steps of 0.025 — the cumulative
//! fraction of executed instructions in sequences of length ≤ s under
//! unit-length blocks and independent branches.

use bpfree_core::model::{dividing_length, graph12_curves};

fn main() {
    bpfree_bench::init("graph12");
    let curves = graph12_curves(200, 10);
    print!("{:>6}", "len");
    for c in &curves {
        print!(" {:>6.3}", c.miss_rate);
    }
    println!();
    let n_points = curves[0].points.len();
    for i in 0..n_points {
        print!("{:>6}", curves[0].points[i].0);
        for c in &curves {
            print!(" {:>6.1}", 100.0 * c.points[i].1);
        }
        println!();
    }
    println!();
    println!("model dividing lengths (50% of instructions):");
    for c in &curves {
        println!(
            "  m = {:>5.3}  ->  {}",
            c.miss_rate,
            dividing_length(c.miss_rate)
        );
    }
    println!();
    println!("Paper's reading: the payoff in sequence length comes from pushing the");
    println!("miss rate below ~15%, not from 30% -> 15%.");
}
