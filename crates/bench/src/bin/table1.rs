//! Regenerates **Table 1**: the benchmark roster with language group and
//! code size (static IR instructions stand in for object-code bytes),
//! sorted within groups by size like the paper.

use bpfree_bench::load_suite;
use bpfree_suite::Lang;

fn main() {
    bpfree_bench::init("table1");
    let mut rows: Vec<(String, String, Lang, bool, u64, usize)> = load_suite()
        .into_iter()
        .map(|d| {
            (
                d.bench.name.to_string(),
                d.bench.description.to_string(),
                d.bench.lang,
                d.bench.spec,
                d.program.static_size(),
                d.program.funcs().len(),
            )
        })
        .collect();
    rows.sort_by(|a, b| {
        (a.2 == Lang::Fortran)
            .cmp(&(b.2 == Lang::Fortran))
            .then(b.4.cmp(&a.4))
    });

    println!(
        "{:<11} {:<42} {:>4} {:>5} {:>7} {:>6}",
        "Program", "Description", "Lng", "SPEC", "Instrs", "Funcs"
    );
    println!("{:-<80}", "");
    let mut last_lang = None;
    for (name, desc, lang, spec, size, funcs) in rows {
        if last_lang.is_some() && last_lang != Some(lang) {
            println!("{:-<80}", "");
        }
        last_lang = Some(lang);
        println!(
            "{:<11} {:<42} {:>4} {:>5} {:>7} {:>6}",
            name,
            desc,
            lang.to_string(),
            if spec { "*" } else { "" },
            size,
            funcs
        );
    }
    println!();
    println!("Paper (Table 1): 23 benchmarks, SPEC89 marked *, C group then Fortran group,");
    println!("sorted by object code size. Sizes here are static IR instruction counts.");
}
