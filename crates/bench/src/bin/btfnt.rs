//! Ablation: "backward taken, forward not taken" (BTFNT) vs. the paper's
//! natural-loop predictor.
//!
//! The paper motivates natural-loop analysis by noting that many loop
//! branches are *not* backwards branches (40% of dynamic loop branches in
//! xlisp, 45% in doduc). BTFNT is what the hardware-assisted schemes of
//! the era assumed; this binary shows how much the loop analysis buys on
//! loop branches, benchmark by benchmark.

use bpfree_bench::{load_suite, mean_std, pct};
use bpfree_core::{btfnt_predictions, evaluate, loop_rand_predictions, DEFAULT_SEED};

fn main() {
    bpfree_bench::init("btfnt");
    println!(
        "{:<11} {:>10} {:>10} {:>9}",
        "Program", "BTFNT", "LoopPred", "Perfect"
    );
    println!("{:-<45}", "");
    let mut bt = Vec::new();
    let mut lp = Vec::new();
    for d in load_suite() {
        let r_bt = evaluate(&btfnt_predictions(&d.program), &d.profile, &d.classifier);
        let r_lp = evaluate(
            &loop_rand_predictions(&d.program, &d.classifier, DEFAULT_SEED),
            &d.profile,
            &d.classifier,
        );
        println!(
            "{:<11} {:>10} {:>10} {:>9}",
            d.bench.name,
            pct(r_bt.loop_branches.miss_rate()),
            pct(r_lp.loop_branches.miss_rate()),
            pct(r_lp.loop_branches.perfect_rate()),
        );
        bt.push(r_bt.loop_branches.miss_rate());
        lp.push(r_lp.loop_branches.miss_rate());
    }
    let (bm, _) = mean_std(&bt);
    let (lm, _) = mean_std(&lp);
    println!("{:-<45}", "");
    println!("{:<11} {:>10} {:>10}", "MEAN", pct(bm), pct(lm));
    println!();
    println!("Natural-loop prediction handles the loop branches that are not");
    println!("backwards branches (loop exits and forward continues); BTFNT cannot.");
}
