//! The perf-tracking harness behind `bpfree bench --json`.
//!
//! Measures the two interpreter tiers head-to-head on every suite
//! benchmark (dynamic instructions per second on the reference dataset)
//! plus the wall-clock of a cold `exp all` against a fresh in-memory
//! engine, and emits the lot as `BENCH_interp.json`. The file is
//! committed per PR so interpreter throughput is tracked over time
//! instead of anecdotally; CI appends the same numbers to its job
//! summary.
//!
//! Timings use whatever build profile the binary was compiled under —
//! run `cargo run --release -- bench --json` for numbers worth
//! comparing.

use std::io;
use std::path::Path;
use std::time::Instant;

use bpfree_engine::{Engine, EngineConfig};
use bpfree_sim::{BytecodeProgram, InterpTier, NullObserver, SimConfig};

use crate::json::Json;
use crate::registry;
use crate::sink::DiscardSink;

/// One tier's timing on one benchmark.
struct TierSample {
    seconds: f64,
    instructions: u64,
}

/// Timed passes per tier per benchmark. The tiers alternate and each
/// reports its *minimum*, so slow outliers from scheduler noise (this
/// often runs on loaded CI boxes) hit both tiers alike instead of
/// corrupting whichever tier ran during the spike.
const ROUNDS: usize = 3;

/// Runs `program` on its reference dataset under `tier` and times the
/// pass. The decode cost is excluded for the bytecode tier — it is paid
/// once per `(benchmark, Options)` in real workloads (the engine memo)
/// while the measured pass runs per dataset.
fn time_tier(
    bench: &bpfree_suite::Benchmark,
    program: &bpfree_ir::Program,
    decoded: &BytecodeProgram,
    dataset: &bpfree_suite::Dataset,
    tier: InterpTier,
) -> TierSample {
    let start = Instant::now();
    let result = match tier {
        InterpTier::Bytecode => bench.run_decoded(program, decoded, dataset, &mut NullObserver),
        InterpTier::Tree => bench.run_with_config(
            program,
            dataset,
            SimConfig {
                tier: InterpTier::Tree,
                ..SimConfig::default()
            },
            &mut NullObserver,
        ),
    }
    .unwrap_or_else(|e| panic!("benchmark `{}` fails to run: {e}", bench.name));
    TierSample {
        seconds: start.elapsed().as_secs_f64(),
        instructions: result.instructions,
    }
}

fn rate(s: &TierSample) -> f64 {
    if s.seconds > 0.0 {
        s.instructions as f64 / s.seconds
    } else {
        0.0
    }
}

/// Builds the full report. Runs every suite benchmark's reference
/// dataset [`ROUNDS`] times per tier (interleaved, min taken), then a
/// cold `exp all` (fresh engine, no disk cache, output discarded) under
/// the bytecode tier.
///
/// # Panics
///
/// Panics if a suite benchmark fails to compile or run, or an
/// experiment fails — suite bugs are fatal here as everywhere.
pub fn report() -> Json {
    let mut rows = Vec::new();
    let mut hottest: Option<(&'static str, u64, f64)> = None;
    for bench in bpfree_suite::all() {
        let program = bench
            .compile()
            .unwrap_or_else(|e| panic!("benchmark `{}` fails to compile: {e}", bench.name));
        let decoded = BytecodeProgram::compile(&program);
        let datasets = bench.datasets();
        let dataset = &datasets[0];
        let mut tree = time_tier(&bench, &program, &decoded, dataset, InterpTier::Tree);
        let mut bytecode = time_tier(&bench, &program, &decoded, dataset, InterpTier::Bytecode);
        for _ in 1..ROUNDS {
            let t = time_tier(&bench, &program, &decoded, dataset, InterpTier::Tree);
            tree.seconds = tree.seconds.min(t.seconds);
            let b = time_tier(&bench, &program, &decoded, dataset, InterpTier::Bytecode);
            bytecode.seconds = bytecode.seconds.min(b.seconds);
        }
        assert_eq!(
            tree.instructions, bytecode.instructions,
            "tiers disagree on dynamic instruction count for `{}`",
            bench.name
        );
        let speedup = if bytecode.seconds > 0.0 {
            tree.seconds / bytecode.seconds
        } else {
            0.0
        };
        if hottest.is_none_or(|(_, instrs, _)| bytecode.instructions > instrs) {
            hottest = Some((bench.name, bytecode.instructions, speedup));
        }
        rows.push(
            Json::obj()
                .field("name", Json::Str(bench.name.to_string()))
                .field("dataset", Json::Str(dataset.name.clone()))
                .field("instructions", Json::UInt(bytecode.instructions))
                .field("tree_instrs_per_sec", Json::Float(rate(&tree)))
                .field("bytecode_instrs_per_sec", Json::Float(rate(&bytecode)))
                .field("speedup", Json::Float(speedup))
                .build(),
        );
    }

    // Cold `exp all`: fresh engine, in-memory only, output discarded —
    // the end-to-end number the tier exists to improve.
    let engine = Engine::new(EngineConfig::no_cache());
    let exps = registry::all();
    let start = Instant::now();
    registry::run_experiments(exps, &engine, &mut DiscardSink::new(), false)
        .expect("discard sink cannot fail");
    let exp_all_seconds = start.elapsed().as_secs_f64();

    let (hot_name, hot_instrs, hot_speedup) = hottest.expect("suite is non-empty");
    Json::obj()
        .field("schema", Json::Str("bpfree-bench-interp/1".to_string()))
        .field(
            "profile",
            Json::Str(
                if cfg!(debug_assertions) {
                    "debug"
                } else {
                    "release"
                }
                .to_string(),
            ),
        )
        .field("benchmarks", Json::Arr(rows))
        .field(
            "hottest",
            Json::obj()
                .field("name", Json::Str(hot_name.to_string()))
                .field("instructions", Json::UInt(hot_instrs))
                .field("speedup", Json::Float(hot_speedup))
                .build(),
        )
        .field(
            "exp_all_cold",
            Json::obj()
                .field("seconds", Json::Float(exp_all_seconds))
                .field("experiments", Json::UInt(exps.len() as u64))
                .field("interpreter_passes", Json::UInt(engine.simulations()))
                .build(),
        )
        .build()
}

/// Writes [`report`] to `path` (trailing newline included) and echoes a
/// one-line summary to stderr.
///
/// # Errors
///
/// Propagates filesystem errors from the write.
pub fn write_report(path: &Path) -> io::Result<()> {
    let doc = report();
    std::fs::write(path, doc.pretty() + "\n")?;
    eprintln!("[bpfree] wrote {}", path.display());
    Ok(())
}
