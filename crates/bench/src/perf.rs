//! The perf-tracking harness behind `bpfree bench --json`.
//!
//! Measures the two interpreter tiers head-to-head on every suite
//! benchmark (dynamic instructions per second on the reference dataset)
//! plus the wall-clock of a cold `exp all` against a fresh in-memory
//! engine, and emits the lot as `BENCH_interp.json`. The file is
//! committed per PR so interpreter throughput is tracked over time
//! instead of anecdotally; CI appends the same numbers to its job
//! summary.
//!
//! Timings use whatever build profile the binary was compiled under —
//! run `cargo run --release -- bench --json` for numbers worth
//! comparing.

use std::io;
use std::path::Path;
use std::time::Instant;

use bpfree_core::ipbc::{IpbcAnalyzer, SequenceDist};
use bpfree_core::ordering::{subset_sweep_wins, BenchOrderData, KSubsets, OrderingStudy};
use bpfree_core::{
    evaluate_trace, loop_rand_predictions, perfect_predictions, BranchClassifier,
    CombinedPredictor, HeuristicKind, HeuristicTable, Predictions, DEFAULT_SEED,
};
use bpfree_engine::{Engine, EngineConfig};
use bpfree_sim::{BranchTrace, BytecodeProgram, InterpTier, NullObserver, SimConfig};

use crate::experiments::graphs4_11::TRACED;
use crate::json::Json;
use crate::registry;
use crate::sink::DiscardSink;
use crate::{load_named_traced_on, BenchData};

/// One tier's timing on one benchmark.
struct TierSample {
    seconds: f64,
    instructions: u64,
}

/// Timed passes per tier per benchmark. The tiers alternate and each
/// reports its *minimum*, so slow outliers from scheduler noise (this
/// often runs on loaded CI boxes) hit both tiers alike instead of
/// corrupting whichever tier ran during the spike.
const ROUNDS: usize = 3;

/// Runs `program` on its reference dataset under `tier` and times the
/// pass. The decode cost is excluded for the bytecode tier — it is paid
/// once per `(benchmark, Options)` in real workloads (the engine memo)
/// while the measured pass runs per dataset.
fn time_tier(
    bench: &bpfree_suite::Benchmark,
    program: &bpfree_ir::Program,
    decoded: &BytecodeProgram,
    dataset: &bpfree_suite::Dataset,
    tier: InterpTier,
) -> TierSample {
    let start = Instant::now();
    let result = match tier {
        InterpTier::Bytecode => bench.run_decoded(program, decoded, dataset, &mut NullObserver),
        InterpTier::Tree => bench.run_with_config(
            program,
            dataset,
            SimConfig {
                tier: InterpTier::Tree,
                ..SimConfig::default()
            },
            &mut NullObserver,
        ),
    }
    .unwrap_or_else(|e| panic!("benchmark `{}` fails to run: {e}", bench.name));
    TierSample {
        seconds: start.elapsed().as_secs_f64(),
        instructions: result.instructions,
    }
}

fn rate(s: &TierSample) -> f64 {
    if s.seconds > 0.0 {
        s.instructions as f64 / s.seconds
    } else {
        0.0
    }
}

/// Builds the full report. Runs every suite benchmark's reference
/// dataset [`ROUNDS`] times per tier (interleaved, min taken), then a
/// cold `exp all` (fresh engine, no disk cache, output discarded) under
/// the bytecode tier.
///
/// # Panics
///
/// Panics if a suite benchmark fails to compile or run, or an
/// experiment fails — suite bugs are fatal here as everywhere.
pub fn report() -> Json {
    let mut rows = Vec::new();
    let mut hottest: Option<(&'static str, u64, f64)> = None;
    for bench in bpfree_suite::all() {
        let program = bench
            .compile()
            .unwrap_or_else(|e| panic!("benchmark `{}` fails to compile: {e}", bench.name));
        let decoded = BytecodeProgram::compile(&program);
        let datasets = bench.datasets();
        let dataset = &datasets[0];
        let mut tree = time_tier(&bench, &program, &decoded, dataset, InterpTier::Tree);
        let mut bytecode = time_tier(&bench, &program, &decoded, dataset, InterpTier::Bytecode);
        for _ in 1..ROUNDS {
            let t = time_tier(&bench, &program, &decoded, dataset, InterpTier::Tree);
            tree.seconds = tree.seconds.min(t.seconds);
            let b = time_tier(&bench, &program, &decoded, dataset, InterpTier::Bytecode);
            bytecode.seconds = bytecode.seconds.min(b.seconds);
        }
        assert_eq!(
            tree.instructions, bytecode.instructions,
            "tiers disagree on dynamic instruction count for `{}`",
            bench.name
        );
        let speedup = if bytecode.seconds > 0.0 {
            tree.seconds / bytecode.seconds
        } else {
            0.0
        };
        if hottest.is_none_or(|(_, instrs, _)| bytecode.instructions > instrs) {
            hottest = Some((bench.name, bytecode.instructions, speedup));
        }
        rows.push(
            Json::obj()
                .field("name", Json::Str(bench.name.to_string()))
                .field("dataset", Json::Str(dataset.name.clone()))
                .field("instructions", Json::UInt(bytecode.instructions))
                .field("tree_instrs_per_sec", Json::Float(rate(&tree)))
                .field("bytecode_instrs_per_sec", Json::Float(rate(&bytecode)))
                .field("speedup", Json::Float(speedup))
                .build(),
        );
    }

    // Cold `exp all`: fresh engine, in-memory only, output discarded —
    // the end-to-end number the tier exists to improve.
    let engine = Engine::new(EngineConfig::no_cache());
    let exps = registry::all();
    let start = Instant::now();
    registry::run_experiments(exps, &engine, &mut DiscardSink::new(), false)
        .expect("discard sink cannot fail");
    let exp_all_seconds = start.elapsed().as_secs_f64();

    let (hot_name, hot_instrs, hot_speedup) = hottest.expect("suite is non-empty");
    Json::obj()
        .field("schema", Json::Str("bpfree-bench-interp/1".to_string()))
        .field(
            "profile",
            Json::Str(
                if cfg!(debug_assertions) {
                    "debug"
                } else {
                    "release"
                }
                .to_string(),
            ),
        )
        .field("benchmarks", Json::Arr(rows))
        .field(
            "hottest",
            Json::obj()
                .field("name", Json::Str(hot_name.to_string()))
                .field("instructions", Json::UInt(hot_instrs))
                .field("speedup", Json::Float(hot_speedup))
                .build(),
        )
        .field(
            "exp_all_cold",
            Json::obj()
                .field("seconds", Json::Float(exp_all_seconds))
                .field("experiments", Json::UInt(exps.len() as u64))
                .field("interpreter_passes", Json::UInt(engine.simulations()))
                .build(),
        )
        .build()
}

/// Writes [`report`] to `path` (trailing newline included) and echoes a
/// one-line summary to stderr.
///
/// # Errors
///
/// Propagates filesystem errors from the write.
pub fn write_report(path: &Path) -> io::Result<()> {
    let doc = report();
    std::fs::write(path, doc.pretty() + "\n")?;
    eprintln!("[bpfree] wrote {}", path.display());
    Ok(())
}

/// The three predictors every replay measurement scores simultaneously
/// — the `graphs4_11` trio, so the timed work is the real experiment's
/// work.
fn replay_predictors(d: &BenchData) -> [Predictions; 3] {
    let loop_rand = loop_rand_predictions(&d.program, &d.classifier, DEFAULT_SEED);
    let heuristic = CombinedPredictor::new(&d.program, &d.classifier, HeuristicKind::paper_order())
        .predictions();
    let perfect = perfect_predictions(&d.program, &d.profile);
    [loop_rand, heuristic, perfect]
}

fn build_analyzer<'p>(d: &'p BenchData, preds: &'p [Predictions; 3]) -> IpbcAnalyzer<'p> {
    let mut analyzer = IpbcAnalyzer::new(&d.program);
    for (name, p) in ["Loop+Rand", "Heuristic", "Perfect"].iter().zip(preds) {
        analyzer.add_predictor(*name, p);
    }
    analyzer
}

/// One serial IPBC replay, returning the elapsed seconds and the
/// finished distributions. The clock covers the replay itself — the
/// analyzer build (predictor densification) is identical for both tiers
/// and excluded, so the ratio measures the tiers, not shared setup.
fn time_serial_replay(
    d: &BenchData,
    trace: &BranchTrace,
    preds: &[Predictions; 3],
) -> (f64, Vec<SequenceDist>) {
    let mut analyzer = build_analyzer(d, preds);
    let start = Instant::now();
    trace.replay(&mut analyzer);
    let seconds = start.elapsed().as_secs_f64();
    (seconds, analyzer.finish())
}

/// One segmented IPBC replay at an explicit job count. The clock covers
/// `replay_segmented_jobs` whole — fused-table prep, segment scans, and
/// the merge are all part of the tier being measured.
fn time_segmented_replay(
    d: &BenchData,
    trace: &BranchTrace,
    preds: &[Predictions; 3],
    jobs: usize,
) -> (f64, Vec<SequenceDist>) {
    let mut analyzer = build_analyzer(d, preds);
    let start = Instant::now();
    trace.replay_segmented_jobs(jobs, &mut analyzer);
    let seconds = start.elapsed().as_secs_f64();
    (seconds, analyzer.finish())
}

/// Seconds per tally-tier evaluation of all three predictors. The
/// O(dict) pass is microseconds-fast, so it loops until the clock has
/// something to measure and divides.
fn time_tally_eval(trace: &BranchTrace, preds: &[Predictions; 3]) -> f64 {
    let mut iters = 1u32;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            for p in preds {
                std::hint::black_box(evaluate_trace(p, trace));
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= 0.01 || iters >= 1 << 20 {
            return elapsed / f64::from(iters);
        }
        iters *= 2;
    }
}

/// The job counts the segmented tier is sampled at.
const REPLAY_JOBS: [usize; 3] = [1, 4, 8];

/// Builds the replay-throughput report behind `BENCH_replay.json`.
///
/// Traces the seven `graphs4_11` benchmarks (fresh engine, no disk
/// cache), picks the largest trace by event count, and times three ways
/// of scoring the same three predictors over it: serial
/// [`BranchTrace::replay`] through an [`IpbcAnalyzer`], segmented
/// replay at jobs 1/4/8, and the O(dict) tally tier
/// ([`evaluate_trace`]). Each mode reports events per second
/// (min-of-[`ROUNDS`], interleaved, like the interpreter report). Every
/// segmented run is asserted bit-identical to the serial distributions
/// — the harness doubles as an end-to-end parity check on real data.
///
/// # Panics
///
/// Panics if a traced benchmark fails to compile or run, or if a
/// segmented replay disagrees with serial replay.
pub fn replay_report() -> Json {
    let engine = Engine::new(EngineConfig::no_cache());
    let data = load_named_traced_on(&engine, &TRACED);
    let (d, trace) = data
        .iter()
        .map(|d| {
            let t = d.trace(&engine);
            (d, t)
        })
        .max_by_key(|(_, t)| t.len())
        .expect("TRACED is non-empty");
    let preds = replay_predictors(d);
    let events = trace.len() as u64;

    let (mut serial_secs, serial_dists) = time_serial_replay(d, &trace, &preds);
    let mut seg_secs = [0f64; REPLAY_JOBS.len()];
    for (slot, &jobs) in seg_secs.iter_mut().zip(&REPLAY_JOBS) {
        let (secs, dists) = time_segmented_replay(d, &trace, &preds, jobs);
        assert_eq!(
            dists, serial_dists,
            "segmented replay (jobs={jobs}) diverged from serial on {}",
            d.bench.name
        );
        *slot = secs;
    }
    let mut tally_secs = time_tally_eval(&trace, &preds);
    for _ in 1..ROUNDS {
        serial_secs = serial_secs.min(time_serial_replay(d, &trace, &preds).0);
        for (slot, &jobs) in seg_secs.iter_mut().zip(&REPLAY_JOBS) {
            *slot = slot.min(time_segmented_replay(d, &trace, &preds, jobs).0);
        }
        tally_secs = tally_secs.min(time_tally_eval(&trace, &preds));
    }

    // The tally tier derives the order-independent numbers the serial
    // replay also produces; cross-check them here too.
    for (p, dist) in preds.iter().zip(&serial_dists) {
        let eval = evaluate_trace(p, &trace);
        assert_eq!(eval.mispredicted, dist.mispredicted, "{}", dist.name);
        assert_eq!(eval.total_instructions, dist.total_instructions);
    }

    let eps = |secs: f64| {
        if secs > 0.0 {
            events as f64 / secs
        } else {
            0.0
        }
    };
    let speedup = |secs: f64| {
        if secs > 0.0 {
            serial_secs / secs
        } else {
            0.0
        }
    };

    let segmented = seg_secs
        .iter()
        .zip(&REPLAY_JOBS)
        .map(|(&secs, &jobs)| {
            Json::obj()
                .field("jobs", Json::UInt(jobs as u64))
                .field("seconds", Json::Float(secs))
                .field("events_per_sec", Json::Float(eps(secs)))
                .field("speedup_vs_serial", Json::Float(speedup(secs)))
                .build()
        })
        .collect();

    Json::obj()
        .field("schema", Json::Str("bpfree-bench-replay/1".to_string()))
        .field(
            "profile",
            Json::Str(
                if cfg!(debug_assertions) {
                    "debug"
                } else {
                    "release"
                }
                .to_string(),
            ),
        )
        .field(
            "trace",
            Json::obj()
                .field("benchmark", Json::Str(d.bench.name.to_string()))
                .field("events", Json::UInt(events))
                .field("dict_entries", Json::UInt(trace.dict().len() as u64))
                .field("instructions", Json::UInt(trace.total_instructions()))
                .field("predictors", Json::UInt(preds.len() as u64))
                .build(),
        )
        .field(
            "serial",
            Json::obj()
                .field("seconds", Json::Float(serial_secs))
                .field("events_per_sec", Json::Float(eps(serial_secs)))
                .build(),
        )
        .field("segmented", Json::Arr(segmented))
        .field(
            "tally",
            Json::obj()
                .field("seconds_per_eval", Json::Float(tally_secs))
                .field("events_per_sec", Json::Float(eps(tally_secs)))
                .field("speedup_vs_serial", Json::Float(speedup(tally_secs)))
                .build(),
        )
        .build()
}

/// Writes [`replay_report`] to `path` (trailing newline included).
///
/// # Errors
///
/// Propagates filesystem errors from the write.
pub fn write_replay_report(path: &Path) -> io::Result<()> {
    let doc = replay_report();
    std::fs::write(path, doc.pretty() + "\n")?;
    eprintln!("[bpfree] wrote {}", path.display());
    Ok(())
}

/// One cold `exp all` (fresh engine, no disk cache, output discarded)
/// through `runner`, returning seconds and interpreter passes.
fn time_cold_batch(
    runner: impl Fn(
        &[&'static dyn registry::Experiment],
        &Engine,
        &mut dyn crate::sink::Sink,
    ) -> io::Result<()>,
) -> (f64, u64) {
    let engine = Engine::new(EngineConfig::no_cache());
    let exps = registry::all();
    let start = Instant::now();
    runner(exps, &engine, &mut DiscardSink::new()).expect("discard sink cannot fail");
    (start.elapsed().as_secs_f64(), engine.simulations())
}

/// Builds the scheduler report behind `BENCH_sched.json`: a cold
/// `exp all` under the serial batch runner (the pre-planner baseline:
/// pre-trace, then one experiment at a time) versus the planned runner
/// (the whole batch as one task graph on the shared pool), at the
/// process's effective job count. Both runs discard output and use a
/// fresh in-memory engine, so the comparison is pure scheduling; the
/// interpreter-pass counts are asserted equal — the planner must not
/// change *what* is computed, only *when*.
///
/// # Panics
///
/// Panics if an experiment fails, or if the two runners disagree on the
/// number of interpreter passes.
pub fn sched_report() -> Json {
    let jobs = bpfree_par::jobs();
    let (mut serial_secs, serial_passes) =
        time_cold_batch(|e, g, s| registry::run_experiments_serial(e, g, s, false));
    let (mut planned_secs, planned_passes) =
        time_cold_batch(|e, g, s| registry::run_experiments_planned(e, g, s, false));
    assert_eq!(
        serial_passes, planned_passes,
        "planned batch changed the interpreter-pass count"
    );
    for _ in 1..ROUNDS {
        serial_secs = serial_secs
            .min(time_cold_batch(|e, g, s| registry::run_experiments_serial(e, g, s, false)).0);
        planned_secs = planned_secs
            .min(time_cold_batch(|e, g, s| registry::run_experiments_planned(e, g, s, false)).0);
    }
    let speedup = if planned_secs > 0.0 {
        serial_secs / planned_secs
    } else {
        0.0
    };
    Json::obj()
        .field("schema", Json::Str("bpfree-bench-sched/1".to_string()))
        .field(
            "profile",
            Json::Str(
                if cfg!(debug_assertions) {
                    "debug"
                } else {
                    "release"
                }
                .to_string(),
            ),
        )
        .field("jobs", Json::UInt(jobs as u64))
        .field(
            "workers",
            Json::UInt(bpfree_par::clamp_workers(jobs) as u64),
        )
        .field("experiments", Json::UInt(registry::all().len() as u64))
        .field("interpreter_passes", Json::UInt(planned_passes))
        .field(
            "serial_exp_all_cold",
            Json::obj()
                .field("seconds", Json::Float(serial_secs))
                .build(),
        )
        .field(
            "planned_exp_all_cold",
            Json::obj()
                .field("seconds", Json::Float(planned_secs))
                .build(),
        )
        .field("speedup_vs_serial", Json::Float(speedup))
        .build()
}

/// Writes [`sched_report`] to `path` (trailing newline included).
///
/// # Errors
///
/// Propagates filesystem errors from the write.
pub fn write_sched_report(path: &Path) -> io::Result<()> {
    let doc = sched_report();
    std::fs::write(path, doc.pretty() + "\n")?;
    eprintln!("[bpfree] wrote {}", path.display());
    Ok(())
}

/// One dense analysis pass — classification plus the full heuristic
/// matrix — timed whole.
fn time_dense_analysis(program: &bpfree_ir::Program) -> f64 {
    let start = Instant::now();
    let classifier = BranchClassifier::analyze(program);
    let table = HeuristicTable::build(program, &classifier);
    std::hint::black_box((&classifier, &table));
    start.elapsed().as_secs_f64()
}

/// One seed-shaped (hash-keyed) analysis pass over the same program.
fn time_seed_analysis(program: &bpfree_ir::Program) -> f64 {
    let start = Instant::now();
    let analysis = crate::baseline::analyze_hash_keyed(program);
    std::hint::black_box(&analysis);
    start.elapsed().as_secs_f64()
}

/// Builds the analysis-throughput report behind `BENCH_analysis.json`:
/// classify + predict every suite program, dense (`Vec` indexed by
/// `BranchId`) versus the seed's hash-keyed storage
/// ([`crate::baseline`]). Both run the identical CFG / dominator / loop
/// analyses and heuristic evaluations, so the ratio isolates the
/// representation. Per benchmark: branches per second under each shape,
/// min-of-[`ROUNDS`] interleaved like the interpreter report, with the
/// two answers asserted equal branch-for-branch before any clock
/// starts.
///
/// # Panics
///
/// Panics if a suite benchmark fails to compile or the hash-keyed
/// baseline disagrees with the dense pipeline on any branch.
pub fn analysis_report() -> Json {
    let mut rows = Vec::new();
    let mut dense_total = 0f64;
    let mut seed_total = 0f64;
    let mut branches_total = 0u64;
    for bench in bpfree_suite::all() {
        let program = bench
            .compile()
            .unwrap_or_else(|e| panic!("benchmark `{}` fails to compile: {e}", bench.name));
        // Parity before timing: the baseline must agree everywhere.
        let classifier = BranchClassifier::analyze(&program);
        let table = HeuristicTable::build(&program, &classifier);
        let hashed = crate::baseline::analyze_hash_keyed(&program);
        crate::baseline::assert_matches_dense(&hashed, &classifier, &table);
        let branches = classifier.rows().count() as u64;
        let nonloop = table.rows().count() as u64;
        drop((classifier, table, hashed));

        let mut dense = time_dense_analysis(&program);
        let mut seed = time_seed_analysis(&program);
        for _ in 1..ROUNDS {
            dense = dense.min(time_dense_analysis(&program));
            seed = seed.min(time_seed_analysis(&program));
        }
        let bps = |secs: f64| {
            if secs > 0.0 {
                branches as f64 / secs
            } else {
                0.0
            }
        };
        let speedup = if dense > 0.0 { seed / dense } else { 0.0 };
        dense_total += dense;
        seed_total += seed;
        branches_total += branches;
        rows.push(
            Json::obj()
                .field("name", Json::Str(bench.name.to_string()))
                .field("branches", Json::UInt(branches))
                .field("nonloop_branches", Json::UInt(nonloop))
                .field("dense_branches_per_sec", Json::Float(bps(dense)))
                .field("seed_branches_per_sec", Json::Float(bps(seed)))
                .field("speedup", Json::Float(speedup))
                .build(),
        );
    }
    let total_speedup = if dense_total > 0.0 {
        seed_total / dense_total
    } else {
        0.0
    };
    Json::obj()
        .field("schema", Json::Str("bpfree-bench-analysis/1".to_string()))
        .field(
            "profile",
            Json::Str(
                if cfg!(debug_assertions) {
                    "debug"
                } else {
                    "release"
                }
                .to_string(),
            ),
        )
        .field("benchmarks", Json::Arr(rows))
        .field(
            "total",
            Json::obj()
                .field("branches", Json::UInt(branches_total))
                .field("dense_seconds", Json::Float(dense_total))
                .field("seed_seconds", Json::Float(seed_total))
                .field("speedup", Json::Float(total_speedup))
                .build(),
        )
        .build()
}

/// Writes [`analysis_report`] to `path` (trailing newline included).
///
/// # Errors
///
/// Propagates filesystem errors from the write.
pub fn write_analysis_report(path: &Path) -> io::Result<()> {
    let doc = analysis_report();
    std::fs::write(path, doc.pretty() + "\n")?;
    eprintln!("[bpfree] wrote {}", path.display());
    Ok(())
}

/// One fast 5040 × n matrix build (per-order [`FirstHit`] tables, one
/// parallel task per order), timed whole.
fn time_fast_matrix(benches: &[BenchOrderData]) -> (f64, Vec<Vec<f64>>) {
    let start = Instant::now();
    let study = OrderingStudy::new(benches.to_vec());
    let seconds = start.elapsed().as_secs_f64();
    (seconds, study.rates().to_vec())
}

/// One seed-path matrix build (7-way first-hit scan per group per
/// order), timed whole.
fn time_seed_matrix(benches: &[BenchOrderData]) -> (f64, Vec<Vec<f64>>) {
    let start = Instant::now();
    let rates = crate::baseline::naive_rate_matrix(benches);
    let seconds = start.elapsed().as_secs_f64();
    (seconds, rates)
}

/// One mean-sorted Pareto prune over an already-built study. The study
/// is assembled outside the clock so only the prune is measured.
fn time_fast_prune(benches: &[BenchOrderData], rates: &[Vec<f64>]) -> (f64, Vec<usize>) {
    let study = OrderingStudy::from_parts(benches.to_vec(), rates.to_vec());
    let start = Instant::now();
    let front = study.pareto_front().to_vec();
    (start.elapsed().as_secs_f64(), front)
}

/// One seed-path full-scan prune over the same matrix.
fn time_seed_prune(rates: &[Vec<f64>]) -> (f64, Vec<usize>) {
    let start = Instant::now();
    let front = crate::baseline::naive_pareto(rates);
    (start.elapsed().as_secs_f64(), front)
}

/// One full C(n, k) sweep through the prefix-reuse kernel, run exactly
/// as [`OrderingStudy::subset_experiment`] runs it (contiguous rank
/// ranges per worker, per-worker tallies merged).
fn time_fast_sweep(cols: &[Vec<f64>], n: usize, k: usize, c: usize) -> (f64, Vec<u64>) {
    let trials = KSubsets::count(n, k);
    let start = Instant::now();
    let wins = bpfree_par::par_fold_chunks(
        trials,
        || vec![0u64; c],
        |range, mut wins| {
            subset_sweep_wins(cols, n, k, range.start, range.end - range.start, &mut wins);
            wins
        },
        |mut a, b| {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
            a
        },
    )
    .unwrap_or_else(|| vec![0u64; c]);
    (start.elapsed().as_secs_f64(), wins)
}

/// One full C(n, k) sweep through the seed-path scalar gather, under
/// the identical range-split harness so the ratio isolates the kernel.
fn time_seed_sweep(rows: &[Vec<f64>], n: usize, k: usize, c: usize) -> (f64, Vec<u64>) {
    let trials = KSubsets::count(n, k);
    let start = Instant::now();
    let wins = bpfree_par::par_fold_chunks(
        trials,
        || vec![0u64; c],
        |range, mut wins| {
            crate::baseline::naive_subset_sweep(
                rows,
                n,
                k,
                range.start,
                range.end - range.start,
                &mut wins,
            );
            wins
        },
        |mut a, b| {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
            a
        },
    )
    .unwrap_or_else(|| vec![0u64; c]);
    (start.elapsed().as_secs_f64(), wins)
}

/// Builds the ordering-throughput report behind `BENCH_ordering.json`:
/// the three ordering-study hot paths — the 5040 × 22 rate-matrix
/// build, the Pareto prune, and the full C(22,11) subset sweep — each
/// timed new-kernel vs seed-path on the real roster (matrix300
/// excluded, exactly the `graph1`/`table4` input). Rounds interleave
/// and each side reports its minimum, like every other perf report
/// here; before any clock starts, the two sides of each pair are
/// asserted bit-identical (matrix cells, front indices, win tallies) —
/// the live parity check the acceptance criteria require.
///
/// # Panics
///
/// Panics if a roster benchmark fails to compile or run, or if any
/// seed-path kernel disagrees with its fast replacement.
pub fn ordering_report() -> Json {
    let engine = Engine::new(EngineConfig::no_cache());
    let opt = bpfree_lang::Options::default();
    let roster = crate::ordering_roster();
    let refs: Vec<&bpfree_suite::Benchmark> = roster.iter().collect();
    engine.prefetch(&refs, opt, &[]);
    let benches: Vec<BenchOrderData> = refs
        .iter()
        .map(|b| (*engine.order_data(b, opt)).clone())
        .collect();
    let n = benches.len();
    let k = n / 2;

    // Parity before timing: matrix, front, and tallies must agree
    // bit-for-bit between the kernels being compared.
    let (mut fast_matrix_secs, fast_rates) = time_fast_matrix(&benches);
    let (mut seed_matrix_secs, seed_rates) = time_seed_matrix(&benches);
    assert_eq!(fast_rates.len(), seed_rates.len());
    for (a, b) in fast_rates.iter().zip(&seed_rates) {
        for (x, y) in a.iter().zip(b) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "seed-path matrix diverged from the first-hit build"
            );
        }
    }
    let (mut fast_prune_secs, fast_front) = time_fast_prune(&benches, &fast_rates);
    let (mut seed_prune_secs, seed_front) = time_seed_prune(&fast_rates);
    assert_eq!(
        fast_front, seed_front,
        "mean-sorted prune diverged from the full scan"
    );

    let candidates = &fast_front;
    let c = candidates.len();
    // Candidate-major rows for the seed gather, benchmark-major
    // transposed columns for the prefix kernel — both views of the same
    // pruned matrix.
    let rows: Vec<Vec<f64>> = candidates.iter().map(|&o| fast_rates[o].clone()).collect();
    let cols: Vec<Vec<f64>> = (0..n)
        .map(|b| candidates.iter().map(|&o| fast_rates[o][b]).collect())
        .collect();
    let trials = KSubsets::count(n, k);
    let (mut fast_sweep_secs, fast_wins) = time_fast_sweep(&cols, n, k, c);
    let (mut seed_sweep_secs, seed_wins) = time_seed_sweep(&rows, n, k, c);
    assert_eq!(
        fast_wins, seed_wins,
        "prefix-reuse sweep diverged from the scalar gather"
    );
    assert_eq!(fast_wins.iter().sum::<u64>(), trials);

    for _ in 1..ROUNDS {
        fast_matrix_secs = fast_matrix_secs.min(time_fast_matrix(&benches).0);
        seed_matrix_secs = seed_matrix_secs.min(time_seed_matrix(&benches).0);
        fast_prune_secs = fast_prune_secs.min(time_fast_prune(&benches, &fast_rates).0);
        seed_prune_secs = seed_prune_secs.min(time_seed_prune(&fast_rates).0);
        fast_sweep_secs = fast_sweep_secs.min(time_fast_sweep(&cols, n, k, c).0);
        seed_sweep_secs = seed_sweep_secs.min(time_seed_sweep(&rows, n, k, c).0);
    }

    let ratio = |seed: f64, fast: f64| if fast > 0.0 { seed / fast } else { 0.0 };
    let per_sec = |count: f64, secs: f64| if secs > 0.0 { count / secs } else { 0.0 };
    let section = |seed_secs: f64, fast_secs: f64, count: f64, unit: &str| {
        Json::obj()
            .field("seed_seconds", Json::Float(seed_secs))
            .field("fast_seconds", Json::Float(fast_secs))
            .field(
                &format!("seed_{unit}_per_sec"),
                Json::Float(per_sec(count, seed_secs)),
            )
            .field(
                &format!("fast_{unit}_per_sec"),
                Json::Float(per_sec(count, fast_secs)),
            )
            .field("speedup", Json::Float(ratio(seed_secs, fast_secs)))
            .build()
    };

    Json::obj()
        .field("schema", Json::Str("bpfree-bench-ordering/1".to_string()))
        .field(
            "profile",
            Json::Str(
                if cfg!(debug_assertions) {
                    "debug"
                } else {
                    "release"
                }
                .to_string(),
            ),
        )
        .field("jobs", Json::UInt(bpfree_par::jobs() as u64))
        .field(
            "roster",
            Json::obj()
                .field("benchmarks", Json::UInt(n as u64))
                .field("orders", Json::UInt(fast_rates.len() as u64))
                .field("subset_size", Json::UInt(k as u64))
                .field("pareto_candidates", Json::UInt(c as u64))
                .field("subsets", Json::UInt(trials))
                .build(),
        )
        .field(
            "matrix",
            section(seed_matrix_secs, fast_matrix_secs, 5040.0, "orders"),
        )
        .field(
            "prune",
            section(seed_prune_secs, fast_prune_secs, 5040.0, "orders"),
        )
        .field(
            "subsets",
            section(seed_sweep_secs, fast_sweep_secs, trials as f64, "subsets"),
        )
        .build()
}

/// Writes [`ordering_report`] to `path` (trailing newline included).
///
/// # Errors
///
/// Propagates filesystem errors from the write.
pub fn write_ordering_report(path: &Path) -> io::Result<()> {
    let doc = ordering_report();
    std::fs::write(path, doc.pretty() + "\n")?;
    eprintln!("[bpfree] wrote {}", path.display());
    Ok(())
}

/// Masks wall-clock durations (`21.46ms`, `948ns`, `1.9s`, …) in
/// captured experiment output so warm and mounted runs can be
/// byte-diffed against the cold golden run — the in-process twin of the
/// CI parity jobs' `sed` normalization. A masked duration is a digit
/// run (optionally with a fraction) directly followed by a unit
/// (`ns`/`µs`/`ms`/`s`) and a token boundary; everything else passes
/// through untouched.
fn mask_durations(text: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(text.len());
    let mut i = 0;
    while i < text.len() {
        if !text[i].is_ascii_digit() {
            out.push(text[i]);
            i += 1;
            continue;
        }
        let start = i;
        while i < text.len() && text[i].is_ascii_digit() {
            i += 1;
        }
        if i < text.len() && text[i] == b'.' && text.get(i + 1).is_some_and(u8::is_ascii_digit) {
            i += 1;
            while i < text.len() && text[i].is_ascii_digit() {
                i += 1;
            }
        }
        let rest = &text[i..];
        let unit_len = if rest.starts_with(b"ns") || rest.starts_with(b"ms") {
            Some(2)
        } else if rest.starts_with("µs".as_bytes()) {
            Some("µs".len())
        } else if rest.starts_with(b"s") {
            Some(1)
        } else {
            None
        };
        match unit_len {
            Some(u)
                if matches!(
                    text.get(i + u),
                    None | Some(b' ') | Some(b',') | Some(b'\n')
                ) =>
            {
                out.extend_from_slice(b"TIME");
                out.extend_from_slice(&text[i..i + u]);
                i += u;
            }
            _ => out.extend_from_slice(&text[start..i]),
        }
    }
    out
}

/// One warm `exp all` through a pre-configured engine: runs the whole
/// batch into a [`VecSink`] and returns (seconds, captured bytes,
/// trace-sequence decode allocations during the run).
fn time_warm_batch(engine: &Engine) -> (f64, Vec<u8>, u64) {
    let exps = registry::all();
    let mut sink = crate::sink::VecSink::new();
    let allocs_before = bpfree_sim::trace_seq_allocs();
    let start = Instant::now();
    registry::run_experiments(exps, engine, &mut sink, false).expect("vec sink cannot fail");
    let seconds = start.elapsed().as_secs_f64();
    (
        seconds,
        sink.take(),
        bpfree_sim::trace_seq_allocs() - allocs_before,
    )
}

/// Builds the warm-start report behind `BENCH_warmstart.json`: the same
/// full `exp all` batch served three ways — cold (fresh engine, filling
/// a per-entry v5-style cache directory), warm from that per-entry
/// cache, and warm from a single mounted suite image — with every
/// output byte-diffed against the cold golden run.
///
/// The image side is held to the tentpole's contract before any number
/// is reported: two exports are byte-identical, every entry mounts
/// (zero skips), all six engine miss counters stay at exactly zero
/// through the whole batch, and the mounted runs perform zero
/// trace-sequence decode allocations. Warm timings are
/// min-of-[`ROUNDS`] over fresh engines; the mounted clock includes the
/// image read itself.
///
/// # Panics
///
/// Panics if an experiment fails, any warm output differs from the cold
/// golden bytes, the image is nondeterministic or partially mountable,
/// or the mounted batch recomputes anything.
pub fn warmstart_report() -> Json {
    let dir = std::env::temp_dir().join(format!("bpfree-warmstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache_dir = dir.join("cache");
    let image = dir.join("suite.img");
    let cfg = || EngineConfig {
        use_cache: true,
        cache_dir: cache_dir.clone(),
        verbose: false,
        tier: InterpTier::default(),
    };

    // Cold golden pass: fills the per-entry cache and the memos, and
    // fixes the reference output every warm run must reproduce.
    let cold_engine = Engine::new(cfg());
    let (cold_seconds, golden_raw, _) = time_warm_batch(&cold_engine);
    let golden = mask_durations(&golden_raw);

    // Snapshot the worked engine into the image — twice, to prove the
    // layout is deterministic.
    let (image_entries, image_bytes) = cold_engine
        .export_image(&image)
        .expect("image export cannot fail");
    let image2 = dir.join("suite2.img");
    cold_engine
        .export_image(&image2)
        .expect("image export cannot fail");
    assert_eq!(
        std::fs::read(&image).unwrap(),
        std::fs::read(&image2).unwrap(),
        "double image build must be byte-identical"
    );
    let v5_stat = bpfree_cache::maint::scan(&cache_dir).expect("cache dir scans");
    let v5_entries = v5_stat.entries.len();
    let v5_bytes = v5_stat.total_bytes();

    // Warm from the per-entry cache: one file read + text decode per
    // artifact.
    let mut v5_seconds = f64::INFINITY;
    let mut v5_allocs = 0u64;
    for _ in 0..ROUNDS {
        let engine = Engine::new(cfg());
        let (secs, out, allocs) = time_warm_batch(&engine);
        assert_eq!(
            mask_durations(&out),
            golden,
            "per-entry warm output must match cold golden"
        );
        v5_seconds = v5_seconds.min(secs);
        v5_allocs = allocs;
    }

    // Warm from the mounted image: one buffered read, borrowed traces,
    // zero recomputation of any kind. The clock includes the mount.
    let mut mounted_seconds = f64::INFINITY;
    let mut mount_report = None;
    for _ in 0..ROUNDS {
        let engine = Engine::new(EngineConfig::no_cache());
        let allocs_before = bpfree_sim::trace_seq_allocs();
        let start = Instant::now();
        let report = engine.mount_image(&image).expect("image mounts");
        let exps = registry::all();
        let mut sink = crate::sink::VecSink::new();
        registry::run_experiments(exps, &engine, &mut sink, false).expect("vec sink cannot fail");
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(report.skipped, 0, "every image entry revalidates");
        assert_eq!(
            mask_durations(&sink.take()),
            golden,
            "mounted output must match cold golden"
        );
        assert_eq!(engine.compiles(), 0, "mounted batch compiles nothing");
        assert_eq!(engine.decodes(), 0, "mounted batch decodes no bytecode");
        assert_eq!(engine.analyses(), 0, "mounted batch analyzes nothing");
        assert_eq!(engine.simulations(), 0, "mounted batch simulates nothing");
        assert_eq!(engine.trace_records(), 0, "mounted batch records no traces");
        assert_eq!(engine.orderings(), 0, "mounted batch builds no matrices");
        assert_eq!(
            bpfree_sim::trace_seq_allocs() - allocs_before,
            0,
            "mounted traces are borrowed — zero sequence decode allocations"
        );
        mounted_seconds = mounted_seconds.min(secs);
        mount_report = Some(report);
    }
    let mount_report = mount_report.expect("ROUNDS >= 1");
    let _ = std::fs::remove_dir_all(&dir);

    let speedup = |secs: f64| {
        if secs > 0.0 {
            v5_seconds / secs
        } else {
            0.0
        }
    };
    Json::obj()
        .field("schema", Json::Str("bpfree-bench-warmstart/1".to_string()))
        .field(
            "profile",
            Json::Str(
                if cfg!(debug_assertions) {
                    "debug"
                } else {
                    "release"
                }
                .to_string(),
            ),
        )
        .field("experiments", Json::UInt(registry::all().len() as u64))
        .field(
            "cold",
            Json::obj()
                .field("seconds", Json::Float(cold_seconds))
                .build(),
        )
        .field(
            "per_entry_cache",
            Json::obj()
                .field("seconds", Json::Float(v5_seconds))
                .field("entries", Json::UInt(v5_entries as u64))
                .field("bytes_read", Json::UInt(v5_bytes))
                .field("trace_seq_decode_allocs", Json::UInt(v5_allocs))
                .build(),
        )
        .field(
            "mounted_image",
            Json::obj()
                .field("seconds", Json::Float(mounted_seconds))
                .field("entries", Json::UInt(image_entries as u64))
                .field("bytes_read", Json::UInt(image_bytes))
                .field("trace_seq_decode_allocs", Json::UInt(0))
                .field("mounted", Json::UInt(mount_report.mounted as u64))
                .field("skipped", Json::UInt(mount_report.skipped as u64))
                .field("miss_counters_zero", Json::Bool(true))
                .field(
                    "speedup_vs_per_entry",
                    Json::Float(speedup(mounted_seconds)),
                )
                .build(),
        )
        .build()
}

/// Writes [`warmstart_report`] to `path` (trailing newline included).
///
/// # Errors
///
/// Propagates filesystem errors from the write.
pub fn write_warmstart_report(path: &Path) -> io::Result<()> {
    let doc = warmstart_report();
    std::fs::write(path, doc.pretty() + "\n")?;
    eprintln!("[bpfree] wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::mask_durations;

    fn mask(s: &str) -> String {
        String::from_utf8(mask_durations(s.as_bytes())).unwrap()
    }

    #[test]
    fn masks_durations_like_the_ci_normalizer() {
        assert_eq!(
            mask("exact : 21.468094ms for all C(22,11) subsets\n"),
            "exact : TIMEms for all C(22,11) subsets\n"
        );
        assert_eq!(mask("took 948ns, then 1.9s\n"), "took TIMEns, then TIMEs\n");
        assert_eq!(mask("done in 3µs"), "done in TIMEµs");
        // Not durations: bare numbers, percentages, counts, words.
        assert_eq!(
            mask("31.70% vs 4.54% over 5040 orders"),
            "31.70% vs 4.54% over 5040 orders"
        );
        assert_eq!(
            mask("20k samples, 7 heuristics"),
            "20k samples, 7 heuristics"
        );
        assert_eq!(mask("v1.2savage"), "v1.2savage");
    }
}
