//! Serial-vs-parallel timing for the experiment engine's hot loops:
//! suite loading, the 5040-order rate matrix, Pareto pruning, and the
//! subset experiment. Every parallel path is bit-identical to the
//! serial one (see `bpfree_par`), so these benches are purely about
//! wall clock.
//!
//! Worker counts are forced through `bpfree_par::set_jobs`, so each
//! case's label carries the job count (`jobs1` = serial path).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bpfree_core::ordering::{BenchOrderData, OrderingStudy};
use bpfree_core::{BranchClassifier, HeuristicTable, DEFAULT_SEED};

/// A mid-size slice of the suite: big enough that the parallel wins are
/// visible, small enough that `jobs1` baselines stay benchable.
const NAMES: [&str; 8] = [
    "xlisp", "compress", "espresso", "grep", "eqntott", "awk", "gcc", "lcc",
];

fn study_input() -> Vec<BenchOrderData> {
    NAMES
        .iter()
        .map(|n| {
            let b = bpfree_suite::by_name(n).expect("benchmark exists");
            let p = b.compile().expect("compiles");
            let cl = BranchClassifier::analyze(&p);
            let table = HeuristicTable::build(&p, &cl);
            let (profile, _) = b.profile(&p, 0).expect("runs");
            BenchOrderData::build(*n, &table, &profile, &cl, DEFAULT_SEED)
        })
        .collect()
}

fn job_counts() -> Vec<usize> {
    let max = bpfree_par::available_parallelism();
    if max > 1 {
        vec![1, max]
    } else {
        // Single core: jobs2 measures the threaded path's overhead when
        // oversubscribed (there is no parallel win to show).
        vec![1, 2]
    }
}

/// `OrderingStudy::new`: the 5040 × N miss-rate matrix.
fn bench_rate_matrix(c: &mut Criterion) {
    let input = study_input();
    let mut g = c.benchmark_group("par_rate_matrix");
    g.sample_size(10);
    for jobs in job_counts() {
        bpfree_par::set_jobs(jobs);
        g.bench_function(format!("jobs{jobs}"), |bench| {
            bench.iter(|| black_box(OrderingStudy::new(black_box(input.clone()))))
        });
    }
    bpfree_par::set_jobs(0);
    g.finish();
}

/// `pareto_order_indices`: the all-pairs domination scan over 5040
/// orders.
fn bench_pareto(c: &mut Criterion) {
    let study = OrderingStudy::new(study_input());
    let mut g = c.benchmark_group("par_pareto");
    g.sample_size(10);
    for jobs in job_counts() {
        bpfree_par::set_jobs(jobs);
        g.bench_function(format!("jobs{jobs}"), |bench| {
            bench.iter(|| black_box(study.pareto_order_indices().len()))
        });
    }
    bpfree_par::set_jobs(0);
    g.finish();
}

/// `subset_experiment`: exhaustive C(n, n/2) subset tally.
fn bench_subsets(c: &mut Criterion) {
    let study = OrderingStudy::new(study_input());
    let k = NAMES.len() / 2;
    let mut g = c.benchmark_group("par_subsets");
    g.sample_size(10);
    for jobs in job_counts() {
        bpfree_par::set_jobs(jobs);
        g.bench_function(format!("jobs{jobs}"), |bench| {
            bench.iter(|| black_box(study.subset_experiment(k).len()))
        });
    }
    bpfree_par::set_jobs(0);
    g.finish();
}

/// Cold suite loading (cache bypassed): one compile+analyze+profile
/// pipeline per worker.
fn bench_load_suite(c: &mut Criterion) {
    // Force the uncached path so this measures the pipeline, not disk.
    bpfree_bench::config::apply(bpfree_bench::config::Config {
        jobs: None,
        use_cache: false,
        cache_dir: bpfree_cache::default_dir(),
        interp: bpfree_sim::InterpTier::Bytecode,
        timings: None,
    });
    let mut g = c.benchmark_group("par_load_suite");
    g.sample_size(10);
    for jobs in job_counts() {
        bpfree_par::set_jobs(jobs);
        g.bench_function(format!("jobs{jobs}"), |bench| {
            bench.iter(|| black_box(bpfree_bench::load_suite().len()))
        });
    }
    bpfree_par::set_jobs(0);
    g.finish();
}

criterion_group!(
    benches,
    bench_rate_matrix,
    bench_pareto,
    bench_subsets,
    bench_load_suite
);
criterion_main!(benches);
