//! Criterion benches for the trace evaluation engine (ISSUE 6): scoring
//! the `graphs4_11` predictor trio over one recorded branch trace via
//! serial replay, segmented replay at jobs 1/4/8, and the O(dict) tally
//! tier. Throughput is reported in trace events per second; `bpfree
//! bench --json` tracks the same ratios per commit in
//! `BENCH_replay.json` (acceptance: segmented jobs=8 ≥4× serial, tally
//! ≥20×, on the largest trace).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

use bpfree_bench::{load_named_traced_on, BenchData};
use bpfree_core::ipbc::IpbcAnalyzer;
use bpfree_core::{
    evaluate_trace, loop_rand_predictions, perfect_predictions, CombinedPredictor, HeuristicKind,
    Predictions, DEFAULT_SEED,
};
use bpfree_engine::{Engine, EngineConfig};
use bpfree_sim::BranchTrace;

/// The benchmark to trace — the largest event count of the `graphs4_11`
/// set at a bench-friendly runtime (`bpfree bench --json` picks the
/// largest trace dynamically; this stays fixed for stable comparisons).
const TRACED: &str = "xlisp";

struct Fixture {
    data: BenchData,
    trace: Arc<BranchTrace>,
    preds: [Predictions; 3],
}

fn fixture() -> Fixture {
    let engine = Engine::new(EngineConfig::no_cache());
    let mut loaded = load_named_traced_on(&engine, &[TRACED]);
    let data = loaded.remove(0);
    let trace = data.trace(&engine);
    let preds = [
        loop_rand_predictions(&data.program, &data.classifier, DEFAULT_SEED),
        CombinedPredictor::new(
            &data.program,
            &data.classifier,
            HeuristicKind::paper_order(),
        )
        .predictions(),
        perfect_predictions(&data.program, &data.profile),
    ];
    Fixture { data, trace, preds }
}

fn analyzer<'f>(f: &'f Fixture) -> IpbcAnalyzer<'f> {
    let mut a = IpbcAnalyzer::new(&f.data.program);
    for (name, p) in ["Loop+Rand", "Heuristic", "Perfect"].iter().zip(&f.preds) {
        a.add_predictor(*name, p);
    }
    a
}

fn bench_replay_throughput(c: &mut Criterion) {
    let f = fixture();
    let mut g = c.benchmark_group("replay_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(f.trace.len() as u64));

    g.bench_function("serial", |b| {
        b.iter(|| {
            let mut a = analyzer(&f);
            f.trace.replay(&mut a);
            black_box(a.finish())
        })
    });
    for jobs in [1usize, 4, 8] {
        g.bench_function(format!("segmented_jobs{jobs}"), |b| {
            b.iter(|| {
                let mut a = analyzer(&f);
                f.trace.replay_segmented_jobs(jobs, &mut a);
                black_box(a.finish())
            })
        });
    }
    g.bench_function("tally", |b| {
        b.iter(|| {
            for p in &f.preds {
                black_box(evaluate_trace(p, &f.trace));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_replay_throughput);
criterion_main!(benches);
