//! Criterion benches for the ordering-study kernels: the 5040-order
//! rate-matrix build (per-order first-hit tables vs the 7-way scan),
//! the Pareto prune (mean-sorted early exit vs the full scan), and the
//! subset sweep (prefix-reuse vector adds vs the per-candidate scalar
//! gather). The seed-path sides live in `bpfree_bench::baseline`; the
//! perf harness (`bench --json --ordering-out`) times the same pairs on
//! the full roster with parity asserts.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use bpfree_bench::baseline;
use bpfree_core::ordering::{subset_sweep_wins, BenchOrderData, OrderingStudy};

/// Condensed ordering rows for a small real roster — enough groups to
/// exercise the first-hit tables without simulating the whole suite in
/// bench setup.
fn condensed(names: &[&str]) -> Vec<BenchOrderData> {
    let engine = bpfree_engine::Engine::new(bpfree_engine::EngineConfig::no_cache());
    let opt = bpfree_lang::Options::default();
    names
        .iter()
        .map(|n| {
            let b = bpfree_suite::by_name(n).expect("benchmark exists");
            (*engine.order_data(&b, opt)).clone()
        })
        .collect()
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A deterministic candidate-major rate matrix shaped like the real
/// C(22,11) input: `c` Pareto candidates × `n` benchmarks in [0, 1].
fn synth_rows(c: usize, n: usize) -> Vec<Vec<f64>> {
    let mut state = 7u64;
    (0..c)
        .map(|_| {
            (0..n)
                .map(|_| (splitmix(&mut state) >> 11) as f64 / (1u64 << 53) as f64)
                .collect()
        })
        .collect()
}

/// Graph 1 machinery: building the 5040 × n miss-rate matrix.
fn bench_matrix(crit: &mut Criterion) {
    let benches = condensed(&["grep", "eqntott", "espresso", "gcc"]);
    let mut g = crit.benchmark_group("ordering_throughput");
    g.bench_function("matrix_first_hit", |b| {
        b.iter(|| black_box(OrderingStudy::new(benches.clone())))
    });
    g.bench_function("matrix_seed_scan", |b| {
        b.iter(|| black_box(baseline::naive_rate_matrix(&benches)))
    });
    g.finish();
}

/// Table 4 machinery, stage one: pruning the 5040 rows to the Pareto
/// front.
fn bench_prune(crit: &mut Criterion) {
    let benches = condensed(&["grep", "eqntott", "espresso", "gcc"]);
    let study = OrderingStudy::new(benches.clone());
    let rates = study.rates().to_vec();
    let mut g = crit.benchmark_group("ordering_throughput");
    g.bench_function("prune_mean_sorted", |b| {
        b.iter_batched(
            || OrderingStudy::from_parts(benches.clone(), rates.clone()),
            |s| black_box(s.pareto_front().len()),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("prune_seed_full", |b| {
        b.iter(|| black_box(baseline::naive_pareto(&rates)))
    });
    g.finish();
}

/// Table 4 machinery, stage two: the subset sweep over a fixed slice of
/// C(22,11) ranks against a realistic Pareto-front-sized candidate set.
fn bench_sweep(crit: &mut Criterion) {
    const N: usize = 22;
    const K: usize = 11;
    const C: usize = 256;
    const SUBSETS: u64 = 20_000;
    let rows = synth_rows(C, N);
    let cols: Vec<Vec<f64>> = (0..N)
        .map(|b| rows.iter().map(|r| r[b]).collect())
        .collect();
    let mut g = crit.benchmark_group("ordering_throughput");
    g.bench_function("sweep_prefix_reuse", |b| {
        b.iter(|| {
            let mut wins = vec![0u64; C];
            subset_sweep_wins(&cols, N, K, 0, SUBSETS, &mut wins);
            black_box(wins)
        })
    });
    g.bench_function("sweep_seed_gather", |b| {
        b.iter(|| {
            let mut wins = vec![0u64; C];
            baseline::naive_subset_sweep(&rows, N, K, 0, SUBSETS, &mut wins);
            black_box(wins)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_matrix, bench_prune, bench_sweep);
criterion_main!(benches);
