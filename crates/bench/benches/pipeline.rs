//! Criterion timing benches for the substrate pipeline: Cmm compilation
//! (Table 1 machinery) and simulator/profiler throughput (the QPT
//! substitute every experiment leans on).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use bpfree_sim::{EdgeProfiler, NullObserver, Simulator};

/// Table 1 machinery: full compilation (lex + parse + typecheck + lower +
/// inline + simplify) of real suite sources.
fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_compile");
    for name in ["gcc", "xlisp", "dnasa7"] {
        let b = bpfree_suite::by_name(name).unwrap();
        let src = b.source;
        g.throughput(Throughput::Bytes(src.len() as u64));
        g.bench_function(name, |bench| {
            bench.iter(|| black_box(bpfree_lang::compile(black_box(src)).unwrap()))
        });
    }
    g.finish();
}

/// Simulator throughput in instructions per second, bare and under the
/// edge profiler (what every table's data collection costs).
fn bench_simulator(c: &mut Criterion) {
    let b = bpfree_suite::by_name("grep").unwrap();
    let p = b.compile().unwrap();
    let datasets = b.datasets();
    // Measure the instruction count once for throughput accounting.
    let mut sim = Simulator::new(&p);
    sim.set_globals(&datasets[0].values).unwrap();
    let instructions = sim.run(&mut NullObserver).unwrap().instructions;

    let mut g = c.benchmark_group("simulator");
    g.sample_size(20);
    g.throughput(Throughput::Elements(instructions));
    g.bench_function("bare", |bench| {
        bench.iter_batched(
            || Simulator::new(&p),
            |mut sim| {
                sim.set_globals(&datasets[0].values).unwrap();
                black_box(sim.run(&mut NullObserver).unwrap())
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("edge_profiled", |bench| {
        bench.iter_batched(
            || (Simulator::new(&p), EdgeProfiler::new()),
            |(mut sim, mut prof)| {
                sim.set_globals(&datasets[0].values).unwrap();
                sim.run(&mut prof).unwrap();
                black_box(prof.into_profile())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_compile, bench_simulator);
criterion_main!(benches);
