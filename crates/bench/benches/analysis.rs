//! Criterion timing benches for the analysis machinery, grouped by the
//! paper table/figure each computation regenerates, plus the ablations
//! called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::collections::HashSet;
use std::hint::black_box;

use bpfree_cfg::{Cfg, DfsOrder, Dominators};
use bpfree_core::ordering::{all_orders, BenchOrderData, OrderingStudy};
use bpfree_core::{
    BranchClassifier, CombinedPredictor, HeuristicKind, HeuristicTable, DEFAULT_SEED,
};
use bpfree_ir::BlockId;

fn load(
    name: &str,
) -> (
    bpfree_ir::Program,
    BranchClassifier,
    bpfree_sim::EdgeProfile,
) {
    let b = bpfree_suite::by_name(name).expect("benchmark exists");
    let p = b.compile().expect("compiles");
    let c = BranchClassifier::analyze(&p);
    let (profile, _) = b.profile(&p, 0).expect("runs");
    (p, c, profile)
}

/// Table 2 machinery: whole-program classification (CFG + dominators +
/// postdominators + loops for every function).
fn bench_classification(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_classification");
    for name in ["gcc", "xlisp", "tomcatv"] {
        let b = bpfree_suite::by_name(name).unwrap();
        let p = b.compile().unwrap();
        g.bench_function(name, |bench| {
            bench.iter(|| black_box(BranchClassifier::analyze(black_box(&p))))
        });
    }
    g.finish();
}

/// Table 3 machinery: running all seven heuristics on every non-loop
/// branch.
fn bench_heuristic_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_heuristics");
    for name in ["gcc", "espresso"] {
        let b = bpfree_suite::by_name(name).unwrap();
        let p = b.compile().unwrap();
        let cl = BranchClassifier::analyze(&p);
        g.bench_function(name, |bench| {
            bench.iter(|| black_box(HeuristicTable::build(black_box(&p), black_box(&cl))))
        });
    }
    g.finish();
}

/// Tables 5/6 machinery: building the combined predictor from a table.
fn bench_combined_predictor(c: &mut Criterion) {
    let (p, cl, _) = load("xlisp");
    let table = HeuristicTable::build(&p, &cl);
    c.bench_function("table6_combine", |bench| {
        bench.iter(|| {
            black_box(CombinedPredictor::from_table(
                &p,
                &cl,
                &table,
                &HeuristicKind::paper_order(),
                DEFAULT_SEED,
            ))
        })
    });
}

/// Graph 1 machinery: evaluating one order against a condensed
/// benchmark, and the full 5040-order sweep.
fn bench_ordering(c: &mut Criterion) {
    let (p, cl, profile) = load("gcc");
    let table = HeuristicTable::build(&p, &cl);
    let data = BenchOrderData::build("gcc", &table, &profile, &cl, DEFAULT_SEED);
    let orders = all_orders();
    c.bench_function("graph1_one_order", |bench| {
        bench.iter(|| black_box(data.miss_rate(black_box(&orders[2024]))))
    });
    c.bench_function("graph1_all_5040_orders", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for o in &orders {
                acc += data.miss_rate(o);
            }
            black_box(acc)
        })
    });
}

/// Table 4 machinery ablation: Pareto pruning plus a small exact subset
/// enumeration.
fn bench_subset_pruning(c: &mut Criterion) {
    let benches: Vec<BenchOrderData> = ["xlisp", "compress", "espresso", "grep"]
        .iter()
        .map(|n| {
            let (p, cl, profile) = load(n);
            let table = HeuristicTable::build(&p, &cl);
            BenchOrderData::build(*n, &table, &profile, &cl, DEFAULT_SEED)
        })
        .collect();
    let study = OrderingStudy::new(benches);
    let mut g = c.benchmark_group("table4_subsets");
    g.sample_size(10);
    g.bench_function("pareto_prune", |bench| {
        bench.iter(|| black_box(study.pareto_order_indices().len()))
    });
    g.bench_function("subset_experiment_c4_2", |bench| {
        bench.iter(|| black_box(study.subset_experiment(2).len()))
    });
    g.finish();
}

/// DESIGN.md ablation: iterative RPO dominators vs a naive quadratic
/// set-intersection dataflow solver, on a real CFG.
fn bench_dominators_ablation(c: &mut Criterion) {
    let (p, _, _) = load("gcc");
    let func = p
        .funcs()
        .iter()
        .max_by_key(|f| f.blocks().len())
        .expect("program has functions");
    let cfg = Cfg::new(func);
    let dfs = DfsOrder::compute(&cfg);
    let mut g = c.benchmark_group("dom_ablate");
    g.bench_function("iterative_rpo", |bench| {
        bench.iter(|| black_box(Dominators::compute(black_box(&cfg), black_box(&dfs))))
    });
    g.bench_function("naive_sets", |bench| {
        bench.iter(|| black_box(naive_dominator_sets(black_box(&cfg))))
    });
    g.finish();
}

/// The classic quadratic dominator dataflow, for the ablation.
fn naive_dominator_sets(cfg: &Cfg) -> Vec<HashSet<u32>> {
    let n = cfg.n_blocks();
    let all: HashSet<u32> = (0..n as u32).collect();
    let mut dom: Vec<HashSet<u32>> = vec![all; n];
    dom[cfg.entry().index()] = [cfg.entry().0].into_iter().collect();
    let mut changed = true;
    while changed {
        changed = false;
        for b in 0..n as u32 {
            let block = BlockId(b);
            if block == cfg.entry() {
                continue;
            }
            let preds = cfg.predecessors(block);
            if preds.is_empty() {
                continue;
            }
            let mut inter: HashSet<u32> = dom[preds[0].index()].clone();
            for p in &preds[1..] {
                inter = inter.intersection(&dom[p.index()]).copied().collect();
            }
            inter.insert(b);
            if inter != dom[b as usize] {
                dom[b as usize] = inter;
                changed = true;
            }
        }
    }
    dom
}

/// Graphs 4-11 machinery: streaming IPBC analysis overhead vs a plain
/// run (the "streaming vs materialised traces" ablation baseline).
fn bench_ipbc_overhead(c: &mut Criterion) {
    use bpfree_core::ipbc::IpbcAnalyzer;
    use bpfree_core::perfect_predictions;
    use bpfree_sim::{NullObserver, Simulator};
    let b = bpfree_suite::by_name("grep").unwrap();
    let p = b.compile().unwrap();
    let cl = BranchClassifier::analyze(&p);
    let (profile, _) = b.profile(&p, 0).unwrap();
    let perfect = perfect_predictions(&p, &profile);
    let cp = CombinedPredictor::new(&p, &cl, HeuristicKind::paper_order());
    let heuristic = cp.predictions();
    let datasets = b.datasets();

    let mut g = c.benchmark_group("graphs4_11_ipbc");
    g.sample_size(10);
    g.bench_function("plain_run", |bench| {
        bench.iter_batched(
            || Simulator::new(&p),
            |mut sim| {
                sim.set_globals(&datasets[0].values).unwrap();
                black_box(sim.run(&mut NullObserver).unwrap())
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("streaming_two_predictors", |bench| {
        bench.iter_batched(
            || {
                let mut an = IpbcAnalyzer::new(&p);
                an.add_predictor("Perfect", &perfect);
                an.add_predictor("Heuristic", &heuristic);
                (Simulator::new(&p), an)
            },
            |(mut sim, mut an)| {
                sim.set_globals(&datasets[0].values).unwrap();
                sim.run(&mut an).unwrap();
                black_box(an.finish())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Extension ablation: damped-iteration vs structural (Wu-Larus style)
/// frequency propagation.
fn bench_freq_propagation(c: &mut Criterion) {
    use bpfree_core::freq::{
        estimate_block_frequencies, estimate_block_frequencies_structural, BranchProbabilities,
        Confidence,
    };
    let (p, cl, _) = load("dnasa7");
    let cp = CombinedPredictor::new(&p, &cl, HeuristicKind::paper_order());
    let probs = BranchProbabilities::from_predictor(&p, &cp, Confidence::default());
    let fid = p.entry();
    let mut g = c.benchmark_group("freq_propagation");
    g.bench_function("damped_iteration", |bench| {
        bench.iter(|| black_box(estimate_block_frequencies(&p, fid, &probs)))
    });
    g.bench_function("structural", |bench| {
        bench.iter(|| black_box(estimate_block_frequencies_structural(&p, fid, &probs, &cl)))
    });
    g.finish();
}

/// The dense-database headline number: classify + predict every suite
/// program, dense arena-ID storage vs the seed's hash-keyed shape
/// ([`bpfree_bench::baseline`]). Same analyses, same heuristic calls —
/// the ratio isolates the representation.
fn bench_analysis_throughput(c: &mut Criterion) {
    let programs: Vec<bpfree_ir::Program> = bpfree_suite::all()
        .iter()
        .map(|b| b.compile().expect("suite compiles"))
        .collect();
    let mut g = c.benchmark_group("analysis_throughput");
    g.sample_size(20);
    g.bench_function("dense_suite", |bench| {
        bench.iter(|| {
            for p in &programs {
                let cl = BranchClassifier::analyze(black_box(p));
                black_box(HeuristicTable::build(p, &cl));
            }
        })
    });
    g.bench_function("hash_keyed_suite", |bench| {
        bench.iter(|| {
            for p in &programs {
                black_box(bpfree_bench::baseline::analyze_hash_keyed(black_box(p)));
            }
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_analysis_throughput,
    bench_classification,
    bench_heuristic_table,
    bench_combined_predictor,
    bench_ordering,
    bench_subset_pruning,
    bench_dominators_ablation,
    bench_ipbc_overhead,
    bench_freq_propagation
);
criterion_main!(benches);
