//! Criterion benches for the two interpreter tiers (ISSUE 4): dynamic
//! instructions per second on the hottest suite benchmark, tree-walker
//! vs pre-decoded bytecode, plus the one-time decode cost. The
//! acceptance bar for the bytecode tier is ≥2× the tree-walker's
//! throughput on `addalg`; `bpfree bench --json` tracks the same ratio
//! per commit in `BENCH_interp.json`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use bpfree_sim::{BytecodeProgram, InterpTier, NullObserver, SimConfig, Simulator};

/// The hottest suite benchmark by dynamic instruction count on its
/// reference dataset.
const HOTTEST: &str = "addalg";

/// Tree-walker vs bytecode throughput on the same program + dataset,
/// reported in dynamic instructions per second.
fn bench_interp_throughput(c: &mut Criterion) {
    let b = bpfree_suite::by_name(HOTTEST).unwrap();
    let p = b.compile().unwrap();
    let decoded = BytecodeProgram::compile(&p);
    let datasets = b.datasets();
    let dataset = &datasets[0];

    // Measure the instruction count once for throughput accounting.
    let mut sim = Simulator::with_decoded(&p, &decoded);
    sim.set_globals(&dataset.values).unwrap();
    let instructions = sim.run(&mut NullObserver).unwrap().instructions;

    let mut g = c.benchmark_group("interp_throughput");
    g.sample_size(20);
    g.throughput(Throughput::Elements(instructions));
    g.bench_function("tree", |bench| {
        bench.iter_batched(
            || {
                Simulator::with_config(
                    &p,
                    SimConfig {
                        tier: InterpTier::Tree,
                        ..SimConfig::default()
                    },
                )
            },
            |mut sim| {
                sim.set_globals(&dataset.values).unwrap();
                black_box(sim.run(&mut NullObserver).unwrap())
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("bytecode", |bench| {
        bench.iter_batched(
            || Simulator::with_decoded(&p, &decoded),
            |mut sim| {
                sim.set_globals(&dataset.values).unwrap();
                black_box(sim.run(&mut NullObserver).unwrap())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// The compile-once cost the bytecode tier pays per `(benchmark,
/// Options)` — the engine memoizes it, so this is paid once per process
/// while the throughput win above repeats per dataset and experiment.
fn bench_decode_cost(c: &mut Criterion) {
    let b = bpfree_suite::by_name(HOTTEST).unwrap();
    let p = b.compile().unwrap();
    let mut g = c.benchmark_group("interp_decode");
    g.bench_function(HOTTEST, |bench| {
        bench.iter(|| black_box(BytecodeProgram::compile(black_box(&p))))
    });
    g.finish();
}

criterion_group!(benches, bench_interp_throughput, bench_decode_cost);
criterion_main!(benches);
