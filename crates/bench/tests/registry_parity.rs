//! The registry's core contract: every experiment writes the same bytes
//! through a [`Sink`](bpfree_bench::sink::Sink) that its legacy
//! standalone binary writes to stdout.
//!
//! One in-process batch (the `bpfree exp all` code path, captured into a
//! `VecSink`) is diffed against all 19 legacy binaries. The batch runs
//! first so it fills the shared on-disk cache and the binaries reuse it.
//! `ordering_ablate` prints wall-clock durations, so its comparison
//! normalizes duration tokens; everything else must match byte for byte.

use std::collections::HashMap;
use std::process::Command;

use bpfree_bench::config::{self, Config};
use bpfree_bench::registry;
use bpfree_bench::sink::{Sink, VecSink};

/// Collects each experiment's bytes separately, using the begin/end
/// bracketing the runner already does.
#[derive(Default)]
struct PerExperiment {
    current: VecSink,
    done: Vec<(&'static str, Vec<u8>)>,
}

impl Sink for PerExperiment {
    fn begin(&mut self, _exp: &dyn registry::Experiment) -> std::io::Result<()> {
        Ok(())
    }

    fn out(&mut self) -> &mut dyn std::io::Write {
        self.current.out()
    }

    fn end(&mut self, exp: &dyn registry::Experiment) -> std::io::Result<()> {
        self.done.push((exp.name(), self.current.take()));
        Ok(())
    }
}

/// Replaces `Duration`-debug tokens (`12.3ms`, `456ns`, `1.2s`) with
/// `TIME` so outputs that print wall-clock can still be diffed.
fn normalize_times(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let b: Vec<char> = s.chars().collect();
    let mut i = 0;
    while i < b.len() {
        let start = i;
        while i < b.len() && (b[i].is_ascii_digit() || b[i] == '.') {
            i += 1;
        }
        if i > start && b[start].is_ascii_digit() {
            let unit_len = ["ns", "µs", "ms", "s"]
                .iter()
                .find(|u| b[i..].starts_with(&u.chars().collect::<Vec<_>>()[..]))
                .map(|u| u.chars().count());
            // Only swallow a unit when the token ends there (avoid eating
            // identifiers like `100x` or column words).
            if let Some(ul) = unit_len {
                let after = b.get(i + ul);
                if after.is_none() || !after.unwrap().is_alphanumeric() {
                    out.push_str("TIME");
                    i += ul;
                    continue;
                }
            }
            for &c in &b[start..i] {
                out.push(c);
            }
            continue;
        }
        out.push(b[i]);
        i += 1;
    }
    out
}

fn legacy_bin(name: &str) -> std::path::PathBuf {
    // CARGO_BIN_EXE_* is only set for this package's own binaries, which
    // all 19 legacy shims are.
    let table1 = std::path::PathBuf::from(env!("CARGO_BIN_EXE_table1"));
    table1.with_file_name(format!("{name}{}", std::env::consts::EXE_SUFFIX))
}

#[test]
fn every_experiment_matches_its_legacy_binary() {
    let cache = std::env::temp_dir().join(format!("bpfree-parity-{}", std::process::id()));
    // First apply wins process-wide; tests in this binary all want the
    // same throwaway cache.
    config::apply(Config {
        jobs: None,
        use_cache: true,
        cache_dir: cache.clone(),
        interp: bpfree_sim::InterpTier::Bytecode,
        timings: None,
    });
    let engine = config::engine();

    // The `exp all` code path, captured per experiment. Running the
    // batch first also fills the on-disk cache for the binaries below.
    let mut sink = PerExperiment::default();
    registry::run_experiments(registry::all(), engine, &mut sink, false).unwrap();
    let captured: HashMap<&str, Vec<u8>> = sink.done.into_iter().collect();
    assert_eq!(captured.len(), registry::all().len());

    for exp in registry::all() {
        let name = exp.name();
        let bin = legacy_bin(name);
        let out = Command::new(&bin)
            .env("BPFREE_CACHE_DIR", &cache)
            .env_remove("BPFREE_NO_CACHE")
            .output()
            .unwrap_or_else(|e| panic!("running {}: {e}", bin.display()));
        assert!(
            out.status.success(),
            "{name} exited with {:?}: {}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        );
        let ours = &captured[name];
        if out.stdout == *ours {
            continue;
        }
        // Timing-printing experiments still must match after masking.
        let a = normalize_times(&String::from_utf8_lossy(ours));
        let b = normalize_times(&String::from_utf8_lossy(&out.stdout));
        assert_eq!(
            a, b,
            "{name}: registry output differs from the legacy binary"
        );
    }

    let _ = std::fs::remove_dir_all(&cache);
}
