//! The planned batch runner against the serial one: same bytes, same
//! interpreter-pass count, at a job count that forces the task-graph
//! path. Runs in its own process so `set_jobs` cannot leak into other
//! test binaries.

use bpfree_bench::registry::{self, Experiment};
use bpfree_bench::sink::VecSink;
use bpfree_engine::{Engine, EngineConfig};

/// A cheap-but-representative subset: the traced IPBC experiment (the
/// one with real dependency edges) plus static tables and a profile
/// consumer, so the graph has trace-dependent and trace-free nodes.
const SUBSET: [&str; 4] = ["table1", "table2", "graphs4_11", "table7"];

fn subset() -> Vec<&'static dyn Experiment> {
    SUBSET
        .iter()
        .map(|n| registry::by_name(n).unwrap_or_else(|| panic!("unknown experiment {n}")))
        .collect()
}

#[test]
fn planned_batch_matches_serial_bytes_and_passes() {
    bpfree_par::set_jobs(4);
    let exps = subset();

    let serial_engine = Engine::new(EngineConfig::no_cache());
    let mut serial_sink = VecSink::new();
    registry::run_experiments_serial(&exps, &serial_engine, &mut serial_sink, false)
        .expect("serial batch succeeds");
    let serial_bytes = serial_sink.take();

    let planned_engine = Engine::new(EngineConfig::no_cache());
    let mut planned_sink = VecSink::new();
    registry::run_experiments_planned(&exps, &planned_engine, &mut planned_sink, false)
        .expect("planned batch succeeds");
    let planned_bytes = planned_sink.take();

    assert_eq!(
        String::from_utf8_lossy(&planned_bytes),
        String::from_utf8_lossy(&serial_bytes),
        "planned batch output diverged from serial"
    );
    assert_eq!(
        planned_engine.simulations(),
        serial_engine.simulations(),
        "planned batch changed the interpreter-pass count"
    );
}

#[test]
fn dispatcher_picks_serial_path_at_one_job() {
    // `run_experiments` at jobs <= 1 must behave exactly like the
    // serial runner; this pins the dispatch rule itself (the jobs
    // override is per-process, so this binary sets 4 above — use the
    // explicit entry points to compare both paths regardless).
    bpfree_par::set_jobs(4);
    let exps = subset();
    let engine = Engine::new(EngineConfig::no_cache());
    let mut sink = VecSink::new();
    registry::run_experiments(&exps, &engine, &mut sink, false).expect("batch succeeds");
    let via_dispatch = sink.take();

    let engine2 = Engine::new(EngineConfig::no_cache());
    let mut sink2 = VecSink::new();
    registry::run_experiments_planned(&exps, &engine2, &mut sink2, false).expect("batch succeeds");
    assert_eq!(
        String::from_utf8_lossy(&via_dispatch),
        String::from_utf8_lossy(&sink2.take()),
        "dispatcher at jobs=4 must take the planned path"
    );
}
