use bpfree_ir::BlockId;

use crate::graph::Cfg;

/// Depth-first orderings of a [`Cfg`] from its entry block.
///
/// Provides reverse postorder (the iteration order for the dominator
/// solver), reachability, and DFS edge classification used by the
/// reducibility check.
#[derive(Debug, Clone)]
pub struct DfsOrder {
    /// Blocks in reverse postorder; unreachable blocks are absent.
    rpo: Vec<BlockId>,
    /// `rpo_index[b] = Some(i)` iff `rpo[i] == b`.
    rpo_index: Vec<Option<usize>>,
    /// Preorder (discovery) number per reachable block.
    pre: Vec<Option<usize>>,
    /// Postorder (finish) number per reachable block.
    post: Vec<Option<usize>>,
}

impl DfsOrder {
    /// Runs an iterative DFS from the entry block.
    pub fn compute(cfg: &Cfg) -> DfsOrder {
        let n = cfg.n_blocks();
        let mut pre = vec![None; n];
        let mut post = vec![None; n];
        let mut postorder = Vec::with_capacity(n);
        let mut pre_counter = 0usize;
        let mut post_counter = 0usize;
        // Explicit stack of (block, next-successor-index) to avoid recursion
        // on deep CFGs.
        let mut stack: Vec<(BlockId, usize)> = Vec::new();
        pre[cfg.entry().index()] = Some(pre_counter);
        pre_counter += 1;
        stack.push((cfg.entry(), 0));
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let succs = cfg.successors(b);
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if pre[s.index()].is_none() {
                    pre[s.index()] = Some(pre_counter);
                    pre_counter += 1;
                    stack.push((s, 0));
                }
            } else {
                post[b.index()] = Some(post_counter);
                post_counter += 1;
                postorder.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = postorder.into_iter().rev().collect();
        let mut rpo_index = vec![None; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = Some(i);
        }
        DfsOrder {
            rpo,
            rpo_index,
            pre,
            post,
        }
    }

    /// Blocks in reverse postorder (entry first). Unreachable blocks are
    /// not included.
    pub fn reverse_postorder(&self) -> &[BlockId] {
        &self.rpo
    }

    /// The reverse-postorder index of `b`, or `None` if unreachable.
    pub fn rpo_index(&self, b: BlockId) -> Option<usize> {
        self.rpo_index[b.index()]
    }

    /// Is `b` reachable from the entry block?
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.pre[b.index()].is_some()
    }

    /// Is `src -> dst` a retreating edge (dst visited but not finished when
    /// src's edges were explored)? In a DFS tree this means `dst` is an
    /// ancestor of `src`, i.e. the edge goes "backwards".
    ///
    /// For reducible CFGs the retreating edges are exactly the natural-loop
    /// backedges.
    pub fn is_retreating(&self, src: BlockId, dst: BlockId) -> bool {
        match (
            self.pre[src.index()],
            self.pre[dst.index()],
            self.post[src.index()],
            self.post[dst.index()],
        ) {
            (Some(ps), Some(pd), Some(fs), Some(fd)) => pd <= ps && fd >= fs,
            _ => false,
        }
    }

    /// Number of reachable blocks.
    pub fn n_reachable(&self) -> usize {
        self.rpo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpfree_ir::{Cond, FunctionBuilder, Terminator};

    fn ret() -> Terminator {
        Terminator::Ret {
            val: None,
            fval: None,
        }
    }

    #[test]
    fn rpo_starts_at_entry() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry();
        let x = b.new_block();
        let y = b.new_block();
        b.set_term(e, Terminator::Jump(x));
        b.set_term(x, Terminator::Jump(y));
        b.set_term(y, ret());
        let cfg = Cfg::new(&b.finish().unwrap());
        let dfs = DfsOrder::compute(&cfg);
        assert_eq!(dfs.reverse_postorder(), &[e, x, y]);
        assert_eq!(dfs.rpo_index(e), Some(0));
    }

    #[test]
    fn unreachable_blocks_excluded() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry();
        let dead = b.new_block();
        b.set_term(e, ret());
        b.set_term(dead, ret());
        let cfg = Cfg::new(&b.finish().unwrap());
        let dfs = DfsOrder::compute(&cfg);
        assert!(dfs.is_reachable(e));
        assert!(!dfs.is_reachable(dead));
        assert_eq!(dfs.n_reachable(), 1);
    }

    #[test]
    fn loop_backedge_is_retreating() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry();
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let r = b.new_reg();
        b.set_term(e, Terminator::Jump(head));
        b.set_term(
            head,
            Terminator::Branch {
                cond: Cond::Gtz(r),
                taken: body,
                fallthru: exit,
            },
        );
        b.set_term(body, Terminator::Jump(head));
        b.set_term(exit, ret());
        let cfg = Cfg::new(&b.finish().unwrap());
        let dfs = DfsOrder::compute(&cfg);
        assert!(dfs.is_retreating(body, head));
        assert!(!dfs.is_retreating(head, body));
        assert!(!dfs.is_retreating(e, head));
    }

    #[test]
    fn rpo_respects_topological_order_on_dag() {
        // Diamond: rpo index of entry < both arms < join.
        let mut b = FunctionBuilder::new("f");
        let e = b.entry();
        let l = b.new_block();
        let r = b.new_block();
        let j = b.new_block();
        let c = b.new_reg();
        b.set_term(
            e,
            Terminator::Branch {
                cond: Cond::Nez(c),
                taken: l,
                fallthru: r,
            },
        );
        b.set_term(l, Terminator::Jump(j));
        b.set_term(r, Terminator::Jump(j));
        b.set_term(j, ret());
        let cfg = Cfg::new(&b.finish().unwrap());
        let dfs = DfsOrder::compute(&cfg);
        let idx = |b| dfs.rpo_index(b).unwrap();
        assert!(idx(e) < idx(l));
        assert!(idx(e) < idx(r));
        assert!(idx(l) < idx(j));
        assert!(idx(r) < idx(j));
    }
}
