//! A compact block-index bitset — the flat replacement for the
//! `HashSet<BlockId>` loop bodies and head sets of the pre-dense
//! analysis layer.

use bpfree_ir::BlockId;

/// A fixed-capacity set of [`BlockId`]s stored as one bit per block.
///
/// Capacity is the function's block count, so membership queries are a
/// word index + mask and iteration is an ascending bit scan — no
/// hashing and no iteration-order hazard.
///
/// # Example
///
/// ```
/// use bpfree_cfg::BlockSet;
/// use bpfree_ir::BlockId;
///
/// let mut s = BlockSet::new(130);
/// s.insert(BlockId(3));
/// s.insert(BlockId(129));
/// assert!(s.contains(BlockId(3)));
/// assert!(!s.contains(BlockId(4)));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![BlockId(3), BlockId(129)]);
/// assert_eq!(s.count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BlockSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BlockSet {
    /// An empty set with room for blocks `0..capacity`.
    pub fn new(capacity: usize) -> BlockSet {
        BlockSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The block-index capacity this set was sized for.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `b`, returning `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `b` is outside the set's capacity.
    pub fn insert(&mut self, b: BlockId) -> bool {
        assert!(b.index() < self.capacity, "block {b:?} out of range");
        let (w, bit) = (b.index() / 64, 1u64 << (b.index() % 64));
        let fresh = self.words[w] & bit == 0;
        self.words[w] |= bit;
        fresh
    }

    /// Is `b` a member? Out-of-capacity blocks are never members.
    pub fn contains(&self, b: BlockId) -> bool {
        let w = b.index() / 64;
        w < self.words.len() && self.words[w] & (1 << (b.index() % 64)) != 0
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if no block is a member.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterator over members in ascending block order.
    pub fn iter(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros();
                w &= w - 1;
                Some(BlockId(wi as u32 * 64 + bit))
            })
        })
    }
}

impl FromIterator<BlockId> for BlockSet {
    /// Collects blocks into a set sized to the largest member.
    fn from_iter<I: IntoIterator<Item = BlockId>>(iter: I) -> BlockSet {
        let blocks: Vec<BlockId> = iter.into_iter().collect();
        let cap = blocks.iter().map(|b| b.index() + 1).max().unwrap_or(0);
        let mut s = BlockSet::new(cap);
        for b in blocks {
            s.insert(b);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_iterate() {
        let mut s = BlockSet::new(200);
        assert!(s.is_empty());
        for i in [0u32, 63, 64, 65, 199] {
            assert!(s.insert(BlockId(i)));
            assert!(!s.insert(BlockId(i)), "second insert reports existing");
        }
        assert_eq!(s.count(), 5);
        assert!(!s.is_empty());
        let got: Vec<u32> = s.iter().map(|b| b.0).collect();
        assert_eq!(got, vec![0, 63, 64, 65, 199]);
        assert!(!s.contains(BlockId(1)));
        assert!(!s.contains(BlockId(10_000)), "past capacity is absent");
    }

    #[test]
    fn equality_ignores_nothing() {
        let mut a = BlockSet::new(10);
        let mut b = BlockSet::new(10);
        a.insert(BlockId(3));
        assert_ne!(a, b);
        b.insert(BlockId(3));
        assert_eq!(a, b);
    }

    #[test]
    fn from_iterator_sizes_to_fit() {
        let s: BlockSet = [BlockId(5), BlockId(2)].into_iter().collect();
        assert_eq!(s.capacity(), 6);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![BlockId(2), BlockId(5)]);
        let empty: BlockSet = std::iter::empty().collect();
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_past_capacity_panics() {
        BlockSet::new(3).insert(BlockId(3));
    }
}
