//! Natural-loop analysis on flat arrays.
//!
//! Every result is stored densely — loop membership as [`BlockSet`]
//! bitsets, the loop forest as parallel head/parent/depth vectors, and
//! edge classifications (backedge / exit / irreducible) as per-edge
//! flags in CFG successor-slot order — so queries are array lookups and
//! every iterator yields a deterministic, ascending order. No `HashMap`
//! or `HashSet` appears in any analysis result.

use bpfree_ir::BlockId;

use crate::bitset::BlockSet;
use crate::dom::Dominators;
use crate::graph::Cfg;

/// One natural loop: a head plus the blocks of `nat_loop(head)`.
///
/// Following the paper's definition: for a loop head `y`,
/// `nat_loop(y) = {y} ∪ { w | ∃ backedge x -> y and a y-free path w ↝ x }`.
/// Multiple backedges into the same head contribute to one natural loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop head (target of the backedges that define the loop).
    pub head: BlockId,
    /// The loop body, head included.
    pub body: BlockSet,
}

impl NaturalLoop {
    /// Does this loop contain `b`? (The head is a member.)
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.contains(b)
    }
}

/// Per-edge classification flags, parallel to [`Cfg::successors`] slots.
const EDGE_BACK: u8 = 1 << 0;
const EDGE_EXIT: u8 = 1 << 1;
const EDGE_IRREDUCIBLE: u8 = 1 << 2;

/// Natural-loop analysis over a [`Cfg`].
///
/// Identifies backedges (edges whose target dominates their source), loop
/// heads, the `nat_loop` body of each head, and the loop **exit edges**
/// that drive the loop/non-loop branch classification of the paper's
/// Section 3.
///
/// # Example
///
/// ```
/// use bpfree_ir::{FunctionBuilder, Terminator, Cond};
/// use bpfree_cfg::{Cfg, DfsOrder, Dominators, Loops};
///
/// let mut b = FunctionBuilder::new("f");
/// let e = b.entry();
/// let head = b.new_block();
/// let body = b.new_block();
/// let exit = b.new_block();
/// let c = b.new_reg();
/// b.set_term(e, Terminator::Jump(head));
/// b.set_term(head, Terminator::Branch { cond: Cond::Gtz(c), taken: body, fallthru: exit });
/// b.set_term(body, Terminator::Jump(head));
/// b.set_term(exit, Terminator::Ret { val: None, fval: None });
/// let cfg = Cfg::new(&b.finish().unwrap());
/// let dfs = DfsOrder::compute(&cfg);
/// let doms = Dominators::compute(&cfg, &dfs);
/// let loops = Loops::compute(&cfg, &doms);
/// assert!(loops.is_head(head));
/// assert!(loops.is_backedge(body, head));
/// assert!(loops.is_exit_edge(head, exit));
/// ```
#[derive(Debug, Clone)]
pub struct Loops {
    /// CSR edge layout: block `b`'s outgoing edges occupy
    /// `edge_start[b.index()] .. edge_start[b.index() + 1]` in
    /// [`Cfg::successors`] slot order.
    edge_start: Vec<u32>,
    /// Edge destinations, parallel to the flag array.
    edge_dst: Vec<BlockId>,
    /// Per-edge `EDGE_*` flag bits.
    edge_flags: Vec<u8>,
    /// Membership bitset of loop heads.
    head_set: BlockSet,
    /// The natural loops in ascending head order; index = loop index.
    loops: Vec<NaturalLoop>,
    /// Loop forest: for each loop, the index of the innermost distinct
    /// enclosing loop, or `u32::MAX` for a root.
    parent: Vec<u32>,
    /// Per-block loop nesting depth (number of natural loops containing
    /// the block).
    depth: Vec<u32>,
    /// Count of retreating-but-not-backedge edges (irreducible flow).
    n_irreducible: usize,
}

impl Loops {
    /// Computes natural loops from the CFG and its dominator tree.
    pub fn compute(cfg: &Cfg, doms: &Dominators) -> Loops {
        let n = cfg.n_blocks();
        let dfs = crate::dfs::DfsOrder::compute(cfg);

        // Flatten the successor lists into CSR form and classify the
        // backedges / irreducible retreating edges in slot order.
        let mut edge_start = Vec::with_capacity(n + 1);
        let mut edge_dst = Vec::new();
        let mut edge_flags = Vec::new();
        let mut n_irreducible = 0;
        edge_start.push(0);
        for b in cfg.block_ids() {
            for &dst in cfg.successors(b) {
                let mut flags = 0u8;
                if dfs.is_reachable(b) {
                    if doms.dominates(dst, b) {
                        flags |= EDGE_BACK;
                    } else if dfs.is_retreating(b, dst) {
                        flags |= EDGE_IRREDUCIBLE;
                        n_irreducible += 1;
                    }
                }
                edge_dst.push(dst);
                edge_flags.push(flags);
            }
            edge_start.push(edge_dst.len() as u32);
        }

        let mut head_set = BlockSet::new(n);
        for (i, &dst) in edge_dst.iter().enumerate() {
            if edge_flags[i] & EDGE_BACK != 0 {
                head_set.insert(dst);
            }
        }

        // nat_loop(y): backward reachability from each backedge source,
        // stopping at y. Heads are visited in ascending block order.
        let mut loops: Vec<NaturalLoop> = Vec::with_capacity(head_set.count());
        for head in head_set.iter() {
            let mut body = BlockSet::new(n);
            body.insert(head);
            let mut work: Vec<BlockId> = Vec::new();
            for src in cfg.block_ids() {
                let (lo, hi) = (
                    edge_start[src.index()] as usize,
                    edge_start[src.index() + 1] as usize,
                );
                for slot in lo..hi {
                    if edge_flags[slot] & EDGE_BACK != 0
                        && edge_dst[slot] == head
                        && body.insert(src)
                    {
                        work.push(src);
                    }
                }
            }
            while let Some(b) = work.pop() {
                for &p in cfg.predecessors(b) {
                    if dfs.is_reachable(p) && body.insert(p) {
                        work.push(p);
                    }
                }
            }
            loops.push(NaturalLoop { head, body });
        }

        // Exit edges: src inside some loop whose body excludes dst.
        for b in cfg.block_ids() {
            let (lo, hi) = (
                edge_start[b.index()] as usize,
                edge_start[b.index() + 1] as usize,
            );
            for slot in lo..hi {
                let dst = edge_dst[slot];
                if loops.iter().any(|nl| nl.contains(b) && !nl.contains(dst)) {
                    edge_flags[slot] |= EDGE_EXIT;
                }
            }
        }

        let mut depth = vec![0u32; n];
        for nl in &loops {
            for b in nl.body.iter() {
                depth[b.index()] += 1;
            }
        }

        // Loop forest: the innermost distinct loop enclosing each head.
        // Natural-loop bodies of distinct heads nest or are disjoint, so
        // the enclosing loop with the smallest body is the parent.
        let parent = loops
            .iter()
            .map(|nl| {
                loops
                    .iter()
                    .enumerate()
                    .filter(|(_, outer)| outer.head != nl.head && outer.contains(nl.head))
                    .min_by_key(|(_, outer)| outer.body.count())
                    .map(|(i, _)| i as u32)
                    .unwrap_or(u32::MAX)
            })
            .collect();

        Loops {
            edge_start,
            edge_dst,
            edge_flags,
            head_set,
            loops,
            parent,
            depth,
            n_irreducible,
        }
    }

    /// The flag bits of edge `src -> dst`, or 0 when no such edge exists.
    /// A block has at most two successors, so this is a two-slot scan.
    fn edge_flags_of(&self, src: BlockId, dst: BlockId) -> u8 {
        if src.index() + 1 >= self.edge_start.len() {
            return 0;
        }
        let (lo, hi) = (
            self.edge_start[src.index()] as usize,
            self.edge_start[src.index() + 1] as usize,
        );
        let mut flags = 0;
        for slot in lo..hi {
            if self.edge_dst[slot] == dst {
                flags |= self.edge_flags[slot];
            }
        }
        flags
    }

    /// Is `src -> dst` a loop backedge (dst dominates src)?
    pub fn is_backedge(&self, src: BlockId, dst: BlockId) -> bool {
        self.edge_flags_of(src, dst) & EDGE_BACK != 0
    }

    /// Is `b` a loop head (target of at least one backedge)?
    pub fn is_head(&self, b: BlockId) -> bool {
        self.head_set.contains(b)
    }

    /// Is `src -> dst` an exit edge of some natural loop (`src` inside,
    /// `dst` outside)?
    pub fn is_exit_edge(&self, src: BlockId, dst: BlockId) -> bool {
        self.edge_flags_of(src, dst) & EDGE_EXIT != 0
    }

    /// The natural loop with the given head.
    pub fn natural_loop(&self, head: BlockId) -> Option<&NaturalLoop> {
        self.loops
            .binary_search_by_key(&head, |nl| nl.head)
            .ok()
            .map(|i| &self.loops[i])
    }

    /// All loop heads, in ascending block order.
    pub fn heads(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.loops.iter().map(|nl| nl.head)
    }

    /// All natural loops, in ascending head order.
    pub fn iter(&self) -> impl Iterator<Item = &NaturalLoop> {
        self.loops.iter()
    }

    /// Number of distinct natural loops (one per head).
    pub fn n_loops(&self) -> usize {
        self.loops.len()
    }

    /// Loop nesting depth of `b` (number of natural loops containing it).
    pub fn depth(&self, b: BlockId) -> u32 {
        self.depth[b.index()]
    }

    /// The head of the innermost loop strictly enclosing the loop headed
    /// at `head` — the loop-forest parent — or `None` for a root loop
    /// (or a block that heads no loop).
    pub fn parent(&self, head: BlockId) -> Option<BlockId> {
        let i = self.loops.binary_search_by_key(&head, |nl| nl.head).ok()?;
        let p = self.parent[i];
        (p != u32::MAX).then(|| self.loops[p as usize].head)
    }

    /// Is the CFG reducible (every retreating DFS edge is a backedge)?
    pub fn is_reducible(&self) -> bool {
        self.n_irreducible == 0
    }

    /// Retreating edges that are not natural-loop backedges, in
    /// `(block, successor-slot)` order.
    pub fn irreducible_edges(&self) -> impl Iterator<Item = (BlockId, BlockId)> + '_ {
        (0..self.edge_start.len() - 1).flat_map(move |b| {
            let (lo, hi) = (self.edge_start[b] as usize, self.edge_start[b + 1] as usize);
            (lo..hi)
                .filter(move |&slot| self.edge_flags[slot] & EDGE_IRREDUCIBLE != 0)
                .map(move |slot| (BlockId(b as u32), self.edge_dst[slot]))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs::DfsOrder;
    use bpfree_ir::{Cond, FunctionBuilder, Terminator};

    fn ret() -> Terminator {
        Terminator::Ret {
            val: None,
            fval: None,
        }
    }

    fn analyze(f: bpfree_ir::Function) -> (Cfg, Loops) {
        let cfg = Cfg::new(&f);
        let dfs = DfsOrder::compute(&cfg);
        let doms = Dominators::compute(&cfg, &dfs);
        let loops = Loops::compute(&cfg, &doms);
        (cfg, loops)
    }

    fn body_blocks(nl: &NaturalLoop) -> Vec<BlockId> {
        nl.body.iter().collect()
    }

    /// Reproduces the paper's Figure 1: A -> B; B -> {C, F?}; actually:
    /// backedges D->B and E->B, exit edges C->F and E->F.
    ///
    /// A -> B; B -> C | E; C -> D | F; D -> B; E -> B | F; F ret.
    #[test]
    fn paper_figure_1() {
        let mut bld = FunctionBuilder::new("fig1");
        let a = bld.entry();
        let b = bld.new_block();
        let c = bld.new_block();
        let d = bld.new_block();
        let e = bld.new_block();
        let f = bld.new_block();
        let r = bld.new_reg();
        bld.set_term(
            a,
            Terminator::Branch {
                cond: Cond::Nez(r),
                taken: b,
                fallthru: f,
            },
        );
        bld.set_term(
            b,
            Terminator::Branch {
                cond: Cond::Gtz(r),
                taken: c,
                fallthru: e,
            },
        );
        bld.set_term(
            c,
            Terminator::Branch {
                cond: Cond::Ltz(r),
                taken: d,
                fallthru: f,
            },
        );
        bld.set_term(d, Terminator::Jump(b));
        bld.set_term(
            e,
            Terminator::Branch {
                cond: Cond::Lez(r),
                taken: b,
                fallthru: f,
            },
        );
        bld.set_term(f, ret());
        let (_cfg, loops) = analyze(bld.finish().unwrap());

        assert!(loops.is_backedge(d, b));
        assert!(loops.is_backedge(e, b));
        assert_eq!(loops.n_loops(), 1);
        let nl = loops.natural_loop(b).unwrap();
        assert_eq!(body_blocks(nl), vec![b, c, d, e]);
        assert!(loops.is_exit_edge(c, f));
        assert!(loops.is_exit_edge(e, f));
        assert!(!loops.is_exit_edge(a, f));
        assert!(loops.is_reducible());
    }

    #[test]
    fn nested_loops_have_depth() {
        // entry -> outer_head; outer_head -> inner_head | done;
        // inner_head -> inner_body | outer_latch; inner_body -> inner_head;
        // outer_latch -> outer_head; done ret.
        let mut bld = FunctionBuilder::new("nest");
        let entry = bld.entry();
        let oh = bld.new_block();
        let ih = bld.new_block();
        let ib = bld.new_block();
        let ol = bld.new_block();
        let done = bld.new_block();
        let r = bld.new_reg();
        bld.set_term(entry, Terminator::Jump(oh));
        bld.set_term(
            oh,
            Terminator::Branch {
                cond: Cond::Gtz(r),
                taken: ih,
                fallthru: done,
            },
        );
        bld.set_term(
            ih,
            Terminator::Branch {
                cond: Cond::Ltz(r),
                taken: ib,
                fallthru: ol,
            },
        );
        bld.set_term(ib, Terminator::Jump(ih));
        bld.set_term(ol, Terminator::Jump(oh));
        bld.set_term(done, ret());
        let (_cfg, loops) = analyze(bld.finish().unwrap());

        assert_eq!(loops.n_loops(), 2);
        assert_eq!(loops.depth(ib), 2);
        assert_eq!(loops.depth(ih), 2);
        assert_eq!(loops.depth(ol), 1);
        assert_eq!(loops.depth(oh), 1);
        assert_eq!(loops.depth(done), 0);
        assert_eq!(loops.depth(entry), 0);
        // The loop forest: the inner loop's parent is the outer loop.
        assert_eq!(loops.parent(ih), Some(oh));
        assert_eq!(loops.parent(oh), None);
        assert_eq!(loops.parent(done), None, "non-head has no parent");
        // Deterministic ascending orders.
        let heads: Vec<_> = loops.heads().collect();
        assert_eq!(heads, vec![oh, ih]);
        let iter_heads: Vec<_> = loops.iter().map(|nl| nl.head).collect();
        assert_eq!(iter_heads, heads);
    }

    #[test]
    fn self_loop_is_its_own_natural_loop() {
        let mut bld = FunctionBuilder::new("s");
        let e = bld.entry();
        let l = bld.new_block();
        let done = bld.new_block();
        let r = bld.new_reg();
        bld.set_term(e, Terminator::Jump(l));
        bld.set_term(
            l,
            Terminator::Branch {
                cond: Cond::Gtz(r),
                taken: l,
                fallthru: done,
            },
        );
        bld.set_term(done, ret());
        let (_cfg, loops) = analyze(bld.finish().unwrap());
        assert!(loops.is_backedge(l, l));
        let nl = loops.natural_loop(l).unwrap();
        assert_eq!(body_blocks(nl), vec![l]);
        assert!(loops.is_exit_edge(l, done));
        assert_eq!(loops.parent(l), None);
    }

    #[test]
    fn acyclic_graph_has_no_loops() {
        let mut bld = FunctionBuilder::new("dag");
        let e = bld.entry();
        let x = bld.new_block();
        let r = bld.new_reg();
        bld.set_term(
            e,
            Terminator::Branch {
                cond: Cond::Nez(r),
                taken: x,
                fallthru: x,
            },
        );
        // Degenerate branch is invalid IR; use jump instead.
        bld.set_term(e, Terminator::Jump(x));
        bld.set_term(x, ret());
        let (_cfg, loops) = analyze(bld.finish().unwrap());
        assert_eq!(loops.n_loops(), 0);
        assert!(loops.is_reducible());
    }

    #[test]
    fn irreducible_graph_detected() {
        // entry -> a | b; a -> b; b -> a (cycle with two entries).
        let mut bld = FunctionBuilder::new("irr");
        let e = bld.entry();
        let a = bld.new_block();
        let b = bld.new_block();
        let out = bld.new_block();
        let r = bld.new_reg();
        bld.set_term(
            e,
            Terminator::Branch {
                cond: Cond::Nez(r),
                taken: a,
                fallthru: b,
            },
        );
        bld.set_term(a, Terminator::Jump(b));
        bld.set_term(
            b,
            Terminator::Branch {
                cond: Cond::Gtz(r),
                taken: a,
                fallthru: out,
            },
        );
        bld.set_term(out, ret());
        let (_cfg, loops) = analyze(bld.finish().unwrap());
        // Neither a nor b dominates the other, so no natural loop exists,
        // but a retreating edge does: the graph is irreducible.
        assert_eq!(loops.n_loops(), 0);
        assert!(!loops.is_reducible());
        assert_eq!(loops.irreducible_edges().count(), 1);
        assert_eq!(loops.irreducible_edges().next(), Some((b, a)));
    }

    #[test]
    fn loop_with_interior_branch_exit_edges() {
        // The classic while loop with an if inside and a break:
        // head -> body | out; body -> brk | latch; brk -> out; latch -> head
        let mut bld = FunctionBuilder::new("brk");
        let e = bld.entry();
        let head = bld.new_block();
        let body = bld.new_block();
        let brk = bld.new_block();
        let latch = bld.new_block();
        let out = bld.new_block();
        let r = bld.new_reg();
        bld.set_term(e, Terminator::Jump(head));
        bld.set_term(
            head,
            Terminator::Branch {
                cond: Cond::Gtz(r),
                taken: body,
                fallthru: out,
            },
        );
        bld.set_term(
            body,
            Terminator::Branch {
                cond: Cond::Ltz(r),
                taken: brk,
                fallthru: latch,
            },
        );
        bld.set_term(brk, Terminator::Jump(out));
        bld.set_term(latch, Terminator::Jump(head));
        bld.set_term(out, ret());
        let (_cfg, loops) = analyze(bld.finish().unwrap());
        let nl = loops.natural_loop(head).unwrap();
        // brk is inside the loop (it has a head-free path to the latch? No —
        // brk leaves the loop; it is NOT in nat_loop because no path from
        // brk reaches the backedge source without the head.)
        assert!(nl.contains(body));
        assert!(nl.contains(latch));
        assert!(!nl.contains(brk));
        assert!(loops.is_exit_edge(head, out));
        // body -> brk leaves the natural loop, so it is an exit edge: the
        // "break" branch is a loop branch in the paper's classification.
        assert!(loops.is_exit_edge(body, brk));
    }
}
