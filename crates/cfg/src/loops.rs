use std::collections::{HashMap, HashSet};

use bpfree_ir::BlockId;

use crate::dom::Dominators;
use crate::graph::Cfg;

/// One natural loop: a head plus the blocks of `nat_loop(head)`.
///
/// Following the paper's definition: for a loop head `y`,
/// `nat_loop(y) = {y} ∪ { w | ∃ backedge x -> y and a y-free path w ↝ x }`.
/// Multiple backedges into the same head contribute to one natural loop.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    pub head: BlockId,
    pub body: HashSet<BlockId>,
}

impl NaturalLoop {
    /// Does this loop contain `b`? (The head is a member.)
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.contains(&b)
    }
}

/// Natural-loop analysis over a [`Cfg`].
///
/// Identifies backedges (edges whose target dominates their source), loop
/// heads, the `nat_loop` body of each head, and the loop **exit edges**
/// that drive the loop/non-loop branch classification of the paper's
/// Section 3.
///
/// # Example
///
/// ```
/// use bpfree_ir::{FunctionBuilder, Terminator, Cond};
/// use bpfree_cfg::{Cfg, DfsOrder, Dominators, Loops};
///
/// let mut b = FunctionBuilder::new("f");
/// let e = b.entry();
/// let head = b.new_block();
/// let body = b.new_block();
/// let exit = b.new_block();
/// let c = b.new_reg();
/// b.set_term(e, Terminator::Jump(head));
/// b.set_term(head, Terminator::Branch { cond: Cond::Gtz(c), taken: body, fallthru: exit });
/// b.set_term(body, Terminator::Jump(head));
/// b.set_term(exit, Terminator::Ret { val: None, fval: None });
/// let cfg = Cfg::new(&b.finish().unwrap());
/// let dfs = DfsOrder::compute(&cfg);
/// let doms = Dominators::compute(&cfg, &dfs);
/// let loops = Loops::compute(&cfg, &doms);
/// assert!(loops.is_head(head));
/// assert!(loops.is_backedge(body, head));
/// assert!(loops.is_exit_edge(head, exit));
/// ```
#[derive(Debug, Clone)]
pub struct Loops {
    backedges: HashSet<(BlockId, BlockId)>,
    heads: HashSet<BlockId>,
    loops: HashMap<BlockId, NaturalLoop>,
    exit_edges: HashSet<(BlockId, BlockId)>,
    /// Retreating edges that are not backedges (irreducible control flow).
    irreducible_edges: HashSet<(BlockId, BlockId)>,
    depth: Vec<u32>,
}

impl Loops {
    /// Computes natural loops from the CFG and its dominator tree.
    pub fn compute(cfg: &Cfg, doms: &Dominators) -> Loops {
        let mut backedges = HashSet::new();
        let mut irreducible_edges = HashSet::new();
        let dfs = crate::dfs::DfsOrder::compute(cfg);
        for (src, dst, _) in cfg.edges() {
            if !dfs.is_reachable(src) {
                continue;
            }
            if doms.dominates(dst, src) {
                backedges.insert((src, dst));
            } else if dfs.is_retreating(src, dst) {
                irreducible_edges.insert((src, dst));
            }
        }

        let mut heads: HashSet<BlockId> = HashSet::new();
        for &(_, dst) in &backedges {
            heads.insert(dst);
        }

        // nat_loop(y): backward reachability from each backedge source,
        // stopping at y.
        let mut loops: HashMap<BlockId, NaturalLoop> = HashMap::new();
        for &head in &heads {
            let mut body: HashSet<BlockId> = HashSet::new();
            body.insert(head);
            let mut work: Vec<BlockId> = Vec::new();
            for &(src, dst) in &backedges {
                if dst == head && body.insert(src) {
                    work.push(src);
                }
            }
            while let Some(b) = work.pop() {
                for &p in cfg.predecessors(b) {
                    if dfs.is_reachable(p) && body.insert(p) {
                        work.push(p);
                    }
                }
            }
            loops.insert(head, NaturalLoop { head, body });
        }

        let mut exit_edges = HashSet::new();
        for (src, dst, _) in cfg.edges() {
            for nl in loops.values() {
                if nl.contains(src) && !nl.contains(dst) {
                    exit_edges.insert((src, dst));
                    break;
                }
            }
        }

        let mut depth = vec![0u32; cfg.n_blocks()];
        for nl in loops.values() {
            for b in &nl.body {
                depth[b.index()] += 1;
            }
        }

        Loops {
            backedges,
            heads,
            loops,
            exit_edges,
            irreducible_edges,
            depth,
        }
    }

    /// Is `src -> dst` a loop backedge (dst dominates src)?
    pub fn is_backedge(&self, src: BlockId, dst: BlockId) -> bool {
        self.backedges.contains(&(src, dst))
    }

    /// Is `b` a loop head (target of at least one backedge)?
    pub fn is_head(&self, b: BlockId) -> bool {
        self.heads.contains(&b)
    }

    /// Is `src -> dst` an exit edge of some natural loop (`src` inside,
    /// `dst` outside)?
    pub fn is_exit_edge(&self, src: BlockId, dst: BlockId) -> bool {
        self.exit_edges.contains(&(src, dst))
    }

    /// The natural loop with the given head.
    pub fn natural_loop(&self, head: BlockId) -> Option<&NaturalLoop> {
        self.loops.get(&head)
    }

    /// All loop heads.
    pub fn heads(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.heads.iter().copied()
    }

    /// All natural loops.
    pub fn iter(&self) -> impl Iterator<Item = &NaturalLoop> {
        self.loops.values()
    }

    /// Number of distinct natural loops (one per head).
    pub fn n_loops(&self) -> usize {
        self.loops.len()
    }

    /// Loop nesting depth of `b` (number of natural loops containing it).
    pub fn depth(&self, b: BlockId) -> u32 {
        self.depth[b.index()]
    }

    /// Is the CFG reducible (every retreating DFS edge is a backedge)?
    pub fn is_reducible(&self) -> bool {
        self.irreducible_edges.is_empty()
    }

    /// Retreating edges that are not natural-loop backedges.
    pub fn irreducible_edges(&self) -> impl Iterator<Item = (BlockId, BlockId)> + '_ {
        self.irreducible_edges.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs::DfsOrder;
    use bpfree_ir::{Cond, FunctionBuilder, Terminator};

    fn ret() -> Terminator {
        Terminator::Ret {
            val: None,
            fval: None,
        }
    }

    fn analyze(f: bpfree_ir::Function) -> (Cfg, Loops) {
        let cfg = Cfg::new(&f);
        let dfs = DfsOrder::compute(&cfg);
        let doms = Dominators::compute(&cfg, &dfs);
        let loops = Loops::compute(&cfg, &doms);
        (cfg, loops)
    }

    /// Reproduces the paper's Figure 1: A -> B; B -> {C, F?}; actually:
    /// backedges D->B and E->B, exit edges C->F and E->F.
    ///
    /// A -> B; B -> C | E; C -> D | F; D -> B; E -> B | F; F ret.
    #[test]
    fn paper_figure_1() {
        let mut bld = FunctionBuilder::new("fig1");
        let a = bld.entry();
        let b = bld.new_block();
        let c = bld.new_block();
        let d = bld.new_block();
        let e = bld.new_block();
        let f = bld.new_block();
        let r = bld.new_reg();
        bld.set_term(
            a,
            Terminator::Branch {
                cond: Cond::Nez(r),
                taken: b,
                fallthru: f,
            },
        );
        bld.set_term(
            b,
            Terminator::Branch {
                cond: Cond::Gtz(r),
                taken: c,
                fallthru: e,
            },
        );
        bld.set_term(
            c,
            Terminator::Branch {
                cond: Cond::Ltz(r),
                taken: d,
                fallthru: f,
            },
        );
        bld.set_term(d, Terminator::Jump(b));
        bld.set_term(
            e,
            Terminator::Branch {
                cond: Cond::Lez(r),
                taken: b,
                fallthru: f,
            },
        );
        bld.set_term(f, ret());
        let (_cfg, loops) = analyze(bld.finish().unwrap());

        assert!(loops.is_backedge(d, b));
        assert!(loops.is_backedge(e, b));
        assert_eq!(loops.n_loops(), 1);
        let nl = loops.natural_loop(b).unwrap();
        assert_eq!(nl.body, [b, c, d, e].into_iter().collect());
        assert!(loops.is_exit_edge(c, f));
        assert!(loops.is_exit_edge(e, f));
        assert!(!loops.is_exit_edge(a, f));
        assert!(loops.is_reducible());
    }

    #[test]
    fn nested_loops_have_depth() {
        // entry -> outer_head; outer_head -> inner_head | done;
        // inner_head -> inner_body | outer_latch; inner_body -> inner_head;
        // outer_latch -> outer_head; done ret.
        let mut bld = FunctionBuilder::new("nest");
        let entry = bld.entry();
        let oh = bld.new_block();
        let ih = bld.new_block();
        let ib = bld.new_block();
        let ol = bld.new_block();
        let done = bld.new_block();
        let r = bld.new_reg();
        bld.set_term(entry, Terminator::Jump(oh));
        bld.set_term(
            oh,
            Terminator::Branch {
                cond: Cond::Gtz(r),
                taken: ih,
                fallthru: done,
            },
        );
        bld.set_term(
            ih,
            Terminator::Branch {
                cond: Cond::Ltz(r),
                taken: ib,
                fallthru: ol,
            },
        );
        bld.set_term(ib, Terminator::Jump(ih));
        bld.set_term(ol, Terminator::Jump(oh));
        bld.set_term(done, ret());
        let (_cfg, loops) = analyze(bld.finish().unwrap());

        assert_eq!(loops.n_loops(), 2);
        assert_eq!(loops.depth(ib), 2);
        assert_eq!(loops.depth(ih), 2);
        assert_eq!(loops.depth(ol), 1);
        assert_eq!(loops.depth(oh), 1);
        assert_eq!(loops.depth(done), 0);
        assert_eq!(loops.depth(entry), 0);
    }

    #[test]
    fn self_loop_is_its_own_natural_loop() {
        let mut bld = FunctionBuilder::new("s");
        let e = bld.entry();
        let l = bld.new_block();
        let done = bld.new_block();
        let r = bld.new_reg();
        bld.set_term(e, Terminator::Jump(l));
        bld.set_term(
            l,
            Terminator::Branch {
                cond: Cond::Gtz(r),
                taken: l,
                fallthru: done,
            },
        );
        bld.set_term(done, ret());
        let (_cfg, loops) = analyze(bld.finish().unwrap());
        assert!(loops.is_backedge(l, l));
        let nl = loops.natural_loop(l).unwrap();
        assert_eq!(nl.body, [l].into_iter().collect());
        assert!(loops.is_exit_edge(l, done));
    }

    #[test]
    fn acyclic_graph_has_no_loops() {
        let mut bld = FunctionBuilder::new("dag");
        let e = bld.entry();
        let x = bld.new_block();
        let r = bld.new_reg();
        bld.set_term(
            e,
            Terminator::Branch {
                cond: Cond::Nez(r),
                taken: x,
                fallthru: x,
            },
        );
        // Degenerate branch is invalid IR; use jump instead.
        bld.set_term(e, Terminator::Jump(x));
        bld.set_term(x, ret());
        let (_cfg, loops) = analyze(bld.finish().unwrap());
        assert_eq!(loops.n_loops(), 0);
        assert!(loops.is_reducible());
    }

    #[test]
    fn irreducible_graph_detected() {
        // entry -> a | b; a -> b; b -> a (cycle with two entries).
        let mut bld = FunctionBuilder::new("irr");
        let e = bld.entry();
        let a = bld.new_block();
        let b = bld.new_block();
        let out = bld.new_block();
        let r = bld.new_reg();
        bld.set_term(
            e,
            Terminator::Branch {
                cond: Cond::Nez(r),
                taken: a,
                fallthru: b,
            },
        );
        bld.set_term(a, Terminator::Jump(b));
        bld.set_term(
            b,
            Terminator::Branch {
                cond: Cond::Gtz(r),
                taken: a,
                fallthru: out,
            },
        );
        bld.set_term(out, ret());
        let (_cfg, loops) = analyze(bld.finish().unwrap());
        // Neither a nor b dominates the other, so no natural loop exists,
        // but a retreating edge does: the graph is irreducible.
        assert_eq!(loops.n_loops(), 0);
        assert!(!loops.is_reducible());
    }

    #[test]
    fn loop_with_interior_branch_exit_edges() {
        // The classic while loop with an if inside and a break:
        // head -> body | out; body -> brk | latch; brk -> out; latch -> head
        let mut bld = FunctionBuilder::new("brk");
        let e = bld.entry();
        let head = bld.new_block();
        let body = bld.new_block();
        let brk = bld.new_block();
        let latch = bld.new_block();
        let out = bld.new_block();
        let r = bld.new_reg();
        bld.set_term(e, Terminator::Jump(head));
        bld.set_term(
            head,
            Terminator::Branch {
                cond: Cond::Gtz(r),
                taken: body,
                fallthru: out,
            },
        );
        bld.set_term(
            body,
            Terminator::Branch {
                cond: Cond::Ltz(r),
                taken: brk,
                fallthru: latch,
            },
        );
        bld.set_term(brk, Terminator::Jump(out));
        bld.set_term(latch, Terminator::Jump(head));
        bld.set_term(out, ret());
        let (_cfg, loops) = analyze(bld.finish().unwrap());
        let nl = loops.natural_loop(head).unwrap();
        // brk is inside the loop (it has a head-free path to the latch? No —
        // brk leaves the loop; it is NOT in nat_loop because no path from
        // brk reaches the backedge source without the head.)
        assert!(nl.contains(body));
        assert!(nl.contains(latch));
        assert!(!nl.contains(brk));
        assert!(loops.is_exit_edge(head, out));
        // body -> brk leaves the natural loop, so it is an exit edge: the
        // "break" branch is a loop branch in the paper's classification.
        assert!(loops.is_exit_edge(body, brk));
    }
}
