use bpfree_ir::{BlockId, Function, Terminator};

/// How control flows along a CFG edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// The taken side of a conditional branch.
    Taken,
    /// The fall-through side of a conditional branch.
    FallThru,
    /// An unconditional jump.
    Jump,
}

/// A per-function control-flow graph.
///
/// Vertices are the function's basic blocks; each conditional branch
/// contributes a [`EdgeKind::Taken`] and a [`EdgeKind::FallThru`] edge, and
/// each jump a [`EdgeKind::Jump`] edge. Return blocks have no successors.
///
/// # Example
///
/// ```
/// use bpfree_ir::{FunctionBuilder, Terminator};
/// use bpfree_cfg::Cfg;
/// let mut b = FunctionBuilder::new("f");
/// let e = b.entry();
/// let x = b.new_block();
/// b.set_term(e, Terminator::Jump(x));
/// b.set_term(x, Terminator::Ret { val: None, fval: None });
/// let cfg = Cfg::new(&b.finish().unwrap());
/// assert_eq!(cfg.successors(e), &[x]);
/// assert_eq!(cfg.predecessors(x), &[e]);
/// ```
#[derive(Debug, Clone)]
pub struct Cfg {
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
    kinds: Vec<Vec<EdgeKind>>,
    entry: BlockId,
    exits: Vec<BlockId>,
}

impl Cfg {
    /// Builds the CFG of `func`.
    pub fn new(func: &Function) -> Cfg {
        let n = func.blocks().len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        let mut kinds = vec![Vec::new(); n];
        let mut exits = Vec::new();
        for bid in func.block_ids() {
            match &func.block(bid).term {
                Terminator::Jump(t) => {
                    succs[bid.index()].push(*t);
                    kinds[bid.index()].push(EdgeKind::Jump);
                    preds[t.index()].push(bid);
                }
                Terminator::Branch {
                    taken, fallthru, ..
                } => {
                    succs[bid.index()].push(*taken);
                    kinds[bid.index()].push(EdgeKind::Taken);
                    preds[taken.index()].push(bid);
                    succs[bid.index()].push(*fallthru);
                    kinds[bid.index()].push(EdgeKind::FallThru);
                    preds[fallthru.index()].push(bid);
                }
                Terminator::Ret { .. } => exits.push(bid),
            }
        }
        Cfg {
            succs,
            preds,
            kinds,
            entry: func.entry(),
            exits,
        }
    }

    /// Number of blocks (vertices).
    pub fn n_blocks(&self) -> usize {
        self.succs.len()
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Blocks with no successors (procedure exits).
    pub fn exits(&self) -> &[BlockId] {
        &self.exits
    }

    /// Successors of `b`, in `(taken, fallthru)` order for branches.
    pub fn successors(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Predecessors of `b` (with duplicates if two edges share endpoints).
    pub fn predecessors(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Edge kinds parallel to [`Cfg::successors`].
    pub fn successor_kinds(&self, b: BlockId) -> &[EdgeKind] {
        &self.kinds[b.index()]
    }

    /// Iterator over all edges as `(src, dst, kind)` triples.
    pub fn edges(&self) -> impl Iterator<Item = (BlockId, BlockId, EdgeKind)> + '_ {
        (0..self.n_blocks() as u32).flat_map(move |i| {
            let b = BlockId(i);
            self.succs[b.index()]
                .iter()
                .zip(&self.kinds[b.index()])
                .map(move |(&dst, &kind)| (b, dst, kind))
        })
    }

    /// Iterator over all block ids.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.n_blocks() as u32).map(BlockId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpfree_ir::{Cond, FunctionBuilder};

    fn ret() -> Terminator {
        Terminator::Ret {
            val: None,
            fval: None,
        }
    }

    #[test]
    fn branch_edges_keep_taken_fallthru_order() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry();
        let t = b.new_block();
        let f = b.new_block();
        let r = b.new_reg();
        b.set_term(
            e,
            Terminator::Branch {
                cond: Cond::Nez(r),
                taken: t,
                fallthru: f,
            },
        );
        b.set_term(t, ret());
        b.set_term(f, ret());
        let cfg = Cfg::new(&b.finish().unwrap());
        assert_eq!(cfg.successors(e), &[t, f]);
        assert_eq!(
            cfg.successor_kinds(e),
            &[EdgeKind::Taken, EdgeKind::FallThru]
        );
        assert_eq!(cfg.exits(), &[t, f]);
    }

    #[test]
    fn edges_iterator_matches_successors() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry();
        let x = b.new_block();
        b.set_term(e, Terminator::Jump(x));
        b.set_term(x, ret());
        let cfg = Cfg::new(&b.finish().unwrap());
        let edges: Vec<_> = cfg.edges().collect();
        assert_eq!(edges, vec![(e, x, EdgeKind::Jump)]);
    }

    #[test]
    fn self_loop_records_both_directions() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry();
        let l = b.new_block();
        let done = b.new_block();
        let r = b.new_reg();
        b.set_term(e, Terminator::Jump(l));
        b.set_term(
            l,
            Terminator::Branch {
                cond: Cond::Gtz(r),
                taken: l,
                fallthru: done,
            },
        );
        b.set_term(done, ret());
        let cfg = Cfg::new(&b.finish().unwrap());
        assert!(cfg.successors(l).contains(&l));
        assert!(cfg.predecessors(l).contains(&l));
    }
}
