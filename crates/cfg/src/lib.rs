//! Control-flow analysis for the Ball–Larus heuristics.
//!
//! The paper's branch predictor needs four pieces of control-flow
//! information per procedure, all of which this crate provides:
//!
//! * the control-flow graph itself ([`Cfg`]), with the taken/fall-through
//!   edge distinction preserved;
//! * the **domination** and **postdomination** relations ([`Dominators`],
//!   [`PostDominators`]) — several heuristics only fire when a successor
//!   does *not* postdominate the branch;
//! * **natural loops** ([`Loops`]): backedges, loop heads, the `nat_loop`
//!   sets, and exit edges, which drive the loop/non-loop branch
//!   classification of Section 3;
//! * depth-first orderings ([`DfsOrder`]) used by the iterative dominator
//!   solver and by reducibility checking.
//!
//! # Example
//!
//! ```
//! use bpfree_ir::{FunctionBuilder, Instr, Terminator, Cond, BinOp};
//! use bpfree_cfg::FunctionAnalysis;
//!
//! // while (i < 10) { i = i + 1 }
//! let mut b = FunctionBuilder::new("count");
//! let entry = b.entry();
//! let head = b.new_block();
//! let body = b.new_block();
//! let exit = b.new_block();
//! let i = b.new_reg();
//! let t = b.new_reg();
//! b.push(entry, Instr::Li { rd: i, imm: 0 });
//! b.set_term(entry, Terminator::Jump(head));
//! b.push(head, Instr::BinImm { op: BinOp::Slt, rd: t, rs: i, imm: 10 });
//! b.set_term(head, Terminator::Branch { cond: Cond::Nez(t), taken: body, fallthru: exit });
//! b.push(body, Instr::BinImm { op: BinOp::Add, rd: i, rs: i, imm: 1 });
//! b.set_term(body, Terminator::Jump(head));
//! b.set_term(exit, Terminator::Ret { val: Some(i), fval: None });
//! let f = b.finish().unwrap();
//!
//! let analysis = FunctionAnalysis::new(&f);
//! assert!(analysis.loops.is_backedge(body, head));
//! assert!(analysis.loops.is_exit_edge(head, exit));
//! ```

#![deny(missing_docs)]

mod bitset;
mod dfs;
mod dom;
mod graph;
mod loops;

pub use bitset::BlockSet;
pub use dfs::DfsOrder;
pub use dom::{Dominators, PostDominators};
pub use graph::{Cfg, EdgeKind};
pub use loops::{Loops, NaturalLoop};

use bpfree_ir::Function;

/// Bundles every analysis the heuristics need for one function.
///
/// Construction runs DFS, dominators, postdominators, and loop analysis.
#[derive(Debug)]
pub struct FunctionAnalysis {
    /// The control-flow graph.
    pub cfg: Cfg,
    /// Depth-first orderings over the CFG.
    pub dfs: DfsOrder,
    /// The domination relation.
    pub doms: Dominators,
    /// The postdomination relation.
    pub pdoms: PostDominators,
    /// Natural-loop analysis results.
    pub loops: Loops,
}

impl FunctionAnalysis {
    /// Analyzes one function.
    ///
    /// # Example
    ///
    /// ```
    /// use bpfree_ir::{FunctionBuilder, Terminator};
    /// use bpfree_cfg::FunctionAnalysis;
    /// let mut b = FunctionBuilder::new("f");
    /// let e = b.entry();
    /// b.set_term(e, Terminator::Ret { val: None, fval: None });
    /// let f = b.finish().unwrap();
    /// let a = FunctionAnalysis::new(&f);
    /// assert_eq!(a.cfg.n_blocks(), 1);
    /// ```
    pub fn new(func: &Function) -> FunctionAnalysis {
        let cfg = Cfg::new(func);
        let dfs = DfsOrder::compute(&cfg);
        let doms = Dominators::compute(&cfg, &dfs);
        let pdoms = PostDominators::compute(&cfg);
        let loops = Loops::compute(&cfg, &doms);
        FunctionAnalysis {
            cfg,
            dfs,
            doms,
            pdoms,
            loops,
        }
    }
}
