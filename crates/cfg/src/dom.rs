use bpfree_ir::BlockId;

use crate::dfs::DfsOrder;
use crate::graph::Cfg;

/// Shared iterative dominator core (Cooper–Harvey–Kennedy).
///
/// `rpo` is a reverse postorder of the graph rooted at `rpo[0]`;
/// `preds(b)` yields predecessor indices. Returns `idom[b]` for every node
/// in `rpo` (`idom[root] == root`), `None` for nodes not in `rpo`.
fn idoms_core(n: usize, rpo: &[usize], preds: impl Fn(usize) -> Vec<usize>) -> Vec<Option<usize>> {
    let mut rpo_index = vec![usize::MAX; n];
    for (i, &b) in rpo.iter().enumerate() {
        rpo_index[b] = i;
    }
    let mut idom: Vec<Option<usize>> = vec![None; n];
    if rpo.is_empty() {
        return idom;
    }
    let root = rpo[0];
    idom[root] = Some(root);

    let intersect = |idom: &[Option<usize>], mut a: usize, mut b: usize| -> usize {
        while a != b {
            while rpo_index[a] > rpo_index[b] {
                a = idom[a].expect("processed node has idom");
            }
            while rpo_index[b] > rpo_index[a] {
                b = idom[b].expect("processed node has idom");
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &b in &rpo[1..] {
            let mut new_idom: Option<usize> = None;
            for p in preds(b) {
                if idom[p].is_some() {
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, p, cur),
                    });
                }
            }
            if let Some(ni) = new_idom {
                if idom[b] != Some(ni) {
                    idom[b] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    idom
}

/// Walks the idom chain from `b` looking for `a`. `idom[root] == root`.
fn chain_contains(idom: &[Option<usize>], a: usize, b: usize) -> bool {
    let mut cur = b;
    loop {
        if cur == a {
            return true;
        }
        match idom[cur] {
            Some(next) if next != cur => cur = next,
            _ => return false,
        }
    }
}

/// The dominator tree of a [`Cfg`].
///
/// Vertex `v` *dominates* `w` if every path from the entry to `w` passes
/// through `v`. Only reachable blocks participate; queries involving
/// unreachable blocks return `false`/`None`.
///
/// # Example
///
/// ```
/// use bpfree_ir::{FunctionBuilder, Terminator};
/// use bpfree_cfg::{Cfg, DfsOrder, Dominators};
/// let mut b = FunctionBuilder::new("f");
/// let e = b.entry();
/// let x = b.new_block();
/// b.set_term(e, Terminator::Jump(x));
/// b.set_term(x, Terminator::Ret { val: None, fval: None });
/// let cfg = Cfg::new(&b.finish().unwrap());
/// let dfs = DfsOrder::compute(&cfg);
/// let doms = Dominators::compute(&cfg, &dfs);
/// assert!(doms.dominates(e, x));
/// assert!(!doms.dominates(x, e));
/// ```
#[derive(Debug, Clone)]
pub struct Dominators {
    idom: Vec<Option<usize>>,
    entry: BlockId,
}

impl Dominators {
    /// Computes immediate dominators with the iterative RPO algorithm.
    pub fn compute(cfg: &Cfg, dfs: &DfsOrder) -> Dominators {
        let rpo: Vec<usize> = dfs.reverse_postorder().iter().map(|b| b.index()).collect();
        let idom = idoms_core(cfg.n_blocks(), &rpo, |b| {
            cfg.predecessors(BlockId(b as u32))
                .iter()
                .map(|p| p.index())
                .collect()
        });
        Dominators {
            idom,
            entry: cfg.entry(),
        }
    }

    /// The immediate dominator of `b` (`None` for the entry block and for
    /// unreachable blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        if b == self.entry {
            return None;
        }
        self.idom[b.index()].map(|i| BlockId(i as u32))
    }

    /// Does `a` dominate `b`? Reflexive: `dominates(x, x)` is `true` for
    /// reachable `x`.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom[b.index()].is_none() || self.idom[a.index()].is_none() {
            // Unreachable blocks dominate nothing and are dominated by
            // nothing (entry has idom == itself in the core table).
            return false;
        }
        chain_contains(&self.idom, a.index(), b.index())
    }

    /// Does `a` strictly dominate `b`?
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }
}

/// The postdominator relation of a [`Cfg`].
///
/// Vertex `w` *postdominates* `v` if every path from `v` to any exit passes
/// through `w`. Computed on the reversed CFG with a virtual exit node
/// joining all return blocks. Blocks that cannot reach an exit (infinite
/// loops) postdominate nothing and are postdominated by nothing.
#[derive(Debug, Clone)]
pub struct PostDominators {
    /// Indexed over `n_blocks + 1`; the last slot is the virtual exit.
    ipdom: Vec<Option<usize>>,
    n: usize,
}

impl PostDominators {
    /// Computes immediate postdominators.
    pub fn compute(cfg: &Cfg) -> PostDominators {
        let n = cfg.n_blocks();
        let virt = n; // virtual exit node index
                      // Reversed graph: edge v -> u for every CFG edge u -> v, plus
                      // virt -> e for every exit e. DFS from virt.
        let succs_rev = |b: usize| -> Vec<usize> {
            if b == virt {
                cfg.exits().iter().map(|e| e.index()).collect()
            } else {
                cfg.predecessors(BlockId(b as u32))
                    .iter()
                    .map(|p| p.index())
                    .collect()
            }
        };
        let preds_rev = |b: usize| -> Vec<usize> {
            if b == virt {
                return Vec::new();
            }
            let block = BlockId(b as u32);
            let mut out: Vec<usize> = cfg.successors(block).iter().map(|s| s.index()).collect();
            if cfg.exits().contains(&block) {
                out.push(virt);
            }
            out
        };
        // Iterative postorder DFS on the reversed graph.
        let mut visited = vec![false; n + 1];
        let mut postorder = Vec::with_capacity(n + 1);
        let mut stack: Vec<(usize, Vec<usize>, usize)> = Vec::new();
        visited[virt] = true;
        stack.push((virt, succs_rev(virt), 0));
        while let Some((b, succs, next)) = stack.last_mut() {
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if !visited[s] {
                    visited[s] = true;
                    let sc = succs_rev(s);
                    stack.push((s, sc, 0));
                }
            } else {
                postorder.push(*b);
                stack.pop();
            }
        }
        let rpo: Vec<usize> = postorder.into_iter().rev().collect();
        let ipdom = idoms_core(n + 1, &rpo, preds_rev);
        PostDominators { ipdom, n }
    }

    /// The immediate postdominator of `b`. `None` when `b` cannot reach an
    /// exit or when its only postdominator is the (virtual) program exit.
    pub fn ipdom(&self, b: BlockId) -> Option<BlockId> {
        match self.ipdom[b.index()] {
            Some(i) if i < self.n => Some(BlockId(i as u32)),
            _ => None,
        }
    }

    /// Does `w` postdominate `v`? Reflexive for blocks that reach an exit.
    pub fn postdominates(&self, w: BlockId, v: BlockId) -> bool {
        if self.ipdom[v.index()].is_none() || self.ipdom[w.index()].is_none() {
            return false;
        }
        chain_contains(&self.ipdom, w.index(), v.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpfree_ir::{Cond, FunctionBuilder, Terminator};

    fn ret() -> Terminator {
        Terminator::Ret {
            val: None,
            fval: None,
        }
    }

    /// entry -> (l | r) -> join -> ret
    fn diamond() -> (Cfg, BlockId, BlockId, BlockId, BlockId) {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry();
        let l = b.new_block();
        let r = b.new_block();
        let j = b.new_block();
        let c = b.new_reg();
        b.set_term(
            e,
            Terminator::Branch {
                cond: Cond::Nez(c),
                taken: l,
                fallthru: r,
            },
        );
        b.set_term(l, Terminator::Jump(j));
        b.set_term(r, Terminator::Jump(j));
        b.set_term(j, ret());
        (Cfg::new(&b.finish().unwrap()), e, l, r, j)
    }

    #[test]
    fn diamond_dominators() {
        let (cfg, e, l, r, j) = diamond();
        let dfs = DfsOrder::compute(&cfg);
        let doms = Dominators::compute(&cfg, &dfs);
        assert!(doms.dominates(e, j));
        assert!(!doms.dominates(l, j));
        assert!(!doms.dominates(r, j));
        assert_eq!(doms.idom(j), Some(e));
        assert_eq!(doms.idom(l), Some(e));
        assert_eq!(doms.idom(e), None);
        assert!(doms.dominates(l, l));
        assert!(!doms.strictly_dominates(l, l));
    }

    #[test]
    fn diamond_postdominators() {
        let (cfg, e, l, r, j) = diamond();
        let pdoms = PostDominators::compute(&cfg);
        assert!(pdoms.postdominates(j, e));
        assert!(pdoms.postdominates(j, l));
        assert!(!pdoms.postdominates(l, e));
        assert!(!pdoms.postdominates(r, e));
        assert_eq!(pdoms.ipdom(e), Some(j));
        assert_eq!(pdoms.ipdom(j), None);
    }

    #[test]
    fn early_return_breaks_postdomination() {
        // entry --cond--> ret_early ; fallthru -> tail -> ret
        let mut b = FunctionBuilder::new("f");
        let e = b.entry();
        let early = b.new_block();
        let tail = b.new_block();
        let c = b.new_reg();
        b.set_term(
            e,
            Terminator::Branch {
                cond: Cond::Ltz(c),
                taken: early,
                fallthru: tail,
            },
        );
        b.set_term(early, ret());
        b.set_term(tail, ret());
        let cfg = Cfg::new(&b.finish().unwrap());
        let pdoms = PostDominators::compute(&cfg);
        assert!(!pdoms.postdominates(tail, e));
        assert!(!pdoms.postdominates(early, e));
        assert_eq!(pdoms.ipdom(e), None); // only the virtual exit
    }

    #[test]
    fn loop_dominators() {
        // entry -> head <-> body ; head -> exit
        let mut b = FunctionBuilder::new("f");
        let e = b.entry();
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let c = b.new_reg();
        b.set_term(e, Terminator::Jump(head));
        b.set_term(
            head,
            Terminator::Branch {
                cond: Cond::Gtz(c),
                taken: body,
                fallthru: exit,
            },
        );
        b.set_term(body, Terminator::Jump(head));
        b.set_term(exit, ret());
        let cfg = Cfg::new(&b.finish().unwrap());
        let dfs = DfsOrder::compute(&cfg);
        let doms = Dominators::compute(&cfg, &dfs);
        let pdoms = PostDominators::compute(&cfg);
        assert!(doms.dominates(head, body));
        assert!(doms.dominates(head, exit));
        assert!(!doms.dominates(body, exit));
        assert!(pdoms.postdominates(head, body));
        assert!(pdoms.postdominates(exit, head));
        assert!(!pdoms.postdominates(body, head));
    }

    #[test]
    fn infinite_loop_postdominates_nothing() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry();
        let spin = b.new_block();
        b.set_term(e, Terminator::Jump(spin));
        b.set_term(spin, Terminator::Jump(spin));
        let cfg = Cfg::new(&b.finish().unwrap());
        let pdoms = PostDominators::compute(&cfg);
        assert!(!pdoms.postdominates(spin, e));
        assert!(!pdoms.postdominates(e, spin));
    }

    #[test]
    fn unreachable_blocks_not_dominated() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry();
        let dead = b.new_block();
        b.set_term(e, ret());
        b.set_term(dead, ret());
        let cfg = Cfg::new(&b.finish().unwrap());
        let dfs = DfsOrder::compute(&cfg);
        let doms = Dominators::compute(&cfg, &dfs);
        assert!(!doms.dominates(e, dead));
        assert!(!doms.dominates(dead, e));
    }
}
