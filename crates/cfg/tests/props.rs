//! Property tests for the control-flow analyses on randomly generated
//! CFGs.

use bpfree_cfg::{Cfg, DfsOrder, Dominators, Loops, PostDominators};
use bpfree_ir::{BlockId, Cond, FunctionBuilder, Terminator};
use proptest::prelude::*;

/// Builds a function with `n` blocks and pseudo-random terminators
/// derived from `edges`: each block gets a jump, branch, or return
/// chosen by the seed data.
fn random_function(n: usize, seed: &[u8]) -> bpfree_ir::Function {
    let mut b = FunctionBuilder::new("rand");
    let r = b.new_reg();
    let blocks: Vec<BlockId> = (0..n)
        .map(|i| if i == 0 { b.entry() } else { b.new_block() })
        .collect();
    for (i, &blk) in blocks.iter().enumerate() {
        let s0 = seed[(i * 3) % seed.len()] as usize;
        let s1 = seed[(i * 3 + 1) % seed.len()] as usize;
        let s2 = seed[(i * 3 + 2) % seed.len()] as usize;
        match s0 % 4 {
            0 => b.set_term(
                blk,
                Terminator::Ret {
                    val: None,
                    fval: None,
                },
            ),
            1 => b.set_term(blk, Terminator::Jump(blocks[s1 % n])),
            _ => {
                let taken = blocks[s1 % n];
                let mut fall = blocks[s2 % n];
                if taken == fall {
                    fall = blocks[(s2 + 1) % n];
                }
                if taken == fall {
                    b.set_term(blk, Terminator::Jump(taken));
                } else {
                    b.set_term(
                        blk,
                        Terminator::Branch {
                            cond: Cond::Gtz(r),
                            taken,
                            fallthru: fall,
                        },
                    );
                }
            }
        }
    }
    b.finish().expect("all blocks terminated")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dominator_invariants(n in 1usize..24, seed in proptest::collection::vec(any::<u8>(), 8..64)) {
        let f = random_function(n, &seed);
        let cfg = Cfg::new(&f);
        let dfs = DfsOrder::compute(&cfg);
        let doms = Dominators::compute(&cfg, &dfs);
        let entry = cfg.entry();

        for b in cfg.block_ids() {
            if dfs.is_reachable(b) {
                // The entry dominates every reachable block.
                prop_assert!(doms.dominates(entry, b));
                // Domination is reflexive on reachable blocks.
                prop_assert!(doms.dominates(b, b));
                // The immediate dominator, when present, strictly dominates.
                if let Some(idom) = doms.idom(b) {
                    prop_assert!(doms.strictly_dominates(idom, b));
                    // And every strict dominator of b dominates idom too
                    // (idom is the *closest*).
                    for d in cfg.block_ids() {
                        if d != b && d != idom && doms.strictly_dominates(d, b) {
                            prop_assert!(doms.dominates(d, idom), "{d} vs idom {idom} of {b}");
                        }
                    }
                }
            } else {
                prop_assert!(!doms.dominates(entry, b));
            }
        }
    }

    #[test]
    fn dominators_match_brute_force(n in 1usize..12, seed in proptest::collection::vec(any::<u8>(), 8..64)) {
        let f = random_function(n, &seed);
        let cfg = Cfg::new(&f);
        let dfs = DfsOrder::compute(&cfg);
        let doms = Dominators::compute(&cfg, &dfs);
        // Brute force: v dominates w iff removing v makes w unreachable.
        for v in cfg.block_ids() {
            for w in cfg.block_ids() {
                let expected = if !dfs.is_reachable(w) || !dfs.is_reachable(v) {
                    false
                } else if v == w {
                    true
                } else {
                    !reachable_avoiding(&cfg, cfg.entry(), w, v)
                };
                prop_assert_eq!(
                    doms.dominates(v, w),
                    expected,
                    "dominates({}, {})", v, w
                );
            }
        }
    }

    #[test]
    fn postdominator_invariants(n in 1usize..20, seed in proptest::collection::vec(any::<u8>(), 8..64)) {
        let f = random_function(n, &seed);
        let cfg = Cfg::new(&f);
        let pdoms = PostDominators::compute(&cfg);
        // Exit blocks postdominate themselves; blocks that reach no exit
        // postdominate nothing.
        for &e in cfg.exits() {
            prop_assert!(pdoms.postdominates(e, e));
        }
        // Brute force on small graphs: w postdominates v iff every path
        // from v to any exit passes through w.
        for v in cfg.block_ids() {
            for w in cfg.block_ids() {
                if v == w {
                    continue;
                }
                let v_reaches_exit = cfg.exits().iter().any(|&e| reachable(&cfg, v, e));
                let expected = if !v_reaches_exit {
                    false
                } else {
                    !cfg.exits().iter().any(|&e| reachable_avoiding(&cfg, v, e, w))
                };
                prop_assert_eq!(
                    pdoms.postdominates(w, v),
                    expected,
                    "postdominates({}, {})", w, v
                );
            }
        }
    }

    #[test]
    fn natural_loop_invariants(n in 1usize..20, seed in proptest::collection::vec(any::<u8>(), 8..64)) {
        let f = random_function(n, &seed);
        let cfg = Cfg::new(&f);
        let dfs = DfsOrder::compute(&cfg);
        let doms = Dominators::compute(&cfg, &dfs);
        let loops = Loops::compute(&cfg, &doms);

        for nl in loops.iter() {
            // The head is in its own loop.
            prop_assert!(nl.contains(nl.head));
            // The head dominates every loop member.
            for m in nl.body.iter() {
                prop_assert!(doms.dominates(nl.head, m), "head {} member {}", nl.head, m);
            }
        }
        // Every backedge target is a head; exit edges leave some loop.
        for (src, dst, _) in cfg.edges() {
            if loops.is_backedge(src, dst) {
                prop_assert!(loops.is_head(dst));
                prop_assert!(doms.dominates(dst, src));
            }
            if loops.is_exit_edge(src, dst) {
                let leaves_some = loops
                    .iter()
                    .any(|nl| nl.contains(src) && !nl.contains(dst));
                prop_assert!(leaves_some);
            }
        }
        // Depth is bounded by the number of loops.
        for b in cfg.block_ids() {
            prop_assert!(loops.depth(b) as usize <= loops.n_loops());
        }
    }
}

/// Is `to` reachable from `from`?
fn reachable(cfg: &Cfg, from: BlockId, to: BlockId) -> bool {
    reachable_avoiding(cfg, from, to, BlockId(u32::MAX))
}

/// Is `to` reachable from `from` without passing through `avoid`
/// (endpoints included: from == avoid or to == avoid fails unless equal
/// to each other trivially)?
fn reachable_avoiding(cfg: &Cfg, from: BlockId, to: BlockId, avoid: BlockId) -> bool {
    if from == avoid {
        return false;
    }
    let mut seen = vec![false; cfg.n_blocks()];
    let mut stack = vec![from];
    seen[from.index()] = true;
    while let Some(b) = stack.pop() {
        if b == to {
            return true;
        }
        for &s in cfg.successors(b) {
            if s != avoid && !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    false
}
