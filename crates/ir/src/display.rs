//! Pseudo-assembly pretty printing for functions and programs.

use std::fmt;

use crate::function::{Function, Program};
use crate::instr::{BinOp, Cond, FBinOp, FCmp, Instr, Terminator};

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Sll => "sll",
            BinOp::Srl => "srl",
            BinOp::Sra => "sra",
            BinOp::Slt => "slt",
            BinOp::Sle => "sle",
            BinOp::Seq => "seq",
            BinOp::Sne => "sne",
        };
        f.write_str(s)
    }
}

impl fmt::Display for FBinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FBinOp::Add => "add.d",
            FBinOp::Sub => "sub.d",
            FBinOp::Mul => "mul.d",
            FBinOp::Div => "div.d",
        };
        f.write_str(s)
    }
}

impl fmt::Display for FCmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FCmp::Eq => "c.eq.d",
            FCmp::Lt => "c.lt.d",
            FCmp::Le => "c.le.d",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Instr::Move { rd, rs } => write!(f, "move {rd}, {rs}"),
            Instr::Bin { op, rd, rs, rt } => write!(f, "{op} {rd}, {rs}, {rt}"),
            Instr::BinImm { op, rd, rs, imm } => write!(f, "{op}i {rd}, {rs}, {imm}"),
            Instr::LiF { fd, imm } => write!(f, "li.d {fd}, {imm}"),
            Instr::MoveF { fd, fs } => write!(f, "mov.d {fd}, {fs}"),
            Instr::BinF { op, fd, fs, ft } => write!(f, "{op} {fd}, {fs}, {ft}"),
            Instr::CvtIF { fd, rs } => write!(f, "cvt.d.w {fd}, {rs}"),
            Instr::CvtFI { rd, fs } => write!(f, "cvt.w.d {rd}, {fs}"),
            Instr::CmpF { cmp, fs, ft } => write!(f, "{cmp} {fs}, {ft}"),
            Instr::Load { rd, base, offset } => write!(f, "lw {rd}, {offset}({base})"),
            Instr::Store { rs, base, offset } => write!(f, "sw {rs}, {offset}({base})"),
            Instr::LoadF { fd, base, offset } => write!(f, "l.d {fd}, {offset}({base})"),
            Instr::StoreF { fs, base, offset } => write!(f, "s.d {fs}, {offset}({base})"),
            Instr::Alloc { rd, size } => write!(f, "alloc {rd}, {size}"),
            Instr::Call {
                callee,
                args,
                fargs,
                ret,
                fret,
            } => {
                write!(f, "call {callee}(")?;
                let mut first = true;
                for a in args {
                    if !first {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                    first = false;
                }
                for a in fargs {
                    if !first {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                    first = false;
                }
                write!(f, ")")?;
                match (ret, fret) {
                    (Some(r), Some(fr)) => write!(f, " -> {r}, {fr}"),
                    (Some(r), None) => write!(f, " -> {r}"),
                    (None, Some(fr)) => write!(f, " -> {fr}"),
                    (None, None) => Ok(()),
                }
            }
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::Eqz(r) => write!(f, "beqz {r}"),
            Cond::Nez(r) => write!(f, "bnez {r}"),
            Cond::Lez(r) => write!(f, "blez {r}"),
            Cond::Ltz(r) => write!(f, "bltz {r}"),
            Cond::Gez(r) => write!(f, "bgez {r}"),
            Cond::Gtz(r) => write!(f, "bgtz {r}"),
            Cond::Eq(a, b) => write!(f, "beq {a}, {b}"),
            Cond::Ne(a, b) => write!(f, "bne {a}, {b}"),
            Cond::FTrue => write!(f, "bc1t"),
            Cond::FFalse => write!(f, "bc1f"),
        }
    }
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Jump(t) => write!(f, "j {t}"),
            Terminator::Branch {
                cond,
                taken,
                fallthru,
            } => {
                write!(f, "{cond}, {taken} (else {fallthru})")
            }
            Terminator::Ret {
                val: Some(r),
                fval: None,
            } => write!(f, "ret {r}"),
            Terminator::Ret {
                val: None,
                fval: Some(r),
            } => write!(f, "ret {r}"),
            Terminator::Ret {
                val: Some(r),
                fval: Some(fr),
            } => write!(f, "ret {r}, {fr}"),
            Terminator::Ret {
                val: None,
                fval: None,
            } => write!(f, "ret"),
        }
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn {}(", self.name())?;
        let mut first = true;
        for p in self.params() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
            first = false;
        }
        for p in self.fparams() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
            first = false;
        }
        writeln!(
            f,
            ") [frame={} words; regs={}/{}]",
            self.frame_words(),
            self.n_regs(),
            self.n_fregs()
        )?;
        for bid in self.block_ids() {
            writeln!(f, "{bid}:")?;
            let block = self.block(bid);
            for instr in &block.instrs {
                writeln!(f, "    {instr}")?;
            }
            writeln!(f, "    {}", block.term)?;
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; globals: {} words", self.globals_words())?;
        let mut syms: Vec<_> = self.symbols().iter().collect();
        syms.sort_by_key(|(_, s)| s.offset);
        for (name, sym) in syms {
            writeln!(
                f,
                "; global {name}: [{}..{}) {}",
                sym.offset,
                sym.offset + sym.len,
                if sym.is_float { "float" } else { "int" }
            )?;
        }
        for (i, func) in self.funcs().iter().enumerate() {
            writeln!(f, "; function @{i}")?;
            writeln!(f, "{func}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::reg::{FReg, Reg};

    #[test]
    fn instr_display_is_assembly_like() {
        let i = Instr::Load {
            rd: Reg::temp(0),
            base: Reg::GP,
            offset: 12,
        };
        assert_eq!(i.to_string(), "lw $r0, 12($gp)");
        let i = Instr::CmpF {
            cmp: FCmp::Eq,
            fs: FReg(0),
            ft: FReg(1),
        };
        assert_eq!(i.to_string(), "c.eq.d $f0, $f1");
    }

    #[test]
    fn function_display_has_all_blocks() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry();
        let x = b.new_block();
        b.set_term(e, Terminator::Jump(x));
        b.set_term(
            x,
            Terminator::Ret {
                val: None,
                fval: None,
            },
        );
        let s = b.finish().unwrap().to_string();
        assert!(s.contains("L0:"));
        assert!(s.contains("L1:"));
        assert!(s.contains("j L1"));
        assert!(s.contains("ret"));
    }
}
