//! Dense per-program ID spaces: the program database every analysis
//! layer above the IR indexes by.
//!
//! The analysis and prediction stack (classifier, heuristic tables,
//! evaluation, frequency propagation) used to key per-branch state by
//! [`BranchRef`] in hash maps. This module provides the flat
//! alternative: a [`BranchId`] is a dense index into the program-order
//! enumeration of conditional branches (exactly the order
//! [`Program::branches`] yields — function-major, block-minor), and a
//! [`BranchTable`] is the bidirectional `BranchRef ⇄ BranchId` side
//! table. Anything keyed by branch becomes a `Vec` indexed by
//! [`BranchId`]; anything iterating branches does so in one canonical,
//! deterministic order.
//!
//! [`Interner`] plays the same role for names: a string interned once
//! gets a stable dense [`NameId`], so aggregations that used to key by
//! `String` can key by index and iterate in insertion order.
//!
//! # Example
//!
//! ```
//! use bpfree_ir::{BranchTable, Program, FunctionBuilder, Terminator, Instr, Cond};
//!
//! let mut b = FunctionBuilder::new("main");
//! let e = b.entry();
//! let t = b.new_block();
//! let f = b.new_block();
//! let r = b.new_reg();
//! b.push(e, Instr::Li { rd: r, imm: 1 });
//! b.set_term(e, Terminator::Branch { cond: Cond::Gtz(r), taken: t, fallthru: f });
//! b.set_term(t, Terminator::Ret { val: None, fval: None });
//! b.set_term(f, Terminator::Ret { val: None, fval: None });
//! let p = Program::new(vec![b.finish().unwrap()], 0).unwrap();
//!
//! let table = BranchTable::build(&p);
//! assert_eq!(table.len(), 1);
//! let branch = table.branch_ref(bpfree_ir::BranchId(0));
//! assert_eq!(table.id_of(branch), Some(bpfree_ir::BranchId(0)));
//! ```

use std::collections::HashMap;

use crate::function::{BranchRef, FuncId, Program};

/// Dense identifier of a conditional branch within one program: the
/// branch's index in program order (function-major, block-minor — the
/// order [`Program::branches`] enumerates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BranchId(pub u32);

impl BranchId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for BranchId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "br{}", self.0)
    }
}

/// The `BranchRef ⇄ BranchId` side table of one program.
///
/// Holds every conditional branch in program order. `id → ref` is an
/// array index; `ref → id` is a binary search within the function's
/// contiguous id range (branch refs are sorted, so each function owns a
/// contiguous run of ids).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchTable {
    /// Branch sites in program order; index = [`BranchId`].
    refs: Vec<BranchRef>,
    /// For each function, the first [`BranchId`] index belonging to it;
    /// one extra entry holds the total, so function `f` owns
    /// `func_start[f] .. func_start[f + 1]`.
    func_start: Vec<u32>,
}

impl BranchTable {
    /// Enumerates `program`'s conditional branches into a table.
    pub fn build(program: &Program) -> BranchTable {
        let refs = program.branches();
        Self::from_refs(refs, program.funcs().len())
    }

    /// Builds a table from an already-enumerated, program-ordered branch
    /// list (what [`Program::branches`] returns).
    ///
    /// # Panics
    ///
    /// Panics if `refs` is not sorted in program order or names a
    /// function `>= n_funcs`.
    pub fn from_refs(refs: Vec<BranchRef>, n_funcs: usize) -> BranchTable {
        assert!(
            refs.windows(2).all(|w| w[0] < w[1]),
            "refs not program-ordered"
        );
        let mut func_start = vec![0u32; n_funcs + 1];
        for (i, r) in refs.iter().enumerate() {
            assert!(
                r.func.index() < n_funcs,
                "branch {r} names an unknown function"
            );
            func_start[r.func.index() + 1] = i as u32 + 1;
        }
        // Functions without branches inherit the previous boundary.
        for f in 1..func_start.len() {
            if func_start[f] < func_start[f - 1] {
                func_start[f] = func_start[f - 1];
            }
        }
        BranchTable { refs, func_start }
    }

    /// Number of branches.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// `true` if the program has no conditional branches.
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// The branch site of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn branch_ref(&self, id: BranchId) -> BranchRef {
        self.refs[id.index()]
    }

    /// The dense id of `branch`, if it names a conditional branch of
    /// this program.
    pub fn id_of(&self, branch: BranchRef) -> Option<BranchId> {
        let f = branch.func.index();
        if f + 1 >= self.func_start.len() {
            return None;
        }
        let lo = self.func_start[f] as usize;
        let hi = self.func_start[f + 1] as usize;
        self.refs[lo..hi]
            .binary_search_by_key(&branch.block, |r| r.block)
            .ok()
            .map(|i| BranchId((lo + i) as u32))
    }

    /// The contiguous id range owned by `func`.
    pub fn func_range(&self, func: FuncId) -> std::ops::Range<usize> {
        let f = func.index();
        self.func_start[f] as usize..self.func_start[f + 1] as usize
    }

    /// All branch sites in program order (index = id).
    pub fn refs(&self) -> &[BranchRef] {
        &self.refs
    }

    /// Iterator over ids in ascending order.
    pub fn ids(&self) -> impl Iterator<Item = BranchId> {
        (0..self.refs.len() as u32).map(BranchId)
    }

    /// Iterator over `(id, ref)` pairs in program order.
    pub fn iter(&self) -> impl Iterator<Item = (BranchId, BranchRef)> + '_ {
        self.refs
            .iter()
            .enumerate()
            .map(|(i, &r)| (BranchId(i as u32), r))
    }
}

/// Dense identifier of an interned name. See [`Interner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NameId(pub u32);

impl NameId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A string interner: each distinct string gets a dense [`NameId`] in
/// first-insertion order, so name-keyed aggregations can use `Vec`
/// storage and iterate deterministically.
///
/// # Example
///
/// ```
/// use bpfree_ir::Interner;
/// let mut names = Interner::new();
/// let a = names.intern("alpha");
/// let b = names.intern("beta");
/// assert_eq!(names.intern("alpha"), a);
/// assert_ne!(a, b);
/// assert_eq!(names.resolve(b), "beta");
/// assert_eq!(names.lookup("beta"), Some(b));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Interner {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl PartialEq for Interner {
    /// Two interners are equal when they assigned the same ids to the
    /// same names (the reverse index is derived data).
    fn eq(&self, other: &Interner) -> bool {
        self.names == other.names
    }
}

impl Eq for Interner {}

impl Interner {
    /// An empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Interns `name`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, name: &str) -> NameId {
        if let Some(&i) = self.index.get(name) {
            return NameId(i);
        }
        let i = self.names.len() as u32;
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), i);
        NameId(i)
    }

    /// The id of `name`, if already interned.
    pub fn lookup(&self, name: &str) -> Option<NameId> {
        self.index.get(name).map(|&i| NameId(i))
    }

    /// The string of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: NameId) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct names interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterator over `(id, name)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (NameId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (NameId(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instr::{BlockId, Cond, Instr, Terminator};
    use crate::Program;

    fn ret() -> Terminator {
        Terminator::Ret {
            val: None,
            fval: None,
        }
    }

    fn branchy(name: &str, n_branches: usize) -> crate::Function {
        let mut b = FunctionBuilder::new(name);
        let r = b.new_reg();
        let mut cur = b.entry();
        b.push(cur, Instr::Li { rd: r, imm: 1 });
        for _ in 0..n_branches {
            let t = b.new_block();
            let f = b.new_block();
            b.set_term(
                cur,
                Terminator::Branch {
                    cond: Cond::Gtz(r),
                    taken: t,
                    fallthru: f,
                },
            );
            b.set_term(t, ret());
            cur = f;
        }
        b.set_term(cur, ret());
        b.finish().unwrap()
    }

    #[test]
    fn table_round_trips_every_branch() {
        let p = Program::new(
            vec![branchy("main", 3), branchy("leaf", 0), branchy("other", 2)],
            0,
        )
        .unwrap();
        let t = BranchTable::build(&p);
        assert_eq!(t.len(), 5);
        assert_eq!(t.refs(), p.branches().as_slice());
        for (id, r) in t.iter() {
            assert_eq!(t.branch_ref(id), r);
            assert_eq!(t.id_of(r), Some(id));
        }
        // Ids are program-ordered.
        let ids: Vec<_> = t.ids().collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn unknown_refs_have_no_id() {
        let p = Program::new(vec![branchy("main", 2)], 0).unwrap();
        let t = BranchTable::build(&p);
        assert_eq!(
            t.id_of(BranchRef {
                func: FuncId(0),
                block: BlockId(999),
            }),
            None
        );
        assert_eq!(
            t.id_of(BranchRef {
                func: FuncId(7),
                block: BlockId(0),
            }),
            None
        );
    }

    #[test]
    fn func_ranges_partition_the_id_space() {
        let p = Program::new(vec![branchy("a", 2), branchy("b", 0), branchy("c", 1)], 0).unwrap();
        let t = BranchTable::build(&p);
        assert_eq!(t.func_range(FuncId(0)), 0..2);
        assert_eq!(t.func_range(FuncId(1)), 2..2);
        assert_eq!(t.func_range(FuncId(2)), 2..3);
    }

    #[test]
    fn interner_is_stable_and_insertion_ordered() {
        let mut i = Interner::new();
        let ids: Vec<_> = ["x", "y", "x", "z"].iter().map(|n| i.intern(n)).collect();
        assert_eq!(ids, vec![NameId(0), NameId(1), NameId(0), NameId(2)]);
        assert_eq!(i.len(), 3);
        let order: Vec<&str> = i.iter().map(|(_, n)| n).collect();
        assert_eq!(order, vec!["x", "y", "z"]);
        assert_eq!(i.lookup("w"), None);
    }
}
