//! A MIPS-flavoured low-level intermediate representation.
//!
//! This crate models the aspects of MIPS R2000/R3000 machine code that the
//! Ball–Larus branch prediction heuristics key on:
//!
//! * two-way conditional branches with fixed targets, including the
//!   compare-against-zero forms (`blez`, `bltz`, `bgez`, `bgtz`, `beqz`,
//!   `bnez`), register–register equality forms (`beq`, `bne`), and branches
//!   on the floating-point condition flag set by a preceding compare;
//! * loads and stores with a base register and word offset, with the stack
//!   pointer ([`Reg::SP`]) and global pointer ([`Reg::GP`]) conventions the
//!   paper's pointer heuristic relies on;
//! * direct calls and returns.
//!
//! A [`Program`] is a collection of [`Function`]s; each function is a list
//! of [`Block`]s ending in a [`Terminator`]. Conditional branches live only
//! in terminators, so a branch is identified by a `(FuncId, BlockId)` pair
//! (see [`BranchRef`]).
//!
//! # Example
//!
//! ```
//! use bpfree_ir::{FunctionBuilder, Instr, Terminator, Cond, Program};
//!
//! let mut b = FunctionBuilder::new("answer");
//! let entry = b.entry();
//! let r = b.new_reg();
//! b.push(entry, Instr::Li { rd: r, imm: 42 });
//! b.set_term(entry, Terminator::Ret { val: Some(r), fval: None });
//! let f = b.finish().unwrap();
//! let program = Program::new(vec![f], 0).unwrap();
//! assert_eq!(program.funcs().len(), 1);
//! ```

mod builder;
mod dense;
mod display;
mod function;
mod instr;
mod parse;
mod reg;
mod validate;

pub use builder::{BuildError, FunctionBuilder};
pub use dense::{BranchId, BranchTable, Interner, NameId};
pub use function::{
    Block, BranchRef, FuncId, Function, GlobalSym, GlobalValues, Program, ProgramBuilder,
};
pub use instr::{BinOp, BlockId, Cond, FBinOp, FCmp, Instr, Terminator};
pub use parse::{parse_program, ParseError};
pub use reg::{FReg, Reg};
pub use validate::ValidateError;
