//! A parser for the pseudo-assembly [`Display`](std::fmt::Display) form
//! of functions and programs, so IR can be written and round-tripped as
//! text — handy for test cases, golden files, and inspecting `bpfree
//! compile` output.
//!
//! The grammar is exactly what the display impls print: a `; globals: N
//! words` header, `; global name: [lo..hi) kind` symbol lines, and `fn
//! name($r0, $f0, ...) [frame=N words]` functions with `L<k>:` blocks.

use std::collections::HashMap;
use std::fmt;

use crate::builder::FunctionBuilder;
use crate::function::{FuncId, GlobalSym, Program, ProgramBuilder};
use crate::instr::{BinOp, BlockId, Cond, FBinOp, FCmp, Instr, Terminator};
use crate::reg::{FReg, Reg};

/// Error from [`parse_program`] with a 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses the textual form produced by `Program`'s `Display` impl.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line, or a rendered
/// validation failure when the assembled program is structurally invalid.
///
/// # Example
///
/// ```
/// use bpfree_ir::{parse_program, FunctionBuilder, Instr, Program, Terminator};
/// let mut b = FunctionBuilder::new("main");
/// let e = b.entry();
/// let r = b.new_reg();
/// b.push(e, Instr::Li { rd: r, imm: 42 });
/// b.set_term(e, Terminator::Ret { val: Some(r), fval: None });
/// let p = Program::new(vec![b.finish().unwrap()], 0).unwrap();
/// let q = parse_program(&p.to_string()).unwrap();
/// assert_eq!(p, q);
/// ```
pub fn parse_program(text: &str) -> Result<Program, ParseError> {
    Parser::new(text).program()
}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty())
            .collect();
        Parser { lines, pos: 0 }
    }

    fn peek(&self) -> Option<(usize, &'a str)> {
        self.lines.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<(usize, &'a str)> {
        let l = self.peek();
        self.pos += 1;
        l
    }

    fn program(mut self) -> Result<Program, ParseError> {
        let mut globals_words = 0i64;
        let mut symbols: Vec<(String, GlobalSym)> = Vec::new();
        let mut pb = ProgramBuilder::new();
        let mut any_fn = false;
        while let Some((ln, line)) = self.peek() {
            if let Some(rest) = line.strip_prefix("; globals:") {
                let words = rest.trim().trim_end_matches("words").trim();
                globals_words = words.parse().map_err(|e| ParseError {
                    line: ln,
                    message: format!("bad globals: {e}"),
                })?;
                self.bump();
            } else if let Some(rest) = line.strip_prefix("; global ") {
                symbols.push(parse_symbol(ln, rest)?);
                self.bump();
            } else if line.starts_with("; function") || line.starts_with(";") && !any_fn {
                self.bump();
            } else if line.starts_with("fn ") {
                any_fn = true;
                let f = self.function()?;
                pb.add_function(f);
            } else if line.starts_with(';') {
                self.bump();
            } else {
                return err(
                    ln,
                    format!("expected a function or comment, found `{line}`"),
                );
            }
        }
        for (name, sym) in symbols {
            pb.add_global(name, sym);
        }
        pb.finish(globals_words).map_err(|e| ParseError {
            line: 0,
            message: format!("invalid program: {e}"),
        })
    }

    fn function(&mut self) -> Result<crate::function::Function, ParseError> {
        let (ln, header) = self.bump().expect("caller saw a fn line");
        // fn name($r0, $f1) [frame=N words]
        let rest = header.strip_prefix("fn ").expect("starts with fn");
        let open = rest.find('(').ok_or_else(|| ParseError {
            line: ln,
            message: "missing `(` in function header".into(),
        })?;
        let name = rest[..open].trim().to_string();
        let close = rest.find(')').ok_or_else(|| ParseError {
            line: ln,
            message: "missing `)` in function header".into(),
        })?;
        let params_text = &rest[open + 1..close];
        let meta = rest[close + 1..]
            .trim()
            .strip_prefix('[')
            .and_then(|s| s.strip_suffix(']'))
            .ok_or_else(|| ParseError {
                line: ln,
                message: "missing [frame=N words; regs=K/M]".into(),
            })?;
        let mut frame = 0i64;
        let mut want_regs: Option<(u32, u32)> = None;
        for part in meta.split(';').map(str::trim) {
            if let Some(v) = part.strip_prefix("frame=") {
                frame = v
                    .trim_end_matches(" words")
                    .parse()
                    .map_err(|e| ParseError {
                        line: ln,
                        message: format!("bad frame: {e}"),
                    })?;
            } else if let Some(v) = part.strip_prefix("regs=") {
                let (r, fr) = v.split_once('/').ok_or_else(|| ParseError {
                    line: ln,
                    message: "regs=K/M expected".into(),
                })?;
                want_regs = Some((
                    r.parse().map_err(|e| ParseError {
                        line: ln,
                        message: format!("bad reg count: {e}"),
                    })?,
                    fr.parse().map_err(|e| ParseError {
                        line: ln,
                        message: format!("bad freg count: {e}"),
                    })?,
                ));
            }
        }

        // First pass over the body lines to know how many blocks exist and
        // the largest register indices (the builder needs them allocated).
        let mut body: Vec<(usize, &str)> = Vec::new();
        while let Some((_, line)) = self.peek() {
            if line.starts_with("fn ") || line.starts_with("; function") {
                break;
            }
            body.push(self.bump().expect("peeked"));
        }

        let mut b = FunctionBuilder::new(name);
        // Parameters in header order.
        for p in params_text
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
        {
            if p.starts_with("$f") {
                b.add_fparam();
            } else {
                b.add_param();
            }
        }
        // Register space: prefer the declared counts; otherwise scan for
        // the largest indices used.
        let (target_r, target_f) = match want_regs {
            Some((r, fr)) => (r, fr),
            None => {
                let mut max_r = 0u32;
                let mut max_f = 0u32;
                for (_, line) in &body {
                    for token in line.split(|c: char| !c.is_ascii_alphanumeric() && c != '$') {
                        if let Some(n) =
                            token.strip_prefix("$r").and_then(|s| s.parse::<u32>().ok())
                        {
                            max_r = max_r.max(n + 1);
                        }
                        if let Some(n) =
                            token.strip_prefix("$f").and_then(|s| s.parse::<u32>().ok())
                        {
                            max_f = max_f.max(n + 1);
                        }
                    }
                }
                (Reg::FIRST_TEMP + max_r, max_f)
            }
        };
        while b.reg_count() < target_r {
            b.new_reg();
        }
        while b.freg_count() < target_f {
            b.new_freg();
        }
        b.reserve_frame(frame);

        // Count blocks (L<k>: lines) and create them.
        let n_blocks = body.iter().filter(|(_, l)| is_block_label(l)).count();
        for _ in 1..n_blocks.max(1) {
            b.new_block();
        }

        let mut current: Option<BlockId> = None;
        for (ln, line) in body {
            if let Some(label) = line.strip_suffix(':') {
                let id: u32 = label
                    .strip_prefix('L')
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ParseError {
                        line: ln,
                        message: format!("bad label {label}"),
                    })?;
                current = Some(BlockId(id));
                continue;
            }
            let blk = current.ok_or_else(|| ParseError {
                line: ln,
                message: "instruction before label".into(),
            })?;
            match parse_line(ln, line)? {
                Line::Instr(i) => b.push(blk, i),
                Line::Term(t) => b.set_term(blk, t),
            }
        }
        b.finish().map_err(|e| ParseError {
            line: ln,
            message: e.to_string(),
        })
    }
}

fn is_block_label(line: &str) -> bool {
    line.ends_with(':') && line.starts_with('L')
}

fn parse_symbol(ln: usize, rest: &str) -> Result<(String, GlobalSym), ParseError> {
    // name: [lo..hi) kind
    let (name, spec) = rest.split_once(':').ok_or_else(|| ParseError {
        line: ln,
        message: "bad global line".into(),
    })?;
    let spec = spec.trim();
    let (range, kind) = spec.rsplit_once(' ').ok_or_else(|| ParseError {
        line: ln,
        message: "bad global spec".into(),
    })?;
    let range = range
        .trim()
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| ParseError {
            line: ln,
            message: "bad global range".into(),
        })?;
    let (lo, hi) = range.split_once("..").ok_or_else(|| ParseError {
        line: ln,
        message: "bad global range".into(),
    })?;
    let lo: i64 = lo.parse().map_err(|e| ParseError {
        line: ln,
        message: format!("bad offset: {e}"),
    })?;
    let hi: i64 = hi.parse().map_err(|e| ParseError {
        line: ln,
        message: format!("bad extent: {e}"),
    })?;
    Ok((
        name.trim().to_string(),
        GlobalSym {
            offset: lo,
            len: hi - lo,
            is_float: kind.trim() == "float",
        },
    ))
}

enum Line {
    Instr(Instr),
    Term(Terminator),
}

fn reg(ln: usize, s: &str) -> Result<Reg, ParseError> {
    let s = s.trim().trim_end_matches(',');
    match s {
        "$zero" => Ok(Reg::ZERO),
        "$sp" => Ok(Reg::SP),
        "$gp" => Ok(Reg::GP),
        _ => s
            .strip_prefix("$r")
            .and_then(|n| n.parse::<u32>().ok())
            .map(Reg::temp)
            .ok_or_else(|| ParseError {
                line: ln,
                message: format!("bad register `{s}`"),
            }),
    }
}

fn freg(ln: usize, s: &str) -> Result<FReg, ParseError> {
    let s = s.trim().trim_end_matches(',');
    s.strip_prefix("$f")
        .and_then(|n| n.parse::<u32>().ok())
        .map(FReg)
        .ok_or_else(|| ParseError {
            line: ln,
            message: format!("bad float register `{s}`"),
        })
}

fn imm(ln: usize, s: &str) -> Result<i64, ParseError> {
    s.trim()
        .trim_end_matches(',')
        .parse()
        .map_err(|e| ParseError {
            line: ln,
            message: format!("bad immediate `{s}`: {e}"),
        })
}

fn fimm(ln: usize, s: &str) -> Result<f64, ParseError> {
    s.trim()
        .trim_end_matches(',')
        .parse()
        .map_err(|e| ParseError {
            line: ln,
            message: format!("bad float literal `{s}`: {e}"),
        })
}

fn block_id(ln: usize, s: &str) -> Result<BlockId, ParseError> {
    s.trim()
        .trim_end_matches(',')
        .strip_prefix('L')
        .and_then(|n| n.parse::<u32>().ok())
        .map(BlockId)
        .ok_or_else(|| ParseError {
            line: ln,
            message: format!("bad block `{s}`"),
        })
}

/// `off(base)` operands.
fn mem(ln: usize, s: &str) -> Result<(Reg, i64), ParseError> {
    let s = s.trim();
    let open = s.find('(').ok_or_else(|| ParseError {
        line: ln,
        message: format!("bad address `{s}`"),
    })?;
    let offset = imm(ln, &s[..open])?;
    let base = reg(ln, s[open + 1..].trim_end_matches(')'))?;
    Ok((base, offset))
}

fn binop_from(op: &str) -> Option<(BinOp, bool)> {
    let (name, immediate) = match op.strip_suffix('i') {
        // `sll`/`srl` end in characters that never collide with the `i`
        // suffix, so a plain strip is unambiguous except for... nothing:
        // no opcode ends in `i` natively.
        Some(base) => (base, true),
        None => (op, false),
    };
    let op = match name {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "div" => BinOp::Div,
        "rem" => BinOp::Rem,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "sll" => BinOp::Sll,
        "srl" => BinOp::Srl,
        "sra" => BinOp::Sra,
        "slt" => BinOp::Slt,
        "sle" => BinOp::Sle,
        "seq" => BinOp::Seq,
        "sne" => BinOp::Sne,
        _ => return None,
    };
    Some((op, immediate))
}

fn parse_line(ln: usize, line: &str) -> Result<Line, ParseError> {
    let (op, rest) = line.split_once(' ').unwrap_or((line, ""));
    let op = op.trim_end_matches(',');
    let args: Vec<&str> = rest
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    let need = |n: usize| -> Result<(), ParseError> {
        if args.len() == n {
            Ok(())
        } else {
            err(ln, format!("`{op}` needs {n} operands, got {}", args.len()))
        }
    };
    let i = match op {
        "li" => {
            need(2)?;
            Instr::Li {
                rd: reg(ln, args[0])?,
                imm: imm(ln, args[1])?,
            }
        }
        "move" => {
            need(2)?;
            Instr::Move {
                rd: reg(ln, args[0])?,
                rs: reg(ln, args[1])?,
            }
        }
        "li.d" => {
            need(2)?;
            Instr::LiF {
                fd: freg(ln, args[0])?,
                imm: fimm(ln, args[1])?,
            }
        }
        "mov.d" => {
            need(2)?;
            Instr::MoveF {
                fd: freg(ln, args[0])?,
                fs: freg(ln, args[1])?,
            }
        }
        "add.d" | "sub.d" | "mul.d" | "div.d" => {
            need(3)?;
            let fop = match op {
                "add.d" => FBinOp::Add,
                "sub.d" => FBinOp::Sub,
                "mul.d" => FBinOp::Mul,
                _ => FBinOp::Div,
            };
            Instr::BinF {
                op: fop,
                fd: freg(ln, args[0])?,
                fs: freg(ln, args[1])?,
                ft: freg(ln, args[2])?,
            }
        }
        "cvt.d.w" => {
            need(2)?;
            Instr::CvtIF {
                fd: freg(ln, args[0])?,
                rs: reg(ln, args[1])?,
            }
        }
        "cvt.w.d" => {
            need(2)?;
            Instr::CvtFI {
                rd: reg(ln, args[0])?,
                fs: freg(ln, args[1])?,
            }
        }
        "c.eq.d" | "c.lt.d" | "c.le.d" => {
            need(2)?;
            let cmp = match op {
                "c.eq.d" => FCmp::Eq,
                "c.lt.d" => FCmp::Lt,
                _ => FCmp::Le,
            };
            Instr::CmpF {
                cmp,
                fs: freg(ln, args[0])?,
                ft: freg(ln, args[1])?,
            }
        }
        "lw" => {
            need(2)?;
            let (base, offset) = mem(ln, args[1])?;
            Instr::Load {
                rd: reg(ln, args[0])?,
                base,
                offset,
            }
        }
        "sw" => {
            need(2)?;
            let (base, offset) = mem(ln, args[1])?;
            Instr::Store {
                rs: reg(ln, args[0])?,
                base,
                offset,
            }
        }
        "l.d" => {
            need(2)?;
            let (base, offset) = mem(ln, args[1])?;
            Instr::LoadF {
                fd: freg(ln, args[0])?,
                base,
                offset,
            }
        }
        "s.d" => {
            need(2)?;
            let (base, offset) = mem(ln, args[1])?;
            Instr::StoreF {
                fs: freg(ln, args[0])?,
                base,
                offset,
            }
        }
        "alloc" => {
            need(2)?;
            Instr::Alloc {
                rd: reg(ln, args[0])?,
                size: reg(ln, args[1])?,
            }
        }
        "call" => return parse_call(ln, rest),
        "j" => {
            need(1)?;
            return Ok(Line::Term(Terminator::Jump(block_id(ln, args[0])?)));
        }
        "ret" => {
            let mut val = None;
            let mut fval = None;
            for a in &args {
                if a.starts_with("$f") {
                    fval = Some(freg(ln, a)?);
                } else {
                    val = Some(reg(ln, a)?);
                }
            }
            return Ok(Line::Term(Terminator::Ret { val, fval }));
        }
        branch if branch.starts_with('b') => return parse_branch(ln, op, rest),
        other => {
            // Binary ALU ops, possibly with the immediate `i` suffix.
            match binop_from(other) {
                Some((bop, false)) => {
                    need(3)?;
                    Instr::Bin {
                        op: bop,
                        rd: reg(ln, args[0])?,
                        rs: reg(ln, args[1])?,
                        rt: reg(ln, args[2])?,
                    }
                }
                Some((bop, true)) => {
                    need(3)?;
                    Instr::BinImm {
                        op: bop,
                        rd: reg(ln, args[0])?,
                        rs: reg(ln, args[1])?,
                        imm: imm(ln, args[2])?,
                    }
                }
                None => return err(ln, format!("unknown opcode `{op}`")),
            }
        }
    };
    Ok(Line::Instr(i))
}

/// `bxx ..., Lk (else Lm)` terminators.
fn parse_branch(ln: usize, op: &str, rest: &str) -> Result<Line, ParseError> {
    let (main, else_part) = rest.split_once("(else ").ok_or_else(|| ParseError {
        line: ln,
        message: "branch missing (else ...)".into(),
    })?;
    let fallthru = block_id(ln, else_part.trim_end_matches(')'))?;
    let parts: Vec<&str> = main
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    let (cond, taken) = match op {
        "beqz" | "bnez" | "blez" | "bltz" | "bgez" | "bgtz" => {
            if parts.len() != 2 {
                return err(ln, format!("`{op}` needs register and target"));
            }
            let r = reg(ln, parts[0])?;
            let c = match op {
                "beqz" => Cond::Eqz(r),
                "bnez" => Cond::Nez(r),
                "blez" => Cond::Lez(r),
                "bltz" => Cond::Ltz(r),
                "bgez" => Cond::Gez(r),
                _ => Cond::Gtz(r),
            };
            (c, block_id(ln, parts[1])?)
        }
        "beq" | "bne" => {
            if parts.len() != 3 {
                return err(ln, format!("`{op}` needs two registers and a target"));
            }
            let a = reg(ln, parts[0])?;
            let b = reg(ln, parts[1])?;
            let c = if op == "beq" {
                Cond::Eq(a, b)
            } else {
                Cond::Ne(a, b)
            };
            (c, block_id(ln, parts[2])?)
        }
        "bc1t" | "bc1f" => {
            if parts.len() != 1 {
                return err(ln, format!("`{op}` needs a target"));
            }
            let c = if op == "bc1t" {
                Cond::FTrue
            } else {
                Cond::FFalse
            };
            (c, block_id(ln, parts[0])?)
        }
        other => return err(ln, format!("unknown branch `{other}`")),
    };
    Ok(Line::Term(Terminator::Branch {
        cond,
        taken,
        fallthru,
    }))
}

/// `call @k(args) -> rets`
fn parse_call(ln: usize, rest: &str) -> Result<Line, ParseError> {
    let rest = rest.trim();
    let at = rest.strip_prefix('@').ok_or_else(|| ParseError {
        line: ln,
        message: "call needs @id".into(),
    })?;
    let open = at.find('(').ok_or_else(|| ParseError {
        line: ln,
        message: "call needs (args)".into(),
    })?;
    let callee = FuncId(at[..open].parse().map_err(|e| ParseError {
        line: ln,
        message: format!("bad callee: {e}"),
    })?);
    let close = at.find(')').ok_or_else(|| ParseError {
        line: ln,
        message: "call missing )".into(),
    })?;
    let mut args = Vec::new();
    let mut fargs = Vec::new();
    for a in at[open + 1..close]
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
    {
        if a.starts_with("$f") {
            fargs.push(freg(ln, a)?);
        } else {
            args.push(reg(ln, a)?);
        }
    }
    let mut ret = None;
    let mut fret = None;
    if let Some(rets) = at[close + 1..].trim().strip_prefix("->") {
        for r in rets.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            if r.starts_with("$f") {
                fret = Some(freg(ln, r)?);
            } else {
                ret = Some(reg(ln, r)?);
            }
        }
    }
    Ok(Line::Instr(Instr::Call {
        callee,
        args,
        fargs,
        ret,
        fret,
    }))
}

/// Collected symbols become the program's table; re-exported here so the
/// module is self-contained for doc links.
#[allow(unused)]
type Symbols = HashMap<String, GlobalSym>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_function() {
        let text =
            "; globals: 0 words\nfn main() [frame=0 words]\nL0:\n    li $r0, 42\n    ret $r0\n";
        let p = parse_program(text).unwrap();
        assert_eq!(p.funcs().len(), 1);
        assert_eq!(p.func(FuncId(0)).block(BlockId(0)).instrs.len(), 1);
    }

    #[test]
    fn parses_globals() {
        let text = "; globals: 5 words\n; global n: [0..1) int\n; global w: [1..5) float\nfn main() [frame=0 words]\nL0:\n    ret\n";
        let p = parse_program(text).unwrap();
        assert_eq!(p.globals_words(), 5);
        assert_eq!(p.symbol("n").unwrap().len, 1);
        assert!(p.symbol("w").unwrap().is_float);
    }

    #[test]
    fn reports_unknown_opcode_with_line() {
        let text = "fn main() [frame=0 words]\nL0:\n    frobnicate $r0\n    ret\n";
        let e = parse_program(text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn reports_branch_without_else() {
        let text = "fn main() [frame=0 words]\nL0:\n    beqz $r0, L0\n";
        let e = parse_program(text).unwrap_err();
        assert!(e.message.contains("else"));
    }
}
