use std::fmt;

/// An integer (general-purpose) register.
///
/// Registers are virtual: a function may use any number of them. Three
/// registers have a fixed architectural meaning, mirroring MIPS
/// conventions that the Ball–Larus pointer heuristic depends on:
///
/// * [`Reg::ZERO`] always reads as zero and ignores writes,
/// * [`Reg::SP`] is the stack pointer (local arrays live at `SP`-relative
///   offsets),
/// * [`Reg::GP`] is the global pointer (globals live at `GP`-relative
///   offsets). The pointer heuristic skips loads off `GP`.
///
/// # Example
///
/// ```
/// use bpfree_ir::Reg;
/// assert!(Reg::ZERO.is_special());
/// assert!(!Reg::temp(0).is_special());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u32);

impl Reg {
    /// The hard-wired zero register (`$zero`).
    pub const ZERO: Reg = Reg(0);
    /// The stack pointer (`$sp`).
    pub const SP: Reg = Reg(1);
    /// The global pointer (`$gp`).
    pub const GP: Reg = Reg(2);
    /// Index of the first allocatable (temporary) register.
    pub const FIRST_TEMP: u32 = 3;

    /// Returns the `n`-th temporary register.
    ///
    /// # Example
    ///
    /// ```
    /// use bpfree_ir::Reg;
    /// assert_ne!(Reg::temp(0), Reg::GP);
    /// ```
    pub fn temp(n: u32) -> Reg {
        Reg(Reg::FIRST_TEMP + n)
    }

    /// Returns `true` for the architectural registers `ZERO`, `SP`, `GP`.
    pub fn is_special(self) -> bool {
        self.0 < Reg::FIRST_TEMP
    }

    /// The raw register index.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Reg::ZERO => write!(f, "$zero"),
            Reg::SP => write!(f, "$sp"),
            Reg::GP => write!(f, "$gp"),
            Reg(n) => write!(f, "$r{}", n - Reg::FIRST_TEMP),
        }
    }
}

/// A floating-point register.
///
/// Unlike integer registers there are no special floating-point registers;
/// all indices are allocatable.
///
/// # Example
///
/// ```
/// use bpfree_ir::FReg;
/// assert_eq!(FReg(3).index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FReg(pub u32);

impl FReg {
    /// The raw register index.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn special_registers_are_distinct() {
        assert_ne!(Reg::ZERO, Reg::SP);
        assert_ne!(Reg::SP, Reg::GP);
        assert_ne!(Reg::ZERO, Reg::GP);
    }

    #[test]
    fn temp_registers_avoid_specials() {
        for n in 0..100 {
            assert!(!Reg::temp(n).is_special());
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Reg::ZERO.to_string(), "$zero");
        assert_eq!(Reg::SP.to_string(), "$sp");
        assert_eq!(Reg::GP.to_string(), "$gp");
        assert_eq!(Reg::temp(0).to_string(), "$r0");
        assert_eq!(FReg(7).to_string(), "$f7");
    }
}
